"""Simulation engines: FSYNC (paper's time model), ASYNC and SSYNC.

The FSYNC engine implements the look-compute-move model of [CP04] as used by
the paper: in every round all robots simultaneously take a snapshot, compute,
and move; robots ending on the same cell merge.  The engine is algorithm-
agnostic: any controller implementing :class:`Controller` can be simulated,
which is how the core algorithm and the baselines share infrastructure.

The ASYNC engine models the fair sequential scheduler (one robot at a
time); the SSYNC engine (:mod:`repro.engine.ssync_scheduler`) activates
adversarially chosen per-round subsets under a k-fairness bound, with
optional seeded fault injection (:mod:`repro.engine.faults`).
"""

from repro.engine.errors import (
    ConnectivityViolation,
    NotGathered,
    SimulationError,
)
from repro.engine.events import Event, EventLog
from repro.engine.faults import FaultInjector
from repro.engine.metrics import MetricsLog, RoundMetrics
from repro.engine.protocols import (
    RunResult,
    Scenario,
    Scheduler,
    SimContext,
    Strategy,
)
from repro.engine.scheduler import Controller, FsyncEngine, GatherResult
from repro.engine.async_scheduler import AsyncController, AsyncEngine
from repro.engine.ssync_scheduler import (
    ACTIVATION_POLICIES,
    ActivationSchedule,
    SsyncEngine,
    make_policy,
)
from repro.engine.termination import default_round_budget, is_gathered

__all__ = [
    "ACTIVATION_POLICIES",
    "ActivationSchedule",
    "FaultInjector",
    "SsyncEngine",
    "make_policy",
    "ConnectivityViolation",
    "NotGathered",
    "SimulationError",
    "Event",
    "EventLog",
    "MetricsLog",
    "RoundMetrics",
    "RunResult",
    "Scenario",
    "Scheduler",
    "SimContext",
    "Strategy",
    "Controller",
    "FsyncEngine",
    "GatherResult",
    "AsyncController",
    "AsyncEngine",
    "default_round_budget",
    "is_gathered",
]
