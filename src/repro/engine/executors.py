"""Planning/sweep executors: persistent workers that survive death.

Three shard-planning backends behind one factory
(:func:`make_plan_executor`), selected by ``cfg.shard_backend``:

``thread``
    The stock :class:`~concurrent.futures.ThreadPoolExecutor` behind the
    order-preserving ``map`` contract of ``RunManager.plan`` — cheap,
    correct everywhere, a real speedup only on GIL-free interpreters.
``process``
    :class:`ProcessPlanExecutor`: long-lived worker processes over a
    :class:`PersistentWorkerPool`.  The round's read-only planning
    context is serialized once (:mod:`repro.engine.snapshot`), published
    in ``multiprocessing.shared_memory``, and decoded once per worker —
    shard tasks then carry only run-id lists, so per-shard IPC is a few
    dozen bytes instead of the whole swarm.
``subinterp``
    Per-subinterpreter workers where the interpreter exposes
    ``concurrent.futures.InterpreterPoolExecutor`` (3.14+; guarded by
    :func:`subinterp_available` and a clean :class:`ExecutorUnavailable`
    elsewhere).

All backends produce bit-identical trajectories to serial planning (the
equivalence suite asserts it): workers run the same pure
``_plan_one`` against the decoded context and the parent reduces in
run-id order either way.

:class:`PersistentWorkerPool` is also the engine under the sweep
orchestrator (:mod:`repro.analysis.orchestrator`).  It is deliberately
*not* a :class:`~concurrent.futures.ProcessPoolExecutor`: that pool
marks itself broken when any worker dies, whereas sweeps and long
planning sessions must degrade to a retry.  Here a dead worker (poison
result, SIGKILL, timeout) is detected via its process sentinel, its
in-flight task is requeued (bounded by ``max_retries``), a replacement
worker is spawned, and the ``on_event`` hook hears ``worker_failed`` /
``worker_respawned`` — diagnostics only, never part of the trajectory.
"""

from __future__ import annotations

import itertools
import multiprocessing
import os
import time
import traceback
from collections import deque
from concurrent.futures import ThreadPoolExecutor
from multiprocessing import resource_tracker, shared_memory
from multiprocessing.connection import wait as _connection_wait
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.engine.snapshot import cached_decode, plan_shard

#: Valid ``cfg.shard_backend`` values, in documentation order.
PLAN_BACKENDS = ("thread", "process", "subinterp")

#: ``on_event(kind, **data)`` hook type for worker lifecycle telemetry.
OnEvent = Callable[..., None]


class ExecutorUnavailable(RuntimeError):
    """The requested backend cannot run on this interpreter/platform."""


class WorkerTaskError(RuntimeError):
    """A task raised inside a worker; carries the remote traceback."""


class WorkerCrashLoop(RuntimeError):
    """One task killed ``max_retries + 1`` workers in a row — the task
    itself is poison, retrying further would respawn forever."""


def _pool_worker_main(conn) -> None:
    """Worker loop: ``(task_id, fn, args)`` in, ``(task_id, ok,
    value_or_traceback)`` out; ``None`` or EOF ends the worker."""
    while True:
        try:
            msg = conn.recv()
        except (EOFError, OSError):
            return
        if msg is None:
            return
        task_id, fn, args = msg
        try:
            result = fn(*args)
        except BaseException:  # poison result: report, keep serving
            try:
                conn.send((task_id, False, traceback.format_exc()))
            except (BrokenPipeError, OSError):
                return
        else:
            try:
                conn.send((task_id, True, result))
            except (BrokenPipeError, OSError):
                return


class _Worker:
    """One pool worker: process + duplex pipe + in-flight task."""

    __slots__ = ("process", "conn", "task", "started_at")

    def __init__(self, process, conn) -> None:
        self.process = process
        self.conn = conn
        self.task: Optional[tuple] = None  # (task_id, fn, args)
        self.started_at: float = 0.0


class PersistentWorkerPool:
    """Long-lived worker processes with death detection and requeue.

    Tasks are ``(fn, args)`` with a module-level picklable ``fn``.
    Results are keyed by monotonically increasing task ids, so any
    completion order reduces deterministically.  A worker that dies
    mid-task is respawned and the task requeued (up to ``max_retries``
    times per task); ``task_timeout`` additionally kills and replaces a
    worker stuck longer than the given seconds.  Timeouts and kills are
    *liveness* mechanisms only — requeued tasks are pure functions of
    their arguments, so recovery never changes a result, just when it
    arrives.
    """

    def __init__(
        self,
        workers: int,
        *,
        on_event: Optional[OnEvent] = None,
        task_timeout: Optional[float] = None,
        max_retries: int = 3,
        start_method: Optional[str] = None,
        daemon: bool = True,
    ) -> None:
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        if start_method is None:
            methods = multiprocessing.get_all_start_methods()
            start_method = "fork" if "fork" in methods else methods[0]
        self._ctx = multiprocessing.get_context(start_method)
        # Planning pools are leaves -> daemon.  Sweep pools must be
        # non-daemon: a sweep job whose config asks for process-backend
        # planning spawns a nested pool, and daemonic processes are not
        # allowed children.  Non-daemon workers still self-clean — the
        # recv loop exits on EOF the moment the parent (and so its pipe
        # end) goes away.
        self._daemon = daemon
        self._on_event = on_event
        self._task_timeout = task_timeout
        self._max_retries = max_retries
        self._workers: List[_Worker] = []
        self._pending: deque = deque()  # (task_id, fn, args)
        self._results: Dict[int, Tuple[bool, object]] = {}
        self._retries: Dict[int, int] = {}
        self._task_ids = itertools.count()
        self._closed = False
        for _ in range(workers):
            self._workers.append(self._spawn())

    # -- lifecycle -----------------------------------------------------
    def _spawn(self) -> _Worker:
        parent_conn, child_conn = self._ctx.Pipe(duplex=True)
        proc = self._ctx.Process(
            target=_pool_worker_main,
            args=(child_conn,),
            daemon=self._daemon,
        )
        proc.start()
        child_conn.close()  # the child holds its own copy
        return _Worker(proc, parent_conn)

    @property
    def worker_count(self) -> int:
        return len(self._workers)

    def worker_pids(self) -> List[int]:
        """Live worker pids (tests kill these to exercise recovery)."""
        return [w.process.pid for w in self._workers]

    def ensure_workers(self, workers: int) -> None:
        """Grow the pool to at least ``workers`` (it never shrinks —
        reuse across sweep calls is the whole point)."""
        while len(self._workers) < workers:
            self._workers.append(self._spawn())

    def close(self) -> None:
        """Stop all workers; idempotent.  Pending tasks are dropped."""
        if self._closed:
            return
        self._closed = True
        for w in self._workers:
            try:
                w.conn.send(None)
            except (BrokenPipeError, OSError):
                pass
        for w in self._workers:
            w.process.join(timeout=2.0)
            if w.process.is_alive():
                w.process.terminate()
                w.process.join(timeout=2.0)
            w.conn.close()
        self._workers = []
        self._pending.clear()

    def __enter__(self) -> "PersistentWorkerPool":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.close()
        return False

    # -- submission ----------------------------------------------------
    def submit(self, fn, args: tuple) -> int:
        """Queue one task; returns its id (results pop via
        :meth:`next_completed` / :meth:`run_all`)."""
        if self._closed:
            raise RuntimeError("pool is closed")
        task_id = next(self._task_ids)
        self._pending.append((task_id, fn, args))
        self._dispatch()
        return task_id

    def _dispatch(self) -> None:
        """Hand pending tasks to idle workers; a send onto a dead
        worker's pipe counts as a death (requeue + respawn)."""
        for slot, worker in enumerate(self._workers):
            if not self._pending:
                return
            if worker.task is not None:
                continue
            task = self._pending[0]
            try:
                worker.conn.send(task)
            except (BrokenPipeError, OSError):
                self._replace_worker(slot, reason="send_failed")
                continue
            self._pending.popleft()
            worker.task = task
            # reprolint: ok[D2] liveness deadline only: recovery
            # re-runs pure tasks, results are timing-independent
            worker.started_at = time.monotonic()

    # -- failure handling ----------------------------------------------
    def _emit(self, kind: str, **data) -> None:
        if self._on_event is not None:
            self._on_event(kind, **data)

    def _replace_worker(self, slot: int, *, reason: str) -> None:
        """Kill/reap a dead or stuck worker, requeue its task (front of
        the queue, bounded retries), and spawn a replacement."""
        worker = self._workers[slot]
        task = worker.task
        pid = worker.process.pid
        self._emit(
            "worker_failed",
            pid=pid,
            reason=reason,
            task=None if task is None else task[0],
        )
        if worker.process.is_alive():
            worker.process.terminate()
        worker.process.join(timeout=2.0)
        if worker.process.is_alive():
            worker.process.kill()
            worker.process.join(timeout=2.0)
        worker.conn.close()
        if task is not None:
            task_id = task[0]
            tries = self._retries.get(task_id, 0) + 1
            self._retries[task_id] = tries
            if tries > self._max_retries:
                self._results[task_id] = (
                    False,
                    WorkerCrashLoop(
                        f"task {task_id} killed {tries} workers "
                        f"(last: {reason}); giving up"
                    ),
                )
            else:
                self._pending.appendleft(task)
        replacement = self._spawn()
        self._workers[slot] = replacement
        self._emit("worker_respawned", pid=replacement.process.pid)

    def _service(self, timeout: Optional[float]) -> None:
        """One readiness round: dispatch, wait on pipes + process
        sentinels, collect results, recover from deaths/timeouts."""
        self._dispatch()
        busy = [
            (slot, w)
            for slot, w in enumerate(self._workers)
            if w.task is not None
        ]
        if not busy:
            return
        # reprolint: ok[D2] liveness deadline only: recovery re-runs
        # pure tasks, results are timing-independent
        now = time.monotonic()
        wait_for = timeout
        if self._task_timeout is not None:
            stuck = []
            earliest = None
            for slot, w in busy:
                deadline = w.started_at + self._task_timeout
                if deadline <= now:
                    stuck.append(slot)
                elif earliest is None or deadline < earliest:
                    earliest = deadline
            for slot in sorted(stuck, reverse=False):
                self._replace_worker(slot, reason="timeout")
            if stuck:
                return
            if earliest is not None:
                slack = max(0.001, earliest - now)
                wait_for = (
                    slack if wait_for is None else min(wait_for, slack)
                )
        handles = [w.conn for _, w in busy] + [
            w.process.sentinel for _, w in busy
        ]
        ready = set(_connection_wait(handles, timeout=wait_for))
        if not ready:
            return
        for slot, w in busy:
            if w.conn in ready:
                try:
                    task_id, ok, value = w.conn.recv()
                except (EOFError, OSError):
                    self._replace_worker(slot, reason="died")
                    continue
                self._results[task_id] = (ok, value)
                w.task = None
            elif w.process.sentinel in ready:
                # Sentinel fired with no buffered result: real death.
                if w.conn.poll():
                    continue  # result raced the exit; next pass reads it
                self._replace_worker(slot, reason="died")
        self._dispatch()

    # -- collection ----------------------------------------------------
    def next_completed(
        self, timeout: Optional[float] = None
    ) -> Optional[Tuple[int, bool, object]]:
        """Pop one completed ``(task_id, ok, value)`` (lowest id first),
        blocking up to ``timeout`` seconds; ``None`` when nothing can
        complete (idle pool or timeout).

        ``timeout=0`` is a true non-blocking poll: it still runs one
        service pass (dispatch queued tasks to freed workers, collect
        finished results without waiting) before answering — a
        zero-timeout caller that never serviced the pool would neither
        observe completions nor keep the queue draining.
        """
        # reprolint: ok[D2] liveness deadline only: recovery re-runs
        # pure tasks, results are timing-independent
        deadline = None if timeout is None else time.monotonic() + timeout
        serviced = False
        while True:
            if self._results:
                task_id = min(self._results)
                ok, value = self._results.pop(task_id)
                return task_id, ok, value
            inflight = any(w.task is not None for w in self._workers)
            if not inflight and not self._pending:
                return None
            remaining = None
            if deadline is not None:
                # reprolint: ok[D2] liveness deadline only: recovery
                # re-runs pure tasks, results are timing-independent
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    if serviced:
                        return None
                    remaining = 0
            self._service(remaining)
            serviced = True

    def run_all(self, tasks: Sequence[Tuple[Callable, tuple]]) -> list:
        """Barrier helper: run every ``(fn, args)`` task, return values
        in submission order; raises on the first failed task."""
        ids = [self.submit(fn, args) for fn, args in tasks]
        want = set(ids)
        collected: Dict[int, Tuple[bool, object]] = {}
        while want:
            item = self.next_completed()
            if item is None:
                raise RuntimeError(
                    f"pool went idle with {len(want)} tasks uncollected"
                )
            task_id, ok, value = item
            if task_id in want:
                want.discard(task_id)
                collected[task_id] = (ok, value)
        out = []
        for task_id in ids:
            ok, value = collected[task_id]
            if not ok:
                if isinstance(value, BaseException):
                    raise value
                raise WorkerTaskError(
                    f"worker task failed:\n{value}"
                )
            out.append(value)
        return out


# ----------------------------------------------------------------------
# Shard-planning executors (``RunManager.plan`` plug-ins)
# ----------------------------------------------------------------------
class ThreadPlanExecutor:
    """The stock thread backend behind the generic ``map`` contract."""

    backend = "thread"

    def __init__(self, workers: int) -> None:
        self._pool = ThreadPoolExecutor(
            max_workers=workers, thread_name_prefix="plan-shard"
        )

    def map(self, fn, iterable):
        return self._pool.map(fn, iterable)

    def close(self) -> None:
        self._pool.shutdown(wait=True)


def _plan_shard_from_shm(
    shm_name: str, size: int, seq: int, shard: List[int]
) -> list:
    """Process-worker task: attach the round snapshot (decoded once per
    round per worker, then cached), plan one shard of run ids."""
    key = (shm_name, seq)
    # Fast path: the cache probe must not reattach the segment.
    from repro.engine.snapshot import _SNAPSHOT_CACHE

    decoded = _SNAPSHOT_CACHE.get(key)
    if decoded is None:
        # The parent owns (and unlinks) the segment; an attach must not
        # enroll it with this process's resource tracker or the tracker
        # warns about — and double-unlinks — every round's snapshot at
        # shutdown.  3.13+ has ``track=False`` for exactly this; earlier
        # interpreters need the documented unregister workaround.
        try:
            segment = shared_memory.SharedMemory(
                name=shm_name, track=False
            )
        except TypeError:
            segment = shared_memory.SharedMemory(name=shm_name)
            resource_tracker.unregister(segment._name, "shared_memory")
        try:
            payload = bytes(segment.buf[:size])
        finally:
            segment.close()
        decoded = cached_decode(key, payload)
    return plan_shard(decoded, shard)


class ProcessPlanExecutor:
    """Persistent worker processes fed shared-memory round snapshots.

    ``snapshot_map(payload, shards)`` publishes the encoded round
    context once (one :class:`~multiprocessing.shared_memory.\
SharedMemory` segment per round, unlinked after the round) and fans the
    shard run-id lists over the pool.  Worker death mid-round degrades
    to a requeue on a fresh worker — the snapshot is still published, so
    recovery needs no cooperation from the parent's planning state.
    """

    backend = "process"

    def __init__(
        self,
        workers: int,
        *,
        on_event: Optional[OnEvent] = None,
        task_timeout: Optional[float] = None,
    ) -> None:
        self._pool = PersistentWorkerPool(
            workers, on_event=on_event, task_timeout=task_timeout
        )
        self._seq = 0

    @property
    def pool(self) -> PersistentWorkerPool:
        """The underlying pool (tests reach in to kill workers)."""
        return self._pool

    def snapshot_map(
        self, payload: bytes, shards: Sequence[Sequence[int]]
    ) -> List[list]:
        self._seq += 1
        seg = shared_memory.SharedMemory(
            create=True, size=max(1, len(payload))
        )
        try:
            seg.buf[: len(payload)] = payload
            tasks = [
                (
                    _plan_shard_from_shm,
                    (seg.name, len(payload), self._seq, list(shard)),
                )
                for shard in shards
            ]
            return self._pool.run_all(tasks)
        finally:
            seg.close()
            seg.unlink()

    def close(self) -> None:
        self._pool.close()


def _plan_shard_from_payload(task: tuple) -> list:
    """Subinterpreter-worker task: the payload rides along (interpreters
    share no heap), cached per interpreter by round sequence."""
    payload, seq, shard = task
    return plan_shard(cached_decode(("inline", seq), payload), shard)


def subinterp_available() -> bool:
    """True iff this interpreter ships ``InterpreterPoolExecutor``."""
    try:
        from concurrent.futures import (  # noqa: F401
            InterpreterPoolExecutor,
        )
    except ImportError:
        return False
    return True


class SubinterpPlanExecutor:
    """Per-subinterpreter planning workers (3.14+'s
    ``InterpreterPoolExecutor``); construction raises a clean
    :class:`ExecutorUnavailable` elsewhere so callers/CLI can degrade
    with a real message instead of an ImportError mid-round."""

    backend = "subinterp"

    def __init__(
        self,
        workers: int,
        *,
        on_event: Optional[OnEvent] = None,
    ) -> None:
        try:
            from concurrent.futures import InterpreterPoolExecutor
        except ImportError as exc:
            raise ExecutorUnavailable(
                "shard_backend='subinterp' needs concurrent.futures."
                "InterpreterPoolExecutor (Python 3.14+); this "
                "interpreter has none — use 'process' or 'thread'"
            ) from exc
        self._pool = InterpreterPoolExecutor(max_workers=workers)
        self._seq = 0

    def snapshot_map(
        self, payload: bytes, shards: Sequence[Sequence[int]]
    ) -> List[list]:
        self._seq += 1
        seq = self._seq
        tasks = [(payload, seq, list(shard)) for shard in shards]
        return list(self._pool.map(_plan_shard_from_payload, tasks))

    def close(self) -> None:
        self._pool.shutdown(wait=True)


def default_plan_workers(shard_workers: int) -> int:
    """``cfg.shard_workers`` resolution: 0 = auto ``min(4, cpus)``."""
    return shard_workers or min(4, os.cpu_count() or 1)


def make_plan_executor(
    backend: str,
    workers: int,
    *,
    on_event: Optional[OnEvent] = None,
    task_timeout: Optional[float] = None,
):
    """Build the shard-planning executor for ``cfg.shard_backend``."""
    if backend == "thread":
        return ThreadPlanExecutor(workers)
    if backend == "process":
        return ProcessPlanExecutor(
            workers, on_event=on_event, task_timeout=task_timeout
        )
    if backend == "subinterp":
        return SubinterpPlanExecutor(workers, on_event=on_event)
    raise ValueError(
        f"unknown shard backend {backend!r}; expected one of "
        f"{', '.join(PLAN_BACKENDS)}"
    )
