"""Structured event log for simulations.

Controllers emit events (merges, run starts, run terminations, folds, ...)
that the engine timestamps with the round index.  The log powers the
progress-pair instrumentation (paper Section 4), the trace recorder, and the
pipelining figures.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Iterator, List, Mapping


@dataclass(frozen=True)
class Event:
    """One simulation event.

    ``kind`` is a short string tag (``"merge"``, ``"run_start"``,
    ``"run_stop"``, ``"fold"``, and under the SSYNC schedulers
    ``"activation"``, ``"fault"``, ``"connectivity_violation"`` — see
    docs/schedulers.md); ``data`` carries kind-specific fields.
    """

    round_index: int
    kind: str
    data: Mapping[str, Any] = field(default_factory=dict)


class EventLog:
    """Append-only event collection with simple filtering."""

    def __init__(self) -> None:
        self._events: List[Event] = []

    def emit(self, round_index: int, kind: str, **data: Any) -> None:
        """Record one event."""
        self._events.append(Event(round_index, kind, dict(data)))

    def extend(self, events: Iterator[Event] | List[Event]) -> None:
        self._events.extend(events)

    def __len__(self) -> int:
        return len(self._events)

    def __iter__(self) -> Iterator[Event]:
        return iter(self._events)

    def of_kind(self, kind: str) -> List[Event]:
        """All events with the given tag, in round order."""
        return [e for e in self._events if e.kind == kind]

    def counts(self) -> Dict[str, int]:
        """Event count per kind."""
        out: Dict[str, int] = {}
        for e in self._events:
            out[e.kind] = out.get(e.kind, 0) + 1
        return out

    def rounds_with(self, kind: str) -> List[int]:
        """Sorted distinct round indices at which ``kind`` occurred."""
        return sorted({e.round_index for e in self._events if e.kind == kind})
