"""Termination predicates and round budgets."""

from __future__ import annotations

from repro.constants import GATHER_SQUARE
from repro.grid.occupancy import SwarmState


def is_gathered(state: SwarmState, square: int = GATHER_SQUARE) -> bool:
    """Gathering is complete when all robots fit in a ``square`` x ``square``
    area (paper Section 3.2: a 2x2 cluster cannot be simplified in FSYNC)."""
    return state.is_gathered(square)


def default_round_budget(n_robots: int, slack: int = 200) -> int:
    """A generous linear round budget for simulations.

    Theorem 1 bounds the running time by ``2 n L + n`` with ``L = 22``, i.e.
    ``45 n``.  We default to ``slack * n + slack`` so that even configurations
    with poor constants terminate, while an accidental super-linear regression
    still trips the budget in tests rather than hanging.
    """
    return slack * max(n_robots, 1) + slack
