"""ASYNC fair-scheduler engine.

The paper remarks (Section 1) that under a fair ASYNC scheduler — one robot
active at a time, a round ends once every robot has been activated at least
once — "a simple strategy could achieve the same O(n) rounds".  This engine
models exactly that scheduler so the remark can be measured (experiment E3):
robots are activated one after another in an adversarially shuffled order per
round; each activation sees the *current* (not snapshotted) state.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Callable, List, Optional, Protocol

from repro.engine.errors import ConnectivityViolation
from repro.engine.events import EventLog
from repro.engine.metrics import MetricsLog, RoundMetrics
from repro.engine.termination import default_round_budget, is_gathered
from repro.grid.connectivity import (
    connected_components,
    is_connected,
    locally_connected_after,
)
from repro.grid.geometry import Cell, chebyshev
from repro.grid.occupancy import SwarmState


class AsyncController(Protocol):
    """Per-activation decision rule: given the live state and the activated
    robot's cell, return its target cell (or the same cell to stay)."""

    def activate(self, state: SwarmState, robot: Cell) -> Cell: ...


@dataclass
class AsyncResult:
    gathered: bool
    rounds: int
    activations: int
    robots_initial: int
    robots_final: int
    metrics: MetricsLog
    #: Round-ordered event log (per-round ``merge`` events plus the
    #: terminal ``gathered``/``budget_exhausted``) — parity with
    #: :class:`repro.engine.scheduler.GatherResult`.
    events: EventLog = field(default_factory=EventLog)
    final_state: Optional[SwarmState] = None

    @classmethod
    def from_run_result(cls, result) -> "AsyncResult":
        """Repackage a facade :class:`~repro.engine.protocols.RunResult`
        (used by the ``gather_async`` shim)."""
        return cls(
            gathered=result.gathered,
            rounds=result.rounds,
            activations=result.activations,
            robots_initial=result.robots_initial,
            robots_final=result.robots_final,
            metrics=result.metrics,
            events=result.events,
            final_state=result.final_state,
        )


class AsyncEngine:
    """Fair sequential scheduler: one robot moves at a time.

    A *round* is one pass over all currently-alive robots in a scheduler-
    chosen (seeded random) order.  Merges are applied immediately, so robots
    scheduled later in the round see the effects of earlier activations —
    the essential difference from FSYNC that makes the problem easy.
    """

    def __init__(
        self,
        state: SwarmState,
        controller: AsyncController,
        *,
        seed: int = 0,
        check_connectivity: bool = True,
        incremental_connectivity: bool = True,
        on_round: Optional[Callable[[int, SwarmState], None]] = None,
    ) -> None:
        if len(state) == 0:
            raise ValueError("cannot simulate an empty swarm")
        if not is_connected(state.cells):
            # Same contract as FsyncEngine — and the precondition of the
            # per-activation connectivity certificate below, which is
            # only sound relative to a previously-connected swarm.
            raise ValueError("initial swarm must be connected (paper model)")
        self.state = state
        self.controller = controller
        self.rng = random.Random(seed)
        self.check_connectivity = check_connectivity
        #: Allow the per-activation ``locally_connected_after`` certificate
        #: (a single-robot move is its easiest case: one vacated cell, one
        #: added cell).  Off forces the full O(n) BFS after every
        #: activation, the seed behavior; observable results are
        #: identical either way — the certificate is sound, and on
        #: inconclusive windows the engine falls back to the full BFS.
        self.incremental_connectivity = incremental_connectivity
        self.on_round = on_round
        self.metrics = MetricsLog()
        self.events = EventLog()
        self.round_index = 0
        self.activations = 0
        self._terminal_version: Optional[int] = None

    def step_round(self) -> int:
        """One fair round (every robot activated once); returns merges."""
        state = self.state
        # Canonical order before the seeded shuffle: ``state.cells`` is a
        # set, so ``list()`` would bake the hash-table order into the
        # permutation and the trajectory would depend on the interpreter
        # rather than on ``seed`` alone.
        order: List[Cell] = sorted(state.cells)
        self.rng.shuffle(order)
        merged = 0
        for robot in order:
            if robot not in state:  # merged away earlier this round
                continue
            target = self.controller.activate(state, robot)
            if target == robot:
                continue
            if chebyshev(robot, target) > 1:
                raise ValueError(f"illegal async move {robot} -> {target}")
            if state.move_robot(robot, target):
                merged += 1
            self.activations += 1
            if self.check_connectivity:
                # ``move_robot`` records the activation's dirty cells, so
                # the localized certificate applies directly; only an
                # inconclusive local window pays the full O(n) BFS.
                if not (
                    self.incremental_connectivity
                    and locally_connected_after(
                        state.cells, state.last_changed
                    )
                ):
                    comps = connected_components(state.cells)
                    if len(comps) > 1:
                        raise ConnectivityViolation(
                            self.round_index, len(comps)
                        )
        if merged:
            self.events.emit(self.round_index, "merge", removed=merged)
        self.metrics.record(
            RoundMetrics(
                round_index=self.round_index,
                robots=len(state),
                merged=merged,
                diameter=state.diameter_chebyshev(),
            )
        )
        if self.on_round is not None:
            self.on_round(self.round_index, state)
        self.round_index += 1
        return merged

    def run(self, max_rounds: Optional[int] = None) -> AsyncResult:
        n0 = len(self.state)
        budget = (
            max_rounds if max_rounds is not None else default_round_budget(n0)
        )
        gathered = is_gathered(self.state)
        while not gathered and self.round_index < budget:
            self.step_round()
            gathered = is_gathered(self.state)
        # Terminal event, deduplicated across resumed runs exactly like
        # the FSYNC engine's (see FsyncEngine.run).
        if self.state.version != self._terminal_version:
            self.events.emit(
                self.round_index,
                "gathered" if gathered else "budget_exhausted",
                rounds=self.round_index,
                robots=len(self.state),
            )
            self._terminal_version = self.state.version
        return AsyncResult(
            gathered=gathered,
            rounds=self.round_index,
            activations=self.activations,
            robots_initial=n0,
            robots_final=len(self.state),
            metrics=self.metrics,
            events=self.events,
            final_state=self.state,
        )
