"""Per-round metric time-series.

The experiments need a handful of series per simulation: robot count,
merges per round, bounding-box diameter, and (optionally, since it costs a
boundary trace) outer-boundary length and enclosed area.  ``MetricsLog``
collects them and exports numpy arrays for the analysis layer.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

import numpy as np


@dataclass(frozen=True)
class RoundMetrics:
    """Snapshot of swarm statistics after one round."""

    round_index: int
    robots: int
    merged: int
    #: Chebyshev diameter for grid workloads (int); the continuous
    #: Euclidean baseline records its float diameter here.
    diameter: float
    boundary_length: Optional[int] = None
    enclosed_area: Optional[float] = None
    active_runs: Optional[int] = None


class MetricsLog:
    """Column-oriented collection of :class:`RoundMetrics`."""

    def __init__(self) -> None:
        self._rows: List[RoundMetrics] = []

    def record(self, row: RoundMetrics) -> None:
        self._rows.append(row)

    def __len__(self) -> int:
        return len(self._rows)

    def __getitem__(self, i: int) -> RoundMetrics:
        return self._rows[i]

    @property
    def rows(self) -> List[RoundMetrics]:
        return self._rows

    def series(self, name: str) -> np.ndarray:
        """One column as a numpy array (``np.nan`` for missing optionals)."""
        vals = [getattr(r, name) for r in self._rows]
        if any(v is None for v in vals):
            return np.array(
                [np.nan if v is None else v for v in vals], dtype=np.float64
            )
        return np.asarray(vals)

    def total_merged(self) -> int:
        """Total robots removed by merging over the whole simulation."""
        return int(sum(r.merged for r in self._rows))

    def rounds_without_merge(self) -> int:
        """Number of rounds in which no merge happened (reshapement-only
        rounds; bounded by the pipelining argument of Theorem 1)."""
        return sum(1 for r in self._rows if r.merged == 0)

    def summary(self) -> Dict[str, float]:
        """Headline statistics for tables."""
        if not self._rows:
            return {"rounds": 0, "merged": 0, "merge_rounds": 0}
        return {
            "rounds": float(self._rows[-1].round_index + 1),
            "merged": float(self.total_merged()),
            "merge_rounds": float(len(self._rows) - self.rounds_without_merge()),
        }
