"""The FSYNC look-compute-move engine.

Every round (paper Section 1):

1. **look** — the controller reads the current :class:`SwarmState` (each
   simulated robot only uses its local view; centrally evaluating local rules
   is still a faithful simulation of a local algorithm);
2. **compute** — the controller returns the simultaneous moves of all robots
   that act this round;
3. **move** — the engine applies all moves at once; robots sharing a cell
   merge into one.

The engine also enforces the paper's global safety invariant (connectivity)
when ``check_connectivity`` is on, records metrics/events, and stops when the
swarm is gathered into a 2x2 square or the round budget runs out.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Mapping, Optional, Protocol

from repro.engine.errors import ConnectivityViolation, NotGathered
from repro.engine.events import EventLog
from repro.engine.metrics import MetricsLog, RoundMetrics
from repro.engine.termination import default_round_budget, is_gathered
from repro.grid.boundary import outer_boundary
from repro.grid.connectivity import (
    connected_components,
    is_connected,
    locally_connected_after,
)
from repro.grid.envelope import enclosed_area
from repro.grid.geometry import Cell
from repro.grid.occupancy import SwarmState


def close_controller(controller) -> None:
    """Release controller-held resources (e.g. the sharded-planning
    thread pool of :class:`repro.core.algorithm.GatherOnGrid`).
    Duck-typed because baseline controllers have no ``close``;
    idempotent — controllers recreate their pools on demand.  The one
    implementation behind :meth:`FsyncEngine.close` and the facade's
    scheduler drive paths."""
    closer = getattr(controller, "close", None)
    if callable(closer):
        closer()


class Controller(Protocol):
    """A synchronous distributed algorithm under simulation.

    ``plan_round`` returns the moves of the acting robots (source -> target,
    one 8-neighbor hop each).  ``notify_applied`` is called after the engine
    applied the moves so stateful controllers (run states!) can update their
    bookkeeping.  ``active_runs`` is optional instrumentation.
    """

    def plan_round(
        self, state: SwarmState, round_index: int
    ) -> Mapping[Cell, Cell]: ...

    def notify_applied(
        self,
        state: SwarmState,
        round_index: int,
        moves: Mapping[Cell, Cell],
        merged: int,
    ) -> None: ...


@dataclass
class GatherResult:
    """Outcome of one simulation run."""

    gathered: bool
    rounds: int
    robots_initial: int
    robots_final: int
    metrics: MetricsLog
    events: EventLog
    final_state: SwarmState

    @property
    def merges_total(self) -> int:
        return self.robots_initial - self.robots_final

    def rounds_per_robot(self) -> float:
        """Normalized runtime ``rounds / n`` — constant iff runtime is
        linear, the quantity experiment E1 tracks."""
        return self.rounds / max(self.robots_initial, 1)

    @classmethod
    def from_run_result(cls, result) -> "GatherResult":
        """Repackage a facade :class:`~repro.engine.protocols.RunResult`
        (same metrics/events/state objects — used by the legacy entry-
        point shims)."""
        return cls(
            gathered=result.gathered,
            rounds=result.rounds,
            robots_initial=result.robots_initial,
            robots_final=result.robots_final,
            metrics=result.metrics,
            events=result.events,
            final_state=result.final_state,
        )


class FsyncEngine:
    """Drives a :class:`Controller` over a :class:`SwarmState`.

    Parameters
    ----------
    state:
        Initial swarm (consumed; pass ``state.copy()`` to keep the origin).
    controller:
        The algorithm to simulate.
    check_connectivity:
        Verify 4-connectivity after every round and raise
        :class:`ConnectivityViolation` on breakage.  On by default because
        it is the paper's safety property.  The check is localized to the
        round's dirty region (``state.last_changed``) and falls back to
        the full O(n) BFS only when the local window cannot prove
        connectivity — e.g. when a vacated cell is a potential cut vertex
        whose sides reconnect, if at all, far away.
    incremental_connectivity:
        Allow the localized check above.  Off forces the seed's full BFS
        every round (used by the equivalence tests; the observable
        behavior is identical either way).
    track_boundary:
        Also record outer-boundary length and enclosed area per round
        (costs one boundary trace per round; used by figures/ablations).
    on_round:
        Optional callback ``(round_index, state)`` after each round —
        used by the visualizers to capture frames.
    """

    def __init__(
        self,
        state: SwarmState,
        controller: Controller,
        *,
        check_connectivity: bool = True,
        incremental_connectivity: bool = True,
        track_boundary: bool = False,
        gather_square: int = 2,
        on_round: Optional[Callable[[int, SwarmState], None]] = None,
    ) -> None:
        if len(state) == 0:
            raise ValueError("cannot simulate an empty swarm")
        if not is_connected(state.cells):
            raise ValueError("initial swarm must be connected (paper model)")
        self.state = state
        self.controller = controller
        self.check_connectivity = check_connectivity
        self.incremental_connectivity = incremental_connectivity
        self.track_boundary = track_boundary
        self.gather_square = gather_square
        self.on_round = on_round
        self.metrics = MetricsLog()
        # One shared, round-ordered log: if the controller keeps an
        # EventLog the engine adopts it, so controller events and the
        # engine's terminal events land in the same place (this is what
        # ``GatherResult.events`` exposes).  The adoption implies a 1:1
        # controller/engine pairing — sharing one controller across
        # engines shares one log (and run/cache state); gather() builds
        # a fresh controller per call for exactly this reason.
        ctrl_events = getattr(controller, "events", None)
        self.events = (
            ctrl_events if isinstance(ctrl_events, EventLog) else EventLog()
        )
        self.round_index = 0
        self._terminal_version: Optional[int] = None

    # ------------------------------------------------------------------
    def close(self) -> None:
        """Release controller-held resources (see
        :func:`close_controller`); the engine remains usable."""
        close_controller(self.controller)

    def __enter__(self) -> "FsyncEngine":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        """Context-manager exit: controller pools are released even when
        a ``step()`` loop raises mid-round — the planning executors hold
        real worker processes, so leaking them on the exception path is
        a resource bug (the lifecycle regression tests pin this)."""
        self.close()
        return False

    # ------------------------------------------------------------------
    def step(self) -> int:
        """Execute one FSYNC round; returns the number of merged robots."""
        state = self.state
        moves = self.controller.plan_round(state, self.round_index)
        merged = state.apply_moves(moves)
        self.controller.notify_applied(state, self.round_index, moves, merged)

        if self.check_connectivity:
            # The engine applied exactly one apply_moves since the last
            # check, so state.last_changed is the round's dirty region and
            # the localized proof applies; anything it cannot prove gets
            # the full BFS (bit-identical outcome, just slower).
            if not (
                self.incremental_connectivity
                and locally_connected_after(state.cells, state.last_changed)
            ):
                comps = connected_components(state.cells)
                if len(comps) > 1:
                    raise ConnectivityViolation(self.round_index, len(comps))

        boundary_len: Optional[int] = None
        area: Optional[float] = None
        if self.track_boundary:
            ob = outer_boundary(state)
            boundary_len = len(ob.sides)
            area = enclosed_area(ob)

        self.metrics.record(
            RoundMetrics(
                round_index=self.round_index,
                robots=len(state),
                merged=merged,
                diameter=state.diameter_chebyshev(),
                boundary_length=boundary_len,
                enclosed_area=area,
                active_runs=getattr(self.controller, "active_run_count", None),
            )
        )
        if self.on_round is not None:
            self.on_round(self.round_index, state)
        self.round_index += 1
        return merged

    def run(
        self,
        max_rounds: Optional[int] = None,
        *,
        raise_on_budget: bool = False,
    ) -> GatherResult:
        """Run until gathered or until ``max_rounds`` (default: the generous
        linear budget of :func:`default_round_budget`)."""
        n0 = len(self.state)
        budget = (
            max_rounds
            if max_rounds is not None
            else default_round_budget(n0)
        )
        gathered = is_gathered(self.state, self.gather_square)
        try:
            while not gathered and self.round_index < budget:
                self.step()
                gathered = is_gathered(self.state, self.gather_square)
        except BaseException:
            # A failing round must not leak the controller's planning
            # pool (worker processes); close and re-raise — close() is
            # idempotent and pools are recreated on demand, so a caller
            # that catches and resumes loses nothing.
            self.close()
            raise
        if not gathered and raise_on_budget:
            raise NotGathered(self.round_index, len(self.state))
        # Terminal event (round_index == total rounds executed): the log
        # records how the simulation ended, not only what happened in it.
        # A resumed run that made progress logs a new terminal; calling
        # run() again without any step does not duplicate the last one.
        if self.state.version != self._terminal_version:
            self.events.emit(
                self.round_index,
                "gathered" if gathered else "budget_exhausted",
                rounds=self.round_index,
                robots=len(self.state),
            )
            self._terminal_version = self.state.version
        return GatherResult(
            gathered=gathered,
            rounds=self.round_index,
            robots_initial=n0,
            robots_final=len(self.state),
            metrics=self.metrics,
            events=self.events,
            final_state=self.state,
        )
