"""SSYNC (semi-synchronous) scheduling with pluggable activation policies.

The paper proves its O(n) gathering bound in the fully synchronous FSYNC
model, where *every* robot executes its look-compute-move cycle in every
round.  The classical scheduler hierarchy of the robots literature
weakens that: in **SSYNC** an adversary activates an arbitrary *subset*
of the robots each round — the activated robots look simultaneously,
compute, and move simultaneously; the others do nothing.  Fairness is
what keeps the adversary honest: under a **k-fairness bound** every
robot is activated at least once in any window of ``k`` consecutive
rounds.

This module is the engine layer of that model (the registry entries
``ssync`` / ``ssync-faulty`` live in :mod:`repro.api`):

* activation policies (:data:`ACTIVATION_POLICIES`) — ``uniform``
  (independent coin with probability ``p`` per robot-round),
  ``round_robin`` (the roster split into ``k`` classes, one class per
  round), ``adversarial`` ("starve the runners": refuse to activate
  the robots currently carrying the algorithm's progress for as long as
  the fairness bound allows) and ``scripted`` (an explicit per-round
  token script — how the nondeterminism explorer's witness schedules
  replay, :mod:`repro.explore`);
* :class:`ActivationSchedule` — policy + k-fairness enforcement + fault
  injection (:class:`repro.engine.faults.FaultInjector`), tracking
  per-robot activation streaks and crash state across token renames
  (merges).  Emits the ``activation`` / ``fault`` events;
* :class:`SsyncEngine` — drives grid-state workloads (``plan_round``
  controllers like the paper's algorithm, or per-robot ``activate``
  controllers like the async greedy baseline) under the schedule, with
  true per-robot identity tracked through moves and merges;
* :func:`drive_stepped_ssync` — the same loop for self-clocked programs
  (Euclidean go-to-center, the chain gatherers) that expose the
  ``ssync_roster`` / ``ssync_step`` surface.

With activation probability 1.0 and no faults every robot is activated
every round, and the engine's step is operation-for-operation the FSYNC
step — trajectories are bit-identical to the ``fsync`` scheduler (the
equivalence suite pins this).

See ``docs/schedulers.md`` for the model semantics and how results
under SSYNC relate to the paper's FSYNC claims.
"""

from __future__ import annotations

import random
from typing import (
    Any,
    Callable,
    Dict,
    FrozenSet,
    Iterable,
    List,
    Mapping,
    Optional,
    Sequence,
    Set,
)

from repro.engine.events import EventLog
from repro.engine.faults import BYZANTINE_BEHAVIORS, FaultInjector
from repro.engine.metrics import MetricsLog, RoundMetrics
from repro.engine.scheduler import GatherResult
from repro.engine.termination import default_round_budget, is_gathered
from repro.grid.boundary import outer_boundary
from repro.grid.connectivity import (
    connected_components,
    is_connected,
    locally_connected_after,
)
from repro.grid.envelope import enclosed_area
from repro.grid.geometry import Cell, chebyshev
from repro.grid.occupancy import SwarmState


# ----------------------------------------------------------------------
# Activation policies
# ----------------------------------------------------------------------
class UniformActivation:
    """Independent coin per robot-round: active with probability ``p``.

    ``p = 1.0`` short-circuits to "everyone" without consuming RNG
    values, so a fully-activated run is bit-identical regardless of
    seed — the FSYNC-equivalence anchor.
    """

    key = "uniform"

    def __init__(self, p: float = 0.5, seed: int = 0) -> None:
        if not 0.0 <= p <= 1.0:
            raise ValueError(
                f"activation probability must be in [0, 1], got {p!r}"
            )
        self.p = float(p)
        self.rng = random.Random(seed)

    def select(
        self,
        round_index: int,
        alive: Sequence[Any],
        hints: FrozenSet[Any],
    ) -> Set[Any]:
        if self.p >= 1.0:
            return set(alive)
        p = self.p
        return {token for token in alive if self.rng.random() < p}


class RoundRobinActivation:
    """The roster split into ``k`` classes by canonical index; round
    ``r`` activates class ``r mod k``.  Deterministic and k-fair by
    construction (a robot's class index can drift as merges compact the
    roster, but each round activates ~1/k of the swarm regardless)."""

    key = "round_robin"

    def __init__(self, k: int = 3, seed: int = 0) -> None:
        if k < 1:
            raise ValueError(f"round_robin class count must be >= 1, got {k}")
        self.k = int(k)

    def select(
        self,
        round_index: int,
        alive: Sequence[Any],
        hints: FrozenSet[Any],
    ) -> Set[Any]:
        r = round_index % self.k
        return {t for i, t in enumerate(alive) if i % self.k == r}


class AdversarialActivation:
    """"Starve the runners": activate everyone *except* the robots the
    driver hints are carrying progress (the grid strategy's runner
    robots; for programs without that concept, the robots that moved
    last round, and failing that a fixed half of the roster).  The
    k-fairness enforcement in :class:`ActivationSchedule` is what
    eventually forces the starved robots awake — this policy probes
    exactly how much the algorithm's progress argument leans on them."""

    key = "adversarial"

    def __init__(self, seed: int = 0) -> None:
        pass

    def select(
        self,
        round_index: int,
        alive: Sequence[Any],
        hints: FrozenSet[Any],
    ) -> Set[Any]:
        starved = set(hints) & set(alive)
        if not starved:
            starved = set(alive[: (len(alive) + 1) // 2])
        active = set(alive) - starved
        return active if active else set(alive)


class ScriptedActivation:
    """An explicit per-round activation script over robot tokens.

    ``schedule[r]`` is the token set to activate in round ``r``; rounds
    past the script's end activate everyone (an FSYNC tail, so a replay
    that outlives its script degrades to the safe model instead of
    stalling).  Tokens of robots that merged away are ignored — the
    schedule keeps intersecting the live roster exactly like every
    other policy's selection.

    This is how the nondeterminism explorer's witness schedules
    (:mod:`repro.explore`) replay through the stock engine: the
    explorer emits the per-round token sets it branched on, and this
    policy feeds them back verbatim.  Deterministic; the seed is
    accepted for registry uniformity and unused.
    """

    key = "scripted"

    def __init__(self, schedule: Sequence = (), seed: int = 0) -> None:
        self.rounds: List[FrozenSet[int]] = [
            frozenset(int(t) for t in entry) for entry in schedule
        ]

    def select(
        self,
        round_index: int,
        alive: Sequence[Any],
        hints: FrozenSet[Any],
    ) -> Set[Any]:
        if round_index < len(self.rounds):
            return set(self.rounds[round_index])
        return set(alive)


ACTIVATION_POLICIES: Dict[str, type] = {
    UniformActivation.key: UniformActivation,
    RoundRobinActivation.key: RoundRobinActivation,
    AdversarialActivation.key: AdversarialActivation,
    ScriptedActivation.key: ScriptedActivation,
}


def make_policy(
    name: str,
    *,
    p: float = 0.5,
    k: int = 3,
    seed: int = 0,
    schedule: Optional[Sequence] = None,
):
    """Build an activation policy from its registry key.

    ``p`` parameterizes ``uniform``, ``k`` parameterizes ``round_robin``,
    ``schedule`` parameterizes ``scripted`` (and is required for it);
    the seed feeds stochastic policies only.
    """
    if name == UniformActivation.key:
        return UniformActivation(p, seed)
    if name == RoundRobinActivation.key:
        return RoundRobinActivation(k, seed)
    if name == AdversarialActivation.key:
        return AdversarialActivation(seed)
    if name == ScriptedActivation.key:
        if schedule is None:
            raise ValueError(
                "the 'scripted' policy needs an explicit schedule "
                "(per-round token lists)"
            )
        return ScriptedActivation(schedule, seed)
    raise KeyError(
        f"unknown activation policy {name!r}; "
        f"available: {sorted(ACTIVATION_POLICIES)}"
    )


# ----------------------------------------------------------------------
# The schedule: policy + k-fairness + faults over robot tokens
# ----------------------------------------------------------------------
class ActivationSchedule:
    """Per-round activation decisions over stable robot tokens.

    Drivers identify robots by *tokens* (integer ids for the grid
    engine, array indices for the Euclidean program, node ids for the
    chains); the schedule tracks, per token, the number of consecutive
    rounds since the last activation (the *streak*) and the crash state,
    migrating both through the token renames that merges cause.

    Per round the driver calls :meth:`select` (decide who acts, emit
    ``activation``/``fault`` events) and, after applying the round,
    :meth:`commit` (advance streaks, migrate tokens).

    k-fairness: any robot whose streak reaches ``k_fairness - 1`` is
    force-activated, so no fault-free robot ever sleeps ``k_fairness``
    consecutive rounds.  Faults trump fairness — a robot hit by a sleep
    fault misses its round even if it was forced (the bound holds for
    the fault-free schedule; see docs/schedulers.md).
    """

    def __init__(
        self,
        policy: Any,
        k_fairness: int,
        faults: Optional[FaultInjector] = None,
    ) -> None:
        if k_fairness < 1:
            raise ValueError(
                f"k_fairness must be >= 1, got {k_fairness}"
            )
        self.policy = policy
        self.k_fairness = int(k_fairness)
        self.faults = faults
        #: EventLog the driver wires in before the first round.
        self.events: EventLog = EventLog()
        #: Optional token -> extra-event-fields hook (the grid engine
        #: uses it to stamp crash events with the robot's cell).
        self.token_info: Optional[Callable[[Any], Dict[str, Any]]] = None
        self._streak: Dict[Any, int] = {}
        self._crashed: Set[Any] = set()

    @property
    def crashed(self) -> FrozenSet[Any]:
        """Tokens of crash-stopped robots (read-only view)."""
        return frozenset(self._crashed)

    def streak_of(self, token: Any) -> int:
        """Rounds since ``token`` was last activated (0 if just active)."""
        return self._streak.get(token, 0)

    def select(
        self,
        round_index: int,
        roster: Sequence[Any],
        hints: FrozenSet[Any] = frozenset(),
    ) -> Set[Any]:
        """Pick this round's activation set from the full ``roster``."""
        streak = self._streak
        alive = [t for t in roster if t not in self._crashed]
        for t in alive:
            streak.setdefault(t, 0)
        chosen = self.policy.select(round_index, alive, hints)
        forced = {
            t
            for t in alive
            if streak[t] >= self.k_fairness - 1 and t not in chosen
        }
        active = (chosen & set(alive)) | forced
        if self.faults is not None:
            sleeping, crashed_now = self.faults.draw(round_index, alive)
            for t in sorted(crashed_now):
                self._crashed.add(t)
                info = self.token_info(t) if self.token_info else {}
                self.events.emit(
                    round_index, "fault", fault="crash", robot=t, **info
                )
            slept = sorted((sleeping - crashed_now) & active)
            if slept:
                self.events.emit(
                    round_index, "fault", fault="sleep", robots=slept
                )
            active -= sleeping | crashed_now
        self.events.emit(
            round_index,
            "activation",
            active=len(active),
            asleep=len(alive) - len(active),
            forced=sorted(forced & active),
        )
        return active

    def commit(
        self,
        active: Set[Any],
        *,
        remap: Optional[Mapping[Any, Any]] = None,
        survivors: Optional[Iterable[Any]] = None,
    ) -> None:
        """Advance streaks after a round was applied.

        ``remap`` renames tokens (merge victims map to their surviving
        token; colliding streaks keep the minimum, and a crashed
        constituent makes the survivor crashed — a composite containing
        a crash-stopped robot cannot move).  ``survivors`` prunes
        bookkeeping to the tokens still alive.
        """
        new_streak: Dict[Any, int] = {}
        for t, s in self._streak.items():
            nt = remap.get(t, t) if remap else t
            ns = 0 if t in active else s + 1
            if nt in new_streak:
                new_streak[nt] = min(new_streak[nt], ns)
            else:
                new_streak[nt] = ns
        new_crashed = {
            (remap.get(t, t) if remap else t) for t in self._crashed
        }
        if survivors is not None:
            alive = set(survivors)
            new_streak = {t: s for t, s in new_streak.items() if t in alive}
            new_crashed &= alive
        self._streak = new_streak
        self._crashed = new_crashed


# ----------------------------------------------------------------------
# The SSYNC engine for grid-state workloads
# ----------------------------------------------------------------------
class SsyncEngine:
    """Drives a grid controller over a :class:`SwarmState` under an
    :class:`ActivationSchedule`.

    Accepts both controller shapes the repo has: ``plan_round``
    controllers (the paper's :class:`~repro.core.algorithm.GatherOnGrid`,
    the global-vision baseline) — the round's plan is computed as usual
    and the moves of non-activated robots are dropped — and per-robot
    ``activate`` controllers (the async greedy baseline) — every
    activated robot computes its target against the round's *snapshot*,
    then all moves apply simultaneously (the SSYNC reading of a rule
    designed for sequential activation).

    Robot identity: integer tokens assigned over the sorted initial
    cells and followed through every move; merge groups keep the
    smallest token.  This is what crash-stop faults and the k-fairness
    streaks attach to.

    The connectivity check and metrics mirror
    :class:`repro.engine.scheduler.FsyncEngine` exactly, so a schedule
    that activates everyone reproduces FSYNC bit-for-bit.  One deliberate
    difference: under partial activation the paper's algorithm may
    genuinely break connectivity — its safety argument assumes FSYNC
    simultaneity — and under an *adversarial* scheduler that is an
    expected experimental outcome, not a simulation bug.  The engine
    therefore does not raise: it emits a ``connectivity_violation``
    event, stops the run, and terminates the result with a
    ``connectivity_lost`` event (``gathered=False``).  Pass
    ``check_connectivity=False`` to measure degradation past the
    breakage point instead.
    """

    def __init__(
        self,
        state: SwarmState,
        controller: Any,
        schedule: ActivationSchedule,
        *,
        check_connectivity: bool = True,
        incremental_connectivity: bool = True,
        track_boundary: bool = False,
        gather_square: int = 2,
        on_round: Optional[Callable[[int, SwarmState], None]] = None,
    ) -> None:
        if len(state) == 0:
            raise ValueError("cannot simulate an empty swarm")
        if not is_connected(state.cells):
            raise ValueError("initial swarm must be connected (paper model)")
        self.state = state
        self.controller = controller
        self.schedule = schedule
        self.check_connectivity = check_connectivity
        self.incremental_connectivity = incremental_connectivity
        self.track_boundary = track_boundary
        self.gather_square = gather_square
        self.on_round = on_round
        self.metrics = MetricsLog()
        # Same shared-log adoption as FsyncEngine: controller events and
        # the schedule's activation/fault events land in one place.
        ctrl_events = getattr(controller, "events", None)
        self.events = (
            ctrl_events if isinstance(ctrl_events, EventLog) else EventLog()
        )
        schedule.events = self.events
        schedule.token_info = self._token_info
        cells = sorted(state.cells)
        self._cell_of: Dict[int, Cell] = dict(enumerate(cells))
        self._id_at: Dict[Cell, int] = {c: i for i, c in enumerate(cells)}
        self._moved_last: Set[Cell] = set()
        #: Position each surviving token held one round ago — what a
        #: byzantine "stale" robot reports to every observer.
        self._prev_cell_of: Dict[int, Cell] = dict(self._cell_of)
        self.round_index = 0
        self.activations = 0
        #: Total byzantine misbehaviors drawn (one per alive byzantine
        #: robot per round); surfaces as ``RunResult.byzantine_actions``.
        self.byzantine_actions = 0
        #: Set when the connectivity check trips; ends the run with a
        #: ``connectivity_lost`` terminal event instead of raising.
        self.connectivity_lost = False
        self._terminal_version: Optional[int] = None

    # ------------------------------------------------------------------
    def _token_info(self, token: int) -> Dict[str, Any]:
        cell = self._cell_of.get(token)
        return {"cell": cell} if cell is not None else {}

    def _hints(self) -> FrozenSet[int]:
        """Progress-carrier tokens for the adversarial policy: the grid
        algorithm's runner robots when the controller exposes a run
        manager, else whoever moved last round."""
        run_manager = getattr(self.controller, "run_manager", None)
        if run_manager is not None:
            cells = {run.robot for run in run_manager.runs.values()}
        else:
            cells = self._moved_last
        id_at = self._id_at
        return frozenset(id_at[c] for c in cells if c in id_at)

    def _byzantine_behaviors(self, r: int, roster) -> Dict[int, str]:
        """This round's misbehavior per alive byzantine token (crash
        trumps byzantine: a crashed robot stops acting, period)."""
        faults = self.schedule.faults
        if faults is None or faults.byzantine_rate <= 0.0:
            return {}
        crashed = self.schedule.crashed
        return {
            token: faults.byzantine_behavior(r, token)
            for token in roster
            if token not in crashed and faults.is_byzantine(token)
        }

    def _perceived_state(
        self, byz_behaviors: Dict[int, str]
    ) -> SwarmState:
        """The state honest robots observe: each ``stale`` byzantine
        robot is substituted back to its previous-round cell, in token
        order, skipping any lie that is vacuous (it has not moved),
        collides with a real robot, or would make the *perceived* swarm
        disconnected — a visibly teleporting or detached robot would be
        an illegal observation, not an adversarial one."""
        occupied_view = set(self.state.cells)
        substitutions: Dict[Cell, Cell] = {}
        for token in sorted(byz_behaviors):
            if byz_behaviors[token] != "stale":
                continue
            cur = self._cell_of[token]
            prev = self._prev_cell_of.get(token, cur)
            if prev == cur or prev in occupied_view:
                continue
            trial = (occupied_view - {cur}) | {prev}
            if not is_connected(trial):
                continue
            occupied_view = trial
            substitutions[cur] = prev
        if not substitutions:
            return self.state
        perceived = self.state.copy()
        perceived.apply_moves(substitutions)
        return perceived

    # ------------------------------------------------------------------
    def step(self) -> int:
        """Execute one SSYNC round; returns the number of merged robots."""
        state = self.state
        r = self.round_index
        roster = sorted(self._cell_of)
        active = self.schedule.select(r, roster, hints=self._hints())
        self.activations += len(active)

        byz_behaviors = self._byzantine_behaviors(r, roster)
        perceived = (
            self._perceived_state(byz_behaviors) if byz_behaviors else state
        )
        byz_cells = {self._cell_of[t] for t in byz_behaviors}

        controller = self.controller
        if hasattr(controller, "plan_round"):
            planned = controller.plan_round(perceived, r)
            active_cells = {self._cell_of[i] for i in active}
            moves: Dict[Cell, Cell] = {
                src: dst
                for src, dst in planned.items()
                if src in active_cells and src not in byz_cells
            }
        else:
            moves = {}
            for i in sorted(active):
                if i in byz_behaviors:
                    continue
                robot = self._cell_of[i]
                target = controller.activate(perceived, robot)
                if target == robot:
                    continue
                if chebyshev(robot, target) > 1:
                    raise ValueError(
                        f"illegal ssync move {robot} -> {target}"
                    )
                moves[robot] = target
        if byz_behaviors:
            # A byzantine robot never follows the plan: ``stale`` and
            # ``dead`` robots stand still (their planned moves were
            # withheld above); an activated ``offplan`` robot hops to a
            # seeded king-move neighbor of its own choosing.
            faults = self.schedule.faults
            for token in sorted(byz_behaviors):
                if byz_behaviors[token] != "offplan" or token not in active:
                    continue
                cur = self._cell_of[token]
                dx, dy = faults.byzantine_offset(r, token)
                moves[cur] = (cur[0] + dx, cur[1] + dy)
            self.byzantine_actions += len(byz_behaviors)
            for behavior in BYZANTINE_BEHAVIORS:
                robots = sorted(
                    t for t, b in byz_behaviors.items() if b == behavior
                )
                if robots:
                    self.events.emit(
                        r, "byzantine", behavior=behavior, robots=robots
                    )
        merged = state.apply_moves(moves)
        if hasattr(controller, "notify_applied"):
            controller.notify_applied(state, r, moves, merged)

        if self.check_connectivity:
            # Same localized-proof-with-BFS-fallback as FsyncEngine.step
            # (exactly one apply_moves since the last check) — but a
            # violation ends the run as a measured outcome rather than
            # raising; under an adversarial scheduler, breaking the
            # algorithm's FSYNC safety argument is the experiment.
            if not (
                self.incremental_connectivity
                and locally_connected_after(state.cells, state.last_changed)
            ):
                comps = connected_components(state.cells)
                if len(comps) > 1:
                    self.connectivity_lost = True
                    self.events.emit(
                        r, "connectivity_violation", components=len(comps)
                    )

        # Token migration: follow each robot through its applied move;
        # robots landing on one cell merge, keeping the smallest token.
        groups: Dict[Cell, List[int]] = {}
        for token, cell in self._cell_of.items():
            groups.setdefault(moves.get(cell, cell), []).append(token)
        remap: Dict[int, int] = {}
        new_cell_of: Dict[int, Cell] = {}
        for cell, tokens in groups.items():
            tokens.sort()
            survivor = tokens[0]
            new_cell_of[survivor] = cell
            for other in tokens[1:]:
                remap[other] = survivor
        self._prev_cell_of = {t: self._cell_of[t] for t in new_cell_of}
        self._cell_of = new_cell_of
        self._id_at = {c: t for t, c in new_cell_of.items()}
        self.schedule.commit(
            active, remap=remap, survivors=new_cell_of.keys()
        )
        self._moved_last = set(moves.values())

        boundary_len: Optional[int] = None
        area: Optional[float] = None
        if self.track_boundary:
            ob = outer_boundary(state)
            boundary_len = len(ob.sides)
            area = enclosed_area(ob)
        self.metrics.record(
            RoundMetrics(
                round_index=r,
                robots=len(state),
                merged=merged,
                diameter=state.diameter_chebyshev(),
                boundary_length=boundary_len,
                enclosed_area=area,
                active_runs=getattr(controller, "active_run_count", None),
            )
        )
        if self.on_round is not None:
            self.on_round(r, state)
        self.round_index += 1
        return merged

    def run(self, max_rounds: Optional[int] = None) -> GatherResult:
        """Run until gathered or the round budget is exhausted (same
        budget and terminal-event conventions as the FSYNC engine)."""
        n0 = len(self.state)
        budget = (
            max_rounds
            if max_rounds is not None
            else default_round_budget(n0)
        )
        gathered = is_gathered(self.state, self.gather_square)
        while (
            not gathered
            and not self.connectivity_lost
            and self.round_index < budget
        ):
            self.step()
            gathered = is_gathered(self.state, self.gather_square)
        if gathered:
            terminal = "gathered"
        elif self.connectivity_lost:
            terminal = "connectivity_lost"
        else:
            terminal = "budget_exhausted"
        if self.state.version != self._terminal_version:
            self.events.emit(
                self.round_index,
                terminal,
                rounds=self.round_index,
                robots=len(self.state),
            )
            self._terminal_version = self.state.version
        return GatherResult(
            gathered=gathered,
            rounds=self.round_index,
            robots_initial=n0,
            robots_final=len(self.state),
            metrics=self.metrics,
            events=self.events,
            final_state=self.state,
        )


# ----------------------------------------------------------------------
# SSYNC over self-clocked programs (Euclidean, chains)
# ----------------------------------------------------------------------
def drive_stepped_ssync(
    program: Any,
    schedule: ActivationSchedule,
    ctx: Any,
    scheduler_key: str,
):
    """Drive an :class:`~repro.engine.protocols.SsyncSteppable` program
    (Euclidean go-to-center, the chain gatherers) under the schedule.

    Mirrors the FSYNC adapter's stepped loop, but each round asks the
    program for its roster of stable robot tokens, selects the activated
    subset, and hands it to ``ssync_step``.  Returns a facade
    ``RunResult`` (imported lazily to keep the engine layer free of the
    registry module at import time).
    """
    from repro.engine.protocols import RunResult

    metrics = MetricsLog()
    events = EventLog()
    schedule.events = events
    budget = (
        ctx.max_rounds
        if ctx.max_rounds is not None
        else program.default_budget()
    )
    rounds = 0
    activations = 0
    done = program.done()
    # Adversarial-policy hints: stepped programs have no run manager, so
    # the progress carriers are "whoever moved last round", computed from
    # the per-token positions (roster order matches view() order for
    # every stepped program).
    moved_last: frozenset = frozenset()
    while not done and rounds < budget:
        roster = list(program.ssync_roster())
        positions = dict(zip(roster, program.view().cells))
        active = schedule.select(rounds, roster, hints=moved_last)
        activations += len(active)
        remap = program.ssync_step(rounds, active, metrics, events)
        after = list(program.ssync_roster())
        after_positions = dict(zip(after, program.view().cells))
        moved_last = frozenset(
            t
            for t in after
            if t not in positions or positions[t] != after_positions[t]
        )
        schedule.commit(active, remap=remap, survivors=after)
        if ctx.on_round is not None:
            ctx.on_round(rounds, program.view())
        rounds += 1
        done = program.done()
    fields = program.result_fields()
    robots_final = fields.pop("robots_final")
    final_state = fields.pop("final_state")
    events.emit(
        rounds,
        "gathered" if done else "budget_exhausted",
        rounds=rounds,
        robots=robots_final,
    )
    return RunResult(
        strategy="",
        scheduler=scheduler_key,
        gathered=done,
        rounds=rounds,
        robots_initial=program.robots_initial,
        robots_final=robots_final,
        metrics=metrics,
        events=events,
        final_state=final_state,
        activations=activations,
        extras=fields,
    )
