"""Round-snapshot codec for the persistent-worker planning executors.

``RunManager.plan`` shards :meth:`RunManager._plan_one` over an
order-preserving ``map``.  For in-process executors the shards close
over the live round context; a worker *process* cannot — and pickling
live :class:`~repro.grid.ring.BoundaryRing` objects per shard call would
drown any parallel win in serialization.  This module flattens the
round's read-only planning context into one compact byte payload that is
published **once per round** (the process backend parks it in
``multiprocessing.shared_memory``) and decoded once per worker:

* the header (config, round index, lost run ids) is a small pickle;
* the bulk — occupied cells, merge-move pairs, the run table, ring cell
  sequences, run locations — is a flat ``array('i')`` of int32s;
* only the rings that actually host a located run are encoded, as their
  side-node **cell sequences**: planning navigates rings exclusively
  through occurrence heads (:meth:`BoundaryRing.walk_heads` compares
  cells, never normals), so normals, order labels, and min-heaps are
  dead weight and are not shipped.

Bit-identity with serial planning holds because the decoder rebuilds
exactly what ``_plan_one`` reads, in the same order the parent built it:
``located`` preserves its insertion order (sorted run id, from
``locate``), which fixes the ``at_node`` occupant-list order that rule 1
iterates, and collapsed ring lengths are recomputed with the same
change-edge formula the live rings maintain incrementally.

:func:`decode_round_context` and :func:`plan_shard` are the code a
worker process executes — they are purity entry points of reprolint's P1
rule (write-free apart from locally created objects), same as
``_plan_one`` itself.
"""

from __future__ import annotations

import pickle
from array import array
from typing import Dict, List, Mapping, NamedTuple, Optional, Sequence, Set

from repro.core.config import AlgorithmConfig
from repro.core.runs import Run, RunLocation, RunManager
from repro.grid.geometry import Cell
from repro.grid.ring import BoundaryRing, RingNode, _change_edge_count

#: Payload format tag; bump on any layout change so a stale worker fails
#: loudly instead of misplanning.
_MAGIC = b"RSN1"

_AXES = ("h", "v")


class DecodedRound(NamedTuple):
    """A worker-side reconstruction of one round's planning context."""

    manager: RunManager
    ctx: tuple  # the positional tail of ``RunManager._plan_one``


def encode_round_context(
    cfg: AlgorithmConfig,
    runs: Mapping[int, Run],
    occupied: Set[Cell],
    merge_moves: Mapping[Cell, Cell],
    located: Mapping[int, RunLocation],
    lost: Set[int],
    round_index: int,
) -> bytes:
    """Flatten one round's read-only planning context into bytes."""
    header = pickle.dumps(
        {"cfg": cfg, "round": round_index, "lost": sorted(lost)},
        protocol=pickle.HIGHEST_PROTOCOL,
    )
    ints = array("i")
    cells = sorted(occupied)
    ints.append(len(cells))
    for x, y in cells:
        ints.append(x)
        ints.append(y)
    moves = sorted(merge_moves.items())
    ints.append(len(moves))
    for (sx, sy), (tx, ty) in moves:
        ints.extend((sx, sy, tx, ty))
    ints.append(len(runs))
    for rid in sorted(runs):
        run = runs[rid]
        ints.extend(
            (
                run.run_id,
                run.robot[0],
                run.robot[1],
                run.prev[0],
                run.prev[1],
                run.direction,
                _AXES.index(run.axis),
                run.born_round,
            )
        )
    # Rings in first-located order; located entries point at (ring slot,
    # node index in iteration order from the ring head).
    ring_slots: Dict[int, int] = {}  # id(ring) -> slot
    ring_payload = array("i")
    node_index: Dict[int, int] = {}  # id(node) -> index (all rings)
    loc_payload = array("i")
    n_rings = 0
    for rid, loc in located.items():
        slot = ring_slots.get(id(loc.ring))
        if slot is None:
            slot = n_rings
            n_rings += 1
            ring_slots[id(loc.ring)] = slot
            nodes = list(loc.ring.iter_nodes())
            ring_payload.append(loc.b_idx)
            ring_payload.append(len(nodes))
            for i, nd in enumerate(nodes):
                node_index[id(nd)] = i
                ring_payload.append(nd.cell[0])
                ring_payload.append(nd.cell[1])
        loc_payload.extend((rid, slot, node_index[id(loc.node)]))
    ints.append(n_rings)
    ints.extend(ring_payload)
    ints.append(len(located))
    ints.extend(loc_payload)
    head = len(header).to_bytes(4, "little")
    return _MAGIC + head + header + ints.tobytes()


def _rebuild_ring(slot: int, cells: List[Cell]) -> BoundaryRing:
    """A bare linked ring over a cell sequence — just enough structure
    for ``len(ring)`` / ``walk_heads`` (is_outer and normals are never
    read by planning; the slot stands in for the ring id)."""
    nodes = [RingNode(cell, (0, 0), i) for i, cell in enumerate(cells)]
    ring = BoundaryRing(ring_id=slot, is_outer=False, head=nodes[0])
    last = len(nodes) - 1
    for i, node in enumerate(nodes):
        node.ring = ring
        node.prev = nodes[i - 1]
        node.next = nodes[i + 1] if i < last else nodes[0]
    ring.size = len(nodes)
    ring._change_edges = _change_edge_count(cells) + (
        1 if cells[0] != cells[-1] else 0
    )
    return ring


def decode_round_context(payload: bytes) -> DecodedRound:
    """Rebuild the planning context :func:`encode_round_context` froze.

    Purity entry point (reprolint P1): every write below targets objects
    created in this call — nothing observable outside it is touched.
    """
    if payload[:4] != _MAGIC:
        raise ValueError(
            f"bad snapshot payload: expected magic {_MAGIC!r}, got "
            f"{bytes(payload[:4])!r} (executor/worker version skew?)"
        )
    header_len = int.from_bytes(payload[4:8], "little")
    header = pickle.loads(payload[8 : 8 + header_len])
    cfg: AlgorithmConfig = header["cfg"]
    round_index: int = header["round"]
    lost: Set[int] = set(header["lost"])
    ints = array("i")
    ints.frombytes(payload[8 + header_len :])
    pos = 0
    n_cells = ints[pos]
    pos += 1
    occupied = {
        (ints[pos + i], ints[pos + i + 1])
        for i in range(0, 2 * n_cells, 2)
    }
    pos += 2 * n_cells
    n_moves = ints[pos]
    pos += 1
    merge_moves: Dict[Cell, Cell] = {}
    for i in range(pos, pos + 4 * n_moves, 4):
        merge_moves[(ints[i], ints[i + 1])] = (ints[i + 2], ints[i + 3])
    pos += 4 * n_moves
    n_runs = ints[pos]
    pos += 1
    runs: Dict[int, Run] = {}
    for i in range(pos, pos + 8 * n_runs, 8):
        runs[ints[i]] = Run(
            run_id=ints[i],
            robot=(ints[i + 1], ints[i + 2]),
            prev=(ints[i + 3], ints[i + 4]),
            direction=ints[i + 5],
            axis=_AXES[ints[i + 6]],
            born_round=ints[i + 7],
        )
    pos += 8 * n_runs
    n_rings = ints[pos]
    pos += 1
    rings: List[BoundaryRing] = []
    ring_b_idx: List[int] = []
    ring_nodes: List[List[RingNode]] = []
    for slot in range(n_rings):
        b_idx = ints[pos]
        n_nodes = ints[pos + 1]
        pos += 2
        cells = [
            (ints[pos + i], ints[pos + i + 1])
            for i in range(0, 2 * n_nodes, 2)
        ]
        pos += 2 * n_nodes
        ring = _rebuild_ring(slot, cells)
        rings.append(ring)
        ring_b_idx.append(b_idx)
        ring_nodes.append(list(ring.iter_nodes()))
    n_located = ints[pos]
    pos += 1
    located: Dict[int, RunLocation] = {}
    at_node: Dict[int, List[int]] = {}
    runs_per_boundary: Dict[int, int] = {}
    for i in range(pos, pos + 3 * n_located, 3):
        rid, slot, node_idx = ints[i], ints[i + 1], ints[i + 2]
        node = ring_nodes[slot][node_idx]
        b_idx = ring_b_idx[slot]
        located[rid] = RunLocation(b_idx, rings[slot], node)
        at_node.setdefault(id(node), []).append(rid)
        runs_per_boundary[b_idx] = runs_per_boundary.get(b_idx, 0) + 1
    runner_cells = {run.robot for run in runs.values()}

    # A bare manager (no pool, no planned state): ``_plan_one`` reads
    # only ``cfg`` and ``runs``, and ``__new__`` sidesteps the
    # constructor's pool bookkeeping a worker never uses.
    manager = RunManager.__new__(RunManager)
    manager.cfg = cfg
    manager.runs = runs
    manager._next_id = 0
    manager._planned = []
    ctx = (
        occupied,
        merge_moves,
        located,
        lost,
        round_index,
        at_node,
        runs_per_boundary,
        runner_cells,
    )
    return DecodedRound(manager, ctx)


def plan_shard(
    decoded: DecodedRound, shard: Sequence[int]
) -> List[tuple]:
    """Plan one shard of run ids against a decoded round context.

    Returns slim ``(rid, terminate, next_robot, fold)`` tuples — the
    parent rebuilds its ``_Planned`` records around its *own* ``Run``
    objects, so no run state crosses back over the process boundary.

    Purity entry point (reprolint P1): the per-run compute is
    ``_plan_one`` itself, on worker-local state.
    """
    manager = decoded.manager
    ctx = decoded.ctx
    out: List[tuple] = []
    for rid in shard:
        planned, fold = manager._plan_one(rid, *ctx)
        out.append((rid, planned.terminate, planned.next_robot, fold))
    return out


def plan_results_from_slim(
    manager: RunManager,
    order: Sequence[int],
    slim: Mapping[int, tuple],
) -> List[tuple]:
    """Parent-side rebuild: slim worker tuples -> the ``(planned,
    fold)`` list the serial path produces, in run-id order."""
    from repro.core.runs import _Planned

    results = []
    for rid in order:
        terminate, next_robot, fold = slim[rid]
        results.append(
            (
                _Planned(
                    manager.runs[rid],
                    terminate=terminate,
                    next_robot=next_robot,
                ),
                fold,
            )
        )
    return results


#: Worker-side snapshot cache: the latest decoded round, keyed by the
#: publisher's (name, seq).  One entry only — rounds are strictly
#: ordered, so an old snapshot can never be referenced again.  This
#: cache is the *impure boundary* around the pure P1 entry points above:
#: executors' worker tasks write here, never the planning code.
_SNAPSHOT_CACHE: Dict[tuple, DecodedRound] = {}


def cached_decode(key: tuple, payload_bytes: bytes) -> DecodedRound:
    """Decode-once-per-round helper for worker processes/interpreters."""
    decoded = _SNAPSHOT_CACHE.get(key)
    if decoded is None:
        decoded = decode_round_context(payload_bytes)
        _SNAPSHOT_CACHE.clear()
        _SNAPSHOT_CACHE[key] = decoded
    return decoded
