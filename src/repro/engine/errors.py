"""Error types raised by the simulation engines."""

from __future__ import annotations

from repro.errors import InvariantError

__all__ = [
    "InvariantError",
    "SimulationError",
    "ConnectivityViolation",
    "NotGathered",
]


class SimulationError(RuntimeError):
    """Base class for engine failures."""


class ConnectivityViolation(SimulationError):
    """A round left the swarm disconnected.

    The paper's central safety property (Section 1: movements "must not harm
    the (only globally checkable) swarm connectivity").  The FSYNC engine
    raises this in ``check_connectivity`` mode, annotated with the round and
    the offending state, so tests fail loudly instead of drifting.
    """

    def __init__(self, round_index: int, n_components: int) -> None:
        super().__init__(
            f"swarm disconnected into {n_components} components "
            f"after round {round_index}"
        )
        self.round_index = round_index
        self.n_components = n_components


class NotGathered(SimulationError):
    """The round budget was exhausted before gathering completed."""

    def __init__(self, rounds: int, robots_left: int) -> None:
        super().__init__(
            f"not gathered after {rounds} rounds ({robots_left} robots left)"
        )
        self.rounds = rounds
        self.robots_left = robots_left
