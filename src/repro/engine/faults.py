"""Seeded per-robot fault injection for adversarial schedulers.

Three fault classes from the robots-gathering literature:

* **transient sleep** — an activated robot fails to perform its
  look-compute-move cycle this round (it behaves as if the scheduler had
  not activated it).  Memoryless: the robot is back to normal next round.
* **crash-stop** — the robot permanently stops acting.  It keeps its
  position (other robots can still merge onto it), but it never again
  looks, computes, or moves.
* **byzantine** — the robot is adversarial for the whole run.  Each
  round it picks one of three legal misbehaviors: report a *stale*
  position to every observer, move *off-plan* to an adjacent cell of its
  own choosing, or play *dead* and ignore its planned move.  Byzantine
  robots never teleport: every lie and every rogue hop stays within the
  one-step visibility/motion rules honest robots obey, which is what
  makes the class adversarial rather than merely broken.

Fault *draws* are what this module owns; fault *state* (the set of
crashed robots, which must survive token renames when robots merge) is
owned by :class:`repro.engine.ssync_scheduler.ActivationSchedule`.

Determinism contract (churn-invariant): every draw is a pure function
``(seed, fault class, robot token, round)`` — each tuple seeds its own
throwaway :class:`random.Random` via a splitmix64-style mixer instead of
consuming positions from one shared stream.  Consequences, pinned by
``tests/test_faults.py``:

* roster churn does not shift draws — when robots merge or a token
  renames mid-run, the surviving robots' future fault schedule is
  bit-identical to a run where the departed robots never existed;
* fault classes are independent — enabling byzantine draws does not
  perturb the crash/sleep schedule (and vice versa), so adversarial
  sweeps stay comparable along each axis;
* faults never share an RNG with activation policies, so turning faults
  on or off does not change the activation schedule of the survivors.
"""

from __future__ import annotations

import hashlib
import random
from typing import Iterable, List, Set, Tuple, TypeVar

Token = TypeVar("Token")

_MASK64 = (1 << 64) - 1

#: Per-class stream ids keeping the fault classes' draws independent.
_CLASS_CRASH = 0
_CLASS_SLEEP = 1
_CLASS_BYZ_ROLE = 2
_CLASS_BYZ_BEHAVIOR = 3
_CLASS_BYZ_DIRECTION = 4

#: The eight king-move neighbor offsets a byzantine off-plan hop may
#: take (chebyshev distance 1 — the same step rule honest robots obey).
_BYZ_OFFSETS: Tuple[Tuple[int, int], ...] = (
    (-1, -1), (-1, 0), (-1, 1), (0, -1),
    (0, 1), (1, -1), (1, 0), (1, 1),
)

#: The three per-round byzantine misbehaviors, drawn uniformly.
BYZANTINE_BEHAVIORS: Tuple[str, str, str] = ("stale", "offplan", "dead")


def _mix(*parts: int) -> int:
    """Collapse integers into one well-spread 64-bit seed (splitmix64
    finalizer applied per part — avalanche without shared-stream state)."""
    acc = 0x9E3779B97F4A7C15
    for part in parts:
        acc = (acc ^ (part & _MASK64)) * 0xBF58476D1CE4E5B9 & _MASK64
        acc = ((acc ^ (acc >> 27)) * 0x94D049BB133111EB) & _MASK64
        acc ^= acc >> 31
    return acc


def _token_int(token: object) -> int:
    """A stable integer for any roster token (ints pass through; other
    token types — e.g. string node ids — hash via blake2b, which is
    deterministic across processes, unlike builtin ``hash``)."""
    if isinstance(token, int):
        return token
    digest = hashlib.blake2b(
        repr(token).encode("utf-8"), digest_size=8
    ).digest()
    return int.from_bytes(digest, "big")


class FaultInjector:
    """Seeded drawer of per-robot, per-round fault events.

    Parameters
    ----------
    sleep_rate:
        Probability that a robot suffers a transient sleep fault in a
        given round (``0.0`` disables, skipping the draws entirely).
    crash_rate:
        Per-round crash-stop hazard: each alive robot crashes this round
        with this probability.  Once crashed, a robot is excluded from
        every future roster (the schedule enforces that), so the hazard
        applies only while alive.
    seed:
        Seeds the draw mixer; fault draws never share an RNG with
        activation policies, so turning faults on or off does not change
        the activation schedule of the surviving robots.
    byzantine_rate:
        Probability that a robot is byzantine *for the whole run* (a
        role, not a per-round hazard — the literature's f-byzantine
        model picks the adversarial robots once).  The role draw is a
        pure function of ``(seed, token)``, so it is stable across
        rounds and unaffected by roster churn.
    """

    def __init__(
        self,
        sleep_rate: float = 0.0,
        crash_rate: float = 0.0,
        seed: int = 0,
        byzantine_rate: float = 0.0,
    ) -> None:
        for name, rate in (("sleep_rate", sleep_rate),
                           ("crash_rate", crash_rate),
                           ("byzantine_rate", byzantine_rate)):
            if not 0.0 <= rate <= 1.0:
                raise ValueError(
                    f"{name} must be a probability in [0, 1], got {rate!r}"
                )
        self.sleep_rate = float(sleep_rate)
        self.crash_rate = float(crash_rate)
        self.byzantine_rate = float(byzantine_rate)
        self.seed = int(seed)

    @property
    def enabled(self) -> bool:
        """Whether any fault class can actually fire."""
        return (
            self.sleep_rate > 0.0
            or self.crash_rate > 0.0
            or self.byzantine_rate > 0.0
        )

    # -- the one draw primitive ----------------------------------------
    def _draw(self, class_id: int, token: object, round_index: int) -> float:
        """The uniform [0, 1) draw for one (class, robot, round) cell."""
        return random.Random(
            _mix(self.seed, class_id, _token_int(token), round_index)
        ).random()

    # -- crash / sleep --------------------------------------------------
    def draw(
        self, round_index: int, roster: Iterable[Token]
    ) -> Tuple[Set[Token], Set[Token]]:
        """Draw this round's crash/sleep faults for the alive ``roster``.

        Returns ``(sleeping, newly_crashed)`` token sets.  A robot can be
        drawn for both in the same round; crash-stop wins (the schedule
        records it as crashed, not slept).
        """
        sleeping: Set[Token] = set()
        crashed: Set[Token] = set()
        for token in roster:
            if (
                self.crash_rate > 0.0
                and self._draw(_CLASS_CRASH, token, round_index)
                < self.crash_rate
            ):
                crashed.add(token)
            if (
                self.sleep_rate > 0.0
                and self._draw(_CLASS_SLEEP, token, round_index)
                < self.sleep_rate
            ):
                sleeping.add(token)
        return sleeping, crashed

    # -- byzantine ------------------------------------------------------
    def is_byzantine(self, token: Token) -> bool:
        """Whether ``token`` holds the byzantine role (run-constant)."""
        if self.byzantine_rate <= 0.0:
            return False
        return (
            self._draw(_CLASS_BYZ_ROLE, token, 0) < self.byzantine_rate
        )

    def byzantine_tokens(self, roster: Iterable[Token]) -> List[Token]:
        """The byzantine members of ``roster`` in roster order."""
        if self.byzantine_rate <= 0.0:
            return []
        return [t for t in roster if self.is_byzantine(t)]

    def byzantine_behavior(self, round_index: int, token: Token) -> str:
        """This round's misbehavior: ``stale`` / ``offplan`` / ``dead``."""
        u = self._draw(_CLASS_BYZ_BEHAVIOR, token, round_index)
        index = min(int(u * len(BYZANTINE_BEHAVIORS)),
                    len(BYZANTINE_BEHAVIORS) - 1)
        return BYZANTINE_BEHAVIORS[index]

    def byzantine_offset(
        self, round_index: int, token: Token
    ) -> Tuple[int, int]:
        """The off-plan hop direction (one of the 8 king moves)."""
        u = self._draw(_CLASS_BYZ_DIRECTION, token, round_index)
        index = min(int(u * len(_BYZ_OFFSETS)), len(_BYZ_OFFSETS) - 1)
        return _BYZ_OFFSETS[index]
