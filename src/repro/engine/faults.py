"""Seeded per-robot fault injection for adversarial schedulers.

Two classic fault classes from the robots-gathering literature:

* **transient sleep** — an activated robot fails to perform its
  look-compute-move cycle this round (it behaves as if the scheduler had
  not activated it).  Memoryless: the robot is back to normal next round.
* **crash-stop** — the robot permanently stops acting.  It keeps its
  position (other robots can still merge onto it), but it never again
  looks, computes, or moves.

Fault *draws* are what this module owns; fault *state* (the set of
crashed robots, which must survive token renames when robots merge) is
owned by :class:`repro.engine.ssync_scheduler.ActivationSchedule`.

Determinism contract: ``draw`` consumes exactly one RNG value per alive
robot per fault class with a non-zero rate, iterating the roster in the
order given (callers pass the canonical sorted roster).  Two runs with
the same seed, rates, and robot history therefore produce identical
fault schedules — the property the reproducibility tests pin.
"""

from __future__ import annotations

import random
from typing import Iterable, Set, Tuple, TypeVar

Token = TypeVar("Token")


class FaultInjector:
    """Seeded drawer of per-robot, per-round fault events.

    Parameters
    ----------
    sleep_rate:
        Probability that a robot suffers a transient sleep fault in a
        given round (``0.0`` disables, skipping the draws entirely).
    crash_rate:
        Per-round crash-stop hazard: each alive robot crashes this round
        with this probability.  Once crashed, a robot is excluded from
        every future roster (the schedule enforces that), so the hazard
        applies only while alive.
    seed:
        Seeds the private RNG; fault draws never share an RNG with
        activation policies, so turning faults on or off does not change
        the activation schedule of the surviving robots.
    """

    def __init__(
        self,
        sleep_rate: float = 0.0,
        crash_rate: float = 0.0,
        seed: int = 0,
    ) -> None:
        for name, rate in (("sleep_rate", sleep_rate),
                           ("crash_rate", crash_rate)):
            if not 0.0 <= rate <= 1.0:
                raise ValueError(
                    f"{name} must be a probability in [0, 1], got {rate!r}"
                )
        self.sleep_rate = float(sleep_rate)
        self.crash_rate = float(crash_rate)
        self.rng = random.Random(seed)

    @property
    def enabled(self) -> bool:
        """Whether any fault class can actually fire."""
        return self.sleep_rate > 0.0 or self.crash_rate > 0.0

    def draw(
        self, round_index: int, roster: Iterable[Token]
    ) -> Tuple[Set[Token], Set[Token]]:
        """Draw this round's faults for the alive ``roster``.

        Returns ``(sleeping, newly_crashed)`` token sets.  A robot can be
        drawn for both in the same round; crash-stop wins (the schedule
        records it as crashed, not slept).
        """
        sleeping: Set[Token] = set()
        crashed: Set[Token] = set()
        if self.crash_rate > 0.0:
            for token in roster:
                if self.rng.random() < self.crash_rate:
                    crashed.add(token)
        if self.sleep_rate > 0.0:
            for token in roster:
                if self.rng.random() < self.sleep_rate:
                    sleeping.add(token)
        return sleeping, crashed
