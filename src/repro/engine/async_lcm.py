"""Genuinely non-atomic ASYNC: look, compute, and move decouple.

The ``async`` scheduler in this repo is the *fair sequential* reading of
ASYNC — one robot per step, but each cycle is still atomic.  The
literature's stronger ASYNC adversary breaks the cycle itself: a robot
may *look* at a stale snapshot, *compute* on it, and have its *move*
land rounds later, with other robots acting in between.  This engine
implements that model with **bounded staleness** Δ (option
``staleness``):

* when the schedule activates an idle robot in round ``r``, the robot
  computes on the snapshot of round ``r - s`` for a seeded draw
  ``s ∈ [0, Δ]`` (clamped to the history that exists);
* its resulting move lands in round ``r + d`` for an independent seeded
  draw ``d ∈ [0, Δ]``; the robot is *busy* until the landing round and
  ignores re-activations in between (its cycle is still in flight);
* a landing move applies only if it is still legal — the mover still
  exists (it may have merged away), it has not crash-stopped, and the
  target is within one king step of its *current* cell.  An illegal
  landing is discarded with a ``stale_move`` event: the outdated
  computation evaporates, exactly the hazard the ASYNC literature
  studies.

Δ = 0 short-circuits every draw: each activated robot looks at the
current round and lands in the same round, making the step
operation-for-operation identical to :class:`~repro.engine.
ssync_scheduler.SsyncEngine` — so with full activation the engine is
bit-identical to ``fsync`` (golden-pinned by ``tests/test_ssync.py``).

Staleness draws are churn-invariant pure functions of ``(seed, robot
token, round)`` via the same splitmix64 mixer the fault injector uses —
independent of the activation and fault streams, so turning staleness
on does not perturb who gets activated when.

Byzantine faults are deliberately out of scope here (the ``async-lcm``
scheduler rejects ``byzantine_rate``): stale perception is already the
model's native adversary, and layering lied positions on top of lagged
snapshots has no counterpart in the literature this repo reproduces.
"""

from __future__ import annotations

import random
from typing import Any, Callable, Dict, FrozenSet, List, Optional, Set, Tuple

from repro.engine.events import EventLog
from repro.engine.faults import _mix, _token_int
from repro.engine.metrics import MetricsLog, RoundMetrics
from repro.engine.scheduler import GatherResult
from repro.engine.ssync_scheduler import ActivationSchedule
from repro.engine.termination import default_round_budget, is_gathered
from repro.grid.boundary import outer_boundary
from repro.grid.connectivity import (
    connected_components,
    is_connected,
    locally_connected_after,
)
from repro.grid.envelope import enclosed_area
from repro.grid.geometry import Cell, chebyshev
from repro.grid.occupancy import SwarmState

#: Draw-stream ids for the two per-activation staleness draws (disjoint
#: from the fault injector's class ids by construction — different salt
#: position, same mixer).
_CLASS_LOOK_LAG = 0
_CLASS_MOVE_LAG = 1


class AsyncLcmEngine:
    """Drives a grid controller under non-atomic look-compute-move with
    bounded staleness, on top of an :class:`ActivationSchedule`.

    Accepts the same two controller shapes as the SSYNC engine:
    ``plan_round`` controllers (the paper's algorithm — each round's
    plan is archived, and a robot looking ``s`` rounds back executes
    its target from that round's plan) and per-robot ``activate``
    controllers (the async greedy baseline — the robot computes against
    the archived *state snapshot* of the round it looked at).

    Robot identity, merge semantics, the connectivity-as-outcome rule,
    metrics, and terminal events all mirror
    :class:`~repro.engine.ssync_scheduler.SsyncEngine`.
    """

    def __init__(
        self,
        state: SwarmState,
        controller: Any,
        schedule: ActivationSchedule,
        *,
        staleness: int = 0,
        seed: int = 0,
        check_connectivity: bool = True,
        incremental_connectivity: bool = True,
        track_boundary: bool = False,
        gather_square: int = 2,
        on_round: Optional[Callable[[int, SwarmState], None]] = None,
    ) -> None:
        if len(state) == 0:
            raise ValueError("cannot simulate an empty swarm")
        if not is_connected(state.cells):
            raise ValueError("initial swarm must be connected (paper model)")
        if staleness < 0:
            raise ValueError(
                f"staleness must be a non-negative round count, "
                f"got {staleness!r}"
            )
        self.state = state
        self.controller = controller
        self.schedule = schedule
        self.staleness = int(staleness)
        self.seed = int(seed)
        self.check_connectivity = check_connectivity
        self.incremental_connectivity = incremental_connectivity
        self.track_boundary = track_boundary
        self.gather_square = gather_square
        self.on_round = on_round
        self.metrics = MetricsLog()
        ctrl_events = getattr(controller, "events", None)
        self.events = (
            ctrl_events if isinstance(ctrl_events, EventLog) else EventLog()
        )
        schedule.events = self.events
        schedule.token_info = self._token_info
        cells = sorted(state.cells)
        self._cell_of: Dict[int, Cell] = dict(enumerate(cells))
        self._id_at: Dict[Cell, int] = {c: i for i, c in enumerate(cells)}
        self._moved_last: Set[Cell] = set()
        self.round_index = 0
        self.activations = 0
        self.connectivity_lost = False
        self._terminal_version: Optional[int] = None
        # Per-round look archives, newest last, pruned to Δ + 1 entries:
        # the plan as token -> target (plan_round controllers), the
        # state snapshot (activate controllers), and where each token
        # stood.  Δ = 0 keeps exactly the current round.
        self._plan_history: List[Dict[int, Cell]] = []
        self._snapshot_history: List[SwarmState] = []
        self._position_history: List[Dict[int, Cell]] = []
        #: In-flight moves: (landing_round, token, target), appended in
        #: activation order — landing processing re-sorts by token.
        self._pending: List[Tuple[int, int, Cell]] = []
        #: Tokens whose cycle is in flight (ignore re-activation).
        self._busy_until: Dict[int, int] = {}

    # ------------------------------------------------------------------
    def _token_info(self, token: int) -> Dict[str, Any]:
        cell = self._cell_of.get(token)
        return {"cell": cell} if cell is not None else {}

    def _hints(self) -> FrozenSet[int]:
        run_manager = getattr(self.controller, "run_manager", None)
        if run_manager is not None:
            cells = {run.robot for run in run_manager.runs.values()}
        else:
            cells = self._moved_last
        id_at = self._id_at
        return frozenset(id_at[c] for c in cells if c in id_at)

    def _lag(self, class_id: int, token: int, round_index: int) -> int:
        """The seeded staleness draw in ``[0, Δ]`` (0 when Δ = 0,
        without consuming a draw — the FSYNC-anchor short-circuit)."""
        if self.staleness == 0:
            return 0
        return random.Random(
            _mix(self.seed, class_id, _token_int(token), round_index)
        ).randrange(self.staleness + 1)

    # ------------------------------------------------------------------
    def step(self) -> int:
        """Execute one round; returns the number of merged robots."""
        state = self.state
        r = self.round_index
        roster = sorted(self._cell_of)
        active = self.schedule.select(r, roster, hints=self._hints())
        # Busy robots' cycles are still in flight: their activation is a
        # no-op, and it does not count toward the activation total.
        active = {t for t in active if self._busy_until.get(t, -1) < r}
        self.activations += len(active)

        controller = self.controller
        plans = hasattr(controller, "plan_round")
        if plans:
            planned = controller.plan_round(state, r)
            self._plan_history.append(
                {
                    token: planned[cell]
                    for token, cell in sorted(self._cell_of.items())
                    if cell in planned
                }
            )
        else:
            self._snapshot_history.append(
                state.copy() if self.staleness > 0 else state
            )
        self._position_history.append(dict(self._cell_of))
        history = self._plan_history if plans else self._snapshot_history
        del history[: -(self.staleness + 1)]
        del self._position_history[: -(self.staleness + 1)]

        for token in sorted(active):
            look_lag = min(
                self._lag(_CLASS_LOOK_LAG, token, r), len(history) - 1
            )
            if plans:
                target = self._plan_history[-1 - look_lag].get(token)
            else:
                snapshot = self._snapshot_history[-1 - look_lag]
                robot_then = self._position_history[-1 - look_lag].get(
                    token, self._cell_of[token]
                )
                target = controller.activate(snapshot, robot_then)
                if target is not None and chebyshev(robot_then, target) > 1:
                    raise ValueError(
                        f"illegal async-lcm move {robot_then} -> {target}"
                    )
            if target is None:
                continue
            move_lag = self._lag(_CLASS_MOVE_LAG, token, r)
            self._busy_until[token] = r + move_lag
            self._pending.append((r + move_lag, token, target))

        # Land every move due this round (including the d = 0 ones just
        # scheduled).  Landing order is token order — simultaneous, like
        # an SSYNC round's move phase.
        landing = sorted(
            (token, target)
            for due, token, target in self._pending
            if due <= r
        )
        self._pending = [p for p in self._pending if p[0] > r]
        crashed = self.schedule.crashed
        moves: Dict[Cell, Cell] = {}
        discarded: List[int] = []
        for token, target in landing:
            cur = self._cell_of.get(token)
            if cur is None or token in crashed:
                # merged away or crash-stopped mid-flight: the cycle
                # evaporates silently (there is no robot left to move)
                continue
            if target == cur:
                continue
            if chebyshev(cur, target) > 1:
                discarded.append(token)
                continue
            moves[cur] = target
        if discarded:
            self.events.emit(r, "stale_move", robots=sorted(discarded))
        merged = state.apply_moves(moves)
        if hasattr(controller, "notify_applied"):
            controller.notify_applied(state, r, moves, merged)

        if self.check_connectivity:
            if not (
                self.incremental_connectivity
                and locally_connected_after(state.cells, state.last_changed)
            ):
                comps = connected_components(state.cells)
                if len(comps) > 1:
                    self.connectivity_lost = True
                    self.events.emit(
                        r, "connectivity_violation", components=len(comps)
                    )

        # Token migration — identical to the SSYNC engine's.
        groups: Dict[Cell, List[int]] = {}
        for token, cell in self._cell_of.items():
            groups.setdefault(moves.get(cell, cell), []).append(token)
        remap: Dict[int, int] = {}
        new_cell_of: Dict[int, Cell] = {}
        for cell, tokens in groups.items():
            tokens.sort()
            survivor = tokens[0]
            new_cell_of[survivor] = cell
            for other in tokens[1:]:
                remap[other] = survivor
        self._cell_of = new_cell_of
        self._id_at = {c: t for t, c in new_cell_of.items()}
        self._busy_until = {
            t: due
            for t, due in self._busy_until.items()
            if t in new_cell_of and due > r
        }
        self.schedule.commit(
            active, remap=remap, survivors=new_cell_of.keys()
        )
        self._moved_last = set(moves.values())

        boundary_len: Optional[int] = None
        area: Optional[float] = None
        if self.track_boundary:
            ob = outer_boundary(state)
            boundary_len = len(ob.sides)
            area = enclosed_area(ob)
        self.metrics.record(
            RoundMetrics(
                round_index=r,
                robots=len(state),
                merged=merged,
                diameter=state.diameter_chebyshev(),
                boundary_length=boundary_len,
                enclosed_area=area,
                active_runs=getattr(controller, "active_run_count", None),
            )
        )
        if self.on_round is not None:
            self.on_round(r, state)
        self.round_index += 1
        return merged

    def run(self, max_rounds: Optional[int] = None) -> GatherResult:
        """Run until gathered or the round budget is exhausted (same
        budget and terminal-event conventions as the SSYNC engine)."""
        n0 = len(self.state)
        budget = (
            max_rounds
            if max_rounds is not None
            else default_round_budget(n0)
        )
        gathered = is_gathered(self.state, self.gather_square)
        while (
            not gathered
            and not self.connectivity_lost
            and self.round_index < budget
        ):
            self.step()
            gathered = is_gathered(self.state, self.gather_square)
        if gathered:
            terminal = "gathered"
        elif self.connectivity_lost:
            terminal = "connectivity_lost"
        else:
            terminal = "budget_exhausted"
        if self.state.version != self._terminal_version:
            self.events.emit(
                self.round_index,
                terminal,
                rounds=self.round_index,
                robots=len(self.state),
            )
            self._terminal_version = self.state.version
        return GatherResult(
            gathered=gathered,
            rounds=self.round_index,
            robots_initial=n0,
            robots_final=len(self.state),
            metrics=self.metrics,
            events=self.events,
            final_state=self.state,
        )
