"""Protocols and shared types of the unified simulation facade.

Every workload in the repo — the paper's grid algorithm and each of the
baselines it is compared against — runs behind one entry point,
:func:`repro.api.simulate`.  This module holds the pieces that entry
point is built from, kept separate from :mod:`repro.api` so engines and
strategies can depend on the *types* without importing the registry:

* :class:`Scenario` — declarative workload description (a generator
  family + size, or an explicit cell/point/chain payload);
* :class:`SimContext` — the per-call knobs a strategy/scheduler receives
  (config, budget, seed, hooks);
* :class:`RunResult` — the one result type every simulation returns,
  subsuming the legacy ``GatherResult`` / ``AsyncResult`` /
  ``EuclideanResult`` / ``ChainResult`` / ``ClosedChainResult``;
* :class:`Strategy` / :class:`Scheduler` — the two registry protocols;
* the *program* types schedulers drive: :class:`FsyncProgram` and
  :class:`AsyncProgram` (engine-backed), :class:`SteppedProgram`
  (bespoke self-clocked FSYNC loops: Euclidean go-to-center and the two
  chain gatherers), and :class:`SsyncSteppable` (stepped programs that
  additionally support per-robot subset activation for the SSYNC
  scheduler).

See ``docs/api.md`` for the full facade contract and the migration
table from the old per-workload entry points.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import (
    Any,
    Callable,
    Dict,
    List,
    Optional,
    Protocol,
    Sequence,
    Tuple,
    runtime_checkable,
)

from repro.engine.events import EventLog
from repro.engine.metrics import MetricsLog


# ----------------------------------------------------------------------
# Scenario and per-call context
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class Scenario:
    """Declarative workload description for :func:`repro.api.simulate`.

    Either an explicit ``payload`` (a sequence of grid cells, Euclidean
    points, or chain links — whatever the strategy consumes) or a
    ``family`` name plus target size ``n``.  Family names are
    interpreted by the strategy: the grid strategies use
    :data:`repro.swarms.generators.FAMILIES`, the Euclidean strategy
    adds ``"circle"`` (the [DKL+11] worst case; grid families are also
    accepted as unit-spaced points), and the chain strategies use
    ``"hairpin"`` / ``"zigzag"`` (open chains) and ``"rectangle"``
    (closed chains).  ``seed`` pins stochastic generators and falls back
    to ``simulate(seed=...)`` when unset.
    """

    family: Optional[str] = None
    n: Optional[int] = None
    seed: Optional[int] = None
    payload: Optional[Sequence[Any]] = None

    def __post_init__(self) -> None:
        if self.payload is None:
            if self.family is None:
                raise ValueError("Scenario needs a family or a payload")
            if self.n is None:
                raise ValueError(
                    f"Scenario(family={self.family!r}) needs a size n"
                )


@dataclass
class SimContext:
    """Per-``simulate()`` knobs handed to strategies and schedulers.

    ``config`` is the grid :class:`repro.core.config.AlgorithmConfig`
    (baseline strategies ignore it); ``seed`` drives both stochastic
    scenario generation (when the :class:`Scenario` carries no seed of
    its own) and stochastic execution (the ASYNC activation order, the
    closed chain's coins); ``options`` carries strategy-specific keyword
    arguments (e.g. ``view_range`` for the Euclidean strategy).
    """

    config: Any = None
    max_rounds: Optional[int] = None
    seed: Optional[int] = None
    check_connectivity: bool = True
    track_boundary: bool = False
    on_round: Optional[Callable[[int, Any], None]] = None
    options: Dict[str, Any] = field(default_factory=dict)


# ----------------------------------------------------------------------
# The unified result
# ----------------------------------------------------------------------
def _jsonable(value: Any) -> bool:
    if isinstance(value, (bool, int, float, str)) or value is None:
        return True
    if isinstance(value, (list, tuple)):
        return all(_jsonable(v) for v in value)
    if isinstance(value, dict):
        return all(
            isinstance(k, str) and _jsonable(v) for k, v in value.items()
        )
    return False


@dataclass
class RunResult:
    """Outcome of one :func:`repro.api.simulate` call — any strategy,
    any scheduler.

    ``gathered`` means "reached the workload's goal" (a 2x2 square for
    grid gathering, diameter below threshold for the Euclidean model, a
    minimal chain for chain shortening).  ``metrics`` and ``events`` are
    populated for *every* strategy (the legacy chain/Euclidean entry
    points recorded neither); ``events`` always ends with a terminal
    ``gathered`` / ``budget_exhausted`` event (or ``connectivity_lost``
    when an SSYNC run broke the algorithm's connectivity invariant), and
    the SSYNC schedulers add per-round ``activation`` and ``fault``
    events (schema in ``docs/schedulers.md``).  ``final_state`` is the
    strategy's native state object (:class:`~repro.grid.occupancy.
    SwarmState` for grid workloads, an ``EuclideanSwarm`` for the
    continuous baseline, a cell list for chains).  ``activations``
    counts total robot-activations under the ``async`` and ``ssync``
    schedulers (``None`` elsewhere).  ``extras`` carries
    strategy-specific scalars/series (e.g. ``total_moves``,
    ``optimal_length``, ``diameters``); ``initial_diameter`` is always
    present.  ``trajectory`` holds per-round snapshots when
    ``record_trajectory=True`` was requested.
    """

    strategy: str
    scheduler: str
    gathered: bool
    rounds: int
    robots_initial: int
    robots_final: int
    metrics: MetricsLog
    events: EventLog
    final_state: Any
    activations: Optional[int] = None
    #: Total byzantine misbehaviors over the run (one per alive
    #: byzantine robot per round); ``None`` when the scheduler had no
    #: byzantine faults enabled.
    byzantine_actions: Optional[int] = None
    trajectory: Optional[List[Any]] = None
    extras: Dict[str, Any] = field(default_factory=dict)

    @property
    def merges_total(self) -> int:
        return self.robots_initial - self.robots_final

    def rounds_per_robot(self) -> float:
        """Normalized runtime ``rounds / n`` — constant iff runtime is
        linear, the quantity experiment E1 tracks."""
        return self.rounds / max(self.robots_initial, 1)

    def summary(self) -> Dict[str, Any]:
        """A JSON-serializable headline summary (the ``--json`` CLI
        payload).  Non-primitive extras are dropped, not coerced."""
        out: Dict[str, Any] = {
            "strategy": self.strategy,
            "scheduler": self.scheduler,
            "gathered": self.gathered,
            "rounds": self.rounds,
            "robots_initial": self.robots_initial,
            "robots_final": self.robots_final,
            "merges": self.merges_total,
            "rounds_per_robot": round(self.rounds_per_robot(), 4),
            "events": self.events.counts(),
        }
        if self.activations is not None:
            out["activations"] = self.activations
        if self.byzantine_actions is not None:
            out["byzantine_actions"] = self.byzantine_actions
        out["extras"] = {
            k: v for k, v in self.extras.items() if _jsonable(v)
        }
        return out


# ----------------------------------------------------------------------
# Programs: what a scheduler drives
# ----------------------------------------------------------------------
@dataclass
class FsyncProgram:
    """A controller-over-:class:`SwarmState` workload for the FSYNC
    engine (the grid algorithm and the global-vision baseline).

    ``extras_fn`` is called after the run to harvest strategy-specific
    result fields from the controller (e.g. the [SN14] move count).
    """

    state: Any
    controller: Any
    check_connectivity: bool = True
    extras_fn: Optional[Callable[[], Dict[str, Any]]] = None


@dataclass
class AsyncProgram:
    """A per-activation controller workload for the fair ASYNC engine."""

    state: Any
    controller: Any
    seed: int = 0
    check_connectivity: bool = True


@dataclass(frozen=True)
class StateView:
    """Minimal read-only state adapter handed to ``on_round`` hooks by
    self-clocked programs — mirrors the ``.cells`` surface of
    :class:`~repro.grid.occupancy.SwarmState` so renderers and the
    trace recorder work uniformly."""

    cells: Tuple[Any, ...]

    def __len__(self) -> int:
        return len(self.cells)

    def __iter__(self):
        return iter(self.cells)


@runtime_checkable
class SteppedProgram(Protocol):
    """A bespoke self-clocked FSYNC loop (Euclidean go-to-center, open-
    and closed-chain gathering).  The FSYNC scheduler adapter drives it
    round by round, collecting metrics/events into the shared logs —
    this is what gives the legacy metric-less baselines ``RunResult``
    parity."""

    robots_initial: int

    def done(self) -> bool: ...

    def default_budget(self) -> int: ...

    def step(
        self, round_index: int, metrics: MetricsLog, events: EventLog
    ) -> None: ...

    def view(self) -> Any: ...

    def result_fields(self) -> Dict[str, Any]: ...


@runtime_checkable
class SsyncSteppable(Protocol):
    """A stepped program that also supports per-robot subset activation,
    making it drivable by the SSYNC scheduler
    (:mod:`repro.engine.ssync_scheduler`).

    ``ssync_roster`` returns *stable* robot tokens in canonical order —
    array indices for the Euclidean program, wrapper-maintained ids for
    the open chain, node ids for the closed chain.  Tokens must survive
    rounds unchanged for as long as the robot exists; robots that leave
    (chain contractions) simply drop out of the roster.

    ``ssync_step`` executes one round in which only the robots in
    ``active`` perform their look-compute-move cycle, records the same
    per-round metrics/events as ``step``, and returns a token-rename
    mapping (old token -> new token) for drivers whose identities shift
    — programs with stable tokens return an empty mapping.
    """

    def ssync_roster(self) -> List[Any]: ...

    def ssync_step(
        self,
        round_index: int,
        active: Any,
        metrics: MetricsLog,
        events: EventLog,
    ) -> Dict[Any, Any]: ...


# ----------------------------------------------------------------------
# Registry protocols
# ----------------------------------------------------------------------
@runtime_checkable
class Strategy(Protocol):
    """A registered workload: resolves a :class:`Scenario` into its
    native input and builds the program its scheduler drives.

    ``schedulers`` lists the compatible scheduler keys and
    ``default_scheduler`` picks the canonical one.  ``compare_scenario``
    names the workload's worst-case/showcase family at size ``n`` — the
    CLI ``compare`` command is just this hook over the registry.
    """

    key: str
    description: str
    schedulers: Tuple[str, ...]
    default_scheduler: str
    compare_label: str

    def resolve(self, scenario: Scenario, ctx: SimContext) -> Any: ...

    def build(self, resolved: Any, ctx: SimContext) -> Any: ...

    def compare_scenario(self, n: int) -> Scenario: ...


@runtime_checkable
class Scheduler(Protocol):
    """A registered time model: drives a strategy-built program to
    completion and wraps the outcome into a :class:`RunResult`.

    ``option_names`` declares the ``simulate(**options)`` keywords the
    scheduler consumes (popped from ``SimContext.options`` inside
    ``drive``); the facade validates leftover options against it, so
    misspelled keywords still fail loudly before the run starts.
    """

    key: str
    description: str
    option_names: Tuple[str, ...]

    def drive(self, program: Any, ctx: SimContext) -> RunResult: ...
