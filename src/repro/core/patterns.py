"""State-free merge operations (paper Section 3.1, Figures 2 and 3).

Three pattern families, all locally checkable within the viewing radius and
all connectivity-preserving by construction (DESIGN.md Section 3):

* **leaf** — a robot with exactly one 4-neighbor hops onto it.  This is the
  paper's ``k = 1`` merge ("a single robot hops onto a grid cell occupied by
  another robot").
* **corner** — a robot with exactly two, mutually perpendicular, 4-neighbors
  whose between-diagonal is occupied hops onto that diagonal.  This realizes
  the paper's short merges on solid material (Fig. 2 with the subboundary
  bending around a corner).
* **bump** — a maximal straight run of ``k <= max_bump_length`` robots whose
  far side is completely free and whose near side holds at least one robot
  hops one cell toward the near side; landings on occupied cells merge.
  This is the paper's length-``k`` merge operation (Fig. 2): the black
  subboundary hops in one direction, the white (far-side) cells must be
  empty, the grey (near-side) robots provide the collision.

Simultaneity is resolved exactly in the spirit of the paper's Figure 3:

* robots participating in two perpendicular patterns hop **diagonally**
  (Fig. 3 b: robot ``r`` belongs to two subboundaries and hops to the lower
  left, merging with ``a`` and ``b``);
* cells that serve as *targets/supports* of any candidate pattern are
  **frozen** — a pattern one of whose movers is frozen is dropped.  The
  paper obtains the same effect by requiring the grey robots not to move.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, Iterable, List, Optional, Set, Tuple

from repro.core.config import AlgorithmConfig
from repro.grid.geometry import Cell, add, neighbors4, perpendicular, sub
from repro.grid.occupancy import SwarmState


@dataclass(frozen=True)
class MergePattern:
    """One candidate merge operation.

    ``movers`` hop by ``direction`` (a unit vector, diagonal only for corner
    patterns); ``frozen`` are the cells whose robots must stay for the
    operation to be safe (leaf target / corner diagonal / bump supports).
    """

    kind: str  # "leaf" | "corner" | "bump"
    movers: Tuple[Cell, ...]
    direction: Cell
    frozen: FrozenSet[Cell]

    def __post_init__(self) -> None:
        if self.kind not in ("leaf", "corner", "bump"):
            raise ValueError(f"unknown pattern kind {self.kind!r}")


# ----------------------------------------------------------------------
# Pattern enumeration
# ----------------------------------------------------------------------
def _runs_of(positions: List[int]) -> Iterable[Tuple[int, int]]:
    """Yield ``(start, stop)`` maximal runs of consecutive integers from a
    sorted position list; runs are inclusive of both ends."""
    start = prev = positions[0]
    for p in positions[1:]:
        if p == prev + 1:
            prev = p
            continue
        yield (start, prev)
        start = prev = p
    yield (start, prev)


def _h_run_pattern(
    y: int, x0: int, x1: int, cells: Set[Cell]
) -> Optional[MergePattern]:
    """The bump candidate of one maximal horizontal run ``[x0, x1]`` of
    row ``y`` (already known to be within the length bound), or ``None``.

    The single source of truth for horizontal bump construction: the
    full-line enumerator and the run-granular cache both call it, so a
    cached candidate is value-identical to a full-scan one by
    construction.
    """
    xs = range(x0, x1 + 1)
    yn, ys = y + 1, y - 1
    north_free = all((x, yn) not in cells for x in xs)
    south_free = all((x, ys) not in cells for x in xs)
    if north_free and not south_free:  # open north, hop south
        return MergePattern(
            "bump",
            tuple((x, y) for x in xs),
            (0, -1),
            frozenset((x, ys) for x in xs if (x, ys) in cells),
        )
    if south_free and not north_free:  # open south, hop north
        return MergePattern(
            "bump",
            tuple((x, y) for x in xs),
            (0, 1),
            frozenset((x, yn) for x in xs if (x, yn) in cells),
        )
    return None


def _v_run_pattern(
    x: int, y0: int, y1: int, cells: Set[Cell]
) -> Optional[MergePattern]:
    """Vertical twin of :func:`_h_run_pattern` (column ``x``)."""
    ys_range = range(y0, y1 + 1)
    xe, xw = x + 1, x - 1
    east_free = all((xe, y) not in cells for y in ys_range)
    west_free = all((xw, y) not in cells for y in ys_range)
    if east_free and not west_free:  # open east, hop west
        return MergePattern(
            "bump",
            tuple((x, y) for y in ys_range),
            (-1, 0),
            frozenset((xw, y) for y in ys_range if (xw, y) in cells),
        )
    if west_free and not east_free:  # open west, hop east
        return MergePattern(
            "bump",
            tuple((x, y) for y in ys_range),
            (1, 0),
            frozenset((xe, y) for y in ys_range if (xe, y) in cells),
        )
    return None


def _row_bumps(
    y: int, xs_sorted: List[int], cells: Set[Cell], max_len: int
) -> List[MergePattern]:
    """Horizontal bump candidates of one row (paper Fig. 2, both hops).

    These per-line enumerators are the simulator's hottest full-scan code
    (profiled: ~40% of a round); the run walk is inlined, the per-run
    evaluation shares :func:`_h_run_pattern` with the incremental cache.
    """
    patterns: List[MergePattern] = []
    for x0, x1 in _runs_of(xs_sorted):
        if x1 - x0 + 1 > max_len:
            continue  # too long to verify locally; runners must reshape it
        p = _h_run_pattern(y, x0, x1, cells)
        if p is not None:
            patterns.append(p)
    return patterns


def _col_bumps(
    x: int, ys_sorted: List[int], cells: Set[Cell], max_len: int
) -> List[MergePattern]:
    """Vertical bump candidates of one column (paper Fig. 2, both hops)."""
    patterns: List[MergePattern] = []
    for y0, y1 in _runs_of(ys_sorted):
        if y1 - y0 + 1 > max_len:
            continue
        p = _v_run_pattern(x, y0, y1, cells)
        if p is not None:
            patterns.append(p)
    return patterns


def _h_run_of(
    cells: Set[Cell], c: Cell, max_len: int
) -> Optional[Tuple[int, int]]:
    """The maximal horizontal run through occupied ``c`` as ``(x0, x1)``,
    or ``None`` once it provably exceeds ``max_len`` (the walk is capped,
    so over-long runs cost O(max_len), never O(run))."""
    x0, y = c
    x1 = x0
    length = 1
    while (x0 - 1, y) in cells:
        x0 -= 1
        length += 1
        if length > max_len:
            return None
    while (x1 + 1, y) in cells:
        x1 += 1
        length += 1
        if length > max_len:
            return None
    return x0, x1


def _v_run_of(
    cells: Set[Cell], c: Cell, max_len: int
) -> Optional[Tuple[int, int]]:
    """Vertical twin of :func:`_h_run_of` (returns ``(y0, y1)``)."""
    x, y0 = c
    y1 = y0
    length = 1
    while (x, y0 - 1) in cells:
        y0 -= 1
        length += 1
        if length > max_len:
            return None
    while (x, y1 + 1) in cells:
        y1 += 1
        length += 1
        if length > max_len:
            return None
    return y0, y1


def _bump_patterns(
    occupied: SwarmState | Set[Cell], cfg: AlgorithmConfig
) -> List[MergePattern]:
    """All bump merge candidates (paper Fig. 2, both axes, both directions)."""
    cells = occupied.cells if isinstance(occupied, SwarmState) else occupied
    rows: Dict[int, List[int]] = {}
    cols: Dict[int, List[int]] = {}
    for x, y in cells:
        rows.setdefault(y, []).append(x)
        cols.setdefault(x, []).append(y)
    for v in rows.values():
        v.sort()
    for v in cols.values():
        v.sort()

    patterns: List[MergePattern] = []
    max_len = cfg.max_bump_length
    for y, xs in rows.items():
        patterns.extend(_row_bumps(y, xs, cells, max_len))
    for x, ys in cols.items():
        patterns.extend(_col_bumps(x, ys, cells, max_len))
    return patterns


def _leaf_corner_for(
    cells: Set[Cell], c: Cell, cfg: AlgorithmConfig
) -> Optional[MergePattern]:
    """The leaf or corner candidate of one robot (at most one exists).

    Neighbor checks are inlined — the incremental rescan calls this for
    every cell in a dirty 8-neighborhood every round.
    """
    x, y = c
    nbrs = []
    if (x + 1, y) in cells:
        nbrs.append((x + 1, y))
    if (x, y + 1) in cells:
        nbrs.append((x, y + 1))
    if (x - 1, y) in cells:
        nbrs.append((x - 1, y))
    if (x, y - 1) in cells:
        nbrs.append((x, y - 1))
    if len(nbrs) == 1:
        # Leaf merge: always safe — removing a degree-1 vertex keeps
        # the connectivity graph connected.
        return MergePattern(
            kind="leaf",
            movers=(c,),
            direction=sub(nbrs[0], c),
            frozen=frozenset(nbrs),
        )
    if (
        cfg.enable_corner_merges
        and len(nbrs) == 2
        and perpendicular(sub(nbrs[0], c), sub(nbrs[1], c))
    ):
        diag = add(sub(nbrs[0], c), sub(nbrs[1], c))
        target = add(c, diag)
        if target in cells:
            # Corner merge: the mover stays 4-adjacent to both former
            # neighbors from the diagonal cell.
            return MergePattern(
                kind="corner",
                movers=(c,),
                direction=diag,
                frozen=frozenset((target,)),
            )
    return None


def _leaf_corner_patterns(
    occupied: SwarmState | Set[Cell],
    cfg: AlgorithmConfig,
    exclude: Set[Cell],
) -> List[MergePattern]:
    """Leaf and corner candidates for robots not already in a bump."""
    cells = occupied.cells if isinstance(occupied, SwarmState) else occupied
    patterns: List[MergePattern] = []
    for c in cells:
        if c in exclude:
            continue
        p = _leaf_corner_for(cells, c, cfg)
        if p is not None:
            patterns.append(p)
    return patterns


# ----------------------------------------------------------------------
# Composition and conflict resolution
# ----------------------------------------------------------------------
def _clamp(v: int) -> int:
    return -1 if v < -1 else (1 if v > 1 else v)


def compose_moves(
    patterns: Iterable[MergePattern],
) -> Dict[Cell, Cell]:
    """Combine surviving patterns into per-robot moves.

    A robot in one pattern hops by that pattern's direction; a robot in two
    perpendicular patterns hops diagonally (paper Fig. 3 b).  Opposite
    memberships cancel (cannot arise from the enumerators, but the guard
    keeps the function total).
    """
    votes: Dict[Cell, Set[Cell]] = {}
    for p in patterns:
        for m in p.movers:
            votes.setdefault(m, set()).add(p.direction)
    moves: Dict[Cell, Cell] = {}
    for robot, dirs in votes.items():
        dx = _clamp(sum(d[0] for d in dirs))
        dy = _clamp(sum(d[1] for d in dirs))
        if dx == 0 and dy == 0:
            continue
        moves[robot] = (robot[0] + dx, robot[1] + dy)
    return moves


def plan_merges(
    state: SwarmState | Set[Cell], cfg: AlgorithmConfig
) -> Tuple[Dict[Cell, Cell], List[MergePattern]]:
    """All merge moves for this round, with the surviving patterns.

    Conflict rule (paper Fig. 3 analysis, DESIGN.md Section 3):

    * **bump** patterns always fire.  Mutually overlapping bumps compose
      into diagonal hops (Fig. 3 b), and a bump mover's departure never
      strands anyone: by maximality + the open far side, only the bump's
      own supports and co-movers are 4-adjacent to it.
    * **leaf/corner** (single-mover) patterns are dropped when their mover
      is itself a *support or target* of any candidate pattern — the
      paper's grey robots must not move, else a run landing on the
      departed support dangles (a hypothesis-found counterexample lives in
      tests/test_patterns.py::TestRegressions).
    * additionally a **leaf** is dropped when its target moves: hopping
      after a moving anchor would land on a vacated cell or swap forever.
    """
    candidates: List[MergePattern] = []
    if cfg.enable_bump_merges:
        candidates.extend(_bump_patterns(state, cfg))
    bump_movers: Set[Cell] = {
        m for p in candidates for m in p.movers
    }
    candidates.extend(_leaf_corner_patterns(state, cfg, exclude=bump_movers))
    return _resolve(candidates)


def _resolve(
    candidates: List[MergePattern],
) -> Tuple[Dict[Cell, Cell], List[MergePattern]]:
    """Conflict resolution over the full candidate set (see plan_merges).

    Purely set-based: the resulting *moves* are independent of candidate
    order, which is what lets the cached enumeration of
    :class:`MergeCache` assemble candidates in a different order than the
    full scan while producing bit-identical trajectories.
    """
    movers_all: Set[Cell] = {m for p in candidates for m in p.movers}
    frozen_all: Set[Cell] = set()
    for p in candidates:
        frozen_all |= p.frozen

    surviving: List[MergePattern] = []
    for p in candidates:
        if p.kind == "bump":
            surviving.append(p)
            continue
        mover = p.movers[0]
        if mover in frozen_all:
            continue  # this robot is somebody's grey cell: it must stay
        if p.kind == "leaf" and any(t in movers_all for t in p.frozen):
            continue
        surviving.append(p)
    return compose_moves(surviving), surviving


# ----------------------------------------------------------------------
# Incremental candidate enumeration (dirty-region restricted rescans)
# ----------------------------------------------------------------------
#: Estimated cost of run-granular invalidation per changed cell (anchors
#: x axes x per-anchor hashing/derivation work), in the same unit as one
#: occupied cell of a dirty line scan (a plain int-list step).  Measured
#: on the bench_micro instances: one changed cell costs roughly as much
#: through the anchor machinery as ~64 line cells through the tight
#: per-line scans.  Only the crossover point between the two
#: (identical-result) strategies moves with it: below, the line path;
#: above — scattered changes over long lines — the run path's O(changed)
#: bound wins.
_RUN_COST_FACTOR = 64


class MergeCache:
    """Caches merge-pattern candidates between engine rounds.

    Granularity of invalidation is the **occupied run** — the maximal
    straight stretch ``_runs_of`` would yield — not the line (see
    ``docs/incremental.md``):

    * the bump candidate of a horizontal run ``[x0, x1]`` of row ``y``
      depends only on the run's own cells, the two cells flanking it
      (``(x0-1, y)``/``(x1+1, y)``, for maximality) and rows ``y±1`` over
      its span — all of which sit within the 4-neighborhood closure of
      the run.  A cell flip therefore invalidates only the runs holding
      an *anchor* (the flipped cell or one of its 4-neighbors), and a
      round that moves k robots re-derives O(k) runs of length ≤
      ``max_bump_length`` each, instead of O(dirty lines x line length);
    * the leaf/corner candidate of robot ``c`` depends on occupancy within
      Chebyshev distance 1 of ``c`` *and* on whether ``c`` is a bump mover
      — ``c`` is re-evaluated iff a cell in its 8-neighborhood flipped or
      its bump-mover status changed.

    ``candidates()`` therefore returns exactly the candidate *set* the full
    scan of :func:`plan_merges` would produce, in a different order.
    """

    def __init__(self, cfg: AlgorithmConfig) -> None:
        self.cfg = cfg
        # Bump candidates keyed by line then run start, so a single run's
        # re-derivation replaces exactly its own entry.
        self._row_patterns: Dict[int, Dict[int, MergePattern]] = {}
        self._col_patterns: Dict[int, Dict[int, MergePattern]] = {}
        self._cell_patterns: Dict[Cell, MergePattern] = {}
        # Mover cell -> owning bump pattern, per axis (a cell belongs to
        # exactly one maximal run per axis, so at most one pattern each).
        # Doubles as the mover *set* (key membership) and as the reverse
        # index that finds the stale pattern of a dirty anchor in O(1).
        self._row_movers: Dict[Cell, MergePattern] = {}
        self._col_movers: Dict[Cell, MergePattern] = {}
        self._primed = False

    def rebuild(self, state: SwarmState) -> None:
        """Full enumeration; resets the cache."""
        cfg = self.cfg
        cells = state.cells
        rows, cols = state.rows(), state.cols()

        max_len = cfg.max_bump_length
        row_patterns: Dict[int, Dict[int, MergePattern]] = {}
        col_patterns: Dict[int, Dict[int, MergePattern]] = {}
        row_movers: Dict[Cell, MergePattern] = {}
        col_movers: Dict[Cell, MergePattern] = {}
        if cfg.enable_bump_merges:
            for y, xs in rows.items():
                ps = _row_bumps(y, xs, cells, max_len)
                if ps:
                    row_patterns[y] = {p.movers[0][0]: p for p in ps}
                    for p in ps:
                        for m in p.movers:
                            row_movers[m] = p
            for x, ys in cols.items():
                ps = _col_bumps(x, ys, cells, max_len)
                if ps:
                    col_patterns[x] = {p.movers[0][1]: p for p in ps}
                    for p in ps:
                        for m in p.movers:
                            col_movers[m] = p
        self._row_patterns = row_patterns
        self._col_patterns = col_patterns
        self._row_movers = row_movers
        self._col_movers = col_movers
        self._cell_patterns = {}
        for c in cells:
            if c in row_movers or c in col_movers:
                continue
            p = _leaf_corner_for(cells, c, self.cfg)
            if p is not None:
                self._cell_patterns[c] = p
        self._primed = True

    def _dirty_runs(
        self, cells: Set[Cell], changed: Set[Cell], max_len: int
    ) -> Tuple[
        List[MergePattern],
        List[MergePattern],
        List[MergePattern],
        List[MergePattern],
    ]:
        """Run-granular invalidation: ``(dead_row, dead_col, new_row,
        new_col)`` from the anchors of the changed cells.

        A flip at ``c`` can change (a) the run structure of ``c``'s own
        row/column at the cells adjacent to ``c``, and (b) the free-side
        status of the perpendicular-adjacent runs spanning ``c``'s
        coordinate — and nothing else.  Both kinds of affected run
        contain an *anchor*: ``c`` itself or one of its 4-neighbors.  So
        stale patterns are exactly those owning an anchor (found via the
        mover index), and fresh candidates are derived from the maximal
        runs through the occupied anchors (capped walks, O(max_len)).
        """
        row_movers, col_movers = self._row_movers, self._col_movers
        anchors: Set[Cell] = set()
        for x, y in changed:
            anchors.add((x, y))
            anchors.add((x + 1, y))
            anchors.add((x - 1, y))
            anchors.add((x, y + 1))
            anchors.add((x, y - 1))

        # Stale patterns: every cached bump holding an anchor.
        dead_row: List[MergePattern] = []
        dead_col: List[MergePattern] = []
        seen_ids: Set[int] = set()
        for a in sorted(anchors):
            p = row_movers.get(a)
            if p is not None and id(p) not in seen_ids:
                seen_ids.add(id(p))
                dead_row.append(p)
            p = col_movers.get(a)
            if p is not None and id(p) not in seen_ids:
                seen_ids.add(id(p))
                dead_col.append(p)

        # Fresh candidates: the maximal runs through occupied anchors
        # (deduped by run identity), evaluated on the new occupancy.
        new_row: List[MergePattern] = []
        new_col: List[MergePattern] = []
        seen_runs: Set[Tuple[int, int, int]] = set()
        for a in sorted(anchors):
            if a not in cells:
                continue
            ax, ay = a
            # Quick reject before the capped run walks: a run's bump
            # needs one flanking line completely free, so it is free
            # at the anchor's own coordinate in particular.  This
            # skips solid-interior anchors (dense blobs) at two
            # lookups instead of a 2*max_len walk.
            if (ax, ay + 1) not in cells or (ax, ay - 1) not in cells:
                h = _h_run_of(cells, a, max_len)
                if h is not None:
                    key = (0, ay, h[0])
                    if key not in seen_runs:
                        seen_runs.add(key)
                        p = _h_run_pattern(ay, h[0], h[1], cells)
                        if p is not None:
                            new_row.append(p)
            if (ax + 1, ay) not in cells or (ax - 1, ay) not in cells:
                v = _v_run_of(cells, a, max_len)
                if v is not None:
                    key = (1, ax, v[0])
                    if key not in seen_runs:
                        seen_runs.add(key)
                        p = _v_run_pattern(ax, v[0], v[1], cells)
                        if p is not None:
                            new_col.append(p)
        return dead_row, dead_col, new_row, new_col

    def _dirty_lines(
        self,
        state: SwarmState,
        cells: Set[Cell],
        dirty_rows: Set[int],
        dirty_cols: Set[int],
        max_len: int,
    ) -> Tuple[
        List[MergePattern],
        List[MergePattern],
        List[MergePattern],
        List[MergePattern],
    ]:
        """Line-granular invalidation (the churn-regime strategy): every
        dirty line is re-enumerated wholesale.  Produces the same
        ``(dead, new)`` lists as :meth:`_dirty_runs` modulo entries that
        cancel (a pattern removed and re-derived identically), which the
        shared bookkeeping in :meth:`update` treats identically."""
        rows, cols = state.rows(), state.cols()
        dead_row: List[MergePattern] = []
        dead_col: List[MergePattern] = []
        new_row: List[MergePattern] = []
        new_col: List[MergePattern] = []
        for y in sorted(dirty_rows):
            old = self._row_patterns.get(y)
            if old is None and y not in rows:
                continue  # empty line stayed empty: no-op
            ps = _row_bumps(y, rows[y], cells, max_len) if y in rows else None
            if old:
                dead_row.extend(old.values())
            if ps:
                new_row.extend(ps)
        for x in sorted(dirty_cols):
            old = self._col_patterns.get(x)
            if old is None and x not in cols:
                continue
            ps = _col_bumps(x, cols[x], cells, max_len) if x in cols else None
            if old:
                dead_col.extend(old.values())
            if ps:
                new_col.extend(ps)
        return dead_row, dead_col, new_row, new_col

    def update(self, state: SwarmState, changed: Iterable[Cell]) -> None:
        """Re-derive only the dirty runs and neighborhoods.

        Strategy choice per round: run-granular invalidation costs
        O(changed anchors), line-granular costs O(dirty-line occupancy);
        sparse steady-state rounds take the run path (a round that moves
        k robots re-derives O(k) runs of length <= max_bump_length), and
        churn-heavy rounds — where many changed cells share few lines
        and the tight line scans amortize better — take the line path.
        Both produce the exact same cached pattern sets.
        """
        if not self._primed:
            self.rebuild(state)
            return
        changed = set(changed)
        if not changed:
            return
        cfg = self.cfg
        cells = state.cells

        row_movers, col_movers = self._row_movers, self._col_movers
        if cfg.enable_bump_merges:
            max_len = cfg.max_bump_length
            rows, cols = state.rows(), state.cols()
            # Cost estimate: the run path touches ~5 anchors x 2 axes
            # per changed cell; the line path walks every occupied cell
            # of every dirty line.  The constant favors the line path
            # only under heavy churn (dense dirty bands).
            dirty_rows = {y + dy for _, y in changed for dy in (-1, 0, 1)}
            dirty_cols = {x + dx for x, _ in changed for dx in (-1, 0, 1)}
            run_est = _RUN_COST_FACTOR * len(changed)
            line_est = 0
            for y in dirty_rows:
                xs = rows.get(y)
                if xs is not None:
                    line_est += len(xs)
            for x in dirty_cols:
                ys = cols.get(x)
                if ys is not None:
                    line_est += len(ys)
            if run_est <= line_est:
                dead_row, dead_col, new_row, new_col = self._dirty_runs(
                    cells, changed, max_len
                )
            else:
                dead_row, dead_col, new_row, new_col = self._dirty_lines(
                    state, cells, dirty_rows, dirty_cols, max_len
                )

            # Mover-status bookkeeping, snapshotted before any mutation.
            old_row_m = {m for p in dead_row for m in p.movers}
            new_row_m = {m for p in new_row for m in p.movers}
            old_col_m = {m for p in dead_col for m in p.movers}
            new_col_m = {m for p in new_col for m in p.movers}
            touched = (old_row_m ^ new_row_m) | (old_col_m ^ new_col_m)
            was_mover = {
                c: c in row_movers or c in col_movers for c in touched
            }

            row_patterns, col_patterns = (
                self._row_patterns,
                self._col_patterns,
            )
            for p in dead_row:
                x0, y = p.movers[0]
                line = row_patterns.get(y)
                if line is not None:
                    line.pop(x0, None)
                    if not line:
                        del row_patterns[y]
                for m in p.movers:
                    row_movers.pop(m, None)
            for p in dead_col:
                x, y0 = p.movers[0]
                line = col_patterns.get(x)
                if line is not None:
                    line.pop(y0, None)
                    if not line:
                        del col_patterns[x]
                for m in p.movers:
                    col_movers.pop(m, None)
            for p in new_row:
                x0, y = p.movers[0]
                row_patterns.setdefault(y, {})[x0] = p
                for m in p.movers:
                    row_movers[m] = p
            for p in new_col:
                x, y0 = p.movers[0]
                col_patterns.setdefault(x, {})[y0] = p
                for m in p.movers:
                    col_movers[m] = p
            mover_delta = {
                c
                for c in touched
                if (c in row_movers or c in col_movers) != was_mover[c]
            }
        else:
            mover_delta = set()

        leaf_dirty: Set[Cell] = set(mover_delta)
        for cx, cy in changed:
            for dx in (-1, 0, 1):
                for dy in (-1, 0, 1):
                    leaf_dirty.add((cx + dx, cy + dy))
        cell_patterns = self._cell_patterns
        for c in leaf_dirty:
            p = (
                _leaf_corner_for(cells, c, cfg)
                if c in cells
                and c not in row_movers
                and c not in col_movers
                else None
            )
            if p is not None:
                cell_patterns[c] = p
            else:
                cell_patterns.pop(c, None)

    def candidates(self) -> List[MergePattern]:
        """The full candidate list (bumps first, then leaf/corner)."""
        out: List[MergePattern] = []
        for line in self._row_patterns.values():
            out.extend(line.values())
        for line in self._col_patterns.values():
            out.extend(line.values())
        out.extend(self._cell_patterns.values())
        return out

    def plan(self) -> Tuple[Dict[Cell, Cell], List[MergePattern]]:
        """Resolve the cached candidates; same contract as
        :func:`plan_merges`."""
        return _resolve(self.candidates())


# ----------------------------------------------------------------------
# Per-robot local re-derivation (locality audit; used by tests)
# ----------------------------------------------------------------------
def merge_move_for(view, robot: Cell, cfg: AlgorithmConfig) -> Optional[Cell]:
    """Recompute ``robot``'s merge move using only membership queries.

    ``view`` is anything supporting ``cell in view`` — in tests a
    :class:`repro.core.view.LocalView`, which *raises* if the rule inspects
    a cell outside the viewing radius.  Must agree with :func:`plan_merges`;
    the property tests check exactly that.
    """

    def my_patterns(c: Cell) -> List[MergePattern]:
        """Candidate patterns having ``c`` as a mover."""
        out: List[MergePattern] = []
        if cfg.enable_bump_merges:
            for axis, far_near in (
                ((1, 0), ((0, 1), (0, -1))),
                ((1, 0), ((0, -1), (0, 1))),
                ((0, 1), ((1, 0), (-1, 0))),
                ((0, 1), ((-1, 0), (1, 0))),
            ):
                far, near = far_near
                # Expand the maximal run through c along `axis`, capping the
                # walk so an over-long run is abandoned without querying
                # cells beyond the viewing radius.
                cap = cfg.max_bump_length
                lo = c
                steps = 0
                while steps <= cap and sub(lo, axis) in view:
                    lo = sub(lo, axis)
                    steps += 1
                hi = c
                while steps <= cap and add(hi, axis) in view:
                    hi = add(hi, axis)
                    steps += 1
                k = (hi[0] - lo[0]) + (hi[1] - lo[1]) + 1
                if k > cfg.max_bump_length or steps > cap:
                    continue
                run = tuple(
                    add(lo, (axis[0] * i, axis[1] * i)) for i in range(k)
                )
                if any(add(rc, far) in view for rc in run):
                    continue
                supports = tuple(
                    add(rc, near) for rc in run if add(rc, near) in view
                )
                if not supports:
                    continue
                out.append(
                    MergePattern("bump", run, near, frozenset(supports))
                )
        if not out:
            nbrs = [n for n in neighbors4(c) if n in view]
            if len(nbrs) == 1:
                out.append(
                    MergePattern(
                        "leaf", (c,), sub(nbrs[0], c), frozenset(nbrs)
                    )
                )
            elif (
                cfg.enable_corner_merges
                and len(nbrs) == 2
                and perpendicular(sub(nbrs[0], c), sub(nbrs[1], c))
            ):
                diag = add(sub(nbrs[0], c), sub(nbrs[1], c))
                if add(c, diag) in view:
                    out.append(
                        MergePattern(
                            "corner",
                            (c,),
                            diag,
                            frozenset((add(c, diag),)),
                        )
                    )
        return out

    mine = my_patterns(robot)
    if not mine:
        return None

    def target_moves(c: Cell) -> bool:
        """Does the robot on cell ``c`` move in any candidate pattern?"""
        return c in view and bool(my_patterns(c))

    def robot_is_frozen() -> bool:
        """Is ``robot`` a support/target of a neighbor's candidate pattern?

        Freeze sources: a leaf pointing at us or a bump landing on us
        (cardinal neighbors), or a corner targeting our cell (diagonal
        neighbors).
        """
        for nb in neighbors4(robot):
            if nb in view:
                for p in my_patterns(nb):
                    if robot in p.frozen:
                        return True
        for d in ((1, 1), (-1, 1), (-1, -1), (1, -1)):
            nb = add(robot, d)
            if nb in view:
                for p in my_patterns(nb):
                    if robot in p.frozen:
                        return True
        return False

    surviving: List[MergePattern] = []
    for p in mine:
        if p.kind == "bump":
            surviving.append(p)
            continue
        if robot_is_frozen():
            continue
        if p.kind == "leaf" and any(target_moves(t) for t in p.frozen):
            continue
        surviving.append(p)
    moves = compose_moves(surviving)
    return moves.get(robot)
