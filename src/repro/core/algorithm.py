"""The gathering controller (paper Figure 11).

Every round, conceptually at every robot (evaluated centrally over local
predicates — see :mod:`repro.core.view` for the locality audit):

1. **Merge** — if the robot is part of a merge pattern it hops with it
   (Section 3.1);
2. **Run operations** — a runner terminates per Table 1, passes an
   approaching run, or reshapes (fold) and hands its state onward
   (Sections 3.2/3.3);
3. **Start new runs** — every ``L`` rounds, robots at quasi-line endpoint
   corners (Start-A / Start-B) spawn new runs (Fig. 7).

The controller plugs into :class:`repro.engine.FsyncEngine`.
"""

from __future__ import annotations

from typing import Dict, Mapping, Optional, Tuple

from repro.core.config import AlgorithmConfig
from repro.core.incremental import IncrementalPipeline
from repro.core.patterns import plan_merges
from repro.core.quasiline import run_start_sites
from repro.core.runs import RunManager
from repro.engine.events import EventLog
from repro.engine.executors import (
    default_plan_workers,
    make_plan_executor,
)
from repro.engine.scheduler import GatherResult
from repro.grid.geometry import Cell
from repro.grid.occupancy import SwarmState
from repro.grid.ring import RingSet


class GatherOnGrid:
    """Per-round planner for the paper's gathering algorithm."""

    def __init__(self, cfg: Optional[AlgorithmConfig] = None) -> None:
        self.cfg = cfg or AlgorithmConfig()
        self.run_manager = RunManager(self.cfg)
        self.events = EventLog()
        self._last_patterns: Tuple[str, ...] = ()
        self._pipeline = (
            IncrementalPipeline(self.cfg) if self.cfg.incremental else None
        )
        self._shard_pool = None
        self._plan_round_index = 0

    # Instrumentation read by the engine's metrics.
    @property
    def active_run_count(self) -> int:
        return self.run_manager.active_run_count

    # ------------------------------------------------------------------
    def _shard_executor(self):
        """The lazily created planning executor (``cfg.shard_planning``,
        backend per ``cfg.shard_backend``).

        The partition/reduce in :meth:`RunManager.plan` is
        executor-agnostic: the thread backend plugs in through the
        order-preserving ``map`` contract, the process/subinterpreter
        backends through ``snapshot_map`` (shared-memory round
        snapshots, :mod:`repro.engine.executors`).  Worker lifecycle
        telemetry (``worker_failed`` / ``worker_respawned``) lands in
        this controller's event log — diagnostics only, excluded from
        trajectory digests like ``boundary_respliced``.
        """
        if self._shard_pool is None:
            self._shard_pool = make_plan_executor(
                self.cfg.shard_backend,
                default_plan_workers(self.cfg.shard_workers),
                on_event=self._emit_worker_event,
            )
        return self._shard_pool

    def _emit_worker_event(self, kind: str, **data) -> None:
        """Forward executor lifecycle telemetry into the round-ordered
        log.  The pool emits exactly the two kinds below; narrowing to
        literals keeps the event schema statically checkable against
        the docs (reprolint E1)."""
        if kind == "worker_failed":
            self.events.emit(
                self._plan_round_index, "worker_failed", **data
            )
        elif kind == "worker_respawned":
            self.events.emit(
                self._plan_round_index, "worker_respawned", **data
            )
        else:
            raise ValueError(f"unknown worker event kind {kind!r}")

    def close(self) -> None:
        """Release the shard executor (engines call this after a run;
        safe to call repeatedly, and a closed controller can plan again
        — the executor is recreated on demand)."""
        if self._shard_pool is not None:
            pool = self._shard_pool
            self._shard_pool = None
            pool.close()

    def __enter__(self) -> "GatherOnGrid":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        """Context-manager exit: the executor is released even when a
        round raises (the lifecycle regression tests pin this)."""
        self.close()
        return False

    # ------------------------------------------------------------------
    def plan_round(
        self, state: SwarmState, round_index: int
    ) -> Mapping[Cell, Cell]:
        cfg = self.cfg
        occupied = state.cells
        pipeline = self._pipeline
        # Round anchor for executor lifecycle events emitted mid-plan.
        self._plan_round_index = round_index

        # Step 1: merge operations (state-free).
        if pipeline is not None:
            merge_moves, patterns = pipeline.plan_merges(state)
            # Audit trail of the incremental boundary maintenance: one
            # event per round listing every spliced/re-traced arc as a
            # ``(cycle_id, arc_sides, removed_sides)`` triple (cycle id
            # -1 = full-rebuild fallback).  Diagnostic only — excluded
            # from the trajectory digests, since full-rescan mode does
            # no splicing.
            resplices = pipeline.take_resplices()
            if resplices:
                self.events.emit(
                    round_index,
                    "boundary_respliced",
                    arcs=[list(r) for r in resplices],
                )
        else:
            merge_moves, patterns = plan_merges(state, cfg)
        self._last_patterns = tuple(p.kind for p in patterns)

        if not cfg.enable_runs:
            return merge_moves

        contours = (
            pipeline.contours(state)
            if pipeline is not None
            else RingSet.from_cells(occupied)
        )
        located, lost = self.run_manager.locate(contours)

        # Step 3 (checked before acting so fresh runs reshape this same
        # round, like the paper's start hop): start new runs every L rounds.
        starts_due = round_index % cfg.run_start_interval == 0 and (
            cfg.pipelining or round_index == 0
        )
        if starts_due:
            # Incremental mode reads the persistent start-site index
            # (repaired per splice); full-rescan mode walks the contours.
            # Both admit bit-identical runs (the equivalence suite pins
            # it).
            sites = (
                pipeline.start_sites(state)
                if pipeline is not None
                else run_start_sites(contours.rings, cfg.start_straight_steps)
            )
            started = self.run_manager.start_runs(
                contours, sites, round_index, located
            )
            for run in started:
                self.events.emit(
                    round_index,
                    "run_start",
                    run_id=run.run_id,
                    robot=run.robot,
                    direction=run.direction,
                    axis=run.axis,
                )
            if started:
                located, lost = self.run_manager.locate(contours)

        # Step 2: run operations (optionally planned in parallel shards).
        run_moves = self.run_manager.plan(
            contours,
            occupied,
            merge_moves,
            located,
            lost,
            round_index,
            executor=(
                self._shard_executor() if cfg.shard_planning else None
            ),
        )
        for robot, target in run_moves.items():
            self.events.emit(
                round_index, "fold", robot=robot, target=target
            )

        moves: Dict[Cell, Cell] = dict(merge_moves)
        moves.update(run_moves)  # key sets are disjoint by construction
        return moves

    # ------------------------------------------------------------------
    def notify_applied(
        self,
        state: SwarmState,
        round_index: int,
        moves: Mapping[Cell, Cell],
        merged: int,
    ) -> None:
        if merged:
            self.events.emit(round_index, "merge", removed=merged)
        if not self.cfg.enable_runs:
            return
        for run, reason in self.run_manager.finalize(moves, state.cells):
            if reason is not None:
                self.events.emit(
                    round_index,
                    "run_stop",
                    run_id=run.run_id,
                    reason=reason,
                    robot=run.robot,
                )


def gather(
    cells,
    cfg: Optional[AlgorithmConfig] = None,
    *,
    max_rounds: Optional[int] = None,
    check_connectivity: bool = True,
    track_boundary: bool = False,
    on_round=None,
) -> GatherResult:
    """Convenience entry point: gather a swarm, return the result.

    ``cells`` is any iterable of ``(x, y)`` robot positions forming a
    connected swarm.  See :class:`repro.core.config.AlgorithmConfig` for
    the paper's constants and the ablation knobs.

    Thin shim over ``simulate(strategy="grid")`` — the facade
    (:func:`repro.api.simulate`) is the canonical entry point and the
    one that also runs every baseline; this wrapper stays as the
    quickstart spelling and returns the legacy :class:`GatherResult`
    (same metrics/events/state objects, byte-identical trajectories).
    """
    from repro.api import simulate

    result = simulate(
        cells,
        strategy="grid",
        config=cfg,
        max_rounds=max_rounds,
        check_connectivity=check_connectivity,
        track_boundary=track_boundary,
        on_round=on_round,
    )
    return GatherResult.from_run_result(result)
