"""Incremental per-round pipeline: dirty-region restricted rescans.

The seed implementation re-walked the whole swarm every round — boundary
extraction, merge-pattern enumeration, and the connectivity safety check
were each O(n) — so simulating the paper's O(n)-round algorithm cost
O(n^2) wall-clock.  This module restricts the per-round work to the *dirty
region*: the cells whose occupancy flipped in the last round plus their
8-neighborhoods, as recorded by
:meth:`repro.grid.occupancy.SwarmState.apply_moves`.

**What "dirty" means.**  A cell is dirty for a round iff some cell within
Chebyshev distance 1 of it changed occupancy when the previous round's
moves were applied.  Every predicate the pipeline caches (contour side
successors, bump-run membership and free sides, leaf/corner arity) reads
only cells within Chebyshev distance 1 of its anchor cell — or, for bump
rows/columns, only the three-line band around its line — so a cached value
whose anchor is not dirty is still exact.  See ``docs/incremental.md`` for
the invariant catalogue and the equality argument.

**Boundaries are persistent linked rings.**  Contours live in a
:class:`repro.grid.ring.RingSet`: each round, only the *dirty arcs* of
affected rings are re-traced and spliced in place (O(dirty arc)), instead
of rebuilding whole ``Boundary`` tuples per changed cycle (O(contour)).
Ring consumers (run location, run planning, start sites) navigate stable
:class:`~repro.grid.ring.RingNode` references; the frozen-tuple
``Boundary`` remains available through ``to_boundary()`` for analysis and
the equivalence suite.

**Bit-identical by construction.**  The caches reproduce the exact
candidate/boundary *sets* of the full rescans, and every consumer of those
sets (conflict resolution, run location, move composition) is
order-insensitive or consumes canonically ordered input, so trajectories
(moves, rounds, merges, events) are identical with the pipeline on or off
— ``tests/test_incremental_equivalence.py`` asserts this against golden
traces captured from the seed implementation.

The pipeline keys its validity on ``SwarmState.version``: it applies the
``last_changed`` delta when the state advanced by exactly one
``apply_moves`` since the last sync, and falls back to a full rebuild on
any other history (fresh state, replays, external mutation of
``state.cells`` is *not* detected — engines must go through
``apply_moves``).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.core.config import AlgorithmConfig
from repro.core.patterns import MergeCache, MergePattern
from repro.core.quasiline import StartSite, StartSiteIndex
from repro.grid.geometry import Cell
from repro.grid.occupancy import SwarmState
from repro.grid.ring import RingSet


class IncrementalPipeline:
    """Owns the per-round caches of one controller instance."""

    def __init__(self, cfg: AlgorithmConfig) -> None:
        self.cfg = cfg
        self.merge_cache = MergeCache(cfg)
        self.ring_set = RingSet()
        # The start-site index rides the ring set's structural hooks:
        # every splice repairs exactly the candidate heads whose windows
        # the arc can reach, so start rounds read sites without walking
        # contours.
        self.site_index = StartSiteIndex(cfg.start_straight_steps)
        self.ring_set.observer = self.site_index
        # The state is held by reference (not id()): a freed state's id
        # could be reused by a new SwarmState and alias stale caches.
        self._state: Optional[SwarmState] = None
        self._version: Optional[int] = None

    # ------------------------------------------------------------------
    def _sync(self, state: SwarmState) -> None:
        """Bring the caches up to date with ``state``.

        Delta path: same state object, version advanced by exactly one
        ``apply_moves`` — consume ``state.last_changed``.  Anything else
        (first use, a different state, a version jump) rebuilds fully.
        """
        if self._state is state and self._version == state.version:
            return  # already synced this round
        cells = state.cells
        if (
            self._state is state
            and self._version is not None
            and state.version == self._version + 1
        ):
            changed = state.last_changed
            self.merge_cache.update(state, changed)
            self.ring_set.update(cells, changed, rows=state.rows())
        else:
            self.merge_cache.rebuild(state)
            self.ring_set.rebuild(cells)
        self._state = state
        self._version = state.version

    # ------------------------------------------------------------------
    def plan_merges(
        self, state: SwarmState
    ) -> Tuple[Dict[Cell, Cell], List[MergePattern]]:
        """Drop-in replacement for :func:`repro.core.patterns.plan_merges`."""
        self._sync(state)
        return self.merge_cache.plan()

    def contours(self, state: SwarmState) -> RingSet:
        """The maintained linked-ring contours of ``state`` (replaces the
        per-round :func:`repro.grid.boundary.extract_boundaries` call)."""
        self._sync(state)
        return self.ring_set

    def start_sites(self, state: SwarmState) -> List[StartSite]:
        """Run start sites from the persistent index — bit-identical
        admissions to :func:`repro.core.quasiline.run_start_sites` over
        the same contours, without the per-start-round contour walk."""
        self._sync(state)
        return self.site_index.sites(self.ring_set)

    def take_resplices(self) -> List[Tuple[int, int, int]]:
        """Drain the ``(ring_id, arc_sides, removed_sides)`` records of
        the incremental boundary work since the last drain (for the
        controller's ``boundary_respliced`` events)."""
        out = self.ring_set.last_resplices
        self.ring_set.last_resplices = []
        return out
