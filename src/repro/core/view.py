"""Local views with locality enforcement.

The paper's robots see only the L1 ball of radius 20 around themselves
(Section 1).  The simulator evaluates all rules centrally for speed, but the
rules are written against a *membership interface* (``cell in view``), so the
test suite can re-evaluate any decision against a :class:`LocalView` and
prove that no rule ever inspected a cell outside the radius — that is the
locality audit of the reproduction.
"""

from __future__ import annotations

from typing import FrozenSet, Set

from repro.grid.geometry import Cell, l1_distance
from repro.grid.occupancy import SwarmState


class LocalityError(AssertionError):
    """A decision rule inspected a cell outside the robot's viewing range."""

    def __init__(self, center: Cell, cell: Cell, radius: int) -> None:
        super().__init__(
            f"locality violation: rule at {center} looked at {cell}, "
            f"L1 distance {l1_distance(center, cell)} > radius {radius}"
        )
        self.center = center
        self.cell = cell
        self.radius = radius


class LocalView:
    """Snapshot of the occupied cells within L1 ``radius`` of ``center``.

    Supports the same ``in`` protocol as :class:`SwarmState`.  Any membership
    query outside the ball raises :class:`LocalityError` — views never lie,
    they refuse.
    """

    __slots__ = ("center", "radius", "_occupied")

    def __init__(
        self, state: SwarmState | Set[Cell], center: Cell, radius: int
    ) -> None:
        occupied = state.cells if isinstance(state, SwarmState) else state
        self.center = center
        self.radius = radius
        cx, cy = center
        self._occupied: FrozenSet[Cell] = frozenset(
            c
            for c in occupied
            if abs(c[0] - cx) + abs(c[1] - cy) <= radius
        )

    def __contains__(self, cell: Cell) -> bool:
        if l1_distance(self.center, cell) > self.radius:
            raise LocalityError(self.center, cell, self.radius)
        return cell in self._occupied

    @property
    def cells(self) -> FrozenSet[Cell]:
        """All occupied cells in view (for iteration in tests)."""
        return self._occupied

    def __len__(self) -> int:
        return len(self._occupied)

    def visible(self, cell: Cell) -> bool:
        """True if ``cell`` lies inside the viewing range (occupied or not)."""
        return l1_distance(self.center, cell) <= self.radius
