"""The connectivity-tolerant variant of the paper's gathering algorithm.

PR 4 showed — and the nondeterminism explorer certified — that the
stock algorithm's safety argument is an FSYNC theorem: under SSYNC
subset activation, partially executed merge patterns can disconnect the
swarm (61 of the 63 fixed pentominoes are breakable).  This module
hardens the algorithm with a *local subset-safety certificate*: a robot
defers its hop whenever executing an arbitrary subset of the admitted
moves could disconnect the swarm.

The certificate is the **stationary-core lemma**.  Let ``O`` be the
occupied cells, ``M`` a set of planned moves, and ``S = O − sources(M)``
the stationary core (robots guaranteed not to move this round).  If

1. ``S`` is nonempty and 4-connected,
2. every move's source has a 4-neighbor in ``S``, and
3. every move's target is in ``S`` or has a 4-neighbor in ``S``,

then *every* subset ``A ⊆ M`` preserves connectivity: after executing
``A``, each robot is either in ``S``, still at a source (4-adjacent to
``S`` by 2), or at a target (in or 4-adjacent to ``S`` by 3) — every
occupied cell touches the connected core, so the swarm is connected.
The quantifier over subsets is exactly what SSYNC adversaries (and the
explorer's exhaustive branching) exploit, which is why certification of
this variant reports zero breakable shapes *by construction*, with the
explorer as the machine-checked acceptance oracle.

Moves are admitted greedily in sorted source order: each planned move
joins the kept set iff the certificate still holds for the enlarged
set.  Greedy admission is monotone and deterministic (no fixpoint
oscillation), and it naturally keeps the *safe* fraction of a merge
pattern — e.g. the far-end bump mover whose target is an occupied cell
of the supported row — while deferring the movers whose safety depended
on FSYNC simultaneity.  Deferred robots simply retry in a later round:
progress slows by a constant factor, safety becomes unconditional.
"""

from __future__ import annotations

from typing import Dict, Mapping, Set

from repro.core.algorithm import GatherOnGrid
from repro.grid.connectivity import is_connected
from repro.grid.geometry import Cell, neighbors4
from repro.grid.occupancy import SwarmState


def certified_subset(
    occupied: Set[Cell], planned: Mapping[Cell, Cell]
) -> Dict[Cell, Cell]:
    """The greedily admitted subset of ``planned`` that satisfies the
    stationary-core certificate (module docstring) against ``occupied``.

    Pure: reads its arguments, mutates nothing observable — admission
    order is the sorted source order, so the result is a deterministic
    function of ``(occupied, planned)``.
    """
    kept: Dict[Cell, Cell] = {}
    for src, dst in sorted(planned.items()):
        trial = dict(kept)
        trial[src] = dst
        if _certificate_holds(occupied, trial):
            kept = trial
    return kept


def _certificate_holds(
    occupied: Set[Cell], moves: Mapping[Cell, Cell]
) -> bool:
    """Whether ``moves`` is subset-safe over ``occupied`` per the
    stationary-core lemma."""
    core = occupied - set(moves)
    if not core:
        return False
    if not is_connected(core):
        return False
    for src, dst in moves.items():
        if not any(nb in core for nb in neighbors4(src)):
            return False
        if dst not in core and not any(
            nb in core for nb in neighbors4(dst)
        ):
            return False
    return True


class TolerantGatherOnGrid(GatherOnGrid):
    """The paper's planner with the subset-safety admission filter.

    Identical bookkeeping to :class:`GatherOnGrid` — merges, runs,
    pipelining, sharded planning — but :meth:`plan_round` passes the
    stock plan through :func:`certified_subset` before returning it.
    The run manager's finalize path already tolerates unexecuted moves
    (the SSYNC engines drop arbitrary subsets), so deferral needs no
    extra state: a deferred robot's pattern simply re-fires while it
    still matches.

    Emits a ``move_deferred`` event naming the deferred sources whenever
    the filter withholds at least one move.
    """

    def plan_round(
        self, state: SwarmState, round_index: int
    ) -> Mapping[Cell, Cell]:
        planned = dict(super().plan_round(state, round_index))
        kept = certified_subset(state.cells, planned)
        if len(kept) < len(planned):
            deferred = sorted(src for src in planned if src not in kept)
            self.events.emit(
                round_index, "move_deferred", robots=deferred
            )
        return kept
