"""Algorithm configuration.

The defaults are the paper's constants (Section 5, Lemma 3).  Every knob
exists for a reason documented on the field — most feed the ablation
experiments E5-E7 of DESIGN.md.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.constants import (
    MAX_BUMP_LENGTH,
    RUN_PASSING_DISTANCE,
    RUN_START_INTERVAL,
    VIEWING_RADIUS,
)


@dataclass(frozen=True)
class AlgorithmConfig:
    """Tunable parameters of :class:`repro.core.algorithm.GatherOnGrid`."""

    #: L1 viewing radius (paper: 20).  Bounds merge pattern size, run
    #: crowding detection, and run termination rule 1.
    viewing_radius: int = VIEWING_RADIUS

    #: Rounds between run-start checks, the paper's ``L`` (paper: 22).
    run_start_interval: int = RUN_START_INTERVAL

    #: Boundary distance at which opposite runs start passing (paper: 3).
    run_passing_distance: int = RUN_PASSING_DISTANCE

    #: Maximum length ``k`` of a bump merge (paper Fig. 2; bounded by the
    #: viewing radius).  Ablation E7 sweeps this.
    max_bump_length: int = MAX_BUMP_LENGTH

    #: When False, runs may start only at round 0; disables the paper's
    #: pipelining (Section 4.2).  Ablation E6.
    pipelining: bool = True

    #: Enable the state-free bump merges (Fig. 2, k >= 1).  Ablations only;
    #: leaf merges stay on (a degree-1 robot hopping onto its only neighbor
    #: is the k=1 merge and is always safe).
    enable_bump_merges: bool = True

    #: Enable the state-free corner merges (convex corner onto occupied
    #: diagonal; the paper's small-k merges on solid material).
    enable_corner_merges: bool = True

    #: Enable run states entirely.  With runs off, mergeless swarms (rings,
    #: staircase corridors) stall — that is the paper's whole point, and
    #: ablation E6/E7 demonstrates it.
    enable_runs: bool = True

    #: Minimum straight stretch (number of forward steps in the same
    #: cardinal direction) required ahead of a corner for it to be a run
    #: start site.  The paper's quasi-line endpoints have 3 aligned robots,
    #: i.e. 2 straight steps; we follow Definition 1 with 2.
    start_straight_steps: int = 2

    #: Use the dirty-region incremental pipeline
    #: (:mod:`repro.core.incremental`): cache boundaries and merge
    #: candidates across rounds and rescan only changed neighborhoods.
    #: Trajectories are bit-identical with this on or off (the equivalence
    #: suite asserts it); the knob exists for A/B benchmarks and as an
    #: escape hatch.
    incremental: bool = True

    #: Plan the per-run reshapement work in parallel shards (contiguous
    #: groups of runs partitioned by contour).  Per-run planning is a
    #: pure function of the round's shared read-only context, so any
    #: partition is sound and results are reduced deterministically in
    #: run-id order — trajectories are bit-identical with this on or off
    #: (the equivalence suite asserts it).  Off by default: the stock
    #: executor is a thread pool, which only pays off on
    #: GIL-free interpreters or with very large per-contour run counts.
    shard_planning: bool = False

    #: Worker count for sharded planning; 0 picks ``min(4, cpu_count)``.
    shard_workers: int = 0

    #: Executor backend for sharded planning (``shard_planning``):
    #: ``"thread"`` (stock pool; a speedup only on GIL-free
    #: interpreters), ``"process"`` (persistent worker processes fed a
    #: shared-memory round snapshot — real multi-core planning), or
    #: ``"subinterp"`` (per-interpreter workers, requires an interpreter
    #: with ``concurrent.futures.InterpreterPoolExecutor``).  All
    #: backends are bit-identical to serial planning (the equivalence
    #: suite asserts it); the choice is purely a performance knob.
    shard_backend: str = "thread"

    @classmethod
    def with_radius(cls, viewing_radius: int, **overrides) -> "AlgorithmConfig":
        """A config for a non-default viewing radius with the dependent
        fields derived consistently: the maximum bump length is the
        largest ``k`` satisfying the locality budget ``2k + 2 <= r``
        (DESIGN.md Section 3), floored at the always-safe ``k = 1``.

        Extra keyword overrides are passed through (and may override the
        derived ``max_bump_length`` as well).
        """
        kwargs = {
            "viewing_radius": viewing_radius,
            "max_bump_length": max(1, (viewing_radius - 2) // 2),
        }
        kwargs.update(overrides)
        return cls(**kwargs)

    def __post_init__(self) -> None:
        if self.viewing_radius < 5:
            raise ValueError("viewing radius must be >= 5 (paper needs 11+)")
        if self.run_start_interval < 1:
            raise ValueError("run start interval must be >= 1")
        if self.run_passing_distance < 1:
            raise ValueError("run passing distance must be >= 1")
        if not 1 <= self.max_bump_length:
            raise ValueError("max bump length must be >= 1")
        if 2 * self.max_bump_length + 2 > self.viewing_radius:
            raise ValueError(
                "need 2*max_bump_length + 2 <= viewing_radius: every mover "
                "must locally verify adjacent patterns freezing its "
                "co-movers (DESIGN.md Section 3)"
            )
        if self.start_straight_steps < 1:
            raise ValueError("start_straight_steps must be >= 1")
        if self.shard_workers < 0:
            raise ValueError(
                "shard_workers must be >= 0 (0 = auto: min(4, cpu_count))"
            )
        if self.shard_backend not in ("thread", "process", "subinterp"):
            raise ValueError(
                f"shard_backend must be one of 'thread', 'process', "
                f"'subinterp', got {self.shard_backend!r}"
            )
