"""Quasi lines, stairways, and run start sites.

Paper Definition 1: a *horizontal quasi line* is a subboundary whose first
and last three robots are horizontally aligned, all of whose horizontal
aligned subchains have >= 3 robots and all of whose vertical subchains have
<= 2 robots (vertical quasi lines analogously).  *Stairways* are subchains of
alternating left and right turns (Fig. 16).  In a mergeless swarm the outer
boundary decomposes into quasi lines and stairways (proof of Lemma 1), and
runs start at quasi-line endpoints (Fig. 7: Start-A / Start-B).

Run start detection is purely local: a boundary robot starts a run in a
traversal direction when the next ``start_straight_steps`` boundary steps
ahead go straight in one cardinal direction while the step behind turns
perpendicular — that is the endpoint corner of a quasi line.  A robot that is
such an endpoint for both traversal directions is the paper's Start-B and
spawns two runs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from repro.grid.boundary import Boundary
from repro.grid.geometry import Cell, sub
from repro.grid.ring import BoundaryRing

# ----------------------------------------------------------------------
# Definition 1 predicates (analysis/tests; the algorithm uses start sites)
# ----------------------------------------------------------------------
def _chain_segments(chain: Sequence[Cell]) -> List[Tuple[str, int]]:
    """Decompose a robot chain into maximal aligned segments.

    Returns ``(axis, length)`` pairs with axis ``"h"``/``"v"`` and length in
    robots.  Consecutive chain robots must be 4- or diagonal-adjacent; only
    cardinal steps extend segments (diagonal steps break them).
    """
    if not chain:
        return []
    segs: List[Tuple[str, int]] = []
    cur_axis: Optional[str] = None
    cur_len = 1
    for a, b in zip(chain, chain[1:]):
        dx, dy = sub(b, a)
        axis = "h" if dy == 0 and dx != 0 else ("v" if dx == 0 else None)
        if axis is None:  # diagonal or repeated robot: break the segment
            if cur_axis is not None:
                segs.append((cur_axis, cur_len))
                cur_axis, cur_len = None, 1
            continue
        if axis == cur_axis:
            cur_len += 1
        else:
            if cur_axis is not None:
                segs.append((cur_axis, cur_len))
            cur_axis, cur_len = axis, 2  # both endpoints of the step
    if cur_axis is not None:
        segs.append((cur_axis, cur_len))
    return segs


def is_quasi_line(chain: Sequence[Cell], axis: str) -> bool:
    """Definition 1 check for a horizontal (``axis="h"``) or vertical
    (``axis="v"``) quasi line."""
    if axis not in ("h", "v"):
        raise ValueError("axis must be 'h' or 'v'")
    if len(chain) < 3:
        return False
    segs = _chain_segments(chain)
    if not segs:
        return False
    other = "v" if axis == "h" else "h"
    # 1. first and last three robots aligned along `axis`
    if segs[0][0] != axis or segs[0][1] < 3:
        return False
    if segs[-1][0] != axis or segs[-1][1] < 3:
        return False
    # 2. all `axis` subchains have >= 3 robots; 3. all perpendicular
    #    subchains have <= 2 robots
    for seg_axis, seg_len in segs:
        if seg_axis == axis and seg_len < 3:
            return False
        if seg_axis == other and seg_len > 2:
            return False
    return True


def is_stairway(chain: Sequence[Cell]) -> bool:
    """True for alternating left/right unit turns (paper Fig. 16): every
    aligned segment between the endpoints has exactly 2 robots."""
    if len(chain) < 3:
        return False
    segs = _chain_segments(chain)
    if len(segs) < 2:
        return False
    return all(seg_len == 2 for _, seg_len in segs)


def boundary_segments(boundary: Boundary) -> List[Tuple[str, int, int]]:
    """Maximal aligned segments of a boundary cycle.

    Returns ``(axis, start_index, length)`` with indices into
    ``boundary.robots``; used by the analysis layer to verify the structure
    theorem behind Lemma 1 (mergeless => quasi lines + stairways).
    """
    robots = boundary.robots
    n = len(robots)
    if n < 2:
        return []
    out: List[Tuple[str, int, int]] = []
    # scan linearly; good enough for analysis (cyclic wrap handled by caller)
    i = 0
    while i < n - 1:
        dx, dy = sub(robots[i + 1], robots[i])
        axis = "h" if dy == 0 and dx != 0 else ("v" if dx == 0 else None)
        if axis is None:
            i += 1
            continue
        j = i + 1
        while j < n - 1 and sub(robots[j + 1], robots[j]) == (dx, dy):
            j += 1
        out.append((axis, i, j - i + 1))
        i = j
    return out


# ----------------------------------------------------------------------
# Run start sites (paper Fig. 7)
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class StartSite:
    """A boundary position at which a robot may start a run.

    ``boundary_index`` indexes the canonical contour list (tuple
    boundaries or linked rings alike); ``position`` indexes the collapsed
    robot cycle; ``direction`` is the traversal direction (+1 with the
    swarm on the left / -1 reversed) in which the straight stretch
    extends.  ``prev`` is the boundary robot behind the site against
    ``direction`` — the context a fresh run remembers to re-identify its
    position, precomputed here so consumers need not re-walk the contour.
    """

    boundary_index: int
    position: int
    robot: Cell
    direction: int
    stretch_dir: Cell  # the cardinal direction of the quasi line ahead
    prev: Optional[Cell] = None


def run_start_sites(
    boundaries: Sequence[Boundary | BoundaryRing], straight_steps: int = 2
) -> List[StartSite]:
    """All run start sites over all boundary cycles.

    A site is the *endpoint of a maximal straight stretch*:
    ``straight_steps`` straight cardinal steps ahead, while the step behind
    does not continue the stretch — it may turn perpendicularly (the paper's
    quasi-line-meets-quasi-line corner) or step diagonally along the contour
    (the quasi-line-meets-stairway transition; stairway robots sit in
    concave notches, so the contour skips them diagonally).  A robot
    matching in both traversal directions is Start-B and yields two sites.

    Accepts frozen :class:`Boundary` tuples and linked
    :class:`~repro.grid.ring.BoundaryRing` contours alike; rings
    materialize their collapsed robot cycle once per call (start rounds
    only, every ``run_start_interval`` rounds), and the scan is shared so
    both representations yield byte-identical site lists.
    """
    sites: List[StartSite] = []
    for b_idx, boundary in enumerate(boundaries):
        robots = (
            boundary.robots_cycle()
            if isinstance(boundary, BoundaryRing)
            else boundary.robots
        )
        n = len(robots)
        if n < straight_steps + 2:
            continue
        # Precompute the forward step vectors once: the straightness
        # probes below reduce to array comparisons instead of repeated
        # per-(site, direction, step) cell subtractions — this scan walks
        # every boundary robot each start round and showed up in
        # profiles.
        diffs: List[Cell] = []
        px, py = robots[0]
        for j in range(1, n + 1):
            cx, cy = robots[j % n]
            diffs.append((cx - px, cy - py))
            px, py = cx, cy
        for i in range(n):
            for direction in (1, -1):
                if direction == 1:
                    first = diffs[i]
                    if abs(first[0]) + abs(first[1]) != 1:
                        continue
                    if any(
                        diffs[(i + k) % n] != first
                        for k in range(1, straight_steps)
                    ):
                        continue
                    bx, by = diffs[i - 1]
                    behind = (-bx, -by)
                else:
                    fx, fy = diffs[i - 1]
                    first = (-fx, -fy)
                    if abs(fx) + abs(fy) != 1:
                        continue
                    if any(
                        diffs[(i - k - 1) % n] != (fx, fy)
                        for k in range(1, straight_steps)
                    ):
                        continue
                    behind = diffs[i]
                if behind == first:
                    continue  # mid-stretch, not an endpoint
                if behind == (-first[0], -first[1]):
                    continue  # 1-thick line endpoint: leaf merges handle it
                sites.append(
                    StartSite(
                        boundary_index=b_idx,
                        position=i,
                        robot=robots[i],
                        direction=direction,
                        stretch_dir=first,
                        prev=robots[(i - direction) % n],
                    )
                )
    return sites
