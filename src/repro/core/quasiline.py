"""Quasi lines, stairways, and run start sites.

Paper Definition 1: a *horizontal quasi line* is a subboundary whose first
and last three robots are horizontally aligned, all of whose horizontal
aligned subchains have >= 3 robots and all of whose vertical subchains have
<= 2 robots (vertical quasi lines analogously).  *Stairways* are subchains of
alternating left and right turns (Fig. 16).  In a mergeless swarm the outer
boundary decomposes into quasi lines and stairways (proof of Lemma 1), and
runs start at quasi-line endpoints (Fig. 7: Start-A / Start-B).

Run start detection is purely local: a boundary robot starts a run in a
traversal direction when the next ``start_straight_steps`` boundary steps
ahead go straight in one cardinal direction while the step behind turns
perpendicular — that is the endpoint corner of a quasi line.  A robot that is
such an endpoint for both traversal directions is the paper's Start-B and
spawns two runs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.errors import InvariantError
from repro.grid.boundary import Boundary
from repro.grid.geometry import Cell, sub
from repro.grid.ring import BoundaryRing, RingNode, RingSet

# ----------------------------------------------------------------------
# Definition 1 predicates (analysis/tests; the algorithm uses start sites)
# ----------------------------------------------------------------------
def _chain_segments(chain: Sequence[Cell]) -> List[Tuple[str, int]]:
    """Decompose a robot chain into maximal aligned segments.

    Returns ``(axis, length)`` pairs with axis ``"h"``/``"v"`` and length in
    robots.  Consecutive chain robots must be 4- or diagonal-adjacent; only
    cardinal steps extend segments (diagonal steps break them).
    """
    if not chain:
        return []
    segs: List[Tuple[str, int]] = []
    cur_axis: Optional[str] = None
    cur_len = 1
    for a, b in zip(chain, chain[1:]):
        dx, dy = sub(b, a)
        axis = "h" if dy == 0 and dx != 0 else ("v" if dx == 0 else None)
        if axis is None:  # diagonal or repeated robot: break the segment
            if cur_axis is not None:
                segs.append((cur_axis, cur_len))
                cur_axis, cur_len = None, 1
            continue
        if axis == cur_axis:
            cur_len += 1
        else:
            if cur_axis is not None:
                segs.append((cur_axis, cur_len))
            cur_axis, cur_len = axis, 2  # both endpoints of the step
    if cur_axis is not None:
        segs.append((cur_axis, cur_len))
    return segs


def is_quasi_line(chain: Sequence[Cell], axis: str) -> bool:
    """Definition 1 check for a horizontal (``axis="h"``) or vertical
    (``axis="v"``) quasi line."""
    if axis not in ("h", "v"):
        raise ValueError("axis must be 'h' or 'v'")
    if len(chain) < 3:
        return False
    segs = _chain_segments(chain)
    if not segs:
        return False
    other = "v" if axis == "h" else "h"
    # 1. first and last three robots aligned along `axis`
    if segs[0][0] != axis or segs[0][1] < 3:
        return False
    if segs[-1][0] != axis or segs[-1][1] < 3:
        return False
    # 2. all `axis` subchains have >= 3 robots; 3. all perpendicular
    #    subchains have <= 2 robots
    for seg_axis, seg_len in segs:
        if seg_axis == axis and seg_len < 3:
            return False
        if seg_axis == other and seg_len > 2:
            return False
    return True


def is_stairway(chain: Sequence[Cell]) -> bool:
    """True for alternating left/right unit turns (paper Fig. 16): every
    aligned segment between the endpoints has exactly 2 robots."""
    if len(chain) < 3:
        return False
    segs = _chain_segments(chain)
    if len(segs) < 2:
        return False
    return all(seg_len == 2 for _, seg_len in segs)


def boundary_segments(boundary: Boundary) -> List[Tuple[str, int, int]]:
    """Maximal aligned segments of a boundary cycle.

    Returns ``(axis, start_index, length)`` with indices into
    ``boundary.robots``; used by the analysis layer to verify the structure
    theorem behind Lemma 1 (mergeless => quasi lines + stairways).
    """
    robots = boundary.robots
    n = len(robots)
    if n < 2:
        return []
    out: List[Tuple[str, int, int]] = []
    # scan linearly; good enough for analysis (cyclic wrap handled by caller)
    i = 0
    while i < n - 1:
        dx, dy = sub(robots[i + 1], robots[i])
        axis = "h" if dy == 0 and dx != 0 else ("v" if dx == 0 else None)
        if axis is None:
            i += 1
            continue
        j = i + 1
        while j < n - 1 and sub(robots[j + 1], robots[j]) == (dx, dy):
            j += 1
        out.append((axis, i, j - i + 1))
        i = j
    return out


# ----------------------------------------------------------------------
# Run start sites (paper Fig. 7)
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class StartSite:
    """A boundary position at which a robot may start a run.

    ``boundary_index`` indexes the canonical contour list (tuple
    boundaries or linked rings alike); ``position`` indexes the collapsed
    robot cycle; ``direction`` is the traversal direction (+1 with the
    swarm on the left / -1 reversed) in which the straight stretch
    extends.  ``prev`` is the boundary robot behind the site against
    ``direction`` — the context a fresh run remembers to re-identify its
    position, precomputed here so consumers need not re-walk the contour.
    """

    boundary_index: int
    position: int
    robot: Cell
    direction: int
    stretch_dir: Cell  # the cardinal direction of the quasi line ahead
    prev: Optional[Cell] = None
    #: Occurrence-head ring node of the site, set only by the incremental
    #: :class:`StartSiteIndex` (the full scan leaves it ``None``).  When
    #: present, ``position`` is a dense per-contour rank in canonical
    #: cycle order — same ordering as the full scan's cycle index, but
    #: *not* a cyclic coordinate: consumers measure along-boundary
    #: distances by walking from the node instead.
    node: Optional[RingNode] = None


def _scan_cycle_sites(
    robots: Sequence[Cell], straight_steps: int
) -> List[Tuple[int, int, Cell, Cell]]:
    """Start-site scan of one robot cycle: ``(position, direction,
    stretch_dir, prev)`` records in cycle order (direction +1 before -1
    per position).  Shared by the full scan and the index's whole-ring
    reindex so every representation yields byte-identical decisions.

    Precomputes the forward step vectors once: the straightness probes
    reduce to array comparisons instead of repeated per-(site,
    direction, step) cell subtractions — this scan walks every boundary
    robot and showed up in profiles.
    """
    out: List[Tuple[int, int, Cell, Cell]] = []
    n = len(robots)
    if n < straight_steps + 2:
        return out
    diffs: List[Cell] = []
    px, py = robots[0]
    for j in range(1, n + 1):
        cx, cy = robots[j % n]
        diffs.append((cx - px, cy - py))
        px, py = cx, cy
    for i in range(n):
        for direction in (1, -1):
            if direction == 1:
                first = diffs[i]
                if abs(first[0]) + abs(first[1]) != 1:
                    continue
                if any(
                    diffs[(i + k) % n] != first
                    for k in range(1, straight_steps)
                ):
                    continue
                bx, by = diffs[i - 1]
                behind = (-bx, -by)
            else:
                fx, fy = diffs[i - 1]
                first = (-fx, -fy)
                if abs(fx) + abs(fy) != 1:
                    continue
                if any(
                    diffs[(i - k - 1) % n] != (fx, fy)
                    for k in range(1, straight_steps)
                ):
                    continue
                behind = diffs[i]
            if behind == first:
                continue  # mid-stretch, not an endpoint
            if behind == (-first[0], -first[1]):
                continue  # 1-thick line endpoint: leaf merges handle it
            out.append(
                (i, direction, first, robots[(i - direction) % n])
            )
    return out


def run_start_sites(
    boundaries: Sequence[Boundary | BoundaryRing], straight_steps: int = 2
) -> List[StartSite]:
    """All run start sites over all boundary cycles.

    A site is the *endpoint of a maximal straight stretch*:
    ``straight_steps`` straight cardinal steps ahead, while the step behind
    does not continue the stretch — it may turn perpendicularly (the paper's
    quasi-line-meets-quasi-line corner) or step diagonally along the contour
    (the quasi-line-meets-stairway transition; stairway robots sit in
    concave notches, so the contour skips them diagonally).  A robot
    matching in both traversal directions is Start-B and yields two sites.

    Accepts frozen :class:`Boundary` tuples and linked
    :class:`~repro.grid.ring.BoundaryRing` contours alike; rings
    materialize their collapsed robot cycle once per call (start rounds
    only, every ``run_start_interval`` rounds), and the scan is shared so
    both representations yield byte-identical site lists.
    """
    sites: List[StartSite] = []
    for b_idx, boundary in enumerate(boundaries):
        robots = (
            boundary.robots_cycle()
            if isinstance(boundary, BoundaryRing)
            else boundary.robots
        )
        for i, direction, first, prev in _scan_cycle_sites(
            robots, straight_steps
        ):
            sites.append(
                StartSite(
                    boundary_index=b_idx,
                    position=i,
                    robot=robots[i],
                    direction=direction,
                    stretch_dir=first,
                    prev=prev,
                )
            )
    return sites


# ----------------------------------------------------------------------
# Incremental start-site index (persistent over ring nodes)
# ----------------------------------------------------------------------
#: A candidate at one occurrence head: ``(direction, stretch_dir, prev)``.
_SiteEntry = Tuple[int, Cell, Cell]


def head_entries(
    ring: BoundaryRing, head: RingNode, straight_steps: int
) -> Tuple[_SiteEntry, ...]:
    """The start-site entries of one occurrence head, evaluated on the
    live ring — byte-for-byte the decisions the diff-vector scan of
    :func:`run_start_sites` makes for the corresponding cycle position
    (``walk_heads`` wraps exactly like the scan's ``% n`` indexing).

    Reads only the cells of the ``straight_steps`` occurrence heads on
    either side of ``head`` — the locality the incremental index rests
    on (see ``docs/incremental.md``).
    """
    s = straight_steps
    back = ring.walk_heads(head, -1, s)
    fwd = ring.walk_heads(head, 1, s)
    hx, hy = head.cell
    entries: List[_SiteEntry] = []

    # direction +1: straight stretch ahead along the traversal.
    fx, fy = fwd[0].cell
    first = (fx - hx, fy - hy)
    if abs(first[0]) + abs(first[1]) == 1:
        px, py = fwd[0].cell
        ok = True
        for k in range(1, s):
            cx, cy = fwd[k].cell
            if (cx - px, cy - py) != first:
                ok = False
                break
            px, py = cx, cy
        if ok:
            bx, by = back[0].cell
            behind = (bx - hx, by - hy)
            if behind != first and behind != (-first[0], -first[1]):
                entries.append((1, first, back[0].cell))

    # direction -1: straight stretch behind, traversed in reverse.
    bx, by = back[0].cell
    fstep = (hx - bx, hy - by)  # diffs[i-1] of the cycle scan
    if abs(fstep[0]) + abs(fstep[1]) == 1:
        first = (-fstep[0], -fstep[1])
        px, py = back[0].cell
        ok = True
        for k in range(1, s):
            cx, cy = back[k].cell
            if (px - cx, py - cy) != fstep:
                ok = False
                break
            px, py = cx, cy
        if ok:
            nx, ny = fwd[0].cell
            behind = (nx - hx, ny - hy)
            if behind != first and behind != (-first[0], -first[1]):
                entries.append((-1, first, fwd[0].cell))
    return tuple(entries)


class StartSiteIndex:
    """Persistent run-start-site candidates over :class:`RingNode` heads.

    The full scan of :func:`run_start_sites` walks every boundary robot
    each start round (amortized O(n / run_start_interval) per round).
    This index keeps, per ring, the candidate entries of every occurrence
    head, marks *dirty nodes* from the O(arc)
    :meth:`~repro.grid.ring.RingSet` ``on_arc_spliced`` hook (appends
    only — no walks, no predicate work on non-start rounds), and repairs
    lazily at query time: every distinct dirty node is expanded to the
    heads within ``margin = straight_steps + 1`` robot steps and exactly
    those are recomputed, deduped across the whole inter-query window.

    Invariants (mirrored in ``docs/incremental.md``):

    * **Window locality** — a head's entries read only the cells of heads
      within ``straight_steps`` robot steps, and every cell change comes
      with spliced sides, so any head whose entries can differ is within
      ``margin`` heads of a node reported by some splice hook (anchors
      ``a``/``b``, removed nodes, inserted nodes);
    * **Liveness before walking** — a marked node is expanded only if it
      is still the registered node of its side
      (``ring_set.node_of[side] is node``); dead marks only drop their
      stale bucket entry (keyed by the ring id at mark time, so a node
      object reused by *another* ring cannot leave a ghost behind);
    * **Ring lifecycle by id** — ring ids are never reused outside a
      full rebuild (which voids everything), so buckets of vanished ids
      are dropped and unseen ids fully indexed at query time — doomed
      rings, reseeded cycles, and rebuild fallbacks need no hooks;
    * **Canonical order without walks** — query-time ordering uses the
      nodes' ring order labels relative to the canonical head, so the
      emitted sites are in exactly the full scan's cycle order while the
      cyclic *positions* themselves are never materialized.
    """

    def __init__(self, straight_steps: int) -> None:
        self.straight_steps = straight_steps
        self._margin = straight_steps + 1
        # ring_id -> {occurrence head -> entries}
        self._entries: Dict[int, Dict[RingNode, Tuple[_SiteEntry, ...]]] = {}
        # (ring_id at mark time, node) accumulated since the last query,
        # deduped at mark time; once a ring has enough distinct marks
        # that a wholesale reindex is cheaper than per-mark expansion it
        # is *saturated*: marks stop accumulating for it entirely (rings
        # dense with runners hit this within a couple of rounds, keeping
        # the inter-query mark volume bounded by the contour sizes).
        self._dirty: List[Tuple[int, RingNode]] = []
        self._marked: Set[Tuple[int, int]] = set()
        self._mark_counts: Dict[int, int] = {}
        self._saturated: Set[int] = set()

    # -- RingSet observer callbacks (O(arc), defer all real work) ------
    def on_rebuild(self, ring_set: RingSet) -> None:
        # Eager reset only; the fresh rings are indexed at next query.
        self._entries = {}
        self._dirty = []
        self._marked = set()
        self._mark_counts = {}
        self._saturated = set()

    def on_arc_spliced(
        self,
        ring: BoundaryRing,
        a: RingNode,
        b: RingNode,
        old_nodes: List[RingNode],
        new_nodes: List[RingNode],
    ) -> None:
        rid = ring.ring_id
        saturated = self._saturated
        if rid in saturated:
            return
        dirty = self._dirty
        marked = self._marked
        count = self._mark_counts.get(rid, 0)
        for node in (a, b, *old_nodes, *new_nodes):
            key = (rid, id(node))
            if key in marked:
                continue
            marked.add(key)
            dirty.append((rid, node))
            count += 1
        if count * (2 * self._margin + 1) >= len(ring):
            saturated.add(rid)
        else:
            self._mark_counts[rid] = count

    # -- internals -----------------------------------------------------
    def _all_heads(self, ring: BoundaryRing) -> List[RingNode]:
        n = len(ring)
        if n == 0:
            return []
        first = ring.occurrence_head(ring.head)
        return [first] + ring.walk_heads(first, 1, n - 1)

    def _index_ring(self, ring: BoundaryRing) -> None:
        """Wholesale (re)index of one ring: one head walk plus the same
        array diff-scan the full :func:`run_start_sites` path runs, so a
        saturated ring costs what a full scan of that ring costs."""
        bucket: Dict[RingNode, Tuple[_SiteEntry, ...]] = {}
        self._entries[ring.ring_id] = bucket
        heads = self._all_heads(ring)
        records = _scan_cycle_sites(
            [h.cell for h in heads], self.straight_steps
        )
        for i, direction, stretch_dir, prev in records:
            head = heads[i]
            bucket[head] = bucket.get(head, ()) + (
                (direction, stretch_dir, prev),
            )

    def _flush(self, ring_set: RingSet) -> None:
        """Bring the buckets up to date with the live ring structure."""
        entries = self._entries
        dirty = self._dirty
        saturated = self._saturated
        if dirty or saturated:
            self._dirty = []
            self._marked = set()
            self._mark_counts = {}
            self._saturated = set()
            node_of = ring_set.node_of
            margin = self._margin
            # Saturated rings first: one wholesale pass per ring; their
            # marks below are then skipped (pops would tear holes into
            # the freshly built buckets).
            if saturated:
                for ring in ring_set.rings:
                    if ring.ring_id in saturated:
                        self._index_ring(ring)
            live_by_ring: Dict[int, List[RingNode]] = {}
            for rid, node in dirty:
                if rid not in saturated:
                    bucket = entries.get(rid)
                    if bucket is not None:
                        bucket.pop(node, None)
                if node_of.get((node.cell, node.normal)) is not node:
                    continue  # side gone: dropping its entry is enough
                ring = node.ring
                if ring is None:
                    raise InvariantError(
                        f"live start-site node at {node.cell} detached "
                        f"from its ring"
                    )
                if ring.ring_id in saturated:
                    continue  # wholesale reindexed above
                live_by_ring.setdefault(ring.ring_id, []).append(node)
            s = self.straight_steps
            for rid, nodes in live_by_ring.items():
                ring = nodes[0].ring
                bucket = entries.get(rid)
                if bucket is None:
                    continue  # unseen ring: fully indexed below
                n = len(ring)
                if len(nodes) * (2 * margin + 1) >= n:
                    # Most of the contour is dirty: one clean pass beats
                    # per-mark expansion walks.
                    self._index_ring(ring)
                    continue
                heads: Dict[int, RingNode] = {}
                for node in nodes:
                    h = ring.occurrence_head(node)
                    heads[id(h)] = h
                    for hh in ring.walk_heads(h, 1, margin):
                        heads[id(hh)] = hh
                    for hh in ring.walk_heads(h, -1, margin):
                        heads[id(hh)] = hh
                ce = ring._change_edges
                for h in heads.values():
                    if ce and h.prev.cell == h.cell:
                        bucket.pop(h, None)  # absorbed into an occurrence
                        continue
                    es = head_entries(ring, h, s)
                    if es:
                        bucket[h] = es
                    else:
                        bucket.pop(h, None)
        # Ring lifecycle: index ids never seen, drop ids that vanished.
        live_ids: Set[int] = set()
        for ring in ring_set.rings:
            live_ids.add(ring.ring_id)
            if ring.ring_id not in entries:
                self._index_ring(ring)
        if len(entries) != len(live_ids):
            for rid in [r for r in entries if r not in live_ids]:
                del entries[rid]

    # -- queries -------------------------------------------------------
    def sites(self, ring_set: RingSet) -> List[StartSite]:
        """All current start sites, ordered exactly like the full scan
        (contour, then canonical cycle order, then direction emission);
        every site carries its head node and a dense per-contour rank as
        ``position``."""
        self._flush(ring_set)
        out: List[StartSite] = []
        s = self.straight_steps
        for b_idx, ring in enumerate(ring_set.rings):
            if len(ring) < s + 2:
                continue  # the full scan skips degenerate cycles
            bucket = self._entries.get(ring.ring_id)
            if not bucket:
                continue
            # Ring order from the canonical head via order labels: one
            # descent on the label cycle, so "label >= head label" splits
            # the ring into the before/after-wrap halves.
            h0 = ring.occurrence_head(ring.head)
            o0 = h0.order
            keyed = []
            for node, entries in bucket.items():
                if node.ring is not ring:
                    raise InvariantError(
                        "stale start-site index entry: node at "
                        f"{node.cell} is indexed under ring "
                        f"{ring.ring_id} but belongs elsewhere"
                    )
                o = node.order
                keyed.append(((0, o) if o >= o0 else (1, o), node, entries))
            keyed.sort(key=lambda item: item[0])
            for rank, (_key, node, entries) in enumerate(keyed):
                for direction, stretch_dir, prev in entries:
                    out.append(
                        StartSite(
                            boundary_index=b_idx,
                            position=rank,
                            robot=node.cell,
                            direction=direction,
                            stretch_dir=stretch_dir,
                            prev=prev,
                            node=node,
                        )
                    )
        return out
