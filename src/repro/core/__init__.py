"""The paper's algorithm: local FSYNC gathering on the grid in O(n) rounds.

Layout:

* :mod:`repro.core.config` — tunable constants (paper defaults L=22, r=20);
* :mod:`repro.core.view` — L1-ball local views with locality enforcement;
* :mod:`repro.core.patterns` — the state-free merge operations (paper
  Section 3.1, Figures 2 and 3);
* :mod:`repro.core.quasiline` — quasi lines, stairways, endpoint detection
  (paper Definition 1, Figures 6 and 16);
* :mod:`repro.core.runs` — run states: start, movement, reshapement folds,
  passing, termination (paper Sections 3.2, 3.3, 6);
* :mod:`repro.core.algorithm` — :class:`GatherOnGrid`, the per-round
  controller combining the above (paper Figure 11).
"""

from repro.core.config import AlgorithmConfig
from repro.core.view import LocalView, LocalityError
from repro.core.patterns import MergePattern, plan_merges
from repro.core.quasiline import (
    boundary_segments,
    is_quasi_line,
    is_stairway,
    run_start_sites,
    StartSite,
)
from repro.core.runs import Run, RunManager
from repro.core.algorithm import GatherOnGrid, gather

__all__ = [
    "AlgorithmConfig",
    "LocalView",
    "LocalityError",
    "MergePattern",
    "plan_merges",
    "boundary_segments",
    "is_quasi_line",
    "is_stairway",
    "run_start_sites",
    "StartSite",
    "Run",
    "RunManager",
    "GatherOnGrid",
    "gather",
]
