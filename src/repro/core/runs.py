"""Run states: the paper's reshapement mechanism (Sections 3.2, 3.3, 6).

A *run* is a token travelling along a boundary cycle at one robot per round
(Lemma 3.1) in a fixed direction.  The robot currently holding a run (the
*runner*) performs the reshapement: at a convex corner with a free
between-diagonal it *folds* inward — the concrete realization of the paper's
OP-A diagonal hop (successive folds propagate the corner along the quasi
line exactly like Fig. 13/14).  Where no fold applies the run *slides*
(paper OP-B/OP-C: "no diagonal hops until the target corner is reached").

Termination implements the paper's Table 1:

1. a sequent (same-direction) run ahead becomes visible;
2. the quasi line's endpoint lies just ahead (operationalized: a
   perpendicular aligned segment of >= 3 robots within the passing horizon —
   see DESIGN.md for why distant sight must not kill runs on short lines);
3. the runner was part of a merge operation;
4./5. the boundary changed under the run so its position can no longer be
   re-identified (merge reshaped the subboundary mid-operation);
6. the runner hopped onto an occupied cell (the resulting state-free merge
   reports through rule 3).

Run passing (Fig. 9 b / Section 6): two runs moving toward each other within
the run passing distance suspend folds and slide past one another.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, List, Mapping, Optional, Sequence, Set, Tuple

from repro.core.config import AlgorithmConfig
from repro.core.quasiline import StartSite
from repro.grid.boundary import Boundary
from repro.grid.geometry import (
    Cell,
    add,
    l1_distance,
    neighbors4,
    perpendicular,
    sub,
)


@dataclass(frozen=True)
class Run:
    """One run state (paper Section 3.2).

    ``robot`` holds the state; ``prev`` is the boundary robot behind it (the
    context used to re-identify the run's position after the swarm moved);
    ``direction`` is the boundary traversal direction (+1 = swarm-on-left
    orientation of :mod:`repro.grid.boundary`); ``axis`` is the quasi line
    axis fixed at start.
    """

    run_id: int
    robot: Cell
    prev: Cell
    direction: int
    axis: str  # "h" or "v"
    born_round: int


@dataclass
class _Planned:
    """Internal per-round plan for one run."""

    run: Run
    terminate: Optional[str] = None  # termination reason (event tag)
    fold_to: Optional[Cell] = None
    next_robot: Optional[Cell] = None  # pre-move cell of the next holder


class RunManager:
    """Owns all live runs; plans and finalizes their per-round behavior."""

    def __init__(self, cfg: AlgorithmConfig) -> None:
        self.cfg = cfg
        self.runs: Dict[int, Run] = {}
        self._next_id = 0
        self._planned: List[_Planned] = []

    # ------------------------------------------------------------------
    @property
    def active_run_count(self) -> int:
        return len(self.runs)

    def runner_cells(self) -> Set[Cell]:
        return {r.robot for r in self.runs.values()}

    # ------------------------------------------------------------------
    # Starting runs (paper Fig. 7 + Figure 11 step 3)
    # ------------------------------------------------------------------
    def start_runs(
        self,
        boundaries: Sequence[Boundary],
        sites: Sequence[StartSite],
        round_index: int,
        located: Mapping[int, Tuple[int, int]],
    ) -> List[Run]:
        """Create runs at start sites that are not crowded by live runs.

        The paper starts runs unconditionally and lets termination rule 1
        clean up; we skip sites within viewing distance (along the
        boundary) of an existing run — same spacing invariant, fewer
        stillborn runs.  ``located`` maps live run ids to their
        ``(boundary_index, position)`` this round.

        On *short* contours — cycle length at most ``2 * viewing_radius +
        2``, where every site is within viewing distance of every other —
        the along-boundary spacing filter is disabled, approximating the
        paper's unconditional starts (the runner-cell adjacency guard
        below still applies).  There the filter starves the
        contour down to one run per batch, and since opposite runs *pass*
        rather than collide, a filtered tiny ring can circulate forever (a
        livelock; the seed implementation only escaped it through
        accidental hash-order entropy in its boundary enumeration,
        whereas this implementation's canonical boundary enumeration made
        it deterministic).  Unconditional starts restore the paper's
        progress mechanism — opposing runs reshape the contour under each
        other until merges fire — and termination rule 1 cleans up the
        surplus, exactly as the paper intends.
        """
        occupied_positions: Dict[int, List[int]] = {}
        for rid, (b_idx, pos) in located.items():
            occupied_positions.setdefault(b_idx, []).append(pos)

        existing_keys = {
            (r.robot, r.direction) for r in self.runs.values()
        }
        # Runner cells across *all* contours: a start right next to a live
        # runner (e.g. an inner-boundary site hugging an outer corner) would
        # deadlock the anchor guard of `_fold_target`.
        runner_cells = self.runner_cells()
        started: List[Run] = []
        short = 2 * self.cfg.viewing_radius + 2
        for site in sorted(
            sites, key=lambda s: (s.boundary_index, s.position, s.direction)
        ):
            if (site.robot, site.direction) in existing_keys:
                continue
            boundary = boundaries[site.boundary_index]
            n = len(boundary.robots)
            too_close = False
            if n > short:
                for pos in occupied_positions.get(site.boundary_index, ()):
                    dist = min(
                        (pos - site.position) % n, (site.position - pos) % n
                    )
                    # distance 0 is the same robot: the paper's Start-B
                    # places two runs (opposite directions) on one
                    # endpoint robot.
                    if 0 < dist <= self.cfg.viewing_radius:
                        too_close = True
                        break
            if not too_close:
                for rc in runner_cells:
                    if rc != site.robot and l1_distance(rc, site.robot) <= 2:
                        too_close = True
                        break
            if too_close:
                continue
            prev = boundary.robots[(site.position - site.direction) % n]
            axis = "h" if site.stretch_dir[1] == 0 else "v"
            run = Run(
                run_id=self._next_id,
                robot=site.robot,
                prev=prev,
                direction=site.direction,
                axis=axis,
                born_round=round_index,
            )
            self._next_id += 1
            self.runs[run.run_id] = run
            existing_keys.add((run.robot, run.direction))
            runner_cells.add(run.robot)
            occupied_positions.setdefault(site.boundary_index, []).append(
                site.position
            )
            started.append(run)
        return started

    # ------------------------------------------------------------------
    # Locating runs on the current boundaries
    # ------------------------------------------------------------------
    def locate(
        self, boundaries: Sequence[Boundary]
    ) -> Tuple[Dict[int, Tuple[int, int]], List[int]]:
        """Match each run to a ``(boundary_index, position)``.

        A run is matched where its robot appears with its remembered
        predecessor behind it; unmatched runs are returned as lost (the
        subboundary changed shape under them — Table 1 conditions 4/5).

        Uses each boundary's cached ``position_index`` (built once per
        Boundary object), so contours the incremental pipeline kept across
        rounds cost nothing to re-index.
        """
        located: Dict[int, Tuple[int, int]] = {}
        lost: List[int] = []
        for rid in sorted(self.runs):
            run = self.runs[rid]
            # Graded matching: the remembered predecessor may have left this
            # contour (a fold into a hole parks the folded robot in a notch
            # whose free sides face the inner boundary), so fall back to
            # "predecessor within L1 distance 2" before declaring the run
            # lost (Table 1 conditions 4/5).
            best: Optional[Tuple[int, Tuple[int, int]]] = None
            for b_idx, b in enumerate(boundaries):
                robots = b.robots
                n = len(robots)
                if n < 2:
                    continue
                for pos in b.position_index.get(run.robot, ()):
                    behind = robots[(pos - run.direction) % n]
                    if behind == run.prev:
                        score = 0
                    elif l1_distance(behind, run.prev) <= 2:
                        score = 1
                    else:
                        continue
                    if best is None or score < best[0]:
                        best = (score, (b_idx, pos))
                if best is not None and best[0] == 0:
                    break
            if best is None:
                lost.append(rid)
            else:
                located[rid] = best[1]
        return located, lost

    # ------------------------------------------------------------------
    # Per-round planning (paper Figure 11 step 2)
    # ------------------------------------------------------------------
    def plan(
        self,
        boundaries: Sequence[Boundary],
        occupied: Set[Cell],
        merge_moves: Mapping[Cell, Cell],
        located: Mapping[int, Tuple[int, int]],
        lost: Sequence[int],
        round_index: int = -1,
    ) -> Dict[Cell, Cell]:
        """Decide every run's action; returns the runner fold moves."""
        cfg = self.cfg
        self._planned = []
        run_moves: Dict[Cell, Cell] = {}

        # positions of all located runs, for rules 1 and passing
        at_position: Dict[Tuple[int, int], List[int]] = {}
        runs_per_boundary: Dict[int, int] = {}
        for rid, bp in located.items():
            at_position.setdefault(bp, []).append(rid)
            runs_per_boundary[bp[0]] = runs_per_boundary.get(bp[0], 0) + 1
        runner_cells = self.runner_cells()

        for rid in sorted(self.runs):
            run = self.runs[rid]
            if rid in lost:
                self._planned.append(_Planned(run, terminate="run_lost"))
                continue
            b_idx, pos = located[rid]
            boundary = boundaries[b_idx]
            robots = boundary.robots
            n = len(robots)

            # Rule 3 / 6: the runner takes part in a merge this round.
            if run.robot in merge_moves:
                self._planned.append(_Planned(run, terminate="run_merged"))
                continue

            # A freshly started run always performs its start hop (the
            # paper's "start runstate": generate the state, hop, hand the
            # state on) before any visibility-based stop rule applies.
            fresh = run.born_round == round_index

            # Rule 1: sequent run visible ahead -> the run *behind* stops
            # (paper Table 1.1).  On a closed contour "behind" means the
            # gap ahead of us is the smaller arc; two runs chasing each
            # other at equal distance (opposite sides of a ring) are not
            # sequent and must both survive.
            passing = False
            stop = False
            # Probing is only meaningful when another run shares this
            # contour — the common single-run case skips the scan.
            if not fresh and runs_per_boundary.get(b_idx, 0) > 1:
                for k in range(1, min(cfg.viewing_radius, n - 1) + 1):
                    probe = (b_idx, (pos + run.direction * k) % n)
                    for other_id in at_position.get(probe, ()):
                        other = self.runs[other_id]
                        if other_id == rid:
                            continue
                        if other.direction == run.direction:
                            if 2 * k < n:  # we are genuinely the follower
                                stop = True
                                break
                        elif k <= cfg.run_passing_distance:
                            passing = True
                    if stop:
                        break
            if stop:
                self._planned.append(
                    _Planned(run, terminate="run_saw_sequent")
                )
                continue

            # Rule 2: quasi-line endpoint just ahead -> stop (see module
            # docstring for the operationalization).
            if not fresh and self._endpoint_ahead(robots, pos, run):
                self._planned.append(
                    _Planned(run, terminate="run_saw_endpoint")
                )
                continue

            next_robot = robots[(pos + run.direction) % n]
            planned = _Planned(run, next_robot=next_robot)

            if not passing:
                fold = self._fold_target(
                    occupied, run.robot, merge_moves, runner_cells
                )
                if fold is not None and run.robot not in run_moves:
                    planned.fold_to = fold
                    run_moves[run.robot] = fold
            self._planned.append(planned)
        return run_moves

    def _endpoint_ahead(
        self, robots: Tuple[Cell, ...], pos: int, run: Run
    ) -> bool:
        """Rule 2: a perpendicular aligned segment of >= 3 robots within the
        passing horizon ahead marks the quasi line's endpoint."""
        cfg = self.cfg
        n = len(robots)
        horizon = min(cfg.run_passing_distance + 1, n - 2)
        if horizon < 1:
            # Degenerate contour (n <= 2): the clamped horizon leaves no
            # room for a 3-robot aligned segment (two steps), and the
            # probe indices below would wrap around the whole cycle.
            return False
        perp_streak = 0
        dirn = run.direction
        horizontal = run.axis == "h"
        a = robots[pos % n]
        for k in range(horizon + 1):
            b = robots[(pos + dirn * (k + 1)) % n]
            sx, sy = b[0] - a[0], b[1] - a[1]
            a = b
            if abs(sx) + abs(sy) != 1:
                perp_streak = 0  # diagonal (pinch) step: no information
                continue
            perp = (sx == 0) if horizontal else (sy == 0)
            if perp:
                perp_streak += 1
                if perp_streak >= 2:  # two steps = three aligned robots
                    return True
            else:
                perp_streak = 0
        return False

    def _fold_target(
        self,
        occupied: Set[Cell],
        robot: Cell,
        merge_moves: Mapping[Cell, Cell],
        runner_cells: Set[Cell],
    ) -> Optional[Cell]:
        """OP-A reshapement: convex corner fold toward the between-diagonal.

        Guards (all locally checkable):

        * the runner has exactly two, perpendicular, occupied 4-neighbors
          (a convex corner) and the between-diagonal is free;
        * both anchor neighbors are stationary this round: not part of a
          merge move and not themselves runners (who might fold away).

        With stationary anchors, *any* set of simultaneous folds preserves
        connectivity: a degree-2 mover's only graph edges go to its two
        anchors, and the fold keeps both adjacencies — this is how the
        paper's Fig. 5 symmetry hazard is excluded (there, the hopping
        robots lost an anchor adjacency).
        """
        nbrs = [c for c in neighbors4(robot) if c in occupied]
        if len(nbrs) != 2:
            return None
        v0, v1 = sub(nbrs[0], robot), sub(nbrs[1], robot)
        if not perpendicular(v0, v1):
            return None
        target = add(robot, add(v0, v1))
        if target in occupied:
            return None  # occupied diagonal = state-free corner merge's job
        if nbrs[0] in merge_moves or nbrs[1] in merge_moves:
            return None
        if nbrs[0] in runner_cells or nbrs[1] in runner_cells:
            return None
        return target

    # ------------------------------------------------------------------
    # Finalization after the engine applied the round's moves
    # ------------------------------------------------------------------
    def finalize(
        self,
        applied_moves: Mapping[Cell, Cell],
        occupied_after: Set[Cell],
    ) -> List[Tuple[Run, Optional[str]]]:
        """Advance surviving runs and drop terminated ones.

        Returns ``(run, termination_reason)`` records for event logging
        (reason ``None`` = advanced normally).
        """
        outcome: List[Tuple[Run, Optional[str]]] = []
        new_runs: Dict[int, Run] = {}
        landing_cells = set(applied_moves.values())
        for planned in self._planned:
            run = planned.run
            if planned.terminate is not None:
                outcome.append((run, planned.terminate))
                continue
            # Rule 3 (passive): somebody merged onto the stationary runner.
            if planned.fold_to is None and run.robot in landing_cells:
                outcome.append((run, "run_merged"))
                continue
            assert planned.next_robot is not None
            holder_after = (
                planned.fold_to
                if planned.fold_to is not None
                else applied_moves.get(run.robot, run.robot)
            )
            next_after = applied_moves.get(
                planned.next_robot, planned.next_robot
            )
            if next_after not in occupied_after:
                outcome.append((run, "run_lost"))
                continue
            if next_after == holder_after:
                # the next robot merged into the runner's cell
                outcome.append((run, "run_merged"))
                continue
            advanced = replace(run, robot=next_after, prev=holder_after)
            new_runs[run.run_id] = advanced
            outcome.append((advanced, None))
        self.runs = new_runs
        self._planned = []
        return outcome
