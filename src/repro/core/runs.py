"""Run states: the paper's reshapement mechanism (Sections 3.2, 3.3, 6).

A *run* is a token travelling along a boundary cycle at one robot per round
(Lemma 3.1) in a fixed direction.  The robot currently holding a run (the
*runner*) performs the reshapement: at a convex corner with a free
between-diagonal it *folds* inward — the concrete realization of the paper's
OP-A diagonal hop (successive folds propagate the corner along the quasi
line exactly like Fig. 13/14).  Where no fold applies the run *slides*
(paper OP-B/OP-C: "no diagonal hops until the target corner is reached").

Termination implements the paper's Table 1:

1. a sequent (same-direction) run ahead becomes visible;
2. the quasi line's endpoint lies just ahead (operationalized: a
   perpendicular aligned segment of >= 3 robots within the passing horizon —
   see DESIGN.md for why distant sight must not kill runs on short lines);
3. the runner was part of a merge operation;
4./5. the boundary changed under the run so its position can no longer be
   re-identified (merge reshaped the subboundary mid-operation);
6. the runner hopped onto an occupied cell (the resulting state-free merge
   reports through rule 3).

Run passing (Fig. 9 b / Section 6): two runs moving toward each other within
the run passing distance suspend folds and slide past one another.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import (
    Dict,
    List,
    Mapping,
    NamedTuple,
    Optional,
    Sequence,
    Set,
    Tuple,
)

from repro.core.config import AlgorithmConfig
from repro.core.quasiline import StartSite
from repro.errors import InvariantError
from repro.grid.geometry import Cell, l1_distance
from repro.grid.ring import BoundaryRing, RingNode, RingSet


class RunLocation(NamedTuple):
    """Where a run sits this round: its contour (canonical list index +
    ring object) and the occurrence-head node of its robot on that ring.

    Node references are stable for the round (and across rounds while the
    side survives), replacing integer indices into rebuilt robot tuples.
    """

    b_idx: int
    ring: BoundaryRing
    node: RingNode


@dataclass(frozen=True)
class Run:
    """One run state (paper Section 3.2).

    ``robot`` holds the state; ``prev`` is the boundary robot behind it (the
    context used to re-identify the run's position after the swarm moved);
    ``direction`` is the boundary traversal direction (+1 = swarm-on-left
    orientation of :mod:`repro.grid.boundary`); ``axis`` is the quasi line
    axis fixed at start.
    """

    run_id: int
    robot: Cell
    prev: Cell
    direction: int
    axis: str  # "h" or "v"
    born_round: int


@dataclass
class _Planned:
    """Internal per-round plan for one run."""

    run: Run
    terminate: Optional[str] = None  # termination reason (event tag)
    fold_to: Optional[Cell] = None
    next_robot: Optional[Cell] = None  # pre-move cell of the next holder


def _endpoint_in_window(window: Sequence[Cell], horizontal: bool) -> bool:
    """Termination rule 2 over a window of consecutive boundary robot
    cells ahead of the runner (window[0] is the runner's cell): True iff
    a perpendicular aligned segment of >= 3 robots appears."""
    perp_streak = 0
    a = window[0]
    for b in window[1:]:
        sx, sy = b[0] - a[0], b[1] - a[1]
        a = b
        if abs(sx) + abs(sy) != 1:
            perp_streak = 0  # diagonal (pinch) step: no information
            continue
        perp = (sx == 0) if horizontal else (sy == 0)
        if perp:
            perp_streak += 1
            if perp_streak >= 2:  # two steps = three aligned robots
                return True
        else:
            perp_streak = 0
    return False


class RunManager:
    """Owns all live runs; plans and finalizes their per-round behavior."""

    def __init__(self, cfg: AlgorithmConfig) -> None:
        self.cfg = cfg
        self.runs: Dict[int, Run] = {}
        self._next_id = 0
        self._planned: List[_Planned] = []

    # ------------------------------------------------------------------
    @property
    def active_run_count(self) -> int:
        return len(self.runs)

    def runner_cells(self) -> Set[Cell]:
        return {r.robot for r in self.runs.values()}

    # ------------------------------------------------------------------
    # Starting runs (paper Fig. 7 + Figure 11 step 3)
    # ------------------------------------------------------------------
    def start_runs(
        self,
        contours: RingSet,
        sites: Sequence[StartSite],
        round_index: int,
        located: Mapping[int, RunLocation],
    ) -> List[Run]:
        """Create runs at start sites that are not crowded by live runs.

        The paper starts runs unconditionally and lets termination rule 1
        clean up; we skip sites within viewing distance (along the
        boundary) of an existing run — same spacing invariant, fewer
        stillborn runs.  ``located`` maps live run ids to their
        ``(boundary_index, position)`` this round.

        On *short* contours — cycle length at most ``2 * viewing_radius +
        2``, where every site is within viewing distance of every other —
        the along-boundary spacing filter is disabled, approximating the
        paper's unconditional starts (the runner-cell adjacency guard
        below still applies).  There the filter starves the
        contour down to one run per batch, and since opposite runs *pass*
        rather than collide, a filtered tiny ring can circulate forever (a
        livelock; the seed implementation only escaped it through
        accidental hash-order entropy in its boundary enumeration,
        whereas this implementation's canonical boundary enumeration made
        it deterministic).  Unconditional starts restore the paper's
        progress mechanism — opposing runs reshape the contour under each
        other until merges fire — and termination rule 1 cleans up the
        surplus, exactly as the paper intends.
        """
        rings = contours.rings
        located_nodes: Dict[int, List[RingNode]] = {}
        for loc in located.values():
            located_nodes.setdefault(loc.b_idx, []).append(loc.node)
        # Spacing state, resolved lazily per contour because this runs
        # only every ``run_start_interval`` rounds and only for contours
        # whose sites pass through the spacing filter.  Two equivalent
        # representations:
        #
        # * full-scan sites carry canonical cycle positions — cyclic
        #   distances against the located runs' positions (one ring walk
        #   per contour via ``positions_map``);
        # * index sites carry head *nodes* — the crowded neighborhoods
        #   (all heads within viewing distance of a located run, walked
        #   locally: O(runs x radius), never O(contour)) are precomputed
        #   and membership replaces the distance comparison.  The walks
        #   mark heads at distance 1..R, so the "distance 0 is the same
        #   robot" admission below is preserved verbatim.
        occupied_positions: Dict[int, List[int]] = {}
        crowded_heads: Dict[int, set] = {}
        radius = self.cfg.viewing_radius

        def positions_for(b_idx: int) -> List[int]:
            lst = occupied_positions.get(b_idx)
            if lst is None:
                nodes = located_nodes.get(b_idx, ())
                if nodes:
                    pm = rings[b_idx].positions_map()
                    lst = [pm[nd] for nd in nodes]
                else:
                    lst = []
                occupied_positions[b_idx] = lst
            return lst

        def mark_crowded(crowd: set, ring, node: RingNode) -> None:
            for h in ring.walk_heads(node, 1, radius):
                crowd.add(id(h))
            for h in ring.walk_heads(node, -1, radius):
                crowd.add(id(h))

        def crowded_for(b_idx: int) -> set:
            crowd = crowded_heads.get(b_idx)
            if crowd is None:
                crowd = set()
                ring = rings[b_idx]
                for nd in located_nodes.get(b_idx, ()):
                    mark_crowded(crowd, ring, nd)
                crowded_heads[b_idx] = crowd
            return crowd

        existing_keys = {
            (r.robot, r.direction) for r in self.runs.values()
        }
        # Runner cells across *all* contours: a start right next to a live
        # runner (e.g. an inner-boundary site hugging an outer corner) would
        # deadlock the anchor guard of `_fold_target`.
        runner_cells = self.runner_cells()
        started: List[Run] = []
        short = 2 * self.cfg.viewing_radius + 2
        for site in sorted(
            sites, key=lambda s: (s.boundary_index, s.position, s.direction)
        ):
            if (site.robot, site.direction) in existing_keys:
                continue
            n = len(rings[site.boundary_index])
            too_close = False
            if n > short:
                if site.node is not None:
                    too_close = id(site.node) in crowded_for(
                        site.boundary_index
                    )
                else:
                    for pos in positions_for(site.boundary_index):
                        dist = min(
                            (pos - site.position) % n,
                            (site.position - pos) % n,
                        )
                        # distance 0 is the same robot: the paper's
                        # Start-B places two runs (opposite directions)
                        # on one endpoint robot.
                        if 0 < dist <= self.cfg.viewing_radius:
                            too_close = True
                            break
            if not too_close:
                for rc in runner_cells:
                    if rc != site.robot and l1_distance(rc, site.robot) <= 2:
                        too_close = True
                        break
            if too_close:
                continue
            prev = site.prev
            if prev is None:  # always filled by run_start_sites
                raise InvariantError(
                    f"start site at {site.robot} has no predecessor"
                )
            axis = "h" if site.stretch_dir[1] == 0 else "v"
            run = Run(
                run_id=self._next_id,
                robot=site.robot,
                prev=prev,
                direction=site.direction,
                axis=axis,
                born_round=round_index,
            )
            self._next_id += 1
            self.runs[run.run_id] = run
            existing_keys.add((run.robot, run.direction))
            runner_cells.add(run.robot)
            if n > short:
                # feed the spacing filter of later sites on this contour
                # (short contours never read the state — skip the walk)
                if site.node is not None:
                    mark_crowded(
                        crowded_for(site.boundary_index),
                        rings[site.boundary_index],
                        site.node,
                    )
                else:
                    positions_for(site.boundary_index).append(site.position)
            started.append(run)
        return started

    # ------------------------------------------------------------------
    # Locating runs on the current boundaries
    # ------------------------------------------------------------------
    def locate(
        self, contours: RingSet
    ) -> Tuple[Dict[int, RunLocation], List[int]]:
        """Match each run to a :class:`RunLocation` (contour + node).

        A run is matched where its robot appears with its remembered
        predecessor behind it; unmatched runs are returned as lost (the
        subboundary changed shape under them — Table 1 conditions 4/5).

        Candidate occurrences come straight from the ring set's side-node
        index (O(1) per run), so contours the incremental pipeline kept or
        spliced across rounds cost nothing to re-index.  The winner is the
        minimum over ``(score, contour index, cycle position)`` — exactly
        the old first-match semantics over canonically ordered boundary
        tuples; the cycle position is only computed (one ring walk) in the
        rare case of a same-score tie between two occurrences of the
        robot on one contour (1-thick spurs, where a robot's occurrences
        are *not* contiguous on the cycle).
        """
        rings = contours.rings
        ring_index = {id(r): i for i, r in enumerate(rings)}
        located: Dict[int, RunLocation] = {}
        lost: List[int] = []
        for rid in sorted(self.runs):
            run = self.runs[rid]
            # Graded matching: the remembered predecessor may have left this
            # contour (a fold into a hole parks the folded robot in a notch
            # whose free sides face the inner boundary), so fall back to
            # "predecessor within L1 distance 2" before declaring the run
            # lost (Table 1 conditions 4/5).
            cands: List[Tuple[int, int, BoundaryRing, RingNode]] = []
            seen: Set[int] = set()
            robot = run.robot
            prev_cell = run.prev
            direction = run.direction
            for node in contours.nodes_at(robot):
                ring = node.ring
                if ring is None:
                    raise InvariantError(
                        f"contour node at {robot} detached from its ring"
                    )
                if len(ring) < 2:
                    continue  # degenerate cycle (fewer than 2 robots)
                # occurrence head + the robot behind, inlined (hot loop)
                cell = node.cell
                head = node
                while head.prev.cell == cell:
                    head = head.prev
                if id(head) in seen:
                    continue
                seen.add(id(head))
                if direction == 1:
                    # previous occurrence's cell: any node of it will do
                    behind = head.prev.cell
                else:
                    bnode = head.next
                    while bnode.cell == cell:
                        bnode = bnode.next
                    behind = bnode.cell
                if behind == prev_cell:
                    score = 0
                elif (
                    abs(behind[0] - prev_cell[0])
                    + abs(behind[1] - prev_cell[1])
                    <= 2
                ):
                    score = 1
                else:
                    continue
                cands.append((score, ring_index[id(ring)], ring, head))
            if not cands:
                lost.append(rid)
                continue
            best_key = min((c[0], c[1]) for c in cands)
            ties = [c for c in cands if (c[0], c[1]) == best_key]
            if len(ties) > 1:
                pm = ties[0][2].positions_map()
                ties.sort(key=lambda c: pm[c[3]])
            score, b_idx, ring, head = ties[0]
            located[rid] = RunLocation(b_idx, ring, head)
        return located, lost

    # ------------------------------------------------------------------
    # Per-round planning (paper Figure 11 step 2)
    # ------------------------------------------------------------------
    def plan(
        self,
        contours: RingSet,
        occupied: Set[Cell],
        merge_moves: Mapping[Cell, Cell],
        located: Mapping[int, RunLocation],
        lost: Sequence[int],
        round_index: int = -1,
        executor=None,
    ) -> Dict[Cell, Cell]:
        """Decide every run's action; returns the runner fold moves.

        Three phases: build the round's shared read-only context, plan
        each run against it (:meth:`_plan_one` is a pure function of
        that context, so runs may be planned in any order or
        concurrently), and reduce the results deterministically in
        run-id order.  ``executor`` is anything with an order-preserving
        ``map`` (e.g. :class:`~concurrent.futures.ThreadPoolExecutor`);
        ``None`` plans serially.  Serial and sharded planning are
        bit-identical by construction: the only cross-run coupling — two
        runs sharing a robot cell, where the first by run id claims the
        fold — lives in the serial reduce.
        """
        cfg = self.cfg
        self._planned = []
        run_moves: Dict[Cell, Cell] = {}

        # Shared context: occurrence nodes of all located runs (for
        # rules 1 and passing), per-contour run counts, runner cells.
        at_node: Dict[int, List[int]] = {}  # id(node) -> run ids
        runs_per_boundary: Dict[int, int] = {}
        for rid, loc in located.items():
            at_node.setdefault(id(loc.node), []).append(rid)
            runs_per_boundary[loc.b_idx] = (
                runs_per_boundary.get(loc.b_idx, 0) + 1
            )
        runner_cells = self.runner_cells()
        lost_set = set(lost)
        order = sorted(self.runs)

        ctx = (
            occupied,
            merge_moves,
            located,
            lost_set,
            round_index,
            at_node,
            runs_per_boundary,
            runner_cells,
        )
        snapshot_map = getattr(executor, "snapshot_map", None)
        if snapshot_map is not None and len(order) > 1:
            # Out-of-process backends: freeze the shared context into a
            # round snapshot (published once; see engine/snapshot.py),
            # ship shards as bare run-id lists, rebuild _Planned records
            # around this manager's own Run objects from the slim
            # results.  Lazy import: engine.snapshot imports this module.
            from repro.engine.snapshot import (
                encode_round_context,
                plan_results_from_slim,
            )

            payload = encode_round_context(
                cfg,
                self.runs,
                occupied,
                merge_moves,
                located,
                lost_set,
                round_index,
            )
            shards = self._plan_shards(order, located)
            slim: Dict[int, tuple] = {}
            for shard_result in snapshot_map(payload, shards):
                for rid, terminate, next_robot, fold in shard_result:
                    slim[rid] = (terminate, next_robot, fold)
            results = plan_results_from_slim(self, order, slim)
        elif executor is not None and len(order) > 1:
            shards = self._plan_shards(order, located)
            planned_by_rid: Dict[int, Tuple[_Planned, Optional[Cell]]] = {}
            for shard_result in executor.map(
                lambda shard: [
                    (rid, self._plan_one(rid, *ctx)) for rid in shard
                ],
                shards,
            ):
                for rid, result in shard_result:
                    planned_by_rid[rid] = result
            results = [planned_by_rid[rid] for rid in order]
        else:
            results = [self._plan_one(rid, *ctx) for rid in order]

        # Deterministic reduce in run-id order: first claim on a shared
        # robot cell wins the fold (two runs can hold one robot).
        for planned, fold in results:
            if fold is not None and planned.run.robot not in run_moves:
                planned.fold_to = fold
                run_moves[planned.run.robot] = fold
            self._planned.append(planned)
        return run_moves

    @staticmethod
    def _plan_shards(
        order: Sequence[int], located: Mapping[int, RunLocation]
    ) -> List[List[int]]:
        """Partition the run ids into independent planning shards.

        Runs are grouped by contour (the natural independence unit: rule
        1 probes only ever meet runs of the same contour) and groups are
        emitted as shards in contour order, lost runs first.  Since
        :meth:`_plan_one` is read-only, any partition is sound — the
        grouping just keeps a shard's ring walks on one contour's nodes.
        """
        groups: Dict[int, List[int]] = {}
        for rid in order:
            loc = located.get(rid)
            groups.setdefault(-1 if loc is None else loc.b_idx, []).append(
                rid
            )
        return [groups[key] for key in sorted(groups)]

    def _plan_one(
        self,
        rid: int,
        occupied: Set[Cell],
        merge_moves: Mapping[Cell, Cell],
        located: Mapping[int, RunLocation],
        lost: Set[int],
        round_index: int,
        at_node: Mapping[int, List[int]],
        runs_per_boundary: Mapping[int, int],
        runner_cells: Set[Cell],
    ) -> Tuple[_Planned, Optional[Cell]]:
        """Plan one run against the round's shared read-only context.

        Returns the :class:`_Planned` record and the run's fold
        *candidate* (``None`` when it terminates, passes, or has no
        fold); the caller assigns fold claims in run-id order.
        """
        cfg = self.cfg
        run = self.runs[rid]
        if rid in lost:
            return _Planned(run, terminate="run_lost"), None
        b_idx, ring, node = located[rid]
        n = len(ring)

        # Rule 3 / 6: the runner takes part in a merge this round.
        if run.robot in merge_moves:
            return _Planned(run, terminate="run_merged"), None

        # A freshly started run always performs its start hop (the
        # paper's "start runstate": generate the state, hop, hand the
        # state on) before any visibility-based stop rule applies.
        fresh = run.born_round == round_index

        # Occurrence heads ahead of the runner, fetched in one batched
        # ring walk shared by rule 1, rule 2, and the handover target.
        probing = not fresh and runs_per_boundary.get(b_idx, 0) > 1
        probe_len = min(cfg.viewing_radius, n - 1) if probing else 0
        horizon = (
            min(cfg.run_passing_distance + 1, n - 2) if not fresh else 0
        )
        needed = max(1, probe_len, horizon + 1 if horizon >= 1 else 0)
        heads = ring.walk_heads(node, run.direction, needed)

        # Rule 1: sequent run visible ahead -> the run *behind* stops
        # (paper Table 1.1).  On a closed contour "behind" means the
        # gap ahead of us is the smaller arc; two runs chasing each
        # other at equal distance (opposite sides of a ring) are not
        # sequent and must both survive.
        passing = False
        stop = False
        # Probing is only meaningful when another run shares this
        # contour — the common single-run case skips the scan.
        for k in range(1, probe_len + 1):
            for other_id in at_node.get(id(heads[k - 1]), ()):
                other = self.runs[other_id]
                if other_id == rid:
                    continue
                if other.direction == run.direction:
                    if 2 * k < n:  # we are genuinely the follower
                        stop = True
                        break
                elif k <= cfg.run_passing_distance:
                    passing = True
            if stop:
                break
        if stop:
            return _Planned(run, terminate="run_saw_sequent"), None

        # Rule 2: quasi-line endpoint just ahead -> stop (see module
        # docstring for the operationalization; degenerate contours
        # leave no room for a 3-robot segment and never match).
        if horizon >= 1:
            window = [node.cell] + [h.cell for h in heads[: horizon + 1]]
            if _endpoint_in_window(window, run.axis == "h"):
                return _Planned(run, terminate="run_saw_endpoint"), None

        planned = _Planned(run, next_robot=heads[0].cell)
        fold = None
        if not passing:
            fold = self._fold_target(
                occupied, run.robot, merge_moves, runner_cells
            )
        return planned, fold

    def _endpoint_ahead(
        self, robots: Tuple[Cell, ...], pos: int, run: Run
    ) -> bool:
        """Rule 2 over an explicit robot cycle (tuple form, kept for
        tests/analysis; the planner walks the ring via
        :meth:`_endpoint_ahead_ring`)."""
        n = len(robots)
        horizon = min(self.cfg.run_passing_distance + 1, n - 2)
        if horizon < 1:
            # Degenerate contour (n <= 2): the clamped horizon leaves no
            # room for a 3-robot aligned segment (two steps), and the
            # probe indices below would wrap around the whole cycle.
            return False
        dirn = run.direction
        window = [robots[pos % n]] + [
            robots[(pos + dirn * (k + 1)) % n] for k in range(horizon + 1)
        ]
        return _endpoint_in_window(window, run.axis == "h")

    def _fold_target(
        self,
        occupied: Set[Cell],
        robot: Cell,
        merge_moves: Mapping[Cell, Cell],
        runner_cells: Set[Cell],
    ) -> Optional[Cell]:
        """OP-A reshapement: convex corner fold toward the between-diagonal.

        Guards (all locally checkable):

        * the runner has exactly two, perpendicular, occupied 4-neighbors
          (a convex corner) and the between-diagonal is free;
        * both anchor neighbors are stationary this round: not part of a
          merge move and not themselves runners (who might fold away).

        With stationary anchors, *any* set of simultaneous folds preserves
        connectivity: a degree-2 mover's only graph edges go to its two
        anchors, and the fold keeps both adjacencies — this is how the
        paper's Fig. 5 symmetry hazard is excluded (there, the hopping
        robots lost an anchor adjacency).

        Checks are inlined (no geometry helpers): this runs for every
        live run every round.
        """
        x, y = robot
        nbrs = []
        if (x + 1, y) in occupied:
            nbrs.append((x + 1, y))
        if (x, y + 1) in occupied:
            nbrs.append((x, y + 1))
        if (x - 1, y) in occupied:
            nbrs.append((x - 1, y))
        if (x, y - 1) in occupied:
            nbrs.append((x, y - 1))
        if len(nbrs) != 2:
            return None
        n0, n1 = nbrs
        if n0[0] == n1[0] or n0[1] == n1[1]:
            return None  # collinear (opposite) neighbors, not a corner
        target = (n0[0] + n1[0] - x, n0[1] + n1[1] - y)
        if target in occupied:
            return None  # occupied diagonal = state-free corner merge's job
        if n0 in merge_moves or n1 in merge_moves:
            return None
        if n0 in runner_cells or n1 in runner_cells:
            return None
        return target

    # ------------------------------------------------------------------
    # Finalization after the engine applied the round's moves
    # ------------------------------------------------------------------
    def finalize(
        self,
        applied_moves: Mapping[Cell, Cell],
        occupied_after: Set[Cell],
    ) -> List[Tuple[Run, Optional[str]]]:
        """Advance surviving runs and drop terminated ones.

        Returns ``(run, termination_reason)`` records for event logging
        (reason ``None`` = advanced normally).
        """
        outcome: List[Tuple[Run, Optional[str]]] = []
        new_runs: Dict[int, Run] = {}
        landing_cells = set(applied_moves.values())
        for planned in self._planned:
            run = planned.run
            if planned.terminate is not None:
                outcome.append((run, planned.terminate))
                continue
            # Rule 3 (passive): somebody merged onto the stationary runner.
            if planned.fold_to is None and run.robot in landing_cells:
                outcome.append((run, "run_merged"))
                continue
            if planned.next_robot is None:
                raise InvariantError(
                    f"planned move for run {run.run_id} names no "
                    f"successor robot"
                )
            holder_after = (
                planned.fold_to
                if planned.fold_to is not None
                else applied_moves.get(run.robot, run.robot)
            )
            next_after = applied_moves.get(
                planned.next_robot, planned.next_robot
            )
            if next_after not in occupied_after:
                outcome.append((run, "run_lost"))
                continue
            if next_after == holder_after:
                # the next robot merged into the runner's cell
                outcome.append((run, "run_merged"))
                continue
            # dataclasses.replace is measurably slow in this per-run hot
            # loop; construct the advanced run directly.
            advanced = Run(
                run_id=run.run_id,
                robot=next_after,
                prev=holder_after,
                direction=run.direction,
                axis=run.axis,
                born_round=run.born_round,
            )
            new_runs[run.run_id] = advanced
            outcome.append((advanced, None))
        self.runs = new_runs
        self._planned = []
        return outcome
