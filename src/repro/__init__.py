"""repro — Asymptotically Optimal Gathering on a Grid (SPAA 2016).

A production-quality reproduction of Cord-Landwehr, Fischer, Jung and
Meyer auf der Heide's O(n) FSYNC local gathering algorithm for robot swarms
on the 2-D grid, together with all substrates (grid world, FSYNC/ASYNC
engines, boundary machinery), the baselines the paper compares against, and
a full experiment harness.

Quickstart::

    from repro import Scenario, simulate

    result = simulate(Scenario(family="ring", n=100))
    assert result.gathered
    print(result.rounds, "rounds for", result.robots_initial, "robots")

``simulate()`` is the unified facade: every workload — the paper's grid
algorithm and all baselines it is compared against — runs behind it,
selected by string key from the ``STRATEGIES``/``SCHEDULERS`` registries
and returning one uniform ``RunResult`` (see docs/api.md).  The classic
``gather(cells)`` spelling still works and routes through the facade.

See README.md for the architecture overview, DESIGN.md for the paper-to-
module mapping, and EXPERIMENTS.md for measured results.
"""

from repro.constants import (
    GATHER_SQUARE,
    MAX_BUMP_LENGTH,
    RUN_PASSING_DISTANCE,
    RUN_START_INTERVAL,
    VIEWING_RADIUS,
)
from repro.core import AlgorithmConfig, GatherOnGrid, gather
from repro.engine import (
    AsyncEngine,
    ConnectivityViolation,
    FsyncEngine,
    GatherResult,
    NotGathered,
    RunResult,
    Scenario,
)
from repro.grid import SwarmState, extract_boundaries, is_connected
from repro.api import SCHEDULERS, STRATEGIES, simulate
from repro.swarms import (
    diamond_ring,
    double_donut,
    line,
    plus_shape,
    random_blob,
    random_tree,
    ring,
    solid_rectangle,
    spiral,
    staircase,
)

__version__ = "1.1.0"

__all__ = [
    "simulate",
    "Scenario",
    "RunResult",
    "STRATEGIES",
    "SCHEDULERS",
    "GATHER_SQUARE",
    "MAX_BUMP_LENGTH",
    "RUN_PASSING_DISTANCE",
    "RUN_START_INTERVAL",
    "VIEWING_RADIUS",
    "AlgorithmConfig",
    "GatherOnGrid",
    "gather",
    "AsyncEngine",
    "ConnectivityViolation",
    "FsyncEngine",
    "GatherResult",
    "NotGathered",
    "SwarmState",
    "extract_boundaries",
    "is_connected",
    "diamond_ring",
    "double_donut",
    "line",
    "plus_shape",
    "random_blob",
    "random_tree",
    "ring",
    "solid_rectangle",
    "spiral",
    "staircase",
    "__version__",
]
