"""Swarm serialization: text art and JSON.

Text art uses ``#`` for occupied and ``.`` for free cells, one row per
line, top row = highest y (as rendered by :mod:`repro.viz.ascii_art`), so
shapes in tests read the way they look.
"""

from __future__ import annotations

import json
from typing import Iterable, List

from repro.grid.geometry import Cell, bounding_box


def to_text(cells: Iterable[Cell], occupied: str = "#", free: str = ".") -> str:
    """Render cells as text art (top row = max y)."""
    cell_set = set(cells)
    if not cell_set:
        return ""
    min_x, min_y, max_x, max_y = bounding_box(cell_set)
    rows = []
    for y in range(max_y, min_y - 1, -1):
        rows.append(
            "".join(
                occupied if (x, y) in cell_set else free
                for x in range(min_x, max_x + 1)
            )
        )
    return "\n".join(rows)


def from_text(art: str, occupied: str = "#") -> List[Cell]:
    """Parse text art back into cells (inverse of :func:`to_text` up to
    translation: the bottom-left of the drawing becomes (0, 0))."""
    lines = [ln for ln in art.splitlines() if ln.strip()]
    cells: List[Cell] = []
    height = len(lines)
    for row, ln in enumerate(lines):
        y = height - 1 - row
        for x, ch in enumerate(ln):
            if ch == occupied:
                cells.append((x, y))
    return sorted(cells)


def to_json(cells: Iterable[Cell]) -> str:
    """JSON-encode a swarm as a sorted list of [x, y] pairs."""
    return json.dumps(sorted(set(cells)))


def from_json(payload: str) -> List[Cell]:
    """Decode a swarm from :func:`to_json` output."""
    data = json.loads(payload)
    return sorted((int(x), int(y)) for x, y in data)
