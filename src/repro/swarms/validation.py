"""Swarm validation and normalization helpers."""

from __future__ import annotations

from typing import Iterable, List

from repro.grid.connectivity import connected_components, is_connected
from repro.grid.geometry import Cell, bounding_box


def ensure_connected(cells: Iterable[Cell]) -> List[Cell]:
    """Return the sorted cell list, raising if empty or disconnected."""
    out = sorted(set(cells))
    if not out:
        raise ValueError("swarm is empty")
    if not is_connected(out):
        comps = connected_components(out)
        raise ValueError(
            f"swarm is disconnected ({len(comps)} components; the paper's "
            "model requires a connected initial swarm)"
        )
    return out


def normalize(cells: Iterable[Cell]) -> List[Cell]:
    """Translate the swarm so its bounding box starts at the origin.

    The algorithm is translation-invariant (no compass, no origin); tests
    use this to compare shapes up to translation.
    """
    cell_list = sorted(set(cells))
    if not cell_list:
        return []
    min_x, min_y, _, _ = bounding_box(cell_list)
    return [(x - min_x, y - min_y) for x, y in cell_list]
