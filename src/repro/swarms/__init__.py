"""Workload generators, validation, and serialization for swarms."""

from repro.swarms.generators import (
    comb,
    diamond_ring,
    double_donut,
    h_shape,
    line,
    l_corridor,
    plus_shape,
    random_blob,
    random_tree,
    ring,
    solid_rectangle,
    spiral,
    staircase,
    staircase_corridor,
    FAMILIES,
    family,
)
from repro.swarms.validation import ensure_connected, normalize
from repro.swarms.serialization import (
    from_text,
    to_text,
    to_json,
    from_json,
)

__all__ = [
    "comb",
    "diamond_ring",
    "double_donut",
    "h_shape",
    "line",
    "l_corridor",
    "plus_shape",
    "random_blob",
    "random_tree",
    "ring",
    "solid_rectangle",
    "spiral",
    "staircase",
    "staircase_corridor",
    "FAMILIES",
    "family",
    "ensure_connected",
    "normalize",
    "from_text",
    "to_text",
    "to_json",
    "from_json",
]
