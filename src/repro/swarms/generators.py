"""Connected swarm generators for experiments and tests.

Every generator returns a sorted list of distinct ``(x, y)`` cells forming a
4-connected swarm (validated; generators raise if they ever produce a
disconnected shape — that would silently invalidate experiments).

The families cover the regimes the algorithm exercises:

* merge-dominated: ``solid_rectangle``, ``random_blob`` (thick material,
  state-free bump/corner merges do the work);
* reshapement-dominated: ``ring``, ``double_donut``, ``spiral``,
  ``staircase_corridor``, ``diamond_ring`` (mergeless phases, runs);
* leaf-dominated: ``line``, ``random_tree``, ``comb`` (1-thick limbs);
* worst-case diameter: ``line`` realizes the paper's Omega(n) lower bound.
"""

from __future__ import annotations

import random
from typing import Callable, Dict, List, Optional, Sequence, Set

from repro.grid.connectivity import is_connected
from repro.grid.geometry import Cell


def _finish(cells: Set[Cell] | Sequence[Cell]) -> List[Cell]:
    out = sorted(set(cells))
    if not out:
        raise ValueError("generator produced an empty swarm")
    if not is_connected(out):
        raise AssertionError("generator produced a disconnected swarm (bug)")
    return out


def line(n: int, vertical: bool = False) -> List[Cell]:
    """A 1-thick straight line of ``n`` robots — the diameter worst case."""
    if n < 1:
        raise ValueError("n must be >= 1")
    return _finish([(0, i) if vertical else (i, 0) for i in range(n)])


def solid_rectangle(width: int, height: int) -> List[Cell]:
    """A filled ``width x height`` block."""
    if width < 1 or height < 1:
        raise ValueError("dimensions must be >= 1")
    return _finish([(x, y) for x in range(width) for y in range(height)])


def ring(side: int, thickness: int = 1) -> List[Cell]:
    """A square ring (annulus) with the given wall thickness."""
    if side < 3:
        raise ValueError("side must be >= 3")
    if not 1 <= thickness <= side // 2:
        raise ValueError("thickness must be in [1, side//2]")
    cells = [
        (x, y)
        for x in range(side)
        for y in range(side)
        if (
            x < thickness
            or x >= side - thickness
            or y < thickness
            or y >= side - thickness
        )
    ]
    return _finish(cells)


def plus_shape(arm: int, width: int = 1) -> List[Cell]:
    """A plus/cross with four arms of length ``arm`` and given width."""
    if arm < 1 or width < 1:
        raise ValueError("arm and width must be >= 1")
    half = width // 2
    cells: Set[Cell] = set()
    for w in range(-half, width - half):
        for i in range(-arm, arm + 1):
            cells.add((i, w))
            cells.add((w, i))
    return _finish(cells)


def h_shape(height: int, span: int) -> List[Cell]:
    """An H: two vertical bars joined by a horizontal crossbar."""
    if height < 3 or span < 1:
        raise ValueError("height >= 3 and span >= 1 required")
    cells: Set[Cell] = set()
    mid = height // 2
    for y in range(height):
        cells.add((0, y))
        cells.add((span + 1, y))
    for x in range(span + 2):
        cells.add((x, mid))
    return _finish(cells)


def staircase(steps: int) -> List[Cell]:
    """An open staircase: unit steps northeast, 2 robots per step."""
    if steps < 1:
        raise ValueError("steps must be >= 1")
    cells: Set[Cell] = {(0, 0)}
    x = y = 0
    for _ in range(steps):
        cells.add((x + 1, y))
        x += 1
        cells.add((x, y + 1))
        y += 1
    return _finish(cells)


def staircase_corridor(steps: int, run: int = 2) -> List[Cell]:
    """A fat staircase: ``run`` horizontal robots per tread, 1-thick."""
    if steps < 1 or run < 1:
        raise ValueError("steps and run must be >= 1")
    cells: Set[Cell] = set()
    x = y = 0
    for _ in range(steps):
        for _ in range(run):
            cells.add((x, y))
            x += 1
        cells.add((x - 1, y + 1))
        y += 1
    cells.add((x - 1, y))
    return _finish(cells)


def diamond_ring(radius: int) -> List[Cell]:
    """A closed 1-thick diamond (4-connected staircase approximation of an
    L1 circle) — the all-stairway stress shape for the run machinery."""
    if radius < 2:
        raise ValueError("radius must be >= 2")
    cells: Set[Cell] = set()
    # Trace one quadrant as a staircase from (0, r) to (r, 0) and mirror.
    x, y = 0, radius
    while y > 0:
        cells.add((x, y))
        cells.add((x + 1, y))
        x += 1
        y -= 1
    cells.add((x, 0))
    full: Set[Cell] = set()
    for (a, b) in cells:
        full |= {(a, b), (-a, b), (a, -b), (-a, -b)}
    return _finish(full)


def spiral(turns: int, gap: int = 2) -> List[Cell]:
    """A rectangular 1-thick spiral with ``gap`` empty cells between arms."""
    if turns < 1:
        raise ValueError("turns must be >= 1")
    cells: List[Cell] = []
    x = y = 0
    dirs = [(1, 0), (0, 1), (-1, 0), (0, -1)]
    step = gap + 1
    d = 0
    for _ in range(2 * turns):
        dx, dy = dirs[d % 4]
        for _ in range(step):
            cells.append((x, y))
            x += dx
            y += dy
        d += 1
        if d % 2 == 0:
            step += gap + 1
    cells.append((x, y))
    return _finish(cells)


def comb(teeth: int, tooth_len: int) -> List[Cell]:
    """A comb: a spine with ``teeth`` prongs of length ``tooth_len``."""
    if teeth < 1 or tooth_len < 1:
        raise ValueError("teeth and tooth_len must be >= 1")
    cells = [(x, 0) for x in range(2 * teeth + 1)]
    for t in range(teeth):
        cells += [(2 * t + 1, y) for y in range(1, tooth_len + 1)]
    return _finish(cells)


def l_corridor(arm: int, thickness: int = 1) -> List[Cell]:
    """An L-shaped corridor with two arms of length ``arm``."""
    if arm < 2 or thickness < 1:
        raise ValueError("arm >= 2 and thickness >= 1 required")
    cells: Set[Cell] = set()
    for i in range(arm):
        for w in range(thickness):
            cells.add((i, w))
            cells.add((w, i))
    return _finish(cells)


def double_donut(side: int) -> List[Cell]:
    """A block with two rectangular holes (multiple inner boundaries)."""
    if side < 8:
        raise ValueError("side must be >= 8")
    h = side // 2
    cells = {(x, y) for x in range(side) for y in range(h)}
    hole_w = max(1, (side - 6) // 2)
    holes = {
        (x, y)
        for x in range(2, 2 + hole_w)
        for y in range(2, h - 2)
    } | {
        (x, y)
        for x in range(side - 2 - hole_w, side - 2)
        for y in range(2, h - 2)
    }
    return _finish(cells - holes)


def random_blob(n: int, seed: int) -> List[Cell]:
    """Random connected blob grown by seeded BFS-with-randomized frontier."""
    if n < 1:
        raise ValueError("n must be >= 1")
    rng = random.Random(seed)
    cells: Set[Cell] = {(0, 0)}
    frontier: List[Cell] = [(0, 0)]
    while len(cells) < n:
        c = frontier[rng.randrange(len(frontier))]
        nbs = [
            (c[0] + dx, c[1] + dy)
            for dx, dy in ((1, 0), (-1, 0), (0, 1), (0, -1))
            if (c[0] + dx, c[1] + dy) not in cells
        ]
        if not nbs:
            frontier.remove(c)
            continue
        p = nbs[rng.randrange(len(nbs))]
        cells.add(p)
        frontier.append(p)
    return _finish(cells)


def random_tree(n: int, seed: int, tip_bias: float = 0.85) -> List[Cell]:
    """Random connected tree-like swarm (thin, many leaves and corridors).

    Growth prefers extending recently added tips, producing long 1-thick
    limbs — the hardest regime for merge parallelism.
    """
    if n < 1:
        raise ValueError("n must be >= 1")
    rng = random.Random(seed)
    cells: Set[Cell] = {(0, 0)}
    tips: List[Cell] = [(0, 0)]
    order: List[Cell] = [(0, 0)]
    while len(cells) < n:
        c = (
            tips[rng.randrange(len(tips))]
            if rng.random() < tip_bias
            else order[rng.randrange(len(order))]
        )
        nbs = [
            (c[0] + dx, c[1] + dy)
            for dx, dy in ((1, 0), (-1, 0), (0, 1), (0, -1))
            if (c[0] + dx, c[1] + dy) not in cells
        ]
        if not nbs:
            if c in tips:
                tips.remove(c)
            continue
        p = nbs[rng.randrange(len(nbs))]
        cells.add(p)
        tips.append(p)
        order.append(p)
    return _finish(cells)


# ----------------------------------------------------------------------
# Named families for the experiment harness: n -> swarm (seeded where
# random).  Each callable takes a target size and returns roughly that many
# robots (exact for most shapes).
# ----------------------------------------------------------------------
def _family_ring(n: int) -> List[Cell]:
    side = max(4, (n + 4) // 4 + 1)
    return ring(side)


def _family_solid(n: int) -> List[Cell]:
    side = max(2, round(n**0.5))
    return solid_rectangle(side, side)


def _family_blob(n: int) -> List[Cell]:
    return random_blob(n, seed=n)


def _family_tree(n: int) -> List[Cell]:
    return random_tree(n, seed=n)


def _family_stair(n: int) -> List[Cell]:
    return staircase(max(1, (n - 1) // 2))


def _family_plus(n: int) -> List[Cell]:
    return plus_shape(max(1, (n - 1) // 4))


def _family_spiral(n: int) -> List[Cell]:
    t = 1
    while len(spiral(t)) < n:
        t += 1
    return spiral(t)


FAMILIES: Dict[str, Callable[[int], List[Cell]]] = {
    "line": line,
    "ring": _family_ring,
    "solid": _family_solid,
    "blob": _family_blob,
    "tree": _family_tree,
    "staircase": _family_stair,
    "plus": _family_plus,
    "spiral": _family_spiral,
}

#: Families with a random component, exposed for per-task seeding by the
#: parallel sweep runner (default family seeds derive from ``n``).
STOCHASTIC_FAMILIES: Dict[str, Callable[[int, int], List[Cell]]] = {
    "blob": random_blob,
    "tree": random_tree,
}


def family(name: str, n: int, seed: Optional[int] = None) -> List[Cell]:
    """A swarm of (approximately) ``n`` robots from the named family.

    ``seed`` overrides the derived seed of stochastic families (blob,
    tree) so sweeps can average over independent instances; deterministic
    families ignore it.
    """
    if seed is not None and name in STOCHASTIC_FAMILIES:
        return STOCHASTIC_FAMILIES[name](n, seed)
    try:
        return FAMILIES[name](n)
    except KeyError:
        raise KeyError(
            f"unknown family {name!r}; available: {sorted(FAMILIES)}"
        ) from None
