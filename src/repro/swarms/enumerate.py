"""Exhaustive enumeration of small connected swarms (polyominoes).

``all_polyominoes(n)`` yields every *fixed* polyomino with ``n`` cells
(translation-normalized, rotations/reflections distinct), built by the
standard growth procedure.  The exhaustive tests run the full algorithm on
every shape up to a size bound — model checking for the gathering
invariants: no symmetric corner case can hide below the bound.

Fixed polyomino counts (OEIS A001168): 1, 2, 6, 19, 63, 216, 760, 2725 for
n = 1..8.
"""

from __future__ import annotations

from typing import FrozenSet, Iterator, Set

from repro.grid.geometry import Cell, neighbors4


def _normalize(cells: FrozenSet[Cell]) -> FrozenSet[Cell]:
    min_x = min(x for x, _ in cells)
    min_y = min(y for _, y in cells)
    return frozenset((x - min_x, y - min_y) for x, y in cells)


def all_polyominoes(n: int) -> Iterator[FrozenSet[Cell]]:
    """Yield every fixed polyomino of size ``n`` exactly once.

    Breadth-first growth with canonical (translation-normalized)
    deduplication.  Memory is O(#polyominoes(n)); fine up to n ~ 10.
    """
    if n < 1:
        raise ValueError("n must be >= 1")
    current: Set[FrozenSet[Cell]] = {frozenset({(0, 0)})}
    for _ in range(n - 1):
        grown: Set[FrozenSet[Cell]] = set()
        for shape in current:
            for cell in shape:
                for nb in neighbors4(cell):
                    if nb not in shape:
                        grown.add(_normalize(shape | {nb}))
        current = grown
    yield from sorted(current, key=sorted)


def polyomino_count(n: int) -> int:
    """Number of fixed polyominoes of size ``n`` (for test cross-checks)."""
    return sum(1 for _ in all_polyominoes(n))
