"""Paper constants for *Asymptotically Optimal Gathering on a Grid*.

The paper (Section 5, Lemma 3) fixes two global constants:

* ``VIEWING_RADIUS`` — the L1 radius of a robot's local view.  The paper
  uses the (admittedly unoptimized) value 20; 11 suffices for the easy run
  passing case.
* ``RUN_START_INTERVAL`` (the paper's ``L``) — every ``L`` rounds all robots
  simultaneously check whether they may start new run states.  The paper
  derives ``L = 22`` (and ``L >= 13`` for the easy case).

``RUN_PASSING_DISTANCE`` is the boundary distance at or below which two runs
moving toward each other begin the run passing operation (paper Section 3.2:
"We call 3 the run passing distance").

These are *defaults*; :class:`repro.core.config.AlgorithmConfig` lets
experiments sweep them (ablation E5).
"""

from __future__ import annotations

#: L1 viewing radius of a robot (paper Section 1 / Lemma 3).
VIEWING_RADIUS: int = 20

#: Number of rounds between global run-start checks (paper's ``L``).
RUN_START_INTERVAL: int = 22

#: Boundary distance at which approaching runs start passing (paper: 3).
RUN_PASSING_DISTANCE: int = 3

#: Maximum length of a bump merge operation (paper Fig. 2's ``k``); the paper
#: upper-bounds it by the viewing radius.  We bound it tighter: every mover
#: of a pattern must also *see* any adjacent pattern that could freeze one of
#: its co-movers (DESIGN.md Section 3), which requires
#: ``2 * k + 2 <= VIEWING_RADIUS`` — hence 9 for radius 20.
MAX_BUMP_LENGTH: int = 9

#: Gathering is complete when all robots fit inside a 2x2 square
#: (paper Section 3.2).
GATHER_SQUARE: int = 2
