"""Witness schedules: from DAG paths to replayable artifacts.

A path through the exploration DAG is an *abstract* schedule — per-round
activation choices over canonical frames.  :func:`build_witness` turns
it back into a concrete one: it re-drives the grid controller from the
real initial cells, maps each canonical choice through the accumulated
translation offsets, and follows robot identity with the engine's exact
token rules (integer tokens over the sorted initial cells; merge groups
keep the smallest).  The result is a per-round list of activated tokens
that the stock SSYNC scheduler replays bit-identically via the
``scripted`` activation policy (see
:func:`repro.trace.replay.replay_schedule`).

Fairness accounting rides along: the witness tracks every token's
activation streak with the engine's own commit semantics and reports
``fairness_k`` — the smallest ``k_fairness`` under which the stock
schedule replays the witness *without* force-activating anybody.  A
connectivity witness with ``fairness_k = K`` is a constructive proof
that a K-fair SSYNC adversary can break the algorithm's safety.

Serialization is the trace JSONL format (header + one sorted-cell row
per round), with the schedule and verdict riding in the header meta —
plain :func:`repro.trace.recorder.load_trace` readers still parse the
rows.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.core.config import AlgorithmConfig
from repro.errors import InvariantError
from repro.explore.driver import Edge, StateDag
from repro.grid.geometry import Cell
from repro.grid.occupancy import SwarmState
from repro.trace.replay import grid_controller_class


@dataclass
class Witness:
    """A concrete, replayable SSYNC schedule with its expected trace."""

    initial: Tuple[Cell, ...]
    #: Per-round activated token sets (sorted tuples), engine semantics.
    schedule: List[Tuple[int, ...]]
    #: Expected post-round cell sets (sorted tuples), one per round.
    rows: List[Tuple[Cell, ...]]
    #: ``"connectivity_lost"`` / ``"gathered"`` / ``"open"`` (a
    #: non-terminal path, e.g. a livelock prefix).
    terminal: str
    violation_round: Optional[int]
    #: Smallest ``k_fairness`` replaying this schedule unforced.
    fairness_k: int
    #: Activated mover cells per round, real frame (diagnostics).
    choices: List[Tuple[Cell, ...]] = field(default_factory=list)
    #: Grid-state strategy the schedule was built against (``"grid"``
    #: or ``"tolerant"``); replay uses the same controller.
    strategy: str = "grid"

    @property
    def rounds(self) -> int:
        return len(self.schedule)


def build_witness(
    dag: StateDag,
    edges: Optional[List[Edge]] = None,
    *,
    target=None,
    cfg: Optional[AlgorithmConfig] = None,
) -> Witness:
    """Reconstruct the concrete witness for a DAG path.

    Pass either ``edges`` (an explicit path from the root, e.g. a
    :meth:`~repro.explore.driver.StateDag.worst_case` path) or
    ``target`` (a node key; the BFS-tree path is used).
    """
    if edges is None:
        if target is None:
            raise ValueError("build_witness needs edges or a target key")
        edges = dag.edge_path(target)
    if getattr(dag, "symmetry", "translation") != "translation":
        raise ValueError(
            f"witness reconstruction needs exact (translation-only) "
            f"frames; this DAG was deduped with "
            f"symmetry={dag.symmetry!r} — re-explore with "
            f"symmetry='translation' to extract schedules"
        )
    strategy = getattr(dag, "strategy", "grid")
    controller = grid_controller_class(strategy)(cfg or dag.cfg)
    state = SwarmState(list(dag.initial_cells))
    ox, oy = dag.root_offset

    cell_of: Dict[int, Cell] = dict(enumerate(sorted(dag.initial_cells)))
    streak: Dict[int, int] = {t: 0 for t in cell_of}
    max_idle = 0

    schedule: List[Tuple[int, ...]] = []
    rows: List[Tuple[Cell, ...]] = []
    choices: List[Tuple[Cell, ...]] = []
    for round_index, edge in enumerate(edges):
        chosen = {(x + ox, y + oy) for x, y in edge.choice}
        planned = dict(controller.plan_round(state, round_index))
        if not chosen <= set(planned):
            raise InvariantError(
                f"witness choice {sorted(chosen)} is not a subset of the "
                f"round-{round_index} plan {sorted(planned)} — the DAG "
                f"and the concrete replay disagree"
            )
        active = tuple(
            sorted(t for t, c in cell_of.items() if c in chosen)
        )
        idle = [streak[t] for t in sorted(cell_of) if t not in active]
        if idle:
            max_idle = max(max_idle, max(idle))
        schedule.append(active)
        choices.append(tuple(sorted(chosen)))

        moves = {c: planned[c] for c in sorted(chosen)}
        merged = state.apply_moves(moves)
        controller.notify_applied(state, round_index, moves, merged)
        rows.append(tuple(sorted(state.cells)))

        # Token migration and streak commit, mirroring the engine.
        groups: Dict[Cell, List[int]] = {}
        for token, cell in cell_of.items():
            groups.setdefault(moves.get(cell, cell), []).append(token)
        new_cell_of: Dict[int, Cell] = {}
        new_streak: Dict[int, int] = {}
        for cell, tokens in sorted(groups.items()):
            tokens.sort()
            survivor = tokens[0]
            new_cell_of[survivor] = cell
            merged_streaks = [
                0 if t in active else streak[t] + 1 for t in tokens
            ]
            new_streak[survivor] = min(merged_streaks)
        cell_of = new_cell_of
        streak = new_streak

        ex, ey = edge.offset
        ox, oy = ox + ex, oy + ey

    if edges:
        final = dag.nodes[edges[-1].child]
        status = final.status
    else:
        status = dag.nodes[dag.root].status
    terminal = {
        "disconnected": "connectivity_lost",
        "gathered": "gathered",
    }.get(status, "open")
    return Witness(
        initial=dag.initial_cells,
        schedule=schedule,
        rows=rows,
        terminal=terminal,
        violation_round=(
            len(edges) - 1 if terminal == "connectivity_lost" else None
        ),
        # No forcing iff every pre-activation streak stays strictly
        # below k_fairness - 1.
        fairness_k=max_idle + 2,
        choices=choices,
        strategy=strategy,
    )


# ----------------------------------------------------------------------
# Serialization (trace JSONL format)
# ----------------------------------------------------------------------
def save_witness(witness: Witness, fh) -> None:
    """Write the witness as a JSONL trace with header metadata."""
    header = {
        "type": "header",
        "kind": "ssync_witness",
        "strategy": witness.strategy,
        "scheduler": "ssync",
        "activation": "scripted",
        "n": len(witness.initial),
        "initial": [list(c) for c in witness.initial],
        "schedule": [list(r) for r in witness.schedule],
        "fairness_k": witness.fairness_k,
        "terminal": witness.terminal,
        "violation_round": witness.violation_round,
    }
    fh.write(json.dumps(header) + "\n")
    for round_index, cells in enumerate(witness.rows):
        fh.write(
            json.dumps(
                {
                    "type": "round",
                    "round": round_index,
                    "cells": [list(c) for c in cells],
                }
            )
            + "\n"
        )


def load_witness(lines) -> Witness:
    """Parse a witness written by :func:`save_witness`."""
    from repro.trace.recorder import read_trace

    meta, rows = read_trace(lines)
    if meta.get("kind") != "ssync_witness":
        raise ValueError(
            f"not an ssync_witness trace (kind={meta.get('kind')!r})"
        )
    return Witness(
        initial=tuple(
            (int(x), int(y)) for x, y in meta["initial"]
        ),
        schedule=[
            tuple(int(t) for t in r) for r in meta["schedule"]
        ],
        rows=[row.cells for row in rows],
        terminal=str(meta["terminal"]),
        violation_round=(
            int(meta["violation_round"])
            if meta.get("violation_round") is not None
            else None
        ),
        fairness_k=int(meta["fairness_k"]),
        strategy=str(meta.get("strategy", "grid")),
    )


def verify_witness(
    witness: Witness, cfg: Optional[AlgorithmConfig] = None
) -> bool:
    """True iff the stock SSYNC scheduler replays the witness
    bit-identically: every per-round cell set matches and the expected
    terminal event fires (at the expected round for violations)."""
    from repro.trace.replay import verify_schedule_trace

    return verify_schedule_trace(
        witness.initial,
        witness.schedule,
        witness.rows,
        cfg=cfg,
        k_fairness=witness.fairness_k,
        expect_terminal=(
            witness.terminal if witness.terminal != "open" else None
        ),
        violation_round=witness.violation_round,
        strategy=witness.strategy,
    )
