"""Scheduler-nondeterminism explorer: the SSYNC activation tree as a
deduplicated state DAG.

The paper proves gathering and connectivity for FSYNC; under SSYNC the
adversary picks an activation subset every round, and sampling that tree
one seed at a time (the ``ssync`` scheduler's stochastic policies) finds
breakages only by luck.  This package searches it *systematically*:

* :func:`explore` — branch every round across its activation subsets,
  merging translation-equivalent states into one DAG
  (:mod:`repro.explore.canonical`).  Exhaustive closure for small
  swarms, seeded/guided beams beyond.
* :func:`build_witness` / :func:`verify_witness` — turn any DAG path
  into a concrete per-round token schedule that the stock SSYNC
  scheduler replays bit-identically (``activation="scripted"``), with
  its k-fairness boundary attached.
* :func:`run_certification` (in :mod:`repro.analysis.certification`) —
  the exhaustive small-``n`` sweep as machine-checked bound tables.

See ``docs/explorer.md``.
"""

from repro.explore.canonical import (
    StateKey,
    canonical_state_key,
    round_phase,
)
from repro.explore.driver import Edge, Node, StateDag, WorstCase, explore
from repro.explore.witness import (
    Witness,
    build_witness,
    load_witness,
    save_witness,
    verify_witness,
)

__all__ = [
    "Edge",
    "Node",
    "StateDag",
    "StateKey",
    "Witness",
    "WorstCase",
    "build_witness",
    "canonical_state_key",
    "explore",
    "load_witness",
    "round_phase",
    "save_witness",
    "verify_witness",
]
