"""The activation-subset branching driver.

SSYNC nondeterminism is exactly the choice of *which planned movers
act* each round: robots without a planned move contribute nothing to the
state whether activated or not (the engine filters the round's plan by
the activated cells, and activation streaks never feed a planning
decision), so the adversary's whole power at a round with ``m`` planned
movers is the ``2^m`` subsets of those movers.  The explorer forks the
round across that subset lattice, reduces every resulting state to its
canonical key (:mod:`repro.explore.canonical`), and grows the deduped
state DAG breadth-first — cycles simply close back onto known nodes, so
exploration terminates exactly when the reachable closure is built.

Each branch replays the engine's own round, operation for operation:
restore the controller from the node's checkpoint, ``plan_round`` (run
starts and freshness behave correctly because the phase is part of the
node key), apply the chosen subset of planned moves, ``notify_applied``
(the run table advances *as if the plan had executed* — the documented
desynchronization that lets partial activation break connectivity).
Because planning is deterministic, the plan is computed once per node
and the manager's post-plan state is snapshotted and restored around
each subset instead of replanning ``2^m`` times.

Modes: ``exhaustive`` expands every subset of every frontier node (the
certification mode — complete for small ``n``); ``beam`` keeps the
``beam_width`` most promising nodes per depth and samples
``branch_samples`` seeded subsets per node (always including the full
set and, when stalls are enabled, the empty set), for guided search on
swarms whose closure is out of reach.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Set, Tuple

from repro.core.config import AlgorithmConfig
from repro.engine.events import EventLog
from repro.explore.canonical import (
    RunRow,
    StateKey,
    canonical_state_key,
    checkpoint_from_rows,
    round_phase,
)
from repro.grid.connectivity import articulation_cells, is_connected
from repro.grid.geometry import Cell
from repro.trace.replay import (
    controller_checkpoint,
    grid_controller_class,
    restore_controller,
)

#: Seed salt keeping beam-mode subset sampling an independent stream of
#: a user-facing seed (mirrors the facade's policy/fault salts).
_BRANCH_SEED_SALT = 0xB4A9


@dataclass(frozen=True)
class Edge:
    """One activation choice out of a node.

    ``choice`` is the activated subset of the round's planned movers,
    as cells in the *parent's* canonical frame; ``offset`` rebases the
    post-round state into the child's canonical frame
    (``child_canonical = post_round - offset``).
    """

    choice: Tuple[Cell, ...]
    child: StateKey
    offset: Cell


@dataclass
class Node:
    """One deduplicated state of the exploration DAG."""

    key: StateKey
    depth: int
    status: str  # "open" | "gathered" | "disconnected"
    #: BFS-tree parent: ``(parent_key, choice, offset)`` of the first
    #: edge that discovered this node (``None`` for the root).
    parent: Optional[Tuple[StateKey, Tuple[Cell, ...], Cell]] = None
    #: Outgoing edges in enumeration order; ``None`` until expanded.
    edges: Optional[List[Edge]] = None

    @property
    def cells(self) -> Tuple[Cell, ...]:
        return self.key[0]

    @property
    def run_rows(self) -> Tuple[RunRow, ...]:
        return self.key[1]

    @property
    def phase(self) -> int:
        return self.key[2]


@dataclass
class WorstCase:
    """Longest-schedule analysis over a (sub)graph of the DAG.

    ``unbounded`` means a cycle of the chosen edge set is reachable —
    the adversary can postpone gathering forever; ``cycle`` then holds
    one witness loop (node keys).  Otherwise ``rounds`` is the exact
    worst number of rounds to gathering and ``path`` one maximizing
    schedule (edge list from the root).  ``complete`` is False when the
    analysis saw an unexpanded node (truncated exploration) — the
    numbers are then lower bounds, not certificates.
    """

    unbounded: bool
    rounds: Optional[int]
    complete: bool
    path: List[Edge] = field(default_factory=list)
    cycle: List[StateKey] = field(default_factory=list)


class StateDag:
    """The deduplicated reachability graph of one seed swarm."""

    def __init__(
        self,
        initial_cells,
        cfg: AlgorithmConfig,
        root: StateKey,
        root_offset: Cell,
        mode: str,
        strategy: str = "grid",
        symmetry: str = "translation",
    ) -> None:
        self.initial_cells: Tuple[Cell, ...] = tuple(sorted(initial_cells))
        self.cfg = cfg
        self.root = root
        #: ``initial = root_cells + root_offset``.
        self.root_offset = root_offset
        self.mode = mode
        #: The grid-state strategy key whose controller was branched
        #: (``"grid"`` or ``"tolerant"``) — witnesses replay with it.
        self.strategy = strategy
        #: Dedup group: ``"translation"`` (exact frames) or ``"d4"``
        #: (verdict-level acceleration; witnesses need exact frames).
        self.symmetry = symmetry
        self.nodes: Dict[StateKey, Node] = {}
        self.edge_count = 0
        self.max_depth_reached = 0
        #: True when a limit (``max_nodes``/``max_depth``/beam pruning)
        #: cut the search before the reachable closure was built.
        self.truncated = False

    # ------------------------------------------------------------------
    @property
    def complete(self) -> bool:
        """True iff the DAG is the full reachable closure (exhaustive
        mode, no limit hit) — the precondition for certified claims."""
        return self.mode == "exhaustive" and not self.truncated

    def counts(self) -> Dict[str, int]:
        """Node count per status, plus totals."""
        out: Dict[str, int] = {"total": len(self.nodes), "edges": self.edge_count}
        for node in self.nodes.values():
            out[node.status] = out.get(node.status, 0) + 1
        return out

    def first(self, status: str) -> Optional[Node]:
        """The first node of ``status`` in discovery order — under BFS
        that is one of minimal depth (an earliest witness)."""
        for node in self.nodes.values():
            if node.status == status:
                return node
        return None

    def nodes_of_status(self, status: str) -> List[Node]:
        """All nodes of ``status``, in discovery (depth-monotone) order."""
        return [n for n in self.nodes.values() if n.status == status]

    def edge_path(self, key: StateKey) -> List[Edge]:
        """The BFS-tree edge list from the root to ``key``."""
        path: List[Edge] = []
        node = self.nodes[key]
        while node.parent is not None:
            parent_key, choice, offset = node.parent
            path.append(Edge(choice=choice, child=node.key, offset=offset))
            node = self.nodes[parent_key]
        path.reverse()
        return path

    # ------------------------------------------------------------------
    def worst_case(self, *, include_stall: bool = False) -> WorstCase:
        """Longest-path analysis toward gathering over the explored
        edges (stall edges excluded by default: with them, any phase
        cycle lets the adversary idle forever, which certifies nothing
        beyond "doing nothing gathers nothing")."""
        WHITE, GRAY, BLACK = 0, 1, 2
        color: Dict[StateKey, int] = {}
        best: Dict[StateKey, Optional[int]] = {}
        best_edge: Dict[StateKey, Edge] = {}
        complete = True

        stack: List[Tuple[StateKey, int]] = [(self.root, 0)]
        path_stack: List[StateKey] = []
        while stack:
            key, phase_idx = stack.pop()
            node = self.nodes[key]
            if phase_idx == 0:
                if color.get(key, WHITE) != WHITE:
                    continue
                if node.status == "gathered":
                    color[key] = BLACK
                    best[key] = 0
                    continue
                if node.status == "disconnected":
                    color[key] = BLACK
                    best[key] = None
                    continue
                if node.edges is None:
                    # Unexpanded frontier: the true value is unknown.
                    color[key] = BLACK
                    best[key] = None
                    complete = False
                    continue
                color[key] = GRAY
                path_stack.append(key)
                stack.append((key, 1))
                for edge in reversed(node.edges):
                    if not include_stall and not edge.choice:
                        continue
                    child_color = color.get(edge.child, WHITE)
                    if child_color == GRAY:
                        # Back edge: a reachable cycle.
                        start = path_stack.index(edge.child)
                        return WorstCase(
                            unbounded=True,
                            rounds=None,
                            complete=complete,
                            cycle=path_stack[start:] + [edge.child],
                        )
                    if child_color == WHITE:
                        stack.append((edge.child, 0))
            else:
                path_stack.pop()
                color[key] = BLACK
                value: Optional[int] = None
                for edge in node.edges or ():
                    if not include_stall and not edge.choice:
                        continue
                    child_best = best.get(edge.child)
                    if child_best is None:
                        continue
                    if value is None or child_best + 1 > value:
                        value = child_best + 1
                        best_edge[key] = edge
                best[key] = value

        rounds = best.get(self.root)
        path: List[Edge] = []
        if rounds is not None:
            key = self.root
            while key in best_edge:
                edge = best_edge[key]
                path.append(edge)
                key = edge.child
        return WorstCase(
            unbounded=False, rounds=rounds, complete=complete, path=path
        )


# ----------------------------------------------------------------------
# Exploration
# ----------------------------------------------------------------------
def _representative_round(phase: int, cfg: AlgorithmConfig) -> int:
    """A concrete round index with the given phase: planning only reads
    the index through :func:`~repro.explore.canonical.round_phase`, so
    the smallest representative is as good as the real one."""
    if cfg.pipelining:
        return phase
    return 0 if phase == 0 else 1


def _status_of(cells: Set[Cell], gather_square: int) -> str:
    """Terminal classification of a raw cell set — the same predicates,
    in the same precedence, as ``SsyncEngine.run()``: the bounding-box
    gathering test wins over disconnection.  The two *can* coincide
    (e.g. two diagonal robots inside a 2x2 box are disconnected yet
    bbox-gathered); the engine reports such runs as ``gathered``, so
    the explorer must too or witnesses would not replay."""
    xs = [x for x, _ in sorted(cells)]
    ys = [y for _, y in sorted(cells)]
    if (
        max(xs) - min(xs) <= gather_square - 1
        and max(ys) - min(ys) <= gather_square - 1
    ):
        return "gathered"
    if not is_connected(cells):
        return "disconnected"
    return "open"


def explore(
    initial_cells,
    *,
    cfg: Optional[AlgorithmConfig] = None,
    mode: str = "exhaustive",
    max_nodes: int = 200_000,
    max_depth: Optional[int] = None,
    beam_width: int = 64,
    branch_samples: int = 24,
    include_stall: bool = True,
    seed: int = 0,
    gather_square: int = 2,
    strategy: str = "grid",
    symmetry: str = "translation",
) -> StateDag:
    """Build the deduplicated activation-subset DAG of one seed swarm.

    ``mode`` is ``"exhaustive"`` (every subset of every node — complete
    closure when no limit trips) or ``"beam"`` (seeded, guided, bounded:
    per depth keep the ``beam_width`` nodes with the most articulation
    cells — the most fragile states — and sample ``branch_samples``
    subsets per node).  ``include_stall`` keeps the empty activation set
    as a branch (stall rounds still advance the run table, which is one
    of the desynchronization mechanisms).  Limits mark the result
    truncated rather than raising.

    ``strategy`` picks the grid-state controller under exploration
    (stock ``"grid"`` or the connectivity-``"tolerant"`` variant).
    ``symmetry`` picks the dedup group for state keys: the exact
    ``"translation"`` default, or ``"d4"`` which additionally folds the
    eight rotations/reflections into one node — a verdict-level
    accelerator (witness reconstruction needs exact frames and refuses
    D4 DAGs).
    """
    if mode not in ("exhaustive", "beam"):
        raise ValueError(
            f"unknown explore mode {mode!r}; expected 'exhaustive' or 'beam'"
        )
    grid_controller_class(strategy)  # fail fast on unknown keys
    if symmetry not in ("translation", "d4"):
        raise ValueError(
            f"unknown explorer symmetry {symmetry!r}; "
            f"expected 'translation' or 'd4'"
        )
    cells = sorted(initial_cells)
    if not cells:
        raise ValueError("cannot explore an empty swarm")
    if not is_connected(set(cells)):
        raise ValueError("initial swarm must be connected (paper model)")
    user_cfg = cfg or AlgorithmConfig()
    # Branch planning uses full-rescan mode: the incremental pipeline's
    # caches would be rebuilt from scratch on every fork anyway (the
    # equivalence suite pins incremental == full rescan bit-identity).
    plan_cfg = replace(
        user_cfg, incremental=False, shard_planning=False
    )

    root_key, root_offset = canonical_state_key(
        cells, {"next_id": 0, "runs": []}, round_phase(0, user_cfg),
        symmetry,
    )
    dag = StateDag(
        cells, user_cfg, root_key, root_offset, mode,
        strategy=strategy, symmetry=symmetry,
    )
    root = Node(
        key=root_key, depth=0, status=_status_of(set(cells), gather_square)
    )
    dag.nodes[root_key] = root

    rng = random.Random(seed ^ _BRANCH_SEED_SALT)
    frontier: List[StateKey] = [root_key] if root.status == "open" else []

    while frontier:
        if mode == "beam" and len(frontier) > beam_width:
            # Guided pruning: prefer fragile states (many articulation
            # cells), tie-broken by key for determinism.
            scored = sorted(
                frontier,
                key=lambda k: (-len(articulation_cells(set(k[0]))), k),
            )
            frontier = scored[:beam_width]
            dag.truncated = True
        next_frontier: List[StateKey] = []
        for key in frontier:
            node = dag.nodes[key]
            if max_depth is not None and node.depth >= max_depth:
                dag.truncated = True
                continue
            children = _expand(
                dag, node, plan_cfg, rng,
                mode=mode,
                branch_samples=branch_samples,
                include_stall=include_stall,
                gather_square=gather_square,
            )
            for child_key in children:
                child = dag.nodes[child_key]
                if child.status == "open" and child.edges is None:
                    next_frontier.append(child_key)
            if len(dag.nodes) >= max_nodes:
                dag.truncated = True
                next_frontier = []
                break
        # A child can be appended twice within one depth sweep (two
        # parents discovering it); dedupe preserving discovery order.
        seen: Set[StateKey] = set()
        frontier = []
        for k in next_frontier:
            if k not in seen and dag.nodes[k].edges is None:
                seen.add(k)
                frontier.append(k)

    return dag


def _subset_masks(
    m: int,
    *,
    mode: str,
    branch_samples: int,
    include_stall: bool,
    rng: random.Random,
) -> List[int]:
    """The activation-subset bitmasks to branch over, in deterministic
    enumeration order."""
    if mode == "exhaustive" or m <= 1 or (1 << m) <= branch_samples:
        masks = list(range(1 << m))
        if not include_stall:
            masks = masks[1:]
        return masks
    full = (1 << m) - 1
    masks = [full]
    if include_stall:
        masks.append(0)
    seen = set(masks)
    # Seeded sampling; the draw count is fixed so equal seeds give
    # equal branches regardless of collision pattern.
    for _ in range(4 * branch_samples):
        if len(masks) >= branch_samples:
            break
        mask = rng.getrandbits(m)
        if not include_stall and mask == 0:
            continue
        if mask not in seen:
            seen.add(mask)
            masks.append(mask)
    return masks


def _expand(
    dag: StateDag,
    node: Node,
    plan_cfg: AlgorithmConfig,
    rng: random.Random,
    *,
    mode: str,
    branch_samples: int,
    include_stall: bool,
    gather_square: int,
) -> List[StateKey]:
    """Fork ``node`` across its activation subsets; returns child keys
    in enumeration order (deduplicated against the DAG)."""
    from repro.grid.occupancy import SwarmState

    rep = _representative_round(node.phase, dag.cfg)
    controller = restore_controller(
        checkpoint_from_rows(node.run_rows), plan_cfg, dag.strategy
    )
    controller.events = EventLog()  # branch probes never keep events
    plan_state = SwarmState(sorted(node.cells))
    planned = dict(controller.plan_round(plan_state, rep))
    movers = sorted(planned)

    # Snapshot the manager's post-plan state once; each subset branch
    # restores it instead of replanning (finalize consumes ``_planned``
    # and rebuilds ``runs`` from fresh Run objects, never mutating the
    # snapshotted ones).
    manager = controller.run_manager
    planned_records = list(manager._planned)
    runs_snapshot = dict(manager.runs)
    next_id_snapshot = manager._next_id

    child_phase = round_phase(rep + 1, dag.cfg)
    node.edges = []
    children: List[StateKey] = []
    masks = _subset_masks(
        len(movers),
        mode=mode,
        branch_samples=branch_samples,
        include_stall=include_stall,
        rng=rng,
    )
    for mask in masks:
        chosen = tuple(
            movers[i] for i in range(len(movers)) if mask >> i & 1
        )
        manager._planned = list(planned_records)
        manager.runs = dict(runs_snapshot)
        manager._next_id = next_id_snapshot
        branch_state = SwarmState(sorted(node.cells))
        moves = {c: planned[c] for c in chosen}
        merged = branch_state.apply_moves(moves)
        controller.notify_applied(branch_state, rep, moves, merged)

        key, offset = canonical_state_key(
            branch_state.cells,
            controller_checkpoint(controller),
            child_phase,
            dag.symmetry,
        )
        node.edges.append(Edge(choice=chosen, child=key, offset=offset))
        dag.edge_count += 1
        child = dag.nodes.get(key)
        if child is None:
            child = Node(
                key=key,
                depth=node.depth + 1,
                status=_status_of(branch_state.cells, gather_square),
                parent=(node.key, chosen, offset),
            )
            dag.nodes[key] = child
            dag.max_depth_reached = max(
                dag.max_depth_reached, child.depth
            )
            children.append(key)
    return children
