"""Canonical state keys for the activation-subset explorer.

A node of the exploration DAG is the *complete* dynamics state of an
SSYNC round boundary.  For the grid strategy that is exactly

* the occupied cells,
* the :class:`~repro.core.runs.RunManager` run table (robot, prev,
  direction, axis per run, in run-id order), and
* the round phase — ``plan_round`` reads the absolute round index only
  through ``round_index % run_start_interval`` (are run starts due?) and
  through ``born_round == round_index`` (is a run fresh?).

Everything else the controller holds (contours, start-site indexes,
incremental caches) is a pure function of the cells, so two states with
equal keys have bit-identical futures under equal activation choices —
that is what makes merging them into one DAG node sound.

Normalizations applied on top of the raw state:

* cells and run rows are rebased by
  :func:`repro.grid.canonical.translation_normal_form` (the dynamics is
  translation-equivariant);
* run ids are replaced by their rank in id order — only the *relative*
  order of run ids ever reaches a planning decision (fold claims and
  the reduce are settled in run-id order), and runs started later always
  receive larger ids than any live run, so rank order is preserved by
  the dynamics;
* ``born_round`` is erased (to ``-1``): a checkpointed run was born in
  an earlier round, so its freshness predicate is identically false —
  runs born *inside* the current plan call carry the live round index
  and are unaffected.
"""

from __future__ import annotations

from typing import Tuple

from repro.core.config import AlgorithmConfig
from repro.grid.canonical import (
    D4_MATRICES,
    apply_d4,
    translation_normal_form,
)
from repro.grid.geometry import Cell

#: One normalized run row: ``(rank, robot, prev, direction, axis)``.
RunRow = Tuple[int, Cell, Cell, int, str]

#: A full state key: ``(cells, run rows, phase)``.
StateKey = Tuple[Tuple[Cell, ...], Tuple[RunRow, ...], int]


def canonical_run_rows(
    checkpoint: dict, offset: Cell
) -> Tuple[RunRow, ...]:
    """Normalize a :func:`~repro.trace.replay.controller_checkpoint`
    run table: sort by run id, rank the ids, rebase the cells by
    ``offset``, drop ``born_round``."""
    ox, oy = offset
    rows = sorted(checkpoint["runs"], key=lambda row: int(row[0]))
    return tuple(
        (
            rank,
            (int(row[1][0]) - ox, int(row[1][1]) - oy),
            (int(row[2][0]) - ox, int(row[2][1]) - oy),
            int(row[3]),
            str(row[4]),
        )
        for rank, row in enumerate(rows)
    )


def checkpoint_from_rows(rows: Tuple[RunRow, ...]) -> dict:
    """A restorable checkpoint dict from normalized run rows.

    Ranks become the run ids and ``next_id`` continues after them, which
    preserves the relative id order of both live and future runs;
    ``born_round`` is ``-1`` so no restored run ever tests fresh.
    """
    return {
        "next_id": len(rows),
        "runs": [
            [rank, list(robot), list(prev), direction, axis, -1]
            for rank, robot, prev, direction, axis in rows
        ],
    }


def round_phase(round_index: int, cfg: AlgorithmConfig) -> int:
    """The equivalence class of ``round_index`` the planner can see.

    With pipelining, run starts recur every ``run_start_interval``
    rounds, so the phase is the index modulo the interval; without it,
    starts fire only in round zero, collapsing every later round into
    one class.
    """
    if cfg.pipelining:
        return round_index % cfg.run_start_interval
    return 0 if round_index == 0 else 1


def _d4_run_rows(
    checkpoint: dict, index: int, offset: Cell
) -> Tuple[RunRow, ...]:
    """Run rows transformed by the ``index``-th D4 element, rebased by
    ``offset`` (the transformed frame's translation corner).

    A run's ``(axis, direction)`` is a grid vector — ``("h", d)`` is
    ``(d, 0)`` and ``("v", d)`` is ``(0, d)`` — so it transforms by the
    matrix like any cell: the image vector has exactly one nonzero
    component (D4 maps axes to axes), which names the new axis and
    direction.  Ranks are frame-independent and row order is rank order,
    so both survive unchanged.
    """
    a, b, c, d = D4_MATRICES[index]
    ox, oy = offset
    rows = sorted(checkpoint["runs"], key=lambda row: int(row[0]))
    out = []
    for rank, row in enumerate(rows):
        rx, ry = apply_d4(index, (int(row[1][0]), int(row[1][1])))
        px, py = apply_d4(index, (int(row[2][0]), int(row[2][1])))
        direction = int(row[3])
        if str(row[4]) == "h":
            vec = (a * direction, c * direction)
        else:
            vec = (b * direction, d * direction)
        if vec[0] != 0:
            new_axis, new_direction = "h", vec[0]
        else:
            new_axis, new_direction = "v", vec[1]
        out.append(
            (rank, (rx - ox, ry - oy), (px - ox, py - oy),
             new_direction, new_axis)
        )
    return tuple(out)


def canonical_state_key(
    cells, checkpoint: dict, phase: int, symmetry: str = "translation"
) -> Tuple[StateKey, Cell]:
    """``(key, offset)`` for a raw state.

    With ``symmetry="translation"`` (default, exact) ``offset`` maps the
    canonical frame back to the input frame (``input = canonical +
    offset``) — the property witness reconstruction relies on.  With
    ``symmetry="d4"`` the key is additionally lex-minimized over the
    eight rotations/reflections (cells *and* run rows transformed
    together); ``offset`` is then the winning image's translation corner
    only — the rigid motion back to the input frame is not recorded, so
    D4 DAGs support verdicts but not witness reconstruction.
    """
    normal, offset = translation_normal_form(cells)
    if symmetry == "translation":
        return (normal, canonical_run_rows(checkpoint, offset), phase), offset
    if symmetry != "d4":
        raise ValueError(
            f"unknown explorer symmetry {symmetry!r}; "
            f"expected 'translation' or 'd4'"
        )
    best_key = None
    best_offset = offset
    for index in range(len(D4_MATRICES)):
        image = [apply_d4(index, cell) for cell in cells]
        image_normal, image_offset = translation_normal_form(image)
        image_rows = _d4_run_rows(checkpoint, index, image_offset)
        candidate = (image_normal, image_rows)
        if best_key is None or candidate < best_key:
            best_key = candidate
            best_offset = image_offset
    return (best_key[0], best_key[1], phase), best_offset
