"""Regeneration of the paper's Figures 1-21 from live simulator state.

The paper is a theory paper; its figures illustrate configurations and
operations.  Each ``figure("figN")`` builds the corresponding configuration,
runs the *actual* library machinery on it (boundary extraction, pattern
matching, run management, the full engine), and renders the result as text
art — so the gallery doubles as an end-to-end visual test of fidelity.
``examples/figure_gallery.py`` prints all of them.

Figure 22 is repo-original (no paper counterpart): the SSYNC robustness
curve — gathering time versus activation probability per strategy
(docs/schedulers.md explains the model).
"""

from __future__ import annotations

from typing import Callable, Dict, List

from repro.api import simulate
from repro.core.algorithm import GatherOnGrid
from repro.core.config import AlgorithmConfig
from repro.core.patterns import plan_merges
from repro.core.quasiline import run_start_sites
from repro.grid.boundary import extract_boundaries
from repro.grid.envelope import monotone_subchains, vector_chain
from repro.grid.occupancy import SwarmState
from repro.swarms.generators import (
    double_donut,
    ring,
    solid_rectangle,
    staircase,
)
from repro.viz.ascii_art import render, render_with_marks, side_by_side

_CFG = AlgorithmConfig()


def _fig1() -> str:
    """Outer (O) and inner (I) boundaries of a swarm with holes."""
    cells = double_donut(12)
    state = SwarmState(cells)
    bs = extract_boundaries(state)
    marks = {}
    for b in bs[1:]:
        for r in b.robot_set:
            marks[r] = "I"
    for r in bs[0].robot_set:
        marks[r] = "O"  # outer wins where a thin wall is on both
    art = render_with_marks(state, marks)
    return (
        "Figure 1 — boundaries: O = outer boundary, I = inner boundaries,\n"
        "# = interior robots.\n" + art
    )


def _merge_before_after(cells: List) -> str:
    state = SwarmState(cells)
    moves, pats = plan_merges(state, _CFG)
    marks = {src: "B" for src in moves}
    before = render_with_marks(state, marks)
    after_state = state.copy()
    after_state.apply_moves(moves)
    after = render(after_state)
    return side_by_side([before, after], gap="   ->   ")


def _fig2() -> str:
    """Merge operations of length k (B = hopping subboundary robots)."""
    k1 = _merge_before_after([(0, 1), (0, 0), (1, 0), (2, 0)])
    k4 = _merge_before_after(
        [(x, 1) for x in range(1, 5)]
        + [(x, 0) for x in range(0, 7)]
        + [(x, -1) for x in range(0, 7)]
    )
    return (
        "Figure 2 — merge operations (B robots hop, collisions merge):\n"
        "k = 1:\n" + k1 + "\n\nk = 4 (bump onto supported row):\n" + k4
    )


def _fig3() -> str:
    """Overlapping merges: a corner robot in two patterns hops diagonally."""
    cells = (
        [(x, 2) for x in range(0, 3)]
        + [(2, 1), (2, 0)]
        + [(x, -1) for x in range(0, 6)]
        + [(x, -2) for x in range(0, 6)]
    )
    return (
        "Figure 3 — overlapping merge subboundaries; the shared robot "
        "performs the\ndiagonal hop (compare the corner robot's move):\n"
        + _merge_before_after(cells)
    )


def _fig4_8_13(rounds: int, cells: List, caption: str) -> str:
    ctrl = GatherOnGrid(_CFG)
    frames = [
        f"round 0 ({len(SwarmState(cells))} robots):\n"
        + render(SwarmState(cells))
    ]

    def frame(i: int, state: SwarmState) -> None:
        runners = {r.robot: "R" for r in ctrl.run_manager.runs.values()}
        frames.append(
            f"round {i + 1} ({len(state)} robots, R = runner):\n"
            + render_with_marks(state, runners)
        )

    simulate(cells, max_rounds=rounds, controller=ctrl, on_round=frame)
    return caption + "\n" + "\n\n".join(frames)


def _fig4() -> str:
    side = 12
    cells = ring(side)
    return _fig4_8_13(
        4,
        cells,
        "Figure 4 — shrinking a long subboundary: the runner's diagonal "
        "hops\n(folds) travel along the side one robot per round:",
    )


def _fig5() -> str:
    chain = staircase(4)
    sites = run_start_sites(extract_boundaries(SwarmState(chain)))
    return (
        "Figure 5 — the FSYNC symmetry hazard: if both endpoint robots of "
        "this\nstaircase reshaped simultaneously, connectivity could break. "
        "The\nalgorithm serializes reshapement through run states; detected "
        f"start\nsites here: {len(sites)} (spacing rules keep them apart).\n"
        + render(chain)
    )


def _fig6() -> str:
    cells = (
        [(x, 0) for x in range(0, 4)]
        + [(3, 1)]
        + [(x, 1) for x in range(3, 8)]
        + [(7, 0)]
        + [(x, 0) for x in range(7, 12)]
    )
    state = SwarmState(cells)
    b = extract_boundaries(state)[0]
    ends = {b.robots[0]: "E"}
    return (
        "Figure 6 — a horizontal quasi line (all horizontal runs >= 3, "
        "vertical\njogs <= 2); E marks one endpoint:\n"
        + render_with_marks(state, ends)
    )


def _fig7() -> str:
    cells = ring(8)
    state = SwarmState(cells)
    sites = run_start_sites(extract_boundaries(state), _CFG.start_straight_steps)
    marks = {}
    for s in sites:
        marks[s.robot] = "S" if s.robot not in marks else "B"  # B = Start-B
    return (
        "Figure 7 — run starting subboundaries detected by the local rule\n"
        "(S = one run starts, B = Start-B: two runs start):\n"
        + render_with_marks(state, marks)
    )


def _fig8() -> str:
    cells = ring(10)
    return _fig4_8_13(
        3,
        cells,
        "Figure 8 — run operations: the runner folds at corners (OP-A) and\n"
        "slides across short jogs (OP-B/OP-C), moving one robot per round:",
    )


def _fig9() -> str:
    # Good pair on one line: runs from both ends meet -> merge fires.
    side = 9
    cells = ring(side)
    result = simulate(cells, max_rounds=8)
    log: List[str] = []
    for i in range(result.rounds):
        merges = [
            e for e in result.events.of_kind("merge") if e.round_index == i
        ]
        if merges:
            log.append(
                f"round {i}: merge removed {merges[0].data['removed']} "
                "robot(s) — the pair enabled it"
            )
    return (
        "Figure 9 — converging runs enable a merge (a); runs that cannot\n"
        "enable one pass each other without reshaping (b).  Simulated on a\n"
        f"ring of side {side}:\n" + "\n".join(log[:4])
        + "\n\nfinal state:\n" + render(result.final_state)
    )


def _fig10() -> str:
    cells = ring(14)
    ctrl = GatherOnGrid(_CFG)
    result = simulate(cells, max_rounds=1, controller=ctrl)
    runs = list(ctrl.run_manager.runs.values())
    marks = {r.robot: "S" for r in runs}
    return (
        "Figure 10 — multiple active runs (S) and their boundary distance\n"
        f"({len(runs)} runs after one round):\n"
        + render_with_marks(result.final_state, marks)
    )


def _fig11() -> str:
    return (
        "Figure 11 — the per-round algorithm (as implemented in\n"
        "repro.core.algorithm.GatherOnGrid.plan_round):\n"
        "  1. Merge: robots in leaf/corner/bump patterns hop; collisions\n"
        "     merge (repro.core.patterns).\n"
        "  2. Run operations: each run terminates per Table 1, passes an\n"
        "     approaching run, or folds at its corner and moves one robot\n"
        "     onward (repro.core.runs).\n"
        "  3. Start new runs: every L = "
        f"{_CFG.run_start_interval} rounds, quasi-line endpoint\n"
        "     corners spawn runs (repro.core.quasiline.run_start_sites)."
    )


def _fig12() -> str:
    cells = ring(12)
    state = SwarmState(cells)
    sites = run_start_sites(extract_boundaries(state), _CFG.start_straight_steps)
    top = max(c[1] for c in cells)
    pair = [s for s in sites if s.robot[1] == top]
    marks = {s.robot: "G" for s in pair}
    return (
        "Figure 12 — a good pair: runs at both endpoints (G) of the top\n"
        "quasi line, empty area above, exterior neighbors below:\n"
        + render_with_marks(state, marks)
    )


def _fig13() -> str:
    return _fig4_8_13(
        3,
        ring(9),
        "Figure 13 — a good pair of runs on a straight quasi line; folds "
        "from\nboth ends move the line down until a merge fires:",
    )


def _fig14() -> str:
    # quasi line with a jog: ring with a notch
    side = 11
    cells = [c for c in ring(side)]
    cells.remove((side // 2, side - 1))
    cells.append((side // 2, side - 2))
    try:
        state = SwarmState(sorted(set(cells)))
        return _fig4_8_13(
            4,
            sorted(set(cells)),
            "Figure 14 — a good pair on a general quasi line (with a jog); "
            "several\nrun operations are needed:",
        )
    except Exception:  # pragma: no cover - defensive for odd notches
        return _fig13()


def _fig15() -> str:
    cells = ring(26)
    ctrl = GatherOnGrid(_CFG)
    counts: List[int] = []
    simulate(
        cells,
        max_rounds=_CFG.run_start_interval * 2 + 2,
        controller=ctrl,
        on_round=lambda i, state: counts.append(ctrl.active_run_count),
    )
    return (
        "Figure 15 — pipelining: new runs start every L = "
        f"{_CFG.run_start_interval} rounds.\nActive runs per round:\n"
        + " ".join(map(str, counts))
    )


def _fig16() -> str:
    cells = (
        [(x, 0) for x in range(0, 5)]
        + [(4, 1), (5, 1), (5, 2), (6, 2), (6, 3)]
        + [(x, 3) for x in range(6, 11)]
    )
    return (
        "Figure 16 — two quasi lines connected by a stairway (alternating\n"
        "left/right turns):\n" + render(sorted(set(cells)))
    )


def _fig17() -> str:
    # A bump whose hop direction is blocked by an inside robot.
    cells = (
        [(x, 1) for x in range(0, 5)]
        + [(x, 0) for x in range(0, 5)]
        + [(2, 2)]
    )
    state = SwarmState(sorted(set(cells)))
    moves, pats = plan_merges(state, _CFG)
    return (
        "Figure 17 — an inside robot (top) prevents the row below from\n"
        "merging upward; the pattern machinery reports "
        f"{len(moves)} moves elsewhere:\n" + render(state)
    )


def _fig18() -> str:
    cells = double_donut(14)
    b = extract_boundaries(SwarmState(cells))[0]
    chain = vector_chain(b)
    subs = monotone_subchains(chain)
    return (
        "Figure 18 — vector chain along the outer boundary; decomposition\n"
        f"into longest x-monotone subchains: {len(subs)} subchains over "
        f"{len(chain)} vectors\n(ranges {subs[:6]}{'...' if len(subs) > 6 else ''}).\n"
        + render(cells)
    )


def _fig19() -> str:
    return (
        "Figure 19 — too-close sequent runs cannot originate from different\n"
        "quasi lines: run operations require the cells above the line to be\n"
        "empty, so two parallel lines whose runs approach would have merged\n"
        "first.  Enforced by termination rule 1 "
        "(repro.core.runs, 'run_saw_sequent')."
    )


def _fig20() -> str:
    return (
        "Figure 20 — longest run passing: with passing distance "
        f"{_CFG.run_passing_distance},\na run suspends folds while an "
        "opposite run is within that boundary\ndistance, then resumes — "
        "implemented in RunManager.plan (the `passing`\nflag)."
    )


def _fig21() -> str:
    return (
        "Figure 21 — classification of run passing overlaps:\n"
        "  a) identical quasi lines        -> plain passing\n"
        "  b) overlap at both run locations-> target corners exist\n"
        "  c) disjoint quasi lines         -> reshape or credit the merge\n"
        "  d) overlap at one run location  -> reconfigure to a corner\n"
        "  e) overlap, disjoint endpoints  -> both target corners exist\n"
        "Our implementation subsumes a)-e): folds are resumed after passing\n"
        "whenever the local corner predicate holds again, and interrupted\n"
        "runs terminate via Table 1 rules 4/5 ('run_lost')."
    )


def _fig22() -> str:
    """SSYNC robustness: rounds to gather vs activation probability."""
    from repro.analysis.tables import format_table
    from repro.analysis.experiments import run_robustness

    strategies = ["grid", "global", "async_greedy"]
    probs = [0.5, 0.75, 1.0]
    points = run_robustness(
        strategies, probs, n=12, seed=1, max_rounds=2000
    )
    by_strategy = {s: {} for s in strategies}
    for pt in points:
        by_strategy[pt.strategy][pt.activation_p] = (
            pt.rounds if pt.gathered else -1
        )
    rows = [
        tuple(
            [f"{p:.2f}"]
            + [
                "stalled"
                if by_strategy[s][p] < 0
                else by_strategy[s][p]
                for s in strategies
            ]
        )
        for p in probs
    ]
    table = format_table(
        ["p(active)", *strategies],
        rows,
        title="rounds to gather under SSYNC(uniform-p), n~12",
    )
    return (
        "Figure 22 (repo-original) — SSYNC robustness: rounds to gather\n"
        "vs activation probability, each strategy on its worst-case\n"
        "family (p = 1.00 is the FSYNC baseline; 'stalled' = budget\n"
        "exhausted before gathering).  Sweep: analysis.experiments.\n"
        "run_robustness; model: docs/schedulers.md.\n" + table
    )


def _fig23() -> str:
    """Fault axes: stock vs tolerant under sleep/crash/byzantine."""
    from repro.analysis.tables import format_table
    from repro.analysis.experiments import FAULT_AXES, run_fault_axes

    strategies = ["grid", "tolerant"]
    axes = sorted(FAULT_AXES)
    rates = [0.0, 0.1, 0.25]
    points = run_fault_axes(
        strategies, axes, rates, n=12, seed=1, max_rounds=2000
    )
    cell: Dict[tuple, str] = {}
    for pt in points:
        cell[(pt.axis, pt.rate, pt.strategy)] = (
            str(pt.rounds) if pt.gathered else "stalled"
        )
    rows = [
        (
            axis,
            f"{rate:.2f}",
            *(cell[(axis, rate, s)] for s in strategies),
        )
        for axis in axes
        for rate in rates
    ]
    table = format_table(
        ["axis", "rate", *strategies],
        rows,
        title="rounds to gather under SSYNC(uniform-0.8) faults, n~12",
    )
    return (
        "Figure 23 (repo-original) — fault-axis degradation: rounds to\n"
        "gather for the stock grid algorithm vs its connectivity-\n"
        "tolerant variant under one fault model at a time (transient\n"
        "sleep omissions, crash-stop failures, byzantine robots with\n"
        "stale views / off-plan hops / play-dead).  'stalled' = budget\n"
        "exhausted.  Sweep: analysis.experiments.run_fault_axes;\n"
        "models: docs/schedulers.md.\n" + table
    )


FIGURES: Dict[str, Callable[[], str]] = {
    f"fig{i}": fn
    for i, fn in enumerate(
        [
            _fig1, _fig2, _fig3, _fig4, _fig5, _fig6, _fig7, _fig8, _fig9,
            _fig10, _fig11, _fig12, _fig13, _fig14, _fig15, _fig16, _fig17,
            _fig18, _fig19, _fig20, _fig21, _fig22, _fig23,
        ],
        start=1,
    )
}


def figure(name: str) -> str:
    """Render one paper figure (``"fig1"`` ... ``"fig21"``)."""
    try:
        return FIGURES[name]()
    except KeyError:
        raise KeyError(
            f"unknown figure {name!r}; available: {sorted(FIGURES)}"
        ) from None
