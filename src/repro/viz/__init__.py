"""Visualization: ASCII rendering, dependency-free SVG, paper figures."""

from repro.viz.ascii_art import render, render_with_marks, side_by_side
from repro.viz.svg import SvgCanvas, swarm_to_svg
from repro.viz.animate import FrameRecorder
from repro.viz.figures import FIGURES, figure
from repro.viz.stategraph import dag_to_dot, dag_to_html

__all__ = [
    "render",
    "render_with_marks",
    "side_by_side",
    "SvgCanvas",
    "swarm_to_svg",
    "FrameRecorder",
    "FIGURES",
    "figure",
    "dag_to_dot",
    "dag_to_html",
]
