"""ASCII rendering of swarm states."""

from __future__ import annotations

from typing import Iterable, Mapping, Sequence

from repro.grid.geometry import Cell, bounding_box
from repro.grid.occupancy import SwarmState


def render(
    state: SwarmState | Iterable[Cell],
    occupied: str = "#",
    free: str = ".",
    pad: int = 0,
) -> str:
    """Render the swarm, top row = max y (math orientation)."""
    cells = set(state.cells if isinstance(state, SwarmState) else state)
    if not cells:
        return ""
    min_x, min_y, max_x, max_y = bounding_box(cells)
    min_x -= pad
    min_y -= pad
    max_x += pad
    max_y += pad
    lines = []
    for y in range(max_y, min_y - 1, -1):
        lines.append(
            "".join(
                occupied if (x, y) in cells else free
                for x in range(min_x, max_x + 1)
            )
        )
    return "\n".join(lines)


def render_with_marks(
    state: SwarmState | Iterable[Cell],
    marks: Mapping[Cell, str],
    occupied: str = "#",
    free: str = ".",
    pad: int = 0,
) -> str:
    """Render with per-cell override characters (runners, merge movers...).

    ``marks`` wins over occupancy; mark characters must be single chars.
    """
    cells = set(state.cells if isinstance(state, SwarmState) else state)
    every = cells | set(marks)
    if not every:
        return ""
    min_x, min_y, max_x, max_y = bounding_box(every)
    min_x -= pad
    min_y -= pad
    max_x += pad
    max_y += pad
    lines = []
    for y in range(max_y, min_y - 1, -1):
        row = []
        for x in range(min_x, max_x + 1):
            if (x, y) in marks:
                row.append(marks[(x, y)][0])
            elif (x, y) in cells:
                row.append(occupied)
            else:
                row.append(free)
        lines.append("".join(row))
    return "\n".join(lines)


def side_by_side(blocks: Sequence[str], gap: str = "   ") -> str:
    """Join multi-line blocks horizontally (for before/after figures)."""
    split = [b.splitlines() for b in blocks]
    height = max(len(s) for s in split)
    widths = [max((len(ln) for ln in s), default=0) for s in split]
    out = []
    for i in range(height):
        row = []
        for s, w in zip(split, widths):
            ln = s[i] if i < len(s) else ""
            row.append(ln.ljust(w))
        out.append(gap.join(row).rstrip())
    return "\n".join(out)
