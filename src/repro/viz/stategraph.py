"""Exploration-DAG rendering: Graphviz DOT and a standalone HTML view.

Both exports are dependency-free strings over a
:class:`~repro.explore.driver.StateDag`.  Nodes are laid out by BFS
depth (one column per depth, discovery order within a column), colored
by status — open gray, gathered green, disconnected red — and labelled
with robot count and depth; edges carry the number of activated movers.
The HTML file embeds the same graph as an inline SVG plus a JSON blob,
so a witness can be eyeballed (follow the red node's ancestry) without
any tooling beyond a browser.
"""

from __future__ import annotations

import html
import json
from typing import Dict, List, Tuple

from repro.explore.driver import StateDag

_STATUS_COLOR = {
    "open": "#9aa0a6",
    "gathered": "#34a853",
    "disconnected": "#ea4335",
}


def _node_order(dag: StateDag) -> Dict[tuple, int]:
    return {key: i for i, key in enumerate(dag.nodes)}


def dag_to_dot(dag: StateDag, *, max_nodes: int = 2000) -> str:
    """The DAG as Graphviz DOT (first ``max_nodes`` nodes in discovery
    order; edges between included nodes only)."""
    order = _node_order(dag)
    included = {k for k, i in order.items() if i < max_nodes}
    lines: List[str] = [
        "digraph ssync_explore {",
        "  rankdir=LR;",
        '  node [shape=circle, style=filled, fontsize=9];',
    ]
    for key in dag.nodes:
        if key not in included:
            continue
        node = dag.nodes[key]
        i = order[key]
        color = _STATUS_COLOR[node.status]
        label = f"{len(node.cells)}r/d{node.depth}"
        tooltip = " ".join(f"({x},{y})" for x, y in node.cells)
        lines.append(
            f'  n{i} [label="{label}", fillcolor="{color}", '
            f'tooltip="{tooltip}"];'
        )
    for key in dag.nodes:
        if key not in included:
            continue
        node = dag.nodes[key]
        for edge in node.edges or ():
            if edge.child not in included:
                continue
            lines.append(
                f"  n{order[key]} -> n{order[edge.child]} "
                f'[label="{len(edge.choice)}", fontsize=8];'
            )
    if len(dag.nodes) > max_nodes:
        lines.append(
            f'  truncated [shape=note, label="{len(dag.nodes) - max_nodes}'
            f' more nodes"];'
        )
    lines.append("}")
    return "\n".join(lines) + "\n"


def _layout(
    dag: StateDag, max_nodes: int
) -> Tuple[Dict[tuple, Tuple[int, int]], int, int]:
    """Deterministic layered layout: x by depth, y by order-in-layer."""
    positions: Dict[tuple, Tuple[int, int]] = {}
    layer_fill: Dict[int, int] = {}
    for i, (key, node) in enumerate(dag.nodes.items()):
        if i >= max_nodes:
            break
        row = layer_fill.get(node.depth, 0)
        layer_fill[node.depth] = row + 1
        positions[key] = (60 + node.depth * 110, 40 + row * 26)
    width = 120 + 110 * (max(layer_fill) if layer_fill else 0)
    height = 80 + 26 * (max(layer_fill.values()) if layer_fill else 0)
    return positions, width, height


def dag_to_html(
    dag: StateDag, *, title: str = "SSYNC exploration", max_nodes: int = 2000
) -> str:
    """A self-contained HTML page: inline SVG of the DAG plus the raw
    graph as an embedded JSON blob (``id="dag-data"``)."""
    positions, width, height = _layout(dag, max_nodes)
    order = _node_order(dag)
    counts = dag.counts()

    svg: List[str] = [
        f'<svg viewBox="0 0 {width} {height}" '
        f'xmlns="http://www.w3.org/2000/svg">'
    ]
    for key, node in dag.nodes.items():
        if key not in positions:
            continue
        x1, y1 = positions[key]
        for edge in node.edges or ():
            if edge.child not in positions:
                continue
            x2, y2 = positions[edge.child]
            svg.append(
                f'<line x1="{x1}" y1="{y1}" x2="{x2}" y2="{y2}" '
                f'stroke="#c5c9ce" stroke-width="1">'
                f"<title>activate {len(edge.choice)} of "
                f"{len(node.cells)}</title></line>"
            )
    for key, node in dag.nodes.items():
        if key not in positions:
            continue
        x, y = positions[key]
        color = _STATUS_COLOR[node.status]
        cells = " ".join(f"({cx},{cy})" for cx, cy in node.cells)
        svg.append(
            f'<circle cx="{x}" cy="{y}" r="8" fill="{color}">'
            f"<title>#{order[key]} depth {node.depth} "
            f"{html.escape(node.status)}: {cells}</title></circle>"
        )
    svg.append("</svg>")

    data = {
        "initial": [list(c) for c in dag.initial_cells],
        "mode": dag.mode,
        "complete": dag.complete,
        "counts": counts,
        "nodes": [
            {
                "id": order[key],
                "depth": node.depth,
                "status": node.status,
                "cells": [list(c) for c in node.cells],
                "phase": node.phase,
            }
            for key, node in dag.nodes.items()
        ],
        "edges": [
            {
                "source": order[key],
                "target": order[edge.child],
                "movers": len(edge.choice),
            }
            for key, node in dag.nodes.items()
            for edge in node.edges or ()
        ],
    }
    summary = (
        f"{counts['total']} states, {counts['edges']} edges — "
        f"{counts.get('gathered', 0)} gathered, "
        f"{counts.get('disconnected', 0)} disconnected, "
        f"{counts.get('open', 0)} open; "
        f"{'complete closure' if dag.complete else 'truncated search'}"
    )
    return (
        "<!DOCTYPE html>\n<html><head><meta charset=\"utf-8\">"
        f"<title>{html.escape(title)}</title>"
        "<style>body{font-family:sans-serif;margin:1.5em}"
        "svg{border:1px solid #ddd;max-width:100%}</style>"
        "</head><body>"
        f"<h1>{html.escape(title)}</h1>"
        f"<p>{html.escape(summary)}</p>"
        "<p><span style=\"color:#9aa0a6\">&#9679;</span> open "
        "<span style=\"color:#34a853\">&#9679;</span> gathered "
        "<span style=\"color:#ea4335\">&#9679;</span> disconnected</p>"
        + "".join(svg)
        + '\n<script type="application/json" id="dag-data">'
        + json.dumps(data)
        + "</script></body></html>\n"
    )
