"""Frame capture for gathering animations.

Plug a :class:`FrameRecorder` into the engine's ``on_round`` hook to capture
ASCII or SVG frames; examples use it to render the gathering as a terminal
animation or an SVG film strip.
"""

from __future__ import annotations

from typing import List, Optional

from repro.grid.occupancy import SwarmState
from repro.viz.ascii_art import render


class FrameRecorder:
    """Collects per-round snapshots of the swarm.

    ``every`` subsamples rounds; ``max_frames`` caps memory for long runs
    (oldest frames are kept — the interesting dynamics are early).
    """

    def __init__(self, every: int = 1, max_frames: Optional[int] = None):
        if every < 1:
            raise ValueError("every must be >= 1")
        self.every = every
        self.max_frames = max_frames
        self.frames: List[frozenset] = []
        self.rounds: List[int] = []

    def __call__(self, round_index: int, state: SwarmState) -> None:
        if round_index % self.every:
            return
        if self.max_frames is not None and len(self.frames) >= self.max_frames:
            return
        self.frames.append(state.frozen())
        self.rounds.append(round_index)

    def ascii_frames(self) -> List[str]:
        """All frames rendered as text art."""
        return [render(f) for f in self.frames]

    def film_strip(self, limit: int = 10) -> str:
        """First ``limit`` frames joined vertically with round labels."""
        parts = []
        for rnd, frame in list(zip(self.rounds, self.frames))[:limit]:
            parts.append(f"--- round {rnd} ({len(frame)} robots) ---")
            parts.append(render(frame))
        return "\n".join(parts)

    def to_svg(self, *, cell_px: float = 8.0, columns: int = 4, limit: int = 12):
        """Render up to ``limit`` frames as one SVG contact sheet.

        Frames are laid out in a grid of ``columns`` panels, each labeled
        with its round number; returns an :class:`repro.viz.svg.SvgCanvas`.
        """
        from repro.grid.geometry import bounding_box
        from repro.viz.svg import SvgCanvas

        frames = list(zip(self.rounds, self.frames))[:limit]
        if not frames:
            raise ValueError("no frames recorded")
        # common bounding box so panels align
        every = set().union(*(f for _, f in frames))
        min_x, min_y, max_x, max_y = bounding_box(every)
        fw = (max_x - min_x + 1) * cell_px + 20
        fh = (max_y - min_y + 1) * cell_px + 30
        rows = (len(frames) + columns - 1) // columns
        canvas = SvgCanvas(fw * min(columns, len(frames)), fh * rows)
        for idx, (rnd, frame) in enumerate(frames):
            ox = (idx % columns) * fw + 10
            oy = (idx // columns) * fh + 20
            canvas.text(ox, oy - 6, f"round {rnd} ({len(frame)})", size=9)
            for (x, y) in frame:
                canvas.rect(
                    ox + (x - min_x) * cell_px,
                    oy + (max_y - y) * cell_px,
                    cell_px - 1,
                    cell_px - 1,
                    fill="#333",
                )
        return canvas
