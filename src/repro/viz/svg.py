"""Minimal dependency-free SVG writer for swarm snapshots and plots.

No matplotlib in the environment, so examples export SVG directly: cells as
squares, optional highlights (runners, merge movers), and simple polyline
charts for scaling curves.
"""

from __future__ import annotations

import html
from typing import Iterable, List, Mapping, Sequence, Tuple

from repro.grid.geometry import Cell, bounding_box
from repro.grid.occupancy import SwarmState


class SvgCanvas:
    """A tiny SVG document builder."""

    def __init__(self, width: float, height: float) -> None:
        self.width = width
        self.height = height
        self._parts: List[str] = []

    def rect(
        self,
        x: float,
        y: float,
        w: float,
        h: float,
        fill: str = "#333",
        stroke: str = "none",
    ) -> None:
        self._parts.append(
            f'<rect x="{x:.2f}" y="{y:.2f}" width="{w:.2f}" '
            f'height="{h:.2f}" fill="{fill}" stroke="{stroke}"/>'
        )

    def circle(
        self, cx: float, cy: float, r: float, fill: str = "#c00"
    ) -> None:
        self._parts.append(
            f'<circle cx="{cx:.2f}" cy="{cy:.2f}" r="{r:.2f}" fill="{fill}"/>'
        )

    def polyline(
        self, points: Sequence[Tuple[float, float]], stroke: str = "#06c",
        width: float = 1.5,
    ) -> None:
        pts = " ".join(f"{x:.2f},{y:.2f}" for x, y in points)
        self._parts.append(
            f'<polyline points="{pts}" fill="none" stroke="{stroke}" '
            f'stroke-width="{width}"/>'
        )

    def text(
        self, x: float, y: float, content: str, size: float = 10.0,
        fill: str = "#000",
    ) -> None:
        self._parts.append(
            f'<text x="{x:.2f}" y="{y:.2f}" font-size="{size:.1f}" '
            f'fill="{fill}" font-family="monospace">'
            f"{html.escape(content)}</text>"
        )

    def to_string(self) -> str:
        body = "\n".join(self._parts)
        return (
            f'<svg xmlns="http://www.w3.org/2000/svg" '
            f'width="{self.width:.0f}" height="{self.height:.0f}" '
            f'viewBox="0 0 {self.width:.0f} {self.height:.0f}">\n'
            f'<rect width="100%" height="100%" fill="white"/>\n'
            f"{body}\n</svg>\n"
        )

    def save(self, path: str) -> None:
        with open(path, "w", encoding="utf-8") as fh:
            fh.write(self.to_string())


def swarm_to_svg(
    state: SwarmState | Iterable[Cell],
    *,
    cell_px: float = 10.0,
    highlights: Mapping[Cell, str] | None = None,
    margin: float = 10.0,
) -> SvgCanvas:
    """Draw a swarm; ``highlights`` maps cells to fill colors."""
    cells = set(state.cells if isinstance(state, SwarmState) else state)
    if not cells:
        raise ValueError("cannot draw an empty swarm")
    highlights = dict(highlights or {})
    min_x, min_y, max_x, max_y = bounding_box(cells | set(highlights))
    w = (max_x - min_x + 1) * cell_px + 2 * margin
    h = (max_y - min_y + 1) * cell_px + 2 * margin
    canvas = SvgCanvas(w, h)
    for (x, y) in sorted(cells | set(highlights)):
        px = margin + (x - min_x) * cell_px
        # SVG y grows downward; flip so the drawing matches math orientation
        py = margin + (max_y - y) * cell_px
        fill = highlights.get((x, y), "#333" if (x, y) in cells else "none")
        if fill != "none":
            canvas.rect(
                px + 0.5, py + 0.5, cell_px - 1, cell_px - 1, fill=fill
            )
    return canvas


def frame_svg(
    cells: Iterable[Cell],
    prev_cells: Iterable[Cell] | None = None,
    *,
    cell_px: float = 10.0,
    label: str | None = None,
    moved_fill: str = "#c0392b",
) -> SvgCanvas:
    """One simulation frame for the service dashboard.

    Renders the current swarm with the cells *newly occupied* since
    the previous round highlighted.  Edge cases the dashboard hits are
    all well-defined: ``prev_cells=None`` is a round-0 frame (no move
    information yet — no highlights), a terminal gathered state is
    just a tiny swarm, and an empty diff (no robot entered a new cell
    in the window) renders with no highlights at all.  An empty
    *current* cell set still raises — there is no frame to draw.
    """
    current = set(cells)
    if not current:
        raise ValueError("cannot render an empty frame")
    moved = (
        current - set(prev_cells) if prev_cells is not None else set()
    )
    canvas = swarm_to_svg(
        current,
        cell_px=cell_px,
        highlights={cell: moved_fill for cell in sorted(moved)},
    )
    if label:
        canvas.text(3.0, 9.0, label, size=8.0, fill="#555")
    return canvas


def line_chart(
    series: Mapping[str, Sequence[Tuple[float, float]]],
    *,
    width: float = 480.0,
    height: float = 320.0,
    title: str = "",
) -> SvgCanvas:
    """A minimal multi-series line chart (linear axes)."""
    colors = ["#06c", "#c33", "#292", "#a0a", "#f80", "#088", "#666"]
    margin = 45.0
    canvas = SvgCanvas(width, height)
    all_pts = [p for pts in series.values() for p in pts]
    if not all_pts:
        raise ValueError("no data")
    xs = [p[0] for p in all_pts]
    ys = [p[1] for p in all_pts]
    x0, x1 = min(xs), max(xs)
    y0, y1 = min(ys), max(ys)
    if x1 == x0:
        x1 = x0 + 1
    if y1 == y0:
        y1 = y0 + 1

    def tx(x: float) -> float:
        return margin + (x - x0) / (x1 - x0) * (width - 2 * margin)

    def ty(y: float) -> float:
        return height - margin - (y - y0) / (y1 - y0) * (height - 2 * margin)

    # axes
    canvas.polyline(
        [(margin, margin), (margin, height - margin),
         (width - margin, height - margin)],
        stroke="#000", width=1.0,
    )
    canvas.text(margin, margin - 8, title, size=12)
    canvas.text(width - margin - 30, height - margin + 24, f"{x1:.0f}")
    canvas.text(margin - 5, height - margin + 24, f"{x0:.0f}")
    canvas.text(4, margin + 4, f"{y1:.0f}")
    canvas.text(4, height - margin, f"{y0:.0f}")
    for i, (name, pts) in enumerate(sorted(series.items())):
        color = colors[i % len(colors)]
        canvas.polyline([(tx(x), ty(y)) for x, y in pts], stroke=color)
        canvas.text(
            width - margin + 2,
            margin + 14 * i + 10,
            name[:8],
            size=9,
            fill=color,
        )
    return canvas
