"""The stdlib HTTP shell around :class:`~repro.service.app.ServiceApp`.

``http.server.ThreadingHTTPServer`` + one handler that parses the
request, calls ``app.handle``, and writes the response back.  Two
deliberate choices keep SSE simple on the stdlib:

* streamed responses advertise ``Connection: close`` and are delimited
  by the connection ending (no chunked encoding to hand-roll) — every
  SSE client, including the browser ``EventSource``, handles this;
* ``daemon_threads`` is on, so long-lived event streams never block
  server shutdown.

:func:`serve` is the blocking entry point behind ``repro serve``.
"""

from __future__ import annotations

import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from pathlib import Path
from typing import Optional, Union
from urllib.parse import parse_qsl, urlsplit

from repro.service.app import Request, ServiceApp


class _Handler(BaseHTTPRequestHandler):
    """Parse -> ``app.handle`` -> write; no logic of its own."""

    server_version = "repro-service"
    protocol_version = "HTTP/1.1"

    def _dispatch(self) -> None:
        length = int(self.headers.get("Content-Length") or 0)
        body = self.rfile.read(length) if length else b""
        parts = urlsplit(self.path)
        request = Request(
            method=self.command,
            path=parts.path,
            query=dict(parse_qsl(parts.query)),
            body=body,
        )
        response = self.server.app.handle(request)  # type: ignore
        if response.stream is None:
            self.send_response(response.status)
            self.send_header("Content-Type", response.content_type)
            self.send_header(
                "Content-Length", str(len(response.body))
            )
            for key, value in response.headers.items():
                self.send_header(key, value)
            self.end_headers()
            self.wfile.write(response.body)
            return
        # Streaming (SSE): connection-close delimited.
        self.close_connection = True
        self.send_response(response.status)
        self.send_header("Content-Type", response.content_type)
        for key, value in response.headers.items():
            self.send_header(key, value)
        self.send_header("Connection", "close")
        self.end_headers()
        try:
            for chunk in response.stream:
                self.wfile.write(chunk)
                self.wfile.flush()
        except (BrokenPipeError, ConnectionResetError):
            pass  # client went away; the generator cleans up below
        finally:
            close = getattr(response.stream, "close", None)
            if close is not None:
                close()

    do_GET = _dispatch
    do_POST = _dispatch
    do_DELETE = _dispatch

    def log_message(self, format: str, *args) -> None:
        pass  # the service is quiet; metrics live at /metrics


class ServiceServer:
    """Socket lifecycle around one :class:`ServiceApp`.

    ``port=0`` binds an ephemeral port (tests, CI smoke); read the
    bound address back from :attr:`url`.  ``start()`` recovers
    interrupted runs, then serves in a background thread;
    ``serve_forever()`` does the same on the calling thread.
    """

    def __init__(
        self,
        app: ServiceApp,
        *,
        host: str = "127.0.0.1",
        port: int = 8765,
    ) -> None:
        self.app = app
        self._httpd = ThreadingHTTPServer((host, port), _Handler)
        self._httpd.daemon_threads = True
        self._httpd.app = app  # type: ignore[attr-defined]
        self._thread = None

    @property
    def host(self) -> str:
        return self._httpd.server_address[0]

    @property
    def port(self) -> int:
        return self._httpd.server_address[1]

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"

    def start(self) -> None:
        self.app.start()
        self._thread = threading.Thread(
            target=self._httpd.serve_forever,
            name="service-http",
            daemon=True,
        )
        self._thread.start()

    def serve_forever(self) -> None:
        self.app.start()
        self._httpd.serve_forever()

    def shutdown(self) -> None:
        self._httpd.shutdown()
        self._httpd.server_close()
        if self._thread is not None:
            self._thread.join(timeout=5.0)
            self._thread = None
        self.app.close()


def serve(
    data_dir: Union[str, Path],
    *,
    host: str = "127.0.0.1",
    port: int = 8765,
    workers: Optional[int] = None,
    checkpoint_every: int = 50,
) -> None:
    """Blocking server entry point (the CLI's ``repro serve``)."""
    app = ServiceApp(
        data_dir, workers=workers, checkpoint_every=checkpoint_every
    )
    server = ServiceServer(app, host=host, port=port)
    try:
        server.serve_forever()
    finally:
        server.shutdown()
