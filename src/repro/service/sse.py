"""Server-Sent Events: formatting, stream accounting, per-run streams.

SSE is the simplest push channel that works over plain stdlib HTTP —
one long-lived ``text/event-stream`` response, events separated by
blank lines, natively consumed by the browser ``EventSource`` API (the
dashboard's only transport).  No websocket handshake, no framing
protocol, trivially testable as an iterator of byte chunks.

The per-run stream bridges the process boundary: workers flush one
trace row per round to disk, :func:`repro.trace.tail.follow_rounds`
turns the growing file into rows, and :func:`run_event_stream` wraps
them into events::

    event: status   {"id": ..., "status": ...}          (once, first)
    event: round    {"round": r, "robots": k}           (per round)
    event: end      {"id", "status", "metrics", ...}    (once, last)

A stream attached to a finished run replays every round and ends; a
stream attached to a live run follows it to the terminal record.
Round events are emitted strictly in round order — the trace file is
append-only and written by exactly one worker.
"""

from __future__ import annotations

import json
import threading
from typing import Any, Dict, Iterator

from repro.service.records import RunRegistry
from repro.trace.tail import follow_rounds


def format_event(name: str, data: Dict[str, Any]) -> bytes:
    """One wire-format SSE event (named, JSON data, blank-line end)."""
    return (
        f"event: {name}\ndata: {json.dumps(data)}\n\n".encode("utf-8")
    )


class StreamHub:
    """Counts live/total SSE streams (the ``/metrics`` endpoint)."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._active = 0
        self._opened = 0

    def opened(self) -> None:
        with self._lock:
            self._active += 1
            self._opened += 1

    def closed(self) -> None:
        with self._lock:
            self._active -= 1

    def snapshot(self) -> Dict[str, int]:
        with self._lock:
            return {
                "streams_active": self._active,
                "streams_total": self._opened,
            }


def run_event_stream(
    registry: RunRegistry,
    run_id: str,
    hub: StreamHub,
    *,
    poll_interval: float = 0.05,
    start_round: int = 0,
) -> Iterator[bytes]:
    """The SSE byte stream for one run (see the module docstring).

    ``start_round`` lets a re-connecting client skip rounds it already
    saw.  The stream re-reads the record between polls and terminates
    once the run is ``done``/``failed`` and the trace is drained, so
    it never outlives the run it narrates.
    """
    hub.opened()
    try:
        record = registry.get(run_id)
        yield format_event(
            "status", {"id": run_id, "status": record.status}
        )

        def finished() -> bool:
            return registry.get(run_id).status in ("done", "failed")

        for row in follow_rounds(
            str(registry.trace_path(run_id)),
            poll_interval=poll_interval,
            stop=finished,
            start_round=start_round,
        ):
            yield format_event(
                "round",
                {"round": row.round_index, "robots": len(row.cells)},
            )
        record = registry.get(run_id)
        yield format_event(
            "end",
            {
                "id": run_id,
                "status": record.status,
                "metrics": record.metrics,
                "terminal": record.terminal,
                "error": record.error,
            },
        )
    finally:
        hub.closed()
