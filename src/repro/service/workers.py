"""Background execution of service runs over the orchestrator pool.

:class:`ServiceWorkers` is the glue between the HTTP layer and the
compute layer: ``enqueue()`` dispatches a registered run onto a
:class:`~repro.analysis.orchestrator.SweepOrchestrator` (the same
persistent :class:`~repro.engine.executors.PersistentWorkerPool` the
sweep machinery uses — workers survive across runs, a SIGKILLed worker
is respawned and its run requeued), and a small poller thread drains
completions.

The worker task (:func:`repro.service.runner.execute_run`) writes its
own record transitions, so the poller's only real job is the failure
edge the worker could not record itself — e.g. a crash-looped task
whose process died before the ``except`` path ran.

``recover()`` implements restart-the-server semantics: every run the
registry still shows as ``queued`` or ``running`` is re-dispatched;
checkpointed grid runs then *resume* from their trace instead of
restarting (see :mod:`repro.service.runner`).

``inline=True`` executes runs synchronously inside ``enqueue()`` on
the calling thread — no pool, no poller.  It exists for tests and for
the smallest deployments; the HTTP surface is identical.
"""

from __future__ import annotations

import threading
import time
from typing import Dict, List, Optional

from repro.analysis.orchestrator import SweepOrchestrator
from repro.service.records import RunRegistry
from repro.service.runner import execute_run


class ServiceWorkers:
    """Dispatch registered runs to worker processes; track outcomes."""

    def __init__(
        self,
        registry: RunRegistry,
        *,
        workers: Optional[int] = None,
        orchestrator: Optional[SweepOrchestrator] = None,
        checkpoint_every: int = 50,
        poll_interval: float = 0.05,
        inline: bool = False,
    ) -> None:
        self.registry = registry
        self.checkpoint_every = checkpoint_every
        self.inline = inline
        self._poll_interval = poll_interval
        self._own_orchestrator = orchestrator is None and not inline
        self._orch = orchestrator
        if self._own_orchestrator:
            self._orch = SweepOrchestrator(workers)
        self._workers = workers
        # The orchestrator is not thread-safe; submissions come from
        # HTTP handler threads while the poller drains completions, so
        # every orchestrator touch happens under this lock.
        self._lock = threading.Lock()
        self._run_of_job: Dict[str, str] = {}
        self._dispatched: int = 0
        self._stop = threading.Event()
        self._thread: Optional[threading.Thread] = None

    # -- lifecycle -----------------------------------------------------
    def start(self) -> None:
        """Start the completion poller (no-op in inline mode)."""
        if self.inline or self._thread is not None:
            return
        self._thread = threading.Thread(
            target=self._poll_loop,
            name="service-workers",
            daemon=True,
        )
        self._thread.start()

    def close(self) -> None:
        """Stop polling; close the pool if this instance owns it."""
        self._stop.set()
        if self._thread is not None:
            self._thread.join(timeout=5.0)
            self._thread = None
        if self._own_orchestrator and self._orch is not None:
            self._orch.close()

    # -- introspection -------------------------------------------------
    @property
    def worker_count(self) -> int:
        if self.inline or self._orch is None:
            return 0
        return self._orch._workers

    def pending(self) -> int:
        """Dispatched runs whose outcome has not been routed yet."""
        with self._lock:
            if self._orch is None:
                return 0
            return sum(
                1
                for job_id in self._run_of_job
                if self._orch.outcome(job_id) is None
            )

    def dispatched(self) -> int:
        return self._dispatched

    # -- dispatch ------------------------------------------------------
    def enqueue(self, run_id: str) -> None:
        """Hand one registered run to the execution backend."""
        self._dispatched += 1
        if self.inline:
            try:
                execute_run(
                    str(self.registry.root),
                    run_id,
                    self.checkpoint_every,
                )
            except Exception:
                # execute_run already recorded the failure; inline
                # callers (tests, tiny deployments) want the submit
                # endpoint to survive a failing run just like the
                # pooled path does.
                pass
            return
        with self._lock:
            job_id = self._orch.submit_task(
                execute_run,
                (
                    str(self.registry.root),
                    run_id,
                    self.checkpoint_every,
                ),
            )
            self._run_of_job[job_id] = run_id

    def recover(self) -> List[str]:
        """Requeue every run interrupted before completion.

        Called once on server start, *before* accepting traffic: runs
        still marked ``queued``/``running`` on disk were orphaned by a
        previous process.  Re-dispatching them restarts non-resumable
        runs from round zero and resumes checkpointed grid runs from
        their last trace checkpoint.  Returns the requeued ids.
        """
        requeued: List[str] = []
        for record in self.registry.records():
            if record.status in ("queued", "running"):
                self.enqueue(record.run_id)
                requeued.append(record.run_id)
        return requeued

    # -- completion routing --------------------------------------------
    def _poll_loop(self) -> None:
        while not self._stop.is_set():
            self.poll_once()
            self._stop.wait(self._poll_interval)

    def poll_once(self) -> None:
        """Drain pool completions; record worker-level failures.

        Normal outcomes need no action (the worker wrote the record);
        a failed job whose record never reached a terminal state is
        the pool-level death case — record it here so the run does not
        dangle forever.
        """
        if self.inline or self._orch is None:
            return
        with self._lock:
            statuses = self._orch.poll()
            finished = [
                job_id
                for job_id in list(self._run_of_job)
                if statuses.get(job_id) in ("done", "failed")
            ]
            routed = {
                job_id: (
                    self._run_of_job.pop(job_id),
                    self._orch.outcome(job_id),
                )
                for job_id in finished
            }
        for job_id, (run_id, outcome) in sorted(routed.items()):
            if outcome is None:
                continue
            ok, value = outcome
            if ok:
                continue
            record = self.registry.get(run_id)
            if record.status in ("done", "failed"):
                continue
            message = (
                "".join(str(a) for a in value.args)
                if isinstance(value, BaseException)
                else str(value)
            )
            self.registry.update(
                run_id,
                status="failed",
                finished_at=time.time(),
                error=message or type(value).__name__,
            )
