"""Simulation-as-a-service: HTTP API, run registry, live dashboard.

This package turns the library into a product surface: submit a
:class:`~repro.engine.protocols.Scenario` over HTTP, have it executed
by :func:`repro.api.simulate` in a background worker process (the
persistent pool behind :class:`~repro.analysis.orchestrator.
SweepOrchestrator`), and read everything back — durable run records,
round-by-round Server-Sent Events tailed from the flushed trace, and
per-round SVG frames rendered server-side.

Layering (transport-agnostic core, thin HTTP shell):

* :mod:`repro.service.records` — :class:`RunRecord` / ``RunRegistry``:
  one directory per run (``record.json`` + ``trace.jsonl``), atomic
  writes, restart-safe.
* :mod:`repro.service.runner` — ``execute_run``: the picklable worker
  task; plain grid/FSYNC runs checkpoint and *resume* after a crash
  (PR 7's ``resume_engine``), everything else restarts from scratch.
* :mod:`repro.service.workers` — drains queued runs onto the shared
  orchestrator pool; ``recover()`` requeues interrupted runs on boot.
* :mod:`repro.service.app` — the HTTP-free application: a tiny router
  plus JSON request/response types; every endpoint is a method here,
  so tests (and a future ASGI adapter) skip sockets entirely.
* :mod:`repro.service.sse` — SSE formatting and the per-run event
  stream over :func:`repro.trace.tail.follow_rounds`.
* :mod:`repro.service.server` — the stdlib ``ThreadingHTTPServer``
  adapter and the ``repro serve`` entry point.
* :mod:`repro.service.dashboard` — the single-file HTML dashboard.

Endpoint table, run-record schema and the SSE event format are
documented in ``docs/service.md``.
"""

from repro.service.app import ServiceApp
from repro.service.records import RunRecord, RunRegistry
from repro.service.server import ServiceServer, serve

__all__ = [
    "RunRecord",
    "RunRegistry",
    "ServiceApp",
    "ServiceServer",
    "serve",
]
