"""The single-file HTML dashboard served at ``GET /``.

Deliberately dependency-free on the client side too: one page of
vanilla HTML/CSS/JS, ``fetch`` for the JSON API and the browser's
native ``EventSource`` for the SSE round stream.  Frames are just
``<img>`` tags pointed at ``/runs/<id>/frame.svg`` and re-fetched as
round events arrive (throttled), so the server stays the single
renderer and the page stays trivial.
"""

from __future__ import annotations

DASHBOARD_HTML = """<!DOCTYPE html>
<html lang="en">
<head>
<meta charset="utf-8">
<title>repro — gathering as a service</title>
<style>
 body { font-family: monospace; margin: 1.5rem; color: #222; }
 h1 { font-size: 1.2rem; }
 fieldset { border: 1px solid #999; margin-bottom: 1rem; }
 table { border-collapse: collapse; margin-top: .5rem; }
 th, td { border: 1px solid #bbb; padding: .2rem .6rem;
          text-align: left; }
 tr.sel { background: #eef; cursor: pointer; }
 tbody tr { cursor: pointer; }
 #live { display: flex; gap: 2rem; margin-top: 1rem; }
 #frame img { border: 1px solid #999; max-width: 480px; }
 #log { max-height: 14rem; overflow-y: auto; font-size: .8rem;
        border: 1px solid #bbb; padding: .3rem; width: 24rem; }
 .muted { color: #777; }
</style>
</head>
<body>
<h1>repro — gathering on a grid, as a service</h1>
<fieldset>
 <legend>submit a scenario</legend>
 <label>family <select id="family">
  <option>ring</option><option>line</option><option>blob</option>
  <option>square</option><option>plus</option>
 </select></label>
 <label>n <input id="n" type="number" value="48" size="6"></label>
 <label>seed <input id="seed" type="number" value="1" size="6">
 </label>
 <button id="submit">submit</button>
 <span id="submitmsg" class="muted"></span>
</fieldset>
<div>
 <b>runs</b> <button id="refresh">refresh</button>
 <table id="runs"><thead><tr>
  <th>id</th><th>status</th><th>family</th><th>n</th>
  <th>rounds</th><th>gathered</th>
 </tr></thead><tbody></tbody></table>
</div>
<div id="live">
 <div id="frame"><img id="frameimg" alt="no frame yet"></div>
 <div>
  <div id="status" class="muted">select a run to stream it</div>
  <div id="log"></div>
 </div>
</div>
<script>
"use strict";
let source = null;
let selected = null;
let frameTimer = null;

function el(id) { return document.getElementById(id); }

function logLine(text) {
  const div = document.createElement("div");
  div.textContent = text;
  el("log").prepend(div);
  while (el("log").childNodes.length > 200) {
    el("log").removeChild(el("log").lastChild);
  }
}

async function refreshRuns() {
  const res = await fetch("/runs");
  const data = await res.json();
  const tbody = el("runs").querySelector("tbody");
  tbody.innerHTML = "";
  for (const run of data.runs.slice().reverse()) {
    const tr = document.createElement("tr");
    const m = run.metrics || {};
    const p = run.params || {};
    const cells = [run.run_id, run.status, p.family || "-",
                   p.n ?? "-", m.rounds ?? "-", m.gathered ?? "-"];
    for (const value of cells) {
      const td = document.createElement("td");
      td.textContent = String(value);
      tr.appendChild(td);
    }
    if (run.run_id === selected) tr.classList.add("sel");
    tr.onclick = () => attach(run.run_id);
    tbody.appendChild(tr);
  }
}

function scheduleFrame(runId) {
  if (frameTimer !== null) return;
  frameTimer = setTimeout(() => {
    frameTimer = null;
    el("frameimg").src =
      "/runs/" + runId + "/frame.svg?round=latest&t=" + Date.now();
  }, 150);
}

function attach(runId) {
  if (source !== null) source.close();
  selected = runId;
  el("status").textContent = runId + ": connecting\\u2026";
  el("log").innerHTML = "";
  el("frameimg").src = "/runs/" + runId + "/frame.svg";
  source = new EventSource("/runs/" + runId + "/events");
  source.addEventListener("status", (ev) => {
    const data = JSON.parse(ev.data);
    el("status").textContent = runId + ": " + data.status;
  });
  source.addEventListener("round", (ev) => {
    const data = JSON.parse(ev.data);
    el("status").textContent =
      runId + ": round " + (data.round + 1) +
      ", " + data.robots + " robots";
    logLine("round " + (data.round + 1) +
            ": " + data.robots + " robots");
    scheduleFrame(runId);
  });
  source.addEventListener("end", (ev) => {
    const data = JSON.parse(ev.data);
    const m = data.metrics || {};
    el("status").textContent =
      runId + ": " + data.status +
      (m.rounds !== undefined
        ? " \\u2014 " + m.rounds + " rounds, gathered=" + m.gathered
        : "");
    logLine("end: " + data.status);
    scheduleFrame(runId);
    source.close();
    refreshRuns();
  });
  refreshRuns();
}

el("submit").onclick = async () => {
  const payload = {
    family: el("family").value,
    n: parseInt(el("n").value, 10),
    seed: parseInt(el("seed").value, 10),
  };
  const res = await fetch("/runs", {
    method: "POST",
    headers: { "Content-Type": "application/json" },
    body: JSON.stringify(payload),
  });
  const data = await res.json();
  if (res.ok) {
    el("submitmsg").textContent = "submitted " + data.id;
    await refreshRuns();
    attach(data.id);
  } else {
    el("submitmsg").textContent = "error: " + data.error;
  }
};

el("refresh").onclick = refreshRuns;
refreshRuns();
</script>
</body>
</html>
"""
