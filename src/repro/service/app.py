"""The transport-agnostic service application.

Everything HTTP-shaped but socket-free lives here: a
:class:`Request` / :class:`Response` pair, a tiny :class:`Router`
(literal and ``<param>`` path segments), submit-payload validation,
and :class:`ServiceApp` — the object that owns the registry, the
worker dispatcher, and one handler method per endpoint.

The stdlib server (:mod:`repro.service.server`) is a thin adapter
over ``ServiceApp.handle``; tests drive ``handle`` directly, and a
future ASGI adapter would be another thin shell, not a rewrite.

Endpoints (full table in ``docs/service.md``)::

    GET  /                      dashboard (single-file HTML)
    GET  /health                liveness + run/queue counts
    GET  /metrics               service counters (JSON)
    GET  /runs                  all run records
    POST /runs                  submit a scenario -> 202 + run record
    GET  /runs/<id>             one run record
    GET  /runs/<id>/events      SSE round stream (text/event-stream)
    GET  /runs/<id>/frame.svg   one round rendered server-side
    GET  /runs/<id>/trace       the raw JSONL trace
"""

from __future__ import annotations

import json
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import (
    Any,
    Callable,
    Dict,
    Iterator,
    List,
    Optional,
    Tuple,
    Union,
)

from repro.api import SCHEDULERS, STRATEGIES
from repro.core.config import AlgorithmConfig
from repro.service.dashboard import DASHBOARD_HTML
from repro.service.records import RunRegistry
from repro.service.runner import scenario_from_params
from repro.service.sse import StreamHub, run_event_stream
from repro.service.workers import ServiceWorkers
from repro.trace.recorder import TraceRow, read_trace
from repro.viz.svg import frame_svg

#: Keys a submit payload may carry (everything else is a loud 400).
SUBMIT_KEYS = frozenset(
    {
        "family",
        "n",
        "seed",
        "payload",
        "strategy",
        "scheduler",
        "max_rounds",
        "check_connectivity",
        "config",
        "options",
    }
)


# ----------------------------------------------------------------------
# Request / Response / Router
# ----------------------------------------------------------------------
@dataclass
class Request:
    """One HTTP request, already parsed by the transport."""

    method: str
    path: str
    query: Dict[str, str] = field(default_factory=dict)
    body: bytes = b""
    params: Dict[str, str] = field(default_factory=dict)

    def json(self) -> Any:
        if not self.body:
            raise ValueError("request body is empty (expected JSON)")
        try:
            return json.loads(self.body.decode("utf-8"))
        except ValueError as exc:
            raise ValueError(f"invalid JSON body: {exc}") from None


@dataclass
class Response:
    """One HTTP response: a body *or* a byte-chunk stream (SSE)."""

    status: int = 200
    content_type: str = "application/json"
    body: bytes = b""
    stream: Optional[Iterator[bytes]] = None
    headers: Dict[str, str] = field(default_factory=dict)

    @classmethod
    def of_json(cls, data: Any, status: int = 200) -> "Response":
        return cls(
            status=status,
            body=(json.dumps(data) + "\n").encode("utf-8"),
        )

    @classmethod
    def error(cls, status: int, message: str) -> "Response":
        return cls.of_json({"error": message}, status=status)

    def json(self) -> Any:
        """Parse the body back (test convenience)."""
        return json.loads(self.body.decode("utf-8"))


Handler = Callable[[Request], Response]


class Router:
    """Method + path-pattern dispatch; ``<name>`` captures a segment."""

    def __init__(self) -> None:
        self._routes: List[Tuple[str, Tuple[str, ...], Handler]] = []

    def add(self, method: str, pattern: str, handler: Handler) -> None:
        segments = tuple(pattern.strip("/").split("/"))
        self._routes.append((method.upper(), segments, handler))

    @staticmethod
    def _match(
        segments: Tuple[str, ...], path: str
    ) -> Optional[Dict[str, str]]:
        parts = tuple(path.strip("/").split("/"))
        if len(parts) != len(segments):
            return None
        params: Dict[str, str] = {}
        for seg, part in zip(segments, parts):
            if seg.startswith("<") and seg.endswith(">"):
                if not part:
                    return None
                params[seg[1:-1]] = part
            elif seg != part:
                return None
        return params

    def dispatch(self, request: Request) -> Response:
        path_matched = False
        for method, segments, handler in self._routes:
            params = self._match(segments, request.path)
            if params is None:
                continue
            path_matched = True
            if method != request.method.upper():
                continue
            request.params = params
            return handler(request)
        if path_matched:
            return Response.error(
                405, f"method {request.method} not allowed here"
            )
        return Response.error(404, f"no such path: {request.path}")


# ----------------------------------------------------------------------
# Submit-payload validation
# ----------------------------------------------------------------------
def validate_params(data: Any) -> Dict[str, Any]:
    """Check and normalize a submit payload; raises ``ValueError``.

    Validation happens at the door, not in the worker: a payload that
    passes here will reach ``simulate()`` with known-good strategy /
    scheduler / scenario / config shapes, so the only failures left in
    the worker are simulation-level ones (recorded on the run).
    """
    if not isinstance(data, dict):
        raise ValueError("submit payload must be a JSON object")
    unknown = set(data) - SUBMIT_KEYS
    if unknown:
        raise ValueError(
            f"unknown submit keys {sorted(unknown)}; "
            f"accepted: {sorted(SUBMIT_KEYS)}"
        )
    params = {k: v for k, v in data.items() if v is not None}

    strategy = params.get("strategy", "grid")
    if strategy not in STRATEGIES:
        raise ValueError(
            f"unknown strategy {strategy!r}; "
            f"available: {sorted(STRATEGIES)}"
        )
    strat = STRATEGIES[strategy]
    scheduler = params.get("scheduler")
    if scheduler is not None:
        if scheduler not in SCHEDULERS:
            raise ValueError(
                f"unknown scheduler {scheduler!r}; "
                f"available: {sorted(SCHEDULERS)}"
            )
        if scheduler not in strat.schedulers:
            raise ValueError(
                f"strategy {strategy!r} supports schedulers "
                f"{strat.schedulers}, not {scheduler!r}"
            )

    for key in ("n", "seed", "max_rounds"):
        if key in params and not isinstance(params[key], int):
            raise ValueError(f"{key} must be an integer")
    if "n" in params and params["n"] < 1:
        raise ValueError("n must be >= 1")
    if "max_rounds" in params and params["max_rounds"] < 1:
        raise ValueError("max_rounds must be >= 1")
    if "check_connectivity" in params and not isinstance(
        params["check_connectivity"], bool
    ):
        raise ValueError("check_connectivity must be a boolean")
    for key in ("config", "options"):
        if key in params and not isinstance(params[key], dict):
            raise ValueError(f"{key} must be a JSON object")
    if "payload" in params and not isinstance(
        params["payload"], list
    ):
        raise ValueError("payload must be a list of points")

    if "config" in params:
        try:
            AlgorithmConfig(**params["config"])
        except TypeError as exc:
            raise ValueError(f"bad config: {exc}") from None
    # Scenario construction validates the family/n/payload shape.
    scenario_from_params(params)
    return params


# ----------------------------------------------------------------------
# The application
# ----------------------------------------------------------------------
class ServiceApp:
    """The service behind every transport: registry + workers + routes.

    ``inline_workers=True`` executes runs synchronously on submit (no
    pool) — for tests and throwaway servers.  Otherwise runs execute
    on a persistent worker-process pool of ``workers`` processes.
    """

    def __init__(
        self,
        data_dir: Union[str, Path],
        *,
        workers: Optional[int] = None,
        checkpoint_every: int = 50,
        inline_workers: bool = False,
        poll_interval: float = 0.05,
    ) -> None:
        self.registry = RunRegistry(data_dir)
        self.hub = StreamHub()
        self.workers = ServiceWorkers(
            self.registry,
            workers=workers,
            checkpoint_every=checkpoint_every,
            poll_interval=poll_interval,
            inline=inline_workers,
        )
        self._poll_interval = poll_interval
        self._started_at = time.time()
        self._requests = 0
        self.router = Router()
        self.router.add("GET", "/", self._dashboard)
        self.router.add("GET", "/health", self._health)
        self.router.add("GET", "/metrics", self._metrics)
        self.router.add("GET", "/runs", self._list_runs)
        self.router.add("POST", "/runs", self._submit)
        self.router.add("GET", "/runs/<run_id>", self._get_run)
        self.router.add(
            "GET", "/runs/<run_id>/events", self._events
        )
        self.router.add(
            "GET", "/runs/<run_id>/frame.svg", self._frame
        )
        self.router.add("GET", "/runs/<run_id>/trace", self._trace)

    # -- lifecycle -----------------------------------------------------
    def start(self) -> List[str]:
        """Recover interrupted runs, start the dispatcher; returns the
        requeued run ids."""
        requeued = self.workers.recover()
        self.workers.start()
        return requeued

    def close(self) -> None:
        self.workers.close()

    def __enter__(self) -> "ServiceApp":
        self.start()
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.close()
        return False

    # -- dispatch ------------------------------------------------------
    def handle(self, request: Request) -> Response:
        """Route one request; unexpected errors become JSON 500s."""
        self._requests += 1
        try:
            return self.router.dispatch(request)
        except Exception as exc:
            return Response.error(
                500, f"{type(exc).__name__}: {exc}"
            )

    # -- endpoints -----------------------------------------------------
    def _dashboard(self, request: Request) -> Response:
        return Response(
            content_type="text/html; charset=utf-8",
            body=DASHBOARD_HTML.encode("utf-8"),
        )

    def _health(self, request: Request) -> Response:
        return Response.of_json(
            {
                "status": "ok",
                "runs": self.registry.counts(),
                "queue": {
                    "pending": self.workers.pending(),
                    "dispatched": self.workers.dispatched(),
                },
                "workers": self.workers.worker_count,
                "uptime_s": round(time.time() - self._started_at, 3),
            }
        )

    def _metrics(self, request: Request) -> Response:
        return Response.of_json(
            {
                "service": "repro",
                "http_requests_total": self._requests,
                "runs": self.registry.counts(),
                "sse": self.hub.snapshot(),
                "uptime_s": round(time.time() - self._started_at, 3),
            }
        )

    def _list_runs(self, request: Request) -> Response:
        return Response.of_json(
            {
                "runs": [
                    record.to_dict()
                    for record in self.registry.records()
                ]
            }
        )

    def _submit(self, request: Request) -> Response:
        try:
            params = validate_params(request.json())
        except ValueError as exc:
            return Response.error(400, str(exc))
        record = self.registry.create(params)
        self.workers.enqueue(record.run_id)
        run_id = record.run_id
        return Response.of_json(
            {
                "id": run_id,
                "status": self.registry.get(run_id).status,
                "links": {
                    "self": f"/runs/{run_id}",
                    "events": f"/runs/{run_id}/events",
                    "frame": f"/runs/{run_id}/frame.svg",
                    "trace": f"/runs/{run_id}/trace",
                },
            },
            status=202,
        )

    def _get_run(self, request: Request) -> Response:
        try:
            record = self.registry.get(request.params["run_id"])
        except KeyError as exc:
            return Response.error(404, str(exc.args[0]))
        return Response.of_json(record.to_dict())

    def _events(self, request: Request) -> Response:
        run_id = request.params["run_id"]
        try:
            self.registry.get(run_id)
        except KeyError as exc:
            return Response.error(404, str(exc.args[0]))
        start_round = 0
        if "start_round" in request.query:
            start_round = int(request.query["start_round"])
        return Response(
            content_type="text/event-stream",
            headers={"Cache-Control": "no-store"},
            stream=run_event_stream(
                self.registry,
                run_id,
                self.hub,
                poll_interval=self._poll_interval,
                start_round=start_round,
            ),
        )

    def _frame(self, request: Request) -> Response:
        run_id = request.params["run_id"]
        try:
            self.registry.get(run_id)
        except KeyError as exc:
            return Response.error(404, str(exc.args[0]))
        trace_path = self.registry.trace_path(run_id)
        if not trace_path.exists():
            return Response.error(
                404, f"run {run_id} has no trace yet"
            )
        with trace_path.open() as fh:
            meta, rows = read_trace(fh)
        initial = [
            (int(x), int(y))
            for x, y in meta.get("initial_cells", [])
        ]
        which = request.query.get("round", "latest")
        try:
            canvas = self._render_frame(which, initial, rows)
        except ValueError as exc:
            return Response.error(400, str(exc))
        if canvas is None:
            return Response.error(
                404, f"run {run_id} has no frame for round={which}"
            )
        return Response(
            content_type="image/svg+xml",
            body=canvas.to_string().encode("utf-8"),
        )

    @staticmethod
    def _render_frame(
        which: str,
        initial: List[Tuple[int, int]],
        rows: List[TraceRow],
    ) -> Optional[Any]:
        """Pick (current, previous) cell sets and render one frame.

        ``round=initial`` (or 0 rounds recorded) renders the initial
        configuration; ``round=latest`` the newest recorded round;
        ``round=<k>`` round ``k`` with the cells newly occupied since
        round ``k-1`` highlighted.
        """
        if which == "initial":
            if not initial:
                return None
            return frame_svg(initial, label="round 0 (initial)")
        if which == "latest":
            if not rows:
                if not initial:
                    return None
                return frame_svg(initial, label="round 0 (initial)")
            index = len(rows) - 1
        else:
            try:
                wanted = int(which)
            except ValueError:
                raise ValueError(
                    f"round must be 'initial', 'latest', or an "
                    f"integer, got {which!r}"
                ) from None
            index = next(
                (
                    i
                    for i, row in enumerate(rows)
                    if row.round_index == wanted
                ),
                None,
            )
            if index is None:
                return None
        row = rows[index]
        previous = (
            rows[index - 1].cells if index > 0 else initial or None
        )
        return frame_svg(
            row.cells,
            previous,
            label=f"round {row.round_index + 1}"
            f" ({len(row.cells)} robots)",
        )

    def _trace(self, request: Request) -> Response:
        run_id = request.params["run_id"]
        try:
            self.registry.get(run_id)
        except KeyError as exc:
            return Response.error(404, str(exc.args[0]))
        trace_path = self.registry.trace_path(run_id)
        if not trace_path.exists():
            return Response.error(
                404, f"run {run_id} has no trace yet"
            )
        return Response(
            content_type="application/x-ndjson",
            body=trace_path.read_bytes(),
        )
