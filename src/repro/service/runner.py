"""The worker task behind the service: execute (or resume) one run.

:func:`execute_run` is a module-level picklable function dispatched
onto the orchestrator's persistent worker pool; everything it needs is
re-opened from the registry root, so it survives pool respawns and a
server restart re-dispatching it.

Execution writes a per-round flushed JSONL trace next to the record —
the server tails it for Server-Sent Events and renders SVG frames from
its rows — and the worker itself owns every record transition from
``running`` onward, so a dead server still leaves finished runs
``done`` with metrics on disk.

Two execution paths, mirroring the sweep store
(:func:`repro.analysis.orchestrator._run_grid_job_checkpointed`):

* plain grid/FSYNC runs go through ``simulate()`` with a pre-built
  controller and a :class:`~repro.trace.recorder.CheckpointRecorder`
  hook, so a killed run resumes from its last embedded checkpoint via
  :func:`repro.trace.replay.resume_engine` — continuing the *same*
  trajectory, with metrics identical to an undisturbed run;
* everything else (other strategies/schedulers, option-carrying runs)
  records a plain trace and restarts from scratch on recovery —
  correct either way, checkpoints are an optimization.

Fresh runs call :func:`repro.api.simulate` itself, so ``metrics`` in
the finished record is bit-identical to a direct ``simulate(...)
.summary()`` with the same parameters (the service E2E test pins
this).
"""

from __future__ import annotations

import json
import time
from typing import Any, Dict, List, Optional, Tuple

from repro.api import STRATEGIES, simulate
from repro.core.algorithm import GatherOnGrid
from repro.core.config import AlgorithmConfig
from repro.engine.events import EventLog
from repro.engine.protocols import Scenario, SimContext
from repro.engine.termination import default_round_budget
from repro.service.records import RunRegistry
from repro.trace.recorder import (
    CheckpointRecorder,
    TraceRecorder,
    read_trace,
)
from repro.trace.replay import (
    controller_checkpoint,
    last_checkpoint,
    resume_engine,
)

#: Event kinds that end a run (one of these is always emitted).
TERMINAL_KINDS = ("gathered", "budget_exhausted", "connectivity_lost")


def scenario_from_params(params: Dict[str, Any]) -> Scenario:
    """The :class:`Scenario` described by a submit payload."""
    payload = params.get("payload")
    if payload is not None:
        payload = [tuple(p) for p in payload]
    return Scenario(
        family=params.get("family"),
        n=params.get("n"),
        seed=params.get("seed"),
        payload=payload,
    )


def config_from_params(
    params: Dict[str, Any],
) -> Optional[AlgorithmConfig]:
    cfg = params.get("config")
    return None if cfg is None else AlgorithmConfig(**cfg)


def checkpointable(params: Dict[str, Any]) -> bool:
    """Only plain grid/FSYNC runs use the checkpointing engine path
    (same predicate as the sweep store's ``_checkpointable``)."""
    return (
        params.get("strategy", "grid") == "grid"
        and params.get("scheduler") in (None, "fsync")
        and not params.get("options")
    )


def _terminal_events(events: EventLog) -> List[Dict[str, Any]]:
    return [
        {"round": e.round_index, "kind": e.kind, "data": dict(e.data)}
        for e in events
        if e.kind in TERMINAL_KINDS
    ]


def execute_run(
    root: str, run_id: str, checkpoint_every: int = 50
) -> Dict[str, Any]:
    """Execute one registered run to completion; returns its metrics.

    Record transitions are written from here (the worker), so the
    outcome is durable no matter what happens to the dispatching
    server.  Exceptions are recorded as ``failed`` *and* re-raised, so
    the pool's completion routing still sees the failure.
    """
    registry = RunRegistry(root)
    record = registry.get(run_id)
    registry.update(
        run_id, status="running", started_at=time.time(), error=None
    )
    try:
        summary, terminal, resumed = _execute(
            registry, run_id, record.params, checkpoint_every
        )
    except BaseException as exc:
        registry.update(
            run_id,
            status="failed",
            finished_at=time.time(),
            error=f"{type(exc).__name__}: {exc}",
        )
        raise
    registry.update(
        run_id,
        status="done",
        finished_at=time.time(),
        metrics=summary,
        terminal=terminal,
        resumed_from_round=resumed,
    )
    return summary


def _execute(
    registry: RunRegistry,
    run_id: str,
    params: Dict[str, Any],
    checkpoint_every: int,
) -> Tuple[Dict[str, Any], List[Dict[str, Any]], Optional[int]]:
    if checkpointable(params):
        return _execute_grid_checkpointed(
            registry, run_id, params, checkpoint_every
        )
    return _execute_plain(registry, run_id, params)


def _header_meta(
    run_id: str,
    params: Dict[str, Any],
    scheduler: str,
    cells: List[Any],
) -> Dict[str, Any]:
    """The trace header: run identity plus everything the server needs
    to render round 0 and to resume (initial cells, budget, sizes)."""
    unique = sorted(set(tuple(c) for c in cells))
    meta: Dict[str, Any] = {
        "run_id": run_id,
        "strategy": params.get("strategy", "grid"),
        "scheduler": scheduler,
        "n": len(unique),
        "initial_cells": [list(c) for c in unique],
    }
    for key in ("family", "seed"):
        if params.get(key) is not None:
            meta[key] = params[key]
    return meta


def _flushing(recorder: TraceRecorder) -> Any:
    """Wrap a recorder so every row reaches the disk immediately — the
    server process tails the file for SSE, so rows must not sit in the
    worker's userspace buffer until the run ends."""

    def hook(round_index: int, state: Any) -> None:
        recorder(round_index, state)
        recorder.fh.flush()

    return hook


def _execute_grid_checkpointed(
    registry: RunRegistry,
    run_id: str,
    params: Dict[str, Any],
    checkpoint_every: int,
) -> Tuple[Dict[str, Any], List[Dict[str, Any]], Optional[int]]:
    trace_path = registry.trace_path(run_id)
    cfg = config_from_params(params)
    check = bool(params.get("check_connectivity", True))

    row = None
    meta: Dict[str, Any] = {}
    if trace_path.exists():
        with trace_path.open() as fh:
            meta, rows = read_trace(fh)
        row = last_checkpoint(rows)

    if row is not None:
        # Resume the interrupted trajectory from its last checkpoint.
        engine = resume_engine(row, cfg, check_connectivity=check)
        budget = int(meta["budget"])
        n0 = int(meta["n"])
        with trace_path.open("a") as fh:
            recorder = CheckpointRecorder(
                fh,
                lambda: controller_checkpoint(engine.controller),
                meta=meta,
                every=checkpoint_every,
            )
            recorder._wrote_header = True  # appending to the trace
            engine.on_round = _flushing(recorder)
            with engine:
                result = engine.run(max_rounds=budget)
        # Rebuild the summary shape from the header: the engine only
        # saw the tail, so initial-population fields come from meta.
        # Event counts cover the resumed tail plus the terminal event
        # (documented in docs/service.md).
        summary = {
            "strategy": "grid",
            "scheduler": "fsync",
            "gathered": result.gathered,
            "rounds": result.rounds,
            "robots_initial": n0,
            "robots_final": result.robots_final,
            "merges": n0 - result.robots_final,
            "rounds_per_robot": round(result.rounds / max(n0, 1), 4),
            "events": result.events.counts(),
            "extras": {
                "initial_diameter": meta["initial_diameter"],
            },
        }
        return summary, _terminal_events(result.events), row.round_index

    # Fresh run: resolve the scenario once to write an eager header
    # (round-0 frames and resume metadata), then run through the
    # facade itself with a pre-built controller — so the recorded
    # metrics are bit-identical to a direct simulate() call.
    scenario = scenario_from_params(params)
    cells = STRATEGIES["grid"].resolve(
        scenario, SimContext(seed=params.get("seed"))
    )
    controller = GatherOnGrid(cfg or AlgorithmConfig())
    meta = _header_meta(run_id, params, "fsync", cells)
    max_rounds = params.get("max_rounds")
    meta["budget"] = (
        int(max_rounds)
        if max_rounds is not None
        else default_round_budget(int(meta["n"]))
    )
    meta["initial_diameter"] = _span(meta["initial_cells"])
    with trace_path.open("w") as fh:
        fh.write(_header_line(meta))
        fh.flush()
        recorder = CheckpointRecorder(
            fh,
            lambda: controller_checkpoint(controller),
            meta=meta,
            every=checkpoint_every,
        )
        recorder._wrote_header = True  # header written eagerly above
        result = simulate(
            scenario,
            strategy="grid",
            scheduler="fsync",
            config=cfg,
            seed=params.get("seed"),
            max_rounds=max_rounds,
            check_connectivity=check,
            on_round=_flushing(recorder),
            controller=controller,
        )
    return result.summary(), _terminal_events(result.events), None


def _execute_plain(
    registry: RunRegistry,
    run_id: str,
    params: Dict[str, Any],
) -> Tuple[Dict[str, Any], List[Dict[str, Any]], Optional[int]]:
    """Any strategy/scheduler combination: plain flushed trace, no
    checkpoints (recovery restarts the run from round zero)."""
    strategy = params.get("strategy", "grid")
    scheduler = params.get("scheduler")
    scenario = scenario_from_params(params)
    strat = STRATEGIES[strategy]
    cells = strat.resolve(scenario, SimContext(seed=params.get("seed")))
    scheduler_key = (
        scheduler if scheduler is not None else strat.default_scheduler
    )
    meta = _header_meta(run_id, params, scheduler_key, cells)
    trace_path = registry.trace_path(run_id)
    with trace_path.open("w") as fh:
        fh.write(_header_line(meta))
        fh.flush()
        recorder = TraceRecorder(fh, meta=meta)
        recorder._wrote_header = True
        result = simulate(
            scenario,
            strategy=strategy,
            scheduler=scheduler,
            config=config_from_params(params),
            seed=params.get("seed"),
            max_rounds=params.get("max_rounds"),
            check_connectivity=bool(
                params.get("check_connectivity", True)
            ),
            on_round=_flushing(recorder),
            **dict(params.get("options") or {}),
        )
    return result.summary(), _terminal_events(result.events), None


def _header_line(meta: Dict[str, Any]) -> str:
    return json.dumps({"type": "header", **meta}) + "\n"


def _span(cells: List[Any]) -> float:
    xs = [c[0] for c in cells]
    ys = [c[1] for c in cells]
    return max(max(xs) - min(xs), max(ys) - min(ys))
