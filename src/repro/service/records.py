"""Durable run records: one directory per submitted simulation.

Layout (mirroring :class:`~repro.analysis.orchestrator.SweepJobStore`,
which pins the idiom of "a job store is a directory")::

    <root>/runs/run-000001/record.json   status, params, metrics, ...
    <root>/runs/run-000001/trace.jsonl   per-round flushed JSONL trace

``record.json`` is written atomically (temp file + rename), so a
reader never sees a torn record and a SIGKILLed server leaves every
record either in its old or its new state.  Run ids are allocated by
scanning the existing directories — restart-safe and collision-free
without a counter file.

Concurrency model: the server process creates records and flips
``queued`` state; the worker process that executes a run owns every
transition from ``running`` onward (so results survive the server
dying mid-run).  Writers never share a transition, and each write
replaces the whole file, so the in-process lock here only guards id
allocation.
"""

from __future__ import annotations

import json
import os
import re
import threading
import time
from dataclasses import asdict, dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Optional, Union

#: Run lifecycle: ``queued`` (accepted, waiting for a worker) ->
#: ``running`` -> ``done`` | ``failed``.  A server restart requeues
#: ``queued``/``running`` runs (see ``ServiceWorkers.recover``).
STATUSES = ("queued", "running", "done", "failed")

_RUN_ID_RE = re.compile(r"^run-(\d{6,})$")


@dataclass
class RunRecord:
    """One submitted simulation: parameters, lifecycle, outcome.

    ``params`` is the validated submit payload (see
    ``repro.service.app.validate_params``); ``metrics`` is the
    ``RunResult.summary()`` dict once the run finished; ``terminal``
    lists the terminal events (``gathered`` / ``budget_exhausted`` /
    ``connectivity_lost``) with their data.  ``resumed_from_round`` is
    set when a restarted server continued the run from a trace
    checkpoint instead of from round zero.  Timestamps are wall-clock
    epoch seconds — service metadata, never simulation input.
    """

    run_id: str
    status: str
    params: Dict[str, Any] = field(default_factory=dict)
    created_at: Optional[float] = None
    started_at: Optional[float] = None
    finished_at: Optional[float] = None
    metrics: Optional[Dict[str, Any]] = None
    terminal: Optional[List[Dict[str, Any]]] = None
    error: Optional[str] = None
    resumed_from_round: Optional[int] = None

    def to_dict(self) -> Dict[str, Any]:
        return asdict(self)

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "RunRecord":
        known = {f for f in cls.__dataclass_fields__}
        return cls(**{k: v for k, v in data.items() if k in known})


class RunRegistry:
    """The run store: create, read, and update :class:`RunRecord` s."""

    def __init__(self, root: Union[str, Path]) -> None:
        self.root = Path(root)
        self._lock = threading.Lock()

    @property
    def runs_dir(self) -> Path:
        return self.root / "runs"

    def run_dir(self, run_id: str) -> Path:
        return self.runs_dir / run_id

    def record_path(self, run_id: str) -> Path:
        return self.run_dir(run_id) / "record.json"

    def trace_path(self, run_id: str) -> Path:
        return self.run_dir(run_id) / "trace.jsonl"

    # -- creation ------------------------------------------------------
    def _next_id(self) -> str:
        highest = 0
        if self.runs_dir.is_dir():
            for name in os.listdir(self.runs_dir):
                match = _RUN_ID_RE.match(name)
                if match:
                    highest = max(highest, int(match.group(1)))
        return f"run-{highest + 1:06d}"

    def create(self, params: Dict[str, Any]) -> RunRecord:
        """Allocate a run directory and write its ``queued`` record."""
        with self._lock:
            self.runs_dir.mkdir(parents=True, exist_ok=True)
            run_id = self._next_id()
            record = RunRecord(
                run_id=run_id,
                status="queued",
                params=dict(params),
                created_at=time.time(),
            )
            self.run_dir(run_id).mkdir()
            self._write(record)
        return record

    # -- reading -------------------------------------------------------
    def get(self, run_id: str) -> RunRecord:
        path = self.record_path(run_id)
        try:
            data = json.loads(path.read_text())
        except FileNotFoundError:
            raise KeyError(f"no such run: {run_id}") from None
        return RunRecord.from_dict(data)

    def run_ids(self) -> List[str]:
        """All run ids, in allocation (= submission) order."""
        if not self.runs_dir.is_dir():
            return []
        return sorted(
            name
            for name in os.listdir(self.runs_dir)
            if _RUN_ID_RE.match(name)
            and self.record_path(name).exists()
        )

    def records(self) -> List[RunRecord]:
        return [self.get(run_id) for run_id in self.run_ids()]

    def counts(self) -> Dict[str, int]:
        """``{status: count}`` over every known run (zeros included)."""
        out = {status: 0 for status in STATUSES}
        for record in self.records():
            out[record.status] = out.get(record.status, 0) + 1
        return out

    # -- updating ------------------------------------------------------
    def update(self, run_id: str, **fields: Any) -> RunRecord:
        """Read-modify-write of named record fields (atomic replace)."""
        unknown = set(fields) - set(RunRecord.__dataclass_fields__)
        if unknown:
            raise TypeError(
                f"unknown record fields: {sorted(unknown)}"
            )
        record = self.get(run_id)
        for key, value in fields.items():
            setattr(record, key, value)
        if record.status not in STATUSES:
            raise ValueError(
                f"status must be one of {STATUSES}, "
                f"got {record.status!r}"
            )
        self._write(record)
        return record

    def _write(self, record: RunRecord) -> None:
        path = self.record_path(record.run_id)
        tmp = path.with_suffix(".tmp")
        tmp.write_text(json.dumps(record.to_dict()) + "\n")
        tmp.rename(path)
