"""Exception types shared across the ``repro`` package.

This module is deliberately dependency-free (it imports nothing from
``repro``) so that low-level packages — ``grid``, ``core`` — can raise
typed errors without pulling in ``repro.engine`` (whose ``__init__``
imports the schedulers, which import the grid: a cycle).

The engine-specific exceptions (:class:`SimulationError` and friends)
live in :mod:`repro.engine.errors`, which re-exports
:class:`InvariantError` from here so both spellings resolve to the same
class.
"""

from __future__ import annotations


class InvariantError(RuntimeError):
    """An internal invariant did not hold.

    Raised where a bare ``assert`` would otherwise guard load-bearing
    state: unlike ``assert``, it survives ``python -O``, so a corrupted
    incremental index or an impossible planner state fails loudly in
    every interpreter mode instead of silently producing a wrong — and
    possibly still deterministic-looking — trajectory.
    """
