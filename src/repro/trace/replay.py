"""Deterministic replay: re-run a recorded swarm and compare states.

The algorithm is deterministic (all tie-breaks are structural), so a replay
from the same initial cells must reproduce every round exactly; `verify_trace`
asserts that, catching any accidental nondeterminism (e.g. set-iteration
order leaking into decisions).
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from repro.core.algorithm import GatherOnGrid
from repro.core.config import AlgorithmConfig
from repro.engine.scheduler import FsyncEngine
from repro.grid.occupancy import SwarmState
from repro.trace.recorder import TraceRow


def replay(
    initial_cells: Sequence,
    rounds: int,
    cfg: Optional[AlgorithmConfig] = None,
) -> List[frozenset]:
    """Run the algorithm for ``rounds`` rounds, returning per-round states."""
    states: List[frozenset] = []
    engine = FsyncEngine(
        SwarmState(initial_cells),
        GatherOnGrid(cfg),
        on_round=lambda i, s: states.append(s.frozen()),
    )
    for _ in range(rounds):
        if engine.state.is_gathered():
            break
        engine.step()
    return states


def verify_trace(
    initial_cells: Sequence,
    trace: Sequence[TraceRow],
    cfg: Optional[AlgorithmConfig] = None,
) -> bool:
    """True iff re-running reproduces the trace exactly, round for round."""
    states = replay(initial_cells, len(trace), cfg)
    for row, state in zip(trace, states):
        if frozenset(row.cells) != state:
            return False
    return True
