"""Deterministic replay: re-run a recorded swarm and compare states.

The algorithm is deterministic (all tie-breaks are structural), so a replay
from the same initial cells must reproduce every round exactly; `verify_trace`
asserts that, catching any accidental nondeterminism (e.g. set-iteration
order leaking into decisions).

Checkpoint-and-resume rides on the same determinism: the whole
controller-side simulation state of the grid strategy is the swarm cells
plus the :class:`~repro.core.runs.RunManager` run table — everything
else (contours, start-site indexes, incremental caches) is a pure
function of the cells, rebuilt bit-identically on demand (the
equivalence suite pins incremental == full rescan).  So a checkpoint is
tiny (:func:`controller_checkpoint`), and :func:`resume_engine` restores
a :class:`~repro.engine.scheduler.FsyncEngine` from any checkpointed
trace row that continues the original trajectory exactly.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from repro.core.algorithm import GatherOnGrid
from repro.core.config import AlgorithmConfig
from repro.core.runs import Run
from repro.core.tolerant import TolerantGatherOnGrid
from repro.engine.scheduler import FsyncEngine
from repro.grid.occupancy import SwarmState
from repro.trace.recorder import TraceRow

#: The grid-state controllers a checkpoint can restore into, by the
#: facade strategy key that builds them.  The explorer, witness
#: reconstruction, and certification all thread this key so the same
#: machinery certifies the stock algorithm and its tolerant variant.
GRID_CONTROLLERS = {
    "grid": GatherOnGrid,
    "tolerant": TolerantGatherOnGrid,
}


def grid_controller_class(strategy: str) -> type:
    """The controller class behind a grid-state strategy key."""
    try:
        return GRID_CONTROLLERS[strategy]
    except KeyError:
        raise KeyError(
            f"unknown grid-state strategy {strategy!r}; "
            f"available: {sorted(GRID_CONTROLLERS)}"
        ) from None


def replay(
    initial_cells: Sequence,
    rounds: int,
    cfg: Optional[AlgorithmConfig] = None,
) -> List[frozenset]:
    """Run the algorithm for ``rounds`` rounds, returning per-round states."""
    states: List[frozenset] = []
    engine = FsyncEngine(
        SwarmState(initial_cells),
        GatherOnGrid(cfg),
        on_round=lambda i, s: states.append(s.frozen()),
    )
    for _ in range(rounds):
        if engine.state.is_gathered():
            break
        engine.step()
    return states


def verify_trace(
    initial_cells: Sequence,
    trace: Sequence[TraceRow],
    cfg: Optional[AlgorithmConfig] = None,
) -> bool:
    """True iff re-running reproduces the trace exactly, round for round."""
    states = replay(initial_cells, len(trace), cfg)
    for row, state in zip(trace, states):
        if frozenset(row.cells) != state:
            return False
    return True


# ----------------------------------------------------------------------
# Checkpoint / resume
# ----------------------------------------------------------------------
def controller_checkpoint(controller: GatherOnGrid) -> dict:
    """The JSON-able run-table snapshot of a grid controller.

    Everything needed to continue planning: the live runs (frozen
    dataclasses — copied by value into lists) and the next run id.
    Derived structures are deliberately absent; they are rebuilt from
    the swarm cells on resume.
    """
    manager = controller.run_manager
    return {
        "next_id": manager._next_id,
        "runs": [
            [
                run.run_id,
                list(run.robot),
                list(run.prev),
                run.direction,
                run.axis,
                run.born_round,
            ]
            for _, run in sorted(manager.runs.items())
        ],
    }


def restore_controller(
    checkpoint: dict,
    cfg: Optional[AlgorithmConfig] = None,
    strategy: str = "grid",
) -> GatherOnGrid:
    """A fresh grid-state controller with the checkpointed run table
    (``strategy`` picks the class — stock ``grid`` or ``tolerant``)."""
    controller = grid_controller_class(strategy)(cfg)
    manager = controller.run_manager
    manager._next_id = int(checkpoint["next_id"])
    manager.runs = {
        int(row[0]): Run(
            run_id=int(row[0]),
            robot=(int(row[1][0]), int(row[1][1])),
            prev=(int(row[2][0]), int(row[2][1])),
            direction=int(row[3]),
            axis=str(row[4]),
            born_round=int(row[5]),
        )
        for row in checkpoint["runs"]
    }
    return controller


def resume_engine(
    row: TraceRow,
    cfg: Optional[AlgorithmConfig] = None,
    *,
    check_connectivity: bool = True,
    **engine_kwargs,
) -> FsyncEngine:
    """An engine continuing from a checkpointed trace row.

    The recorder's ``on_round`` hook fires after a round is applied and
    the run table finalized, so the row is post-round state and the
    resumed engine starts at ``row.round_index + 1``.  Callers resuming
    a budgeted run must pass the *original* ``max_rounds`` to
    :meth:`~repro.engine.scheduler.FsyncEngine.run` — the default
    budget is derived from the current (already shrunk) robot count.
    """
    if row.checkpoint is None:
        raise ValueError(
            f"trace row for round {row.round_index} carries no "
            f"checkpoint; resume needs a CheckpointRecorder trace"
        )
    engine = FsyncEngine(
        SwarmState(row.cells),
        restore_controller(row.checkpoint, cfg),
        check_connectivity=check_connectivity,
        **engine_kwargs,
    )
    engine.round_index = row.round_index + 1
    return engine


def last_checkpoint(rows: Sequence[TraceRow]) -> Optional[TraceRow]:
    """The latest row carrying a checkpoint, or ``None``."""
    for row in reversed(rows):
        if row.checkpoint is not None:
            return row
    return None


# ----------------------------------------------------------------------
# SSYNC witness schedules (the nondeterminism explorer's artifacts)
# ----------------------------------------------------------------------
def replay_schedule(
    initial_cells: Sequence,
    schedule: Sequence,
    *,
    cfg: Optional[AlgorithmConfig] = None,
    k_fairness: Optional[int] = None,
    max_rounds: Optional[int] = None,
    strategy: str = "grid",
    on_round=None,
):
    """Re-drive an explicit activation schedule through the stock SSYNC
    scheduler (``activation="scripted"``).

    ``schedule`` is a per-round sequence of robot-token lists, as
    exported by :mod:`repro.explore` witnesses.  ``k_fairness`` defaults
    to ``len(schedule) + 2`` — large enough that fairness forcing can
    never perturb the script (no streak can reach the forcing threshold
    within the scripted rounds).  ``strategy`` selects the grid-state
    strategy under test (stock ``grid`` or ``tolerant``).  Returns the
    facade ``RunResult``.
    """
    from repro.api import simulate  # lazy: api imports this package

    if strategy not in GRID_CONTROLLERS:
        raise KeyError(
            f"schedule replay supports grid-state strategies only "
            f"({sorted(GRID_CONTROLLERS)}), got {strategy!r}"
        )
    return simulate(
        list(initial_cells),
        strategy=strategy,
        scheduler="ssync",
        config=cfg,
        activation="scripted",
        schedule=[list(entry) for entry in schedule],
        k_fairness=(
            k_fairness if k_fairness is not None else len(schedule) + 2
        ),
        max_rounds=max_rounds,
        on_round=on_round,
    )


def verify_schedule_trace(
    initial_cells: Sequence,
    schedule: Sequence,
    rows: Sequence,
    *,
    cfg: Optional[AlgorithmConfig] = None,
    k_fairness: Optional[int] = None,
    expect_terminal: Optional[str] = None,
    violation_round: Optional[int] = None,
    strategy: str = "grid",
) -> bool:
    """True iff replaying ``schedule`` reproduces ``rows`` exactly.

    ``rows`` is the expected per-round sorted cell list (one entry per
    scheduled round); the comparison is bit-identical, round for round.
    ``expect_terminal`` additionally requires that terminal event
    (``"connectivity_lost"`` / ``"gathered"``) in the replay's event
    log, and ``violation_round`` pins the round of the
    ``connectivity_violation`` event.
    """
    observed: List[tuple] = []
    result = replay_schedule(
        initial_cells,
        schedule,
        cfg=cfg,
        k_fairness=k_fairness,
        max_rounds=len(rows),
        strategy=strategy,
        on_round=lambda i, s: observed.append(tuple(sorted(s.cells))),
    )
    if len(observed) != len(rows):
        return False
    for expected, got in zip(rows, observed):
        if tuple(expected) != got:
            return False
    if expect_terminal is not None:
        if not result.events.of_kind(expect_terminal):
            return False
    if violation_round is not None:
        violations = result.events.of_kind("connectivity_violation")
        if [e.round_index for e in violations] != [violation_round]:
            return False
    return True
