"""JSONL trace recording of simulations.

One row per round with the full occupied-cell set (sorted, so traces are
canonical), plus a header row with metadata.  Traces are small for the
paper's swarm sizes (n <= a few thousand) and make failures reproducible:
every property-test counterexample can be dumped and replayed.

The recorder is an ``on_round`` hook and works with *any* facade
strategy: pass ``simulate(..., trace=fh)`` and it is wired up with
strategy/scheduler/family metadata automatically; it accepts anything
with a ``.cells`` surface (:class:`SwarmState`, the facade's
``StateView`` over chain/Euclidean states) or a bare cell iterable.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Iterator, List, Optional, TextIO

from repro.grid.occupancy import SwarmState


@dataclass(frozen=True)
class TraceRow:
    round_index: int
    cells: tuple


class TraceRecorder:
    """Engine ``on_round`` hook that writes JSONL to a file or buffer."""

    def __init__(self, fh: TextIO, meta: Optional[dict] = None) -> None:
        self.fh = fh
        self._wrote_header = False
        self.meta = meta or {}

    def __call__(self, round_index: int, state: SwarmState) -> None:
        if not self._wrote_header:
            self.fh.write(
                json.dumps({"type": "header", **self.meta}) + "\n"
            )
            self._wrote_header = True
        cells = state.cells if hasattr(state, "cells") else state
        self.fh.write(
            json.dumps(
                {
                    "type": "round",
                    "round": round_index,
                    "cells": sorted(cells),
                }
            )
            + "\n"
        )


def load_trace(lines: Iterator[str] | List[str]) -> List[TraceRow]:
    """Parse JSONL trace content into rows (header rows are skipped)."""
    rows: List[TraceRow] = []
    for line in lines:
        line = line.strip()
        if not line:
            continue
        obj = json.loads(line)
        if obj.get("type") != "round":
            continue
        rows.append(
            TraceRow(
                round_index=int(obj["round"]),
                cells=tuple((int(x), int(y)) for x, y in obj["cells"]),
            )
        )
    return rows
