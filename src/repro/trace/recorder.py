"""JSONL trace recording of simulations.

One row per round with the full occupied-cell set (sorted, so traces are
canonical), plus a header row with metadata.  Traces are small for the
paper's swarm sizes (n <= a few thousand) and make failures reproducible:
every property-test counterexample can be dumped and replayed.

The recorder is an ``on_round`` hook and works with *any* facade
strategy: pass ``simulate(..., trace=fh)`` and it is wired up with
strategy/scheduler/family metadata automatically; it accepts anything
with a ``.cells`` surface (:class:`SwarmState`, the facade's
``StateView`` over chain/Euclidean states) or a bare cell iterable.

:class:`CheckpointRecorder` extends the format for long simulations:
every ``every`` rounds the row additionally embeds a controller
checkpoint (see :mod:`repro.trace.replay`), so a killed run resumes
from its last checkpoint row instead of from round zero.  Plain
:func:`load_trace` readers ignore the extra field — checkpointed traces
stay valid traces.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Callable, Iterator, List, Optional, TextIO, Tuple, Union

from repro.grid.occupancy import SwarmState


@dataclass(frozen=True)
class TraceRow:
    round_index: int
    cells: tuple
    #: Embedded controller checkpoint (checkpointed traces only) — an
    #: opaque JSON dict for :func:`repro.trace.replay.resume_engine`.
    checkpoint: Optional[dict] = None


class TraceRecorder:
    """Engine ``on_round`` hook that writes JSONL to a file or buffer."""

    def __init__(self, fh: TextIO, meta: Optional[dict] = None) -> None:
        self.fh = fh
        self._wrote_header = False
        self.meta = meta or {}

    def __call__(self, round_index: int, state: SwarmState) -> None:
        if not self._wrote_header:
            self.fh.write(
                json.dumps({"type": "header", **self.meta}) + "\n"
            )
            self._wrote_header = True
        cells = state.cells if hasattr(state, "cells") else state
        self.fh.write(
            json.dumps(
                {
                    "type": "round",
                    "round": round_index,
                    "cells": sorted(cells),
                }
            )
            + "\n"
        )


class CheckpointRecorder(TraceRecorder):
    """A :class:`TraceRecorder` that embeds periodic checkpoints.

    ``checkpoint_fn`` is called every ``every`` rounds (round 0
    included) and its JSON-able return value rides on that round's row;
    the stream is flushed after each checkpoint row so a SIGKILLed
    process leaves a resumable trace on disk.  The engine calls
    ``on_round`` *after* the round is applied and finalized, so a
    checkpoint at row ``r`` is the exact state a resumed engine
    continues from at round ``r + 1``.
    """

    def __init__(
        self,
        fh: TextIO,
        checkpoint_fn: Callable[[], dict],
        *,
        meta: Optional[dict] = None,
        every: int = 50,
    ) -> None:
        if every < 1:
            raise ValueError(f"every must be >= 1, got {every}")
        super().__init__(fh, meta)
        self.checkpoint_fn = checkpoint_fn
        self.every = every

    def __call__(self, round_index: int, state: SwarmState) -> None:
        if round_index % self.every != 0:
            super().__call__(round_index, state)
            return
        if not self._wrote_header:
            self.fh.write(
                json.dumps({"type": "header", **self.meta}) + "\n"
            )
            self._wrote_header = True
        cells = state.cells if hasattr(state, "cells") else state
        self.fh.write(
            json.dumps(
                {
                    "type": "round",
                    "round": round_index,
                    "cells": sorted(cells),
                    "checkpoint": self.checkpoint_fn(),
                }
            )
            + "\n"
        )
        self.fh.flush()


def load_trace(lines: Union[Iterator[str], List[str]]) -> List[TraceRow]:
    """Parse JSONL trace content into rows (header rows are skipped)."""
    return read_trace(lines)[1]


def read_trace(
    lines: Union[Iterator[str], List[str]],
) -> Tuple[dict, List[TraceRow]]:
    """Parse JSONL trace content into ``(header_meta, rows)``.

    The header meta is ``{}`` for headerless fragments; checkpoint
    payloads (when present) are preserved on their rows.
    """
    meta: dict = {}
    rows: List[TraceRow] = []
    for line in lines:
        line = line.strip()
        if not line:
            continue
        obj = json.loads(line)
        kind = obj.get("type")
        if kind == "header":
            meta = {k: v for k, v in obj.items() if k != "type"}
            continue
        if kind != "round":
            continue
        rows.append(
            TraceRow(
                round_index=int(obj["round"]),
                cells=tuple((int(x), int(y)) for x, y in obj["cells"]),
                checkpoint=obj.get("checkpoint"),
            )
        )
    return meta, rows
