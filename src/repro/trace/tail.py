"""Live tailing of JSONL traces across a process boundary.

The serving layer (:mod:`repro.service`) runs simulations in worker
*processes* that flush one trace row per round; the server process
turns those rows into Server-Sent Events by following the file as it
grows.  :func:`follow_rounds` is that follower: a generator yielding
:class:`~repro.trace.recorder.TraceRow` objects in round order, safe
against partially written lines (only newline-terminated lines are
parsed) and against the file not existing yet (it waits).

``stop`` decouples termination from the file contents: traces do not
carry an end-of-stream marker (a killed worker leaves no footer), so
the caller supplies a predicate — "the run record says done/failed" —
and the follower drains whatever reached the disk, then returns.

Polling (rather than inotify) keeps this stdlib-portable; the default
interval is far below a round's simulation cost, so SSE consumers see
rounds essentially as they happen.
"""

from __future__ import annotations

import json
import os
import time
from typing import Callable, Iterator, Optional

from repro.trace.recorder import TraceRow


def _parse_row(line: str) -> Optional[TraceRow]:
    try:
        obj = json.loads(line)
    except ValueError:
        return None
    if obj.get("type") != "round":
        return None
    return TraceRow(
        round_index=int(obj["round"]),
        cells=tuple((int(x), int(y)) for x, y in obj["cells"]),
        checkpoint=obj.get("checkpoint"),
    )


def follow_rounds(
    path: str,
    *,
    poll_interval: float = 0.05,
    stop: Optional[Callable[[], bool]] = None,
    start_round: int = 0,
) -> Iterator[TraceRow]:
    """Yield trace rows from ``path`` as they are appended.

    Header and unknown rows are skipped; rows with
    ``round_index < start_round`` are skipped (resume support: a
    re-attached stream can ask only for the tail).  The generator ends
    when ``stop()`` returns true *and* every complete line written so
    far has been yielded — so a consumer that flips ``stop`` on the
    terminal run status still receives the final rounds.  With no
    ``stop`` predicate it follows forever (callers must close it).
    """
    buffer = b""
    position = 0
    while True:
        done = stop() if stop is not None else False
        grew = False
        if os.path.exists(path):
            with open(path, "rb") as fh:
                fh.seek(position)
                chunk = fh.read()
            if chunk:
                grew = True
                position += len(chunk)
                buffer += chunk
                while b"\n" in buffer:
                    raw, buffer = buffer.split(b"\n", 1)
                    row = _parse_row(raw.decode("utf-8"))
                    if row is not None and row.round_index >= start_round:
                        yield row
        if done and not grew:
            return
        if not grew:
            time.sleep(poll_interval)
