"""Trace recording and deterministic replay."""

from repro.trace.recorder import TraceRecorder, TraceRow, load_trace
from repro.trace.replay import replay, verify_trace

__all__ = [
    "TraceRecorder",
    "TraceRow",
    "load_trace",
    "replay",
    "verify_trace",
]
