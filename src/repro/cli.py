"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``gather``   run the algorithm on a generated swarm, print a summary
``watch``    print per-round frames while gathering (terminal animation)
``figures``  regenerate the paper's Figures 1-21
``scale``    run the E1 scaling experiment for one family (``--jobs N``
             fans the sizes out over a process pool)
``ablate``   sweep one AlgorithmConfig field (parallel with ``--jobs``)
``compare``  grid vs Euclidean vs ASYNC vs global-vision round counts
"""

from __future__ import annotations

import argparse
import math
import sys
from typing import List, Optional

from repro.analysis.experiments import run_ablation, run_scaling
from repro.analysis.fitting import fit_linear, scaling_exponent
from repro.analysis.tables import format_table
from repro.core.algorithm import GatherOnGrid, gather
from repro.core.config import AlgorithmConfig
from repro.engine.scheduler import FsyncEngine
from repro.grid.occupancy import SwarmState
from repro.swarms.generators import FAMILIES, family
from repro.viz.ascii_art import render_with_marks


def _add_common(p: argparse.ArgumentParser) -> None:
    p.add_argument(
        "--family",
        default="ring",
        choices=sorted(FAMILIES),
        help="swarm family (default: ring)",
    )
    p.add_argument(
        "-n", type=int, default=100, help="target robot count (default 100)"
    )
    p.add_argument(
        "--radius", type=int, default=None, help="viewing radius override"
    )
    p.add_argument(
        "--interval", type=int, default=None, help="run start interval L"
    )
    p.add_argument(
        "--full-scan",
        action="store_true",
        help="disable the incremental per-round pipeline (A/B baseline)",
    )


def _config(args: argparse.Namespace) -> AlgorithmConfig:
    kwargs = {}
    if getattr(args, "radius", None) is not None:
        kwargs["viewing_radius"] = args.radius
        kwargs["max_bump_length"] = max(1, (args.radius - 2) // 2)
    if getattr(args, "interval", None) is not None:
        kwargs["run_start_interval"] = args.interval
    if getattr(args, "full_scan", False):
        kwargs["incremental"] = False
    return AlgorithmConfig(**kwargs)


def cmd_gather(args: argparse.Namespace) -> int:
    cells = family(args.family, args.n)
    result = gather(cells, _config(args))
    print(
        f"{args.family}(n={result.robots_initial}): gathered="
        f"{result.gathered} rounds={result.rounds} "
        f"rounds/n={result.rounds_per_robot():.2f}"
    )
    print("events:", result.events.counts())
    return 0 if result.gathered else 1


def cmd_watch(args: argparse.Namespace) -> int:
    cells = family(args.family, args.n)
    ctrl = GatherOnGrid(_config(args))
    engine = FsyncEngine(SwarmState(cells), ctrl)
    rounds = 0
    while not engine.state.is_gathered() and rounds < args.max_rounds:
        marks = {r.robot: "R" for r in ctrl.run_manager.runs.values()}
        print(
            f"\n--- round {rounds}: {len(engine.state)} robots, "
            f"{ctrl.active_run_count} runs ---"
        )
        print(render_with_marks(engine.state, marks))
        engine.step()
        rounds += 1
    print(f"\ngathered after {rounds} rounds")
    return 0


def cmd_figures(args: argparse.Namespace) -> int:
    from repro.viz.figures import FIGURES, figure

    names = args.names or sorted(
        FIGURES, key=lambda s: int(s.removeprefix("fig"))
    )
    for name in names:
        print("=" * 72)
        print(figure(name))
        print()
    return 0


def cmd_scale(args: argparse.Namespace) -> int:
    sizes = args.sizes or [args.n, args.n * 2, args.n * 4]
    points = run_scaling(
        args.family,
        sizes,
        _config(args),
        check_connectivity=False,
        workers=args.jobs,
    )
    rows = [
        (p.n, p.diameter, p.rounds, f"{p.rounds_per_n:.2f}") for p in points
    ]
    ns = [p.n for p in points]
    rnds = [max(p.rounds, 1) for p in points]
    exp = scaling_exponent(ns, rnds)
    lin = fit_linear(ns, rnds)
    print(
        format_table(
            ["n", "diameter", "rounds", "rounds/n"],
            rows,
            title=(
                f"[{args.family}] exponent {exp:.2f} slope "
                f"{lin.coefficients[0]:.2f} (R2 {lin.r_squared:.3f})"
            ),
        )
    )
    return 0


def cmd_ablate(args: argparse.Namespace) -> int:
    results = run_ablation(
        args.param,
        args.values,
        args.family,
        args.n,
        max_rounds=args.max_rounds,
        workers=args.jobs,
    )
    rows = [
        (v, "stalled" if r < 0 else r) for v, r in results.items()
    ]
    print(
        format_table(
            [args.param, "rounds"],
            rows,
            title=f"ablation of {args.param} on {args.family}(n~{args.n})",
        )
    )
    return 0 if all(r >= 0 for r in results.values()) else 1


def cmd_compare(args: argparse.Namespace) -> int:
    from repro.baselines.async_greedy import gather_async
    from repro.baselines.euclidean import gather_euclidean
    from repro.baselines.global_grid import gather_global_with_moves
    from repro.swarms.generators import line, random_blob

    rows = []
    for n in args.sizes or [16, 32, 64]:
        g = gather(line(n), check_connectivity=False)
        r = n * 0.9 / (2 * math.pi)
        e = gather_euclidean(
            [
                (
                    r * math.cos(2 * math.pi * i / n),
                    r * math.sin(2 * math.pi * i / n),
                )
                for i in range(n)
            ]
        )
        a = gather_async(random_blob(n, seed=n), check_connectivity=False)
        gl, _ = gather_global_with_moves(line(n))
        rows.append((n, g.rounds, e.rounds, a.rounds, gl.rounds))
    print(
        format_table(
            ["n", "grid", "euclid", "async", "global"],
            rows,
            title="rounds to gather, worst-case family per model",
        )
    )
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Asymptotically Optimal Gathering on a Grid (SPAA 2016)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("gather", help="gather one swarm, print a summary")
    _add_common(p)
    p.set_defaults(fn=cmd_gather)

    p = sub.add_parser("watch", help="per-round terminal animation")
    _add_common(p)
    p.add_argument("--max-rounds", type=int, default=2000)
    p.set_defaults(fn=cmd_watch)

    p = sub.add_parser("figures", help="regenerate paper figures")
    p.add_argument("names", nargs="*", help="fig1 ... fig21 (default all)")
    p.set_defaults(fn=cmd_figures)

    p = sub.add_parser("scale", help="E1 scaling experiment for a family")
    _add_common(p)
    p.add_argument("--sizes", type=int, nargs="+")
    p.add_argument(
        "--jobs",
        "-j",
        type=int,
        default=None,
        help="parallel worker processes (0 = one per CPU; default serial)",
    )
    p.set_defaults(fn=cmd_scale)

    p = sub.add_parser(
        "ablate", help="sweep one AlgorithmConfig field (E5-E7 style)"
    )
    p.add_argument("param", help="AlgorithmConfig field, e.g. max_bump_length")
    p.add_argument(
        "values", type=int, nargs="+", help="values to sweep over"
    )
    p.add_argument("--family", default="ring", help="swarm family")
    p.add_argument("-n", type=int, default=100, help="target robot count")
    p.add_argument("--max-rounds", type=int, default=None)
    p.add_argument(
        "--jobs",
        "-j",
        type=int,
        default=None,
        help="parallel worker processes (0 = one per CPU; default serial)",
    )
    p.set_defaults(fn=cmd_ablate)

    p = sub.add_parser("compare", help="E2-E4 baseline comparison")
    p.add_argument("--sizes", type=int, nargs="+")
    p.set_defaults(fn=cmd_compare)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    return args.fn(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
