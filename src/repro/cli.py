"""Command-line interface: ``python -m repro <command>``.

Every simulation command runs through the unified facade
(:func:`repro.api.simulate`): ``--strategy``/``--scheduler`` select any
registered workload/time model, ``--seed`` pins everything stochastic,
and ``--json`` prints a machine-readable summary to stdout.  The SSYNC
schedulers (``--scheduler ssync`` / ``ssync-faulty``) add
``--activation``, ``--activation-p``, ``--rr-k``, ``--k-fairness``,
``--fault-rate``, ``--crash-rate`` and ``--byzantine-rate``; the
``async-lcm`` scheduler adds ``--staleness`` (see docs/schedulers.md —
flags a scheduler does not declare are rejected loudly).

Commands
--------
``gather``   run one strategy on a generated swarm, print a summary
``watch``    print per-round frames while gathering (terminal animation)
``figures``  regenerate the paper's Figures 1-21
``scale``    run the E1 scaling experiment for one family (``--jobs N``
             fans the sizes out over a process pool)
``ablate``   sweep one AlgorithmConfig field (parallel with ``--jobs``)
``compare``  round counts across strategies, each on its worst-case
             family (E2-E4; ``--strategies`` picks the columns)
``sweep``    durable sweeps as directories: ``submit`` writes the job
             spec, ``run`` executes it over the persistent worker pool
             (``--detach`` backgrounds it; interrupted grid jobs resume
             from their trace checkpoints), ``status``/``collect``
             report progress and results from any process
``serve``    simulation-as-a-service: HTTP API + live dashboard over a
             durable run registry (see docs/service.md)
``explore``  branch SSYNC activation subsets into a deduped state DAG,
             extract replayable connectivity witnesses, export DOT/HTML
             (see docs/explorer.md)
``certify``  exhaustive small-n certification sweep over all fixed
             polyominoes: machine-checked FSYNC bound tables plus the
             verified SSYNC counterexample
"""

from __future__ import annotations

import argparse
import json
import os
import subprocess
import sys
from typing import List, Optional

from repro.analysis.experiments import (
    SweepJob,
    run_ablation,
    run_scaling,
)
from repro.analysis.fitting import fit_linear, scaling_exponent
from repro.analysis.tables import format_table
from repro.api import SCHEDULERS, STRATEGIES, simulate
from repro.core.algorithm import GatherOnGrid
from repro.core.config import AlgorithmConfig
from repro.engine.executors import PLAN_BACKENDS, ExecutorUnavailable
from repro.engine.protocols import Scenario, SimContext
from repro.swarms.generators import FAMILIES
from repro.viz.ascii_art import render_with_marks

#: Families resolvable by at least one strategy: the swarm generators
#: plus the strategy-specific ones (Euclidean worst case, chains).
FAMILY_CHOICES = [
    *sorted(FAMILIES),
    "circle",
    "hairpin",
    "zigzag",
    "rectangle",
]

#: Default ``compare`` columns — the E2-E4 lineup, in the legacy order.
COMPARE_DEFAULT = ["grid", "euclidean", "async_greedy", "global"]


def _add_common(p: argparse.ArgumentParser) -> None:
    p.add_argument(
        "--family",
        default="ring",
        choices=FAMILY_CHOICES,
        help="swarm family (default: ring)",
    )
    p.add_argument(
        "-n", type=int, default=100, help="target robot count (default 100)"
    )
    p.add_argument(
        "--strategy",
        default="grid",
        choices=sorted(STRATEGIES),
        help="registered strategy to run (default: grid)",
    )
    p.add_argument(
        "--scheduler",
        default=None,
        choices=sorted(SCHEDULERS),
        help="time model (default: the strategy's canonical scheduler)",
    )
    p.add_argument(
        "--seed",
        type=int,
        default=None,
        help="seed for stochastic families/schedulers (reproducible runs)",
    )
    # SSYNC scheduler knobs (only valid with --scheduler ssync or
    # ssync-faulty; the facade rejects other combinations loudly).
    p.add_argument(
        "--activation",
        default=None,
        choices=["uniform", "round_robin", "adversarial"],
        help="ssync activation policy (default: uniform)",
    )
    p.add_argument(
        "--activation-p",
        type=float,
        default=None,
        help="ssync uniform activation probability (default 0.5)",
    )
    p.add_argument(
        "--rr-k",
        type=int,
        default=None,
        help="ssync round-robin class count (default 3)",
    )
    p.add_argument(
        "--k-fairness",
        type=int,
        default=None,
        help="ssync fairness bound: activate everyone within k rounds "
        "(default 8)",
    )
    p.add_argument(
        "--fault-rate",
        type=float,
        default=None,
        help="per-robot per-round transient sleep-fault probability",
    )
    p.add_argument(
        "--crash-rate",
        type=float,
        default=None,
        help="per-robot per-round crash-stop hazard",
    )
    p.add_argument(
        "--byzantine-rate",
        type=float,
        default=None,
        help="fraction of robots drawn byzantine at the start of an "
        "ssync/ssync-faulty run (stale views, off-plan hops, playing "
        "dead)",
    )
    p.add_argument(
        "--staleness",
        type=int,
        default=None,
        help="async-lcm only: max look/move lag in rounds (0 = FSYNC-"
        "identical full activation)",
    )
    p.add_argument(
        "--radius", type=int, default=None, help="viewing radius override"
    )
    p.add_argument(
        "--interval", type=int, default=None, help="run start interval L"
    )
    p.add_argument(
        "--full-scan",
        action="store_true",
        help="disable the incremental per-round pipeline (A/B baseline)",
    )
    p.add_argument(
        "--shard-planning",
        action="store_true",
        help="plan run reshapements in parallel shards (bit-identical "
        "trajectories; a speedup only on GIL-free interpreters)",
    )
    p.add_argument(
        "--shard-workers",
        type=int,
        default=None,
        help="worker threads for --shard-planning (default: min(4, CPUs))",
    )
    p.add_argument(
        "--shard-backend",
        default=None,
        choices=list(PLAN_BACKENDS),
        help="executor behind --shard-planning (default: thread; "
        "'process' = persistent workers over shared-memory round "
        "snapshots, 'subinterp' needs Python 3.14+)",
    )


#: Exceptions the facade raises for bad strategy/scheduler/flag
#: combinations — argparse validates each flag alone, the facade the
#: combination.  TypeError covers scheduler-option mismatches (e.g.
#: ``--fault-rate`` with ``--scheduler fsync``), whose message names the
#: valid registry keys; ExecutorUnavailable covers a ``--shard-backend``
#: this interpreter cannot run (its message names the alternatives).
_USAGE_ERRORS = (KeyError, ValueError, TypeError, ExecutorUnavailable)


def _fail(exc: BaseException) -> int:
    """Clean CLI error for invalid strategy/family/scheduler combos."""
    if isinstance(exc, OSError):
        msg = str(exc)  # args[0] alone would print the bare errno
    else:
        msg = exc.args[0] if exc.args else str(exc)
    print(f"error: {msg}", file=sys.stderr)
    return 2


def _scheduler_options(args: argparse.Namespace) -> dict:
    """SSYNC flags the user actually set, as ``simulate()`` options.

    Unset flags are omitted entirely, so plain fsync/async runs carry no
    scheduler options and incompatible combinations (an SSYNC flag with
    a non-SSYNC scheduler) fail in the facade with a message naming the
    registered schedulers.
    """
    mapping = {
        "activation": "activation",
        "activation_p": "activation_p",
        "rr_k": "rr_k",
        "k_fairness": "k_fairness",
        "fault_rate": "sleep_rate",
        "crash_rate": "crash_rate",
        "byzantine_rate": "byzantine_rate",
        "staleness": "staleness",
    }
    out = {}
    for attr, option in mapping.items():
        value = getattr(args, attr, None)
        if value is not None:
            out[option] = value
    return out


def _config(args: argparse.Namespace) -> AlgorithmConfig:
    kwargs = {}
    if getattr(args, "interval", None) is not None:
        kwargs["run_start_interval"] = args.interval
    if getattr(args, "full_scan", False):
        kwargs["incremental"] = False
    if getattr(args, "shard_planning", False):
        kwargs["shard_planning"] = True
    shard_workers = getattr(args, "shard_workers", None)
    if shard_workers is not None:
        if not getattr(args, "shard_planning", False):
            raise ValueError(
                "--shard-workers requires --shard-planning (the worker "
                "count only applies to the sharded planner)"
            )
        kwargs["shard_workers"] = shard_workers
    shard_backend = getattr(args, "shard_backend", None)
    if shard_backend is not None:
        if not getattr(args, "shard_planning", False):
            raise ValueError(
                "--shard-backend requires --shard-planning (the "
                "backend selects the sharded planner's executor)"
            )
        kwargs["shard_backend"] = shard_backend
    radius = getattr(args, "radius", None)
    if radius is not None:
        return AlgorithmConfig.with_radius(radius, **kwargs)
    return AlgorithmConfig(**kwargs)


def cmd_gather(args: argparse.Namespace) -> int:
    try:
        result = simulate(
            Scenario(family=args.family, n=args.n),
            strategy=args.strategy,
            scheduler=args.scheduler,
            config=_config(args),
            seed=args.seed,
            **_scheduler_options(args),
        )
    except _USAGE_ERRORS as exc:
        return _fail(exc)
    if args.json:
        print(json.dumps({"family": args.family, **result.summary()}))
    else:
        print(
            f"{args.family}(n={result.robots_initial}): gathered="
            f"{result.gathered} rounds={result.rounds} "
            f"rounds/n={result.rounds_per_robot():.2f}"
        )
        print("events:", result.events.counts())
    return 0 if result.gathered else 1


def cmd_watch(args: argparse.Namespace) -> int:
    try:
        cfg = _config(args)
    except _USAGE_ERRORS as exc:
        return _fail(exc)
    options = {}
    ctrl: Optional[GatherOnGrid] = None
    if args.strategy == "grid":
        ctrl = GatherOnGrid(cfg)
        options["controller"] = ctrl

    # Resolve the scenario through the strategy so chain/euclidean
    # family names work here too, then pass the cells as an explicit
    # payload (the initial frame and the run must agree).
    try:
        cells = STRATEGIES[args.strategy].resolve(
            Scenario(family=args.family, n=args.n),
            SimContext(seed=args.seed),
        )
    except _USAGE_ERRORS as exc:
        return _fail(exc)
    if any(
        not (isinstance(x, int) and isinstance(y, int)) for x, y in cells
    ):
        return _fail(
            ValueError(
                f"watch renders integer grid cells; strategy "
                f"{args.strategy!r} has continuous state"
            )
        )
    print(f"--- round 0: {len(set(cells))} robots ---")
    print(render_with_marks(sorted(set(cells)), {}))

    def show(round_index: int, state) -> None:
        marks = (
            {r.robot: "R" for r in ctrl.run_manager.runs.values()}
            if ctrl is not None
            else {}
        )
        runs = f", {ctrl.active_run_count} runs" if ctrl is not None else ""
        print(f"\n--- round {round_index + 1}: {len(state)} robots{runs} ---")
        print(render_with_marks(state, marks))

    try:
        result = simulate(
            Scenario(payload=cells),
            strategy=args.strategy,
            scheduler=args.scheduler,
            config=cfg,
            seed=args.seed,
            max_rounds=args.max_rounds,
            on_round=show,
            **options,
            **_scheduler_options(args),
        )
    except _USAGE_ERRORS as exc:
        return _fail(exc)
    if result.gathered:
        print(f"\ngathered after {result.rounds} rounds")
        return 0
    reason = (
        "connectivity lost"
        if result.events.of_kind("connectivity_lost")
        else "round budget exhausted"
    )
    print(f"\nnot gathered after {result.rounds} rounds ({reason})")
    return 1


def cmd_figures(args: argparse.Namespace) -> int:
    from repro.viz.figures import FIGURES, figure

    names = args.names or sorted(
        FIGURES, key=lambda s: int(s.removeprefix("fig"))
    )
    for name in names:
        print("=" * 72)
        print(figure(name))
        print()
    return 0


def cmd_scale(args: argparse.Namespace) -> int:
    sizes = args.sizes or [args.n, args.n * 2, args.n * 4]
    try:
        points = run_scaling(
            args.family,
            sizes,
            _config(args),
            strategy=args.strategy,
            scheduler=args.scheduler,
            scheduler_options=_scheduler_options(args),
            check_connectivity=False,
            seeds=(
                [args.seed] * len(sizes) if args.seed is not None else None
            ),
            workers=args.jobs,
        )
    except _USAGE_ERRORS as exc:
        return _fail(exc)
    ns = [p.n for p in points]
    rnds = [max(p.rounds, 1) for p in points]
    exp = scaling_exponent(ns, rnds)
    lin = fit_linear(ns, rnds)
    if args.json:
        print(
            json.dumps(
                {
                    "family": args.family,
                    "strategy": args.strategy,
                    "scheduler": points[0].scheduler if points else None,
                    "exponent": round(exp, 4),
                    "slope": round(lin.coefficients[0], 4),
                    "r_squared": round(lin.r_squared, 4),
                    "points": [
                        {
                            "n": p.n,
                            "diameter": p.diameter,
                            "rounds": p.rounds,
                            "gathered": p.gathered,
                            "merges": p.merges,
                        }
                        for p in points
                    ],
                }
            )
        )
        return 0
    rows = [
        (p.n, p.diameter, p.rounds, f"{p.rounds_per_n:.2f}") for p in points
    ]
    print(
        format_table(
            ["n", "diameter", "rounds", "rounds/n"],
            rows,
            title=(
                f"[{args.family}] exponent {exp:.2f} slope "
                f"{lin.coefficients[0]:.2f} (R2 {lin.r_squared:.3f})"
            ),
        )
    )
    return 0


def cmd_ablate(args: argparse.Namespace) -> int:
    results = run_ablation(
        args.param,
        args.values,
        args.family,
        args.n,
        max_rounds=args.max_rounds,
        workers=args.jobs,
    )
    rows = [
        (v, "stalled" if r < 0 else r) for v, r in results.items()
    ]
    print(
        format_table(
            [args.param, "rounds"],
            rows,
            title=f"ablation of {args.param} on {args.family}(n~{args.n})",
        )
    )
    return 0 if all(r >= 0 for r in results.values()) else 1


def cmd_compare(args: argparse.Namespace) -> int:
    strategies = args.strategies or COMPARE_DEFAULT
    sizes = args.sizes or [16, 32, 64]
    rows = []
    for n in sizes:
        row: List = [n]
        for key in strategies:
            strat = STRATEGIES[key]
            result = simulate(
                strat.compare_scenario(n),
                strategy=key,
                check_connectivity=False,
                seed=args.seed,
            )
            row.append(result.rounds)
        rows.append(tuple(row))
    if args.json:
        print(
            json.dumps(
                {
                    "strategies": list(strategies),
                    "rows": [
                        {
                            "n": row[0],
                            **{
                                key: rounds
                                for key, rounds in zip(strategies, row[1:])
                            },
                        }
                        for row in rows
                    ],
                }
            )
        )
        return 0
    print(
        format_table(
            ["n", *(STRATEGIES[k].compare_label for k in strategies)],
            rows,
            title="rounds to gather, worst-case family per model",
        )
    )
    return 0


# ----------------------------------------------------------------------
# Durable sweeps (repro.analysis.orchestrator)
# ----------------------------------------------------------------------
def _sweep_workers(jobs: Optional[int]) -> Optional[int]:
    """``--jobs`` for sweep runs: 0 = one worker per CPU; None = the
    orchestrator default (min(4, CPUs)); negative fails in the
    orchestrator with a real message."""
    if jobs == 0:
        return os.cpu_count() or 1
    return jobs


def cmd_sweep_submit(args: argparse.Namespace) -> int:
    from repro.analysis.orchestrator import SweepJobStore

    sizes = args.sizes or [args.n, args.n * 2, args.n * 4]
    try:
        cfg = _config(args)
        options = tuple(sorted(_scheduler_options(args).items()))
        jobs = [
            SweepJob(
                family=args.family,
                n=size,
                seed=args.seed,
                cfg=cfg,
                check_connectivity=not args.no_connectivity,
                max_rounds=args.max_rounds,
                strategy=args.strategy,
                scheduler=args.scheduler,
                options=options,
            )
            for size in sizes
        ]
        store = SweepJobStore.create(args.dir, jobs)
    except (*_USAGE_ERRORS, OSError) as exc:
        return _fail(exc)
    ids = list(store.jobs())
    print(
        f"created sweep {store.root} with {len(ids)} jobs "
        f"({ids[0]} .. {ids[-1]}); run with "
        f"'python -m repro sweep run {args.dir}'"
    )
    return 0


def cmd_sweep_run(args: argparse.Namespace) -> int:
    from repro.analysis.orchestrator import SweepJobStore, run_store

    try:
        store = SweepJobStore.open(args.dir)
    except (*_USAGE_ERRORS, OSError) as exc:
        return _fail(exc)
    if args.detach:
        cmd = [
            sys.executable,
            "-m",
            "repro",
            "sweep",
            "run",
            args.dir,
            "--checkpoint-every",
            str(args.checkpoint_every),
        ]
        if args.jobs is not None:
            cmd += ["--jobs", str(args.jobs)]
        proc = subprocess.Popen(
            cmd,
            stdout=subprocess.DEVNULL,
            stderr=subprocess.DEVNULL,
            start_new_session=True,
        )
        print(
            f"sweep running detached (pid {proc.pid}); poll with "
            f"'python -m repro sweep status {args.dir}'"
        )
        return 0

    def progress(job_id: str, point) -> None:
        print(
            f"{job_id}: n={point.n} rounds={point.rounds} "
            f"gathered={point.gathered}"
        )

    try:
        results = run_store(
            store,
            workers=_sweep_workers(args.jobs),
            checkpoint_every=args.checkpoint_every,
            on_result=progress,
        )
    except _USAGE_ERRORS as exc:
        return _fail(exc)
    print(f"{len(results)}/{len(store.jobs())} jobs done")
    return 0


def cmd_sweep_status(args: argparse.Namespace) -> int:
    from repro.analysis.orchestrator import SweepJobStore

    try:
        store = SweepJobStore.open(args.dir)
    except (*_USAGE_ERRORS, OSError) as exc:
        return _fail(exc)
    jobs = store.jobs()
    status = store.status()
    if args.json:
        counts: dict = {}
        for state in status.values():
            counts[state] = counts.get(state, 0) + 1
        print(json.dumps({"jobs": status, "counts": counts}))
        return 0
    rows = [
        (job_id, jobs[job_id].family, jobs[job_id].n, status[job_id])
        for job_id in jobs
    ]
    print(
        format_table(
            ["job", "family", "n", "state"],
            rows,
            title=f"sweep {store.root}",
        )
    )
    done = sum(1 for s in status.values() if s == "done")
    print(f"{done}/{len(status)} done")
    return 0 if done == len(status) else 1


def cmd_sweep_collect(args: argparse.Namespace) -> int:
    from repro.analysis.orchestrator import SweepJobStore

    try:
        store = SweepJobStore.open(args.dir)
    except (*_USAGE_ERRORS, OSError) as exc:
        return _fail(exc)
    status = store.status()
    points = {}
    for job_id, state in status.items():
        if state == "done":
            points[job_id] = store.result(job_id)
    complete = len(points) == len(status)
    if args.json:
        print(
            json.dumps(
                {
                    "complete": complete,
                    "results": {
                        job_id: {
                            "n": p.n,
                            "rounds": p.rounds,
                            "gathered": p.gathered,
                            "merges": p.merges,
                            "diameter": p.diameter,
                        }
                        for job_id, p in points.items()
                    },
                }
            )
        )
        return 0 if complete else 1
    rows = [
        (job_id, p.n, p.diameter, p.rounds, p.gathered)
        for job_id, p in points.items()
    ]
    print(
        format_table(
            ["job", "n", "diameter", "rounds", "gathered"],
            rows,
            title=f"sweep {store.root}: {len(points)}/{len(status)} done",
        )
    )
    return 0 if complete else 1


def cmd_serve(args: argparse.Namespace) -> int:
    from repro.service.app import ServiceApp
    from repro.service.server import ServiceServer

    try:
        app = ServiceApp(
            args.data_dir,
            workers=_sweep_workers(args.jobs),
            checkpoint_every=args.checkpoint_every,
        )
        server = ServiceServer(app, host=args.host, port=args.port)
    except (*_USAGE_ERRORS, OSError) as exc:
        return _fail(exc)
    print(
        f"serving on {server.url} (runs in {args.data_dir}); "
        f"dashboard at {server.url}/ — Ctrl-C to stop"
    )
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        print("shutting down")
    finally:
        server.shutdown()
    return 0


def cmd_explore(args: argparse.Namespace) -> int:
    from repro.explore import (
        build_witness,
        explore,
        load_witness,
        save_witness,
        verify_witness,
    )
    from repro.swarms.generators import family
    from repro.viz.stategraph import dag_to_dot, dag_to_html

    try:
        if args.replay is not None:
            with open(args.replay) as fh:
                witness = load_witness(fh)
            ok = verify_witness(witness, cfg=_config(args))
            print(
                f"witness n={len(witness.initial)} "
                f"rounds={witness.rounds} terminal={witness.terminal} "
                f"fairness_k={witness.fairness_k}: "
                f"{'replays bit-identically' if ok else 'REPLAY MISMATCH'}"
            )
            return 0 if ok else 1
        cells = family(args.family, args.n, seed=args.seed)
        dag = explore(
            cells,
            cfg=_config(args),
            mode=args.mode,
            max_nodes=args.max_nodes,
            max_depth=args.max_depth,
            beam_width=args.beam_width,
            branch_samples=args.branch_samples,
            include_stall=not args.no_stall,
            seed=args.seed if args.seed is not None else 0,
            strategy=args.strategy,
            symmetry=args.symmetry,
        )
    except (*_USAGE_ERRORS, OSError) as exc:
        return _fail(exc)
    counts = dag.counts()
    broken = dag.first("disconnected")
    witness = None
    if broken is not None and dag.symmetry == "translation":
        witness = build_witness(dag, target=broken.key)
    if args.witness is not None:
        if witness is not None:
            with open(args.witness, "w") as fh:
                save_witness(witness, fh)
        elif broken is not None:
            print(
                "note: D4-deduped DAGs carry no exact frames; re-run "
                "with --symmetry translation to extract a witness",
                file=sys.stderr,
            )
        else:
            print(
                "note: no disconnected state found; no witness written",
                file=sys.stderr,
            )
    if args.dot is not None:
        with open(args.dot, "w") as fh:
            fh.write(dag_to_dot(dag))
    if args.html is not None:
        with open(args.html, "w") as fh:
            fh.write(dag_to_html(dag, title=f"{args.family} n={args.n}"))
    if args.json:
        payload = {
            "family": args.family,
            "n": args.n,
            "mode": dag.mode,
            "strategy": dag.strategy,
            "symmetry": dag.symmetry,
            "complete": dag.complete,
            "counts": counts,
            "max_depth": dag.max_depth_reached,
            "first_violation_round": (
                witness.violation_round if witness is not None else None
            ),
            "witness_fairness_k": (
                witness.fairness_k if witness is not None else None
            ),
            "witness_verified": (
                verify_witness(witness, cfg=_config(args))
                if witness is not None
                else None
            ),
        }
        print(json.dumps(payload))
    else:
        closure = "complete closure" if dag.complete else "truncated"
        print(
            f"{args.family}(n={args.n}) {dag.mode}: "
            f"{counts['total']} states, {counts['edges']} edges "
            f"({closure}); gathered={counts.get('gathered', 0)} "
            f"disconnected={counts.get('disconnected', 0)} "
            f"open={counts.get('open', 0)}"
        )
        if witness is not None:
            print(
                f"earliest connectivity break: round "
                f"{witness.violation_round}, schedule "
                f"{[list(s) for s in witness.schedule]}, "
                f"k-fairness boundary {witness.fairness_k}"
            )
        elif dag.complete:
            print("no schedule disconnects this swarm (certified)")
    return 0


def cmd_certify(args: argparse.Namespace) -> int:
    from repro.analysis.certification import (
        format_certification,
        run_certification,
    )
    from repro.explore import save_witness

    try:
        report = run_certification(
            max_n=args.max_n,
            min_n=args.min_n,
            max_nodes=args.max_nodes,
            strategy=args.strategy,
            symmetry=args.symmetry,
        )
    except _USAGE_ERRORS as exc:
        return _fail(exc)
    witness = report["witness"]
    if args.witness is not None and witness is not None:
        with open(args.witness, "w") as fh:
            save_witness(witness, fh)
    if args.json:
        payload = {
            "min_n": report["min_n"],
            "max_n": report["max_n"],
            "strategy": report["strategy"],
            "symmetry": report["symmetry"],
            "overall_ok": report["overall_ok"],
            "rows": report["rows"],
        }
        if witness is not None:
            payload["witness"] = {
                "initial": [list(c) for c in witness.initial],
                "schedule": [list(s) for s in witness.schedule],
                "fairness_k": witness.fairness_k,
                "violation_round": witness.violation_round,
            }
        print(json.dumps(payload))
    else:
        print(format_certification(report))
        if witness is not None:
            print(
                f"example witness: initial "
                f"{[list(c) for c in witness.initial]}, schedule "
                f"{[list(s) for s in witness.schedule]}, "
                f"k-fairness boundary {witness.fairness_k}"
            )
    return 0 if report["overall_ok"] else 1


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Asymptotically Optimal Gathering on a Grid (SPAA 2016)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("gather", help="gather one swarm, print a summary")
    _add_common(p)
    p.add_argument(
        "--json", action="store_true", help="machine-readable summary"
    )
    p.set_defaults(fn=cmd_gather)

    p = sub.add_parser("watch", help="per-round terminal animation")
    _add_common(p)
    p.add_argument("--max-rounds", type=int, default=2000)
    p.set_defaults(fn=cmd_watch)

    p = sub.add_parser("figures", help="regenerate paper figures")
    p.add_argument("names", nargs="*", help="fig1 ... fig21 (default all)")
    p.set_defaults(fn=cmd_figures)

    p = sub.add_parser("scale", help="E1 scaling experiment for a family")
    _add_common(p)
    p.add_argument("--sizes", type=int, nargs="+")
    p.add_argument(
        "--jobs",
        "-j",
        type=int,
        default=None,
        help="parallel worker processes (0 = one per CPU; default serial)",
    )
    p.add_argument(
        "--json", action="store_true", help="machine-readable points"
    )
    p.set_defaults(fn=cmd_scale)

    p = sub.add_parser(
        "ablate", help="sweep one AlgorithmConfig field (E5-E7 style)"
    )
    p.add_argument("param", help="AlgorithmConfig field, e.g. max_bump_length")
    p.add_argument(
        "values", type=int, nargs="+", help="values to sweep over"
    )
    p.add_argument("--family", default="ring", help="swarm family")
    p.add_argument("-n", type=int, default=100, help="target robot count")
    p.add_argument("--max-rounds", type=int, default=None)
    p.add_argument(
        "--jobs",
        "-j",
        type=int,
        default=None,
        help="parallel worker processes (0 = one per CPU; default serial)",
    )
    p.set_defaults(fn=cmd_ablate)

    p = sub.add_parser("compare", help="E2-E4 baseline comparison")
    p.add_argument("--sizes", type=int, nargs="+")
    p.add_argument(
        "--strategies",
        nargs="+",
        choices=sorted(STRATEGIES),
        default=None,
        help=f"strategies to compare (default: {' '.join(COMPARE_DEFAULT)})",
    )
    p.add_argument("--seed", type=int, default=None)
    p.add_argument(
        "--json", action="store_true", help="machine-readable rows"
    )
    p.set_defaults(fn=cmd_compare)

    p = sub.add_parser(
        "sweep",
        help="durable sweeps: submit/run/status/collect a job directory",
    )
    ssub = p.add_subparsers(dest="sweep_command", required=True)

    ps = ssub.add_parser(
        "submit", help="write a sweep spec directory from sizes"
    )
    ps.add_argument("dir", help="sweep directory (must not exist yet)")
    _add_common(ps)
    ps.add_argument(
        "--sizes",
        type=int,
        nargs="+",
        help="robot counts to sweep (default: n, 2n, 4n)",
    )
    ps.add_argument("--max-rounds", type=int, default=None)
    ps.add_argument(
        "--no-connectivity",
        action="store_true",
        help="skip the per-round connectivity check",
    )
    ps.set_defaults(fn=cmd_sweep_submit)

    ps = ssub.add_parser(
        "run",
        help="execute unfinished jobs (resumes from trace checkpoints)",
    )
    ps.add_argument("dir", help="sweep directory")
    ps.add_argument(
        "--jobs",
        "-j",
        type=int,
        default=None,
        help="worker processes (0 = one per CPU; default min(4, CPUs))",
    )
    ps.add_argument(
        "--checkpoint-every",
        type=int,
        default=200,
        help="rounds between embedded trace checkpoints (default 200)",
    )
    ps.add_argument(
        "--detach",
        action="store_true",
        help="background the run; poll with 'sweep status'",
    )
    ps.set_defaults(fn=cmd_sweep_run)

    ps = ssub.add_parser("status", help="per-job state of a sweep")
    ps.add_argument("dir", help="sweep directory")
    ps.add_argument(
        "--json", action="store_true", help="machine-readable status"
    )
    ps.set_defaults(fn=cmd_sweep_status)

    ps = ssub.add_parser(
        "collect", help="print completed results of a sweep"
    )
    ps.add_argument("dir", help="sweep directory")
    ps.add_argument(
        "--json", action="store_true", help="machine-readable results"
    )
    ps.set_defaults(fn=cmd_sweep_collect)

    p = sub.add_parser(
        "serve",
        help="HTTP API + live dashboard over a durable run registry",
    )
    p.add_argument(
        "data_dir",
        help="registry directory for run records and traces "
        "(created if missing; restarting on the same directory "
        "recovers interrupted runs)",
    )
    p.add_argument("--host", default="127.0.0.1")
    p.add_argument(
        "--port",
        type=int,
        default=8765,
        help="listen port (0 = ephemeral; default 8765)",
    )
    p.add_argument(
        "--jobs",
        "-j",
        type=int,
        default=None,
        help="worker processes (0 = one per CPU; default min(4, CPUs))",
    )
    p.add_argument(
        "--checkpoint-every",
        type=int,
        default=50,
        help="rounds between embedded trace checkpoints (default 50)",
    )
    p.set_defaults(fn=cmd_serve)

    p = sub.add_parser(
        "explore",
        help="branch SSYNC activations into a deduped state DAG",
    )
    p.add_argument(
        "--family",
        default="ring",
        choices=sorted(FAMILIES),
        help="swarm family (grid generators only; default: ring)",
    )
    p.add_argument(
        "-n", type=int, default=5, help="target robot count (default 5)"
    )
    p.add_argument(
        "--seed",
        type=int,
        default=None,
        help="seed for stochastic families and beam-mode subset sampling",
    )
    p.add_argument(
        "--mode",
        default="exhaustive",
        choices=["exhaustive", "beam"],
        help="exhaustive = full closure (certifiable); beam = guided, "
        "bounded search for larger swarms",
    )
    p.add_argument(
        "--max-nodes",
        type=int,
        default=200_000,
        help="node budget before the search is marked truncated",
    )
    p.add_argument(
        "--max-depth", type=int, default=None, help="depth (round) budget"
    )
    p.add_argument(
        "--beam-width",
        type=int,
        default=64,
        help="beam mode: nodes kept per depth (default 64)",
    )
    p.add_argument(
        "--branch-samples",
        type=int,
        default=24,
        help="beam mode: activation subsets sampled per node (default 24)",
    )
    p.add_argument(
        "--no-stall",
        action="store_true",
        help="drop the empty activation set from the branch lattice",
    )
    p.add_argument(
        "--strategy",
        default="grid",
        choices=["grid", "tolerant"],
        help="grid-state strategy to branch (default: grid)",
    )
    p.add_argument(
        "--symmetry",
        default="translation",
        choices=["translation", "d4"],
        help="state-key dedup group: exact translation frames "
        "(default) or d4 rotation/reflection folding (smaller DAGs; "
        "verdicts only, no witness extraction)",
    )
    p.add_argument(
        "--interval", type=int, default=None, help="run start interval L"
    )
    p.add_argument(
        "--witness",
        default=None,
        metavar="PATH",
        help="write the earliest connectivity witness as JSONL",
    )
    p.add_argument(
        "--dot",
        default=None,
        metavar="PATH",
        help="export the DAG as Graphviz DOT",
    )
    p.add_argument(
        "--html",
        default=None,
        metavar="PATH",
        help="export the DAG as a standalone HTML view",
    )
    p.add_argument(
        "--replay",
        default=None,
        metavar="PATH",
        help="verify a saved witness replays bit-identically instead "
        "of exploring",
    )
    p.add_argument(
        "--json", action="store_true", help="machine-readable summary"
    )
    p.set_defaults(fn=cmd_explore)

    p = sub.add_parser(
        "certify",
        help="exhaustive small-n certification sweep (bound tables)",
    )
    p.add_argument(
        "--min-n", type=int, default=3, help="smallest size (default 3)"
    )
    p.add_argument(
        "--max-n", type=int, default=6, help="largest size (default 6)"
    )
    p.add_argument(
        "--max-nodes",
        type=int,
        default=200_000,
        help="per-shape node budget (a truncated shape fails the sweep)",
    )
    p.add_argument(
        "--strategy",
        default="grid",
        choices=["grid", "tolerant"],
        help="grid-state strategy to certify (default: grid)",
    )
    p.add_argument(
        "--symmetry",
        default="translation",
        choices=["translation", "d4"],
        help="explorer dedup group (d4 = faster verdict-only sweeps)",
    )
    p.add_argument(
        "--witness",
        default=None,
        metavar="PATH",
        help="write the headline connectivity witness as JSONL",
    )
    p.add_argument(
        "--json", action="store_true", help="machine-readable rows"
    )
    p.set_defaults(fn=cmd_certify)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    return args.fn(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
