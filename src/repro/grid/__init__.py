"""Grid substrate: integer geometry, occupancy state, connectivity, boundaries.

This package implements everything the paper's model assumes about the world:
an infinite 2-D integer grid, 4-neighbor connectivity between robots,
8-neighbor robot moves, and the boundary structure (outer boundary and inner
boundaries, paper Fig. 1) on which the gathering algorithm operates.
"""

from repro.grid.geometry import (
    Cell,
    DIAGONALS,
    DIRECTIONS4,
    DIRECTIONS8,
    EAST,
    NORTH,
    SOUTH,
    WEST,
    add,
    bounding_box,
    chebyshev,
    l1_distance,
    neighbors4,
    neighbors8,
    perpendicular,
    rotate_ccw,
    rotate_cw,
    scale,
    sub,
)
from repro.grid.occupancy import SwarmState
from repro.grid.connectivity import (
    connected_components,
    is_connected,
    articulation_cells,
)
from repro.grid.boundary import (
    Boundary,
    boundary_cells,
    extract_boundaries,
    outer_boundary,
)
from repro.grid.ring import BoundaryRing, RingNode, RingSet
from repro.grid.envelope import (
    smallest_enclosing_rectangle,
    upper_envelope,
    vector_chain,
    monotone_subchains,
)

__all__ = [
    "Cell",
    "DIAGONALS",
    "DIRECTIONS4",
    "DIRECTIONS8",
    "EAST",
    "NORTH",
    "SOUTH",
    "WEST",
    "add",
    "bounding_box",
    "chebyshev",
    "l1_distance",
    "neighbors4",
    "neighbors8",
    "perpendicular",
    "rotate_ccw",
    "rotate_cw",
    "scale",
    "sub",
    "SwarmState",
    "connected_components",
    "is_connected",
    "articulation_cells",
    "Boundary",
    "BoundaryRing",
    "RingNode",
    "RingSet",
    "boundary_cells",
    "extract_boundaries",
    "outer_boundary",
    "smallest_enclosing_rectangle",
    "upper_envelope",
    "vector_chain",
    "monotone_subchains",
]
