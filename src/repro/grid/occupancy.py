"""Swarm occupancy state.

Robots are indistinguishable and merge when they share a cell (paper
Section 1), so the canonical state of the world is simply the *set* of
occupied cells.  :class:`SwarmState` wraps that set with the queries the
algorithm and the engines need, plus a bulk synchronous move application that
implements merge-on-collision.
"""

from __future__ import annotations

from bisect import bisect_left, insort
from typing import Dict, FrozenSet, Iterable, Iterator, List, Mapping, Set

import numpy as np

from repro.grid.geometry import (
    Cell,
    bounding_box,
    chebyshev,
    neighbors4,
    neighbors8,
)


class SwarmState:
    """The set of occupied grid cells, with neighborhood queries.

    The class is mutable (``apply_moves`` advances it in place) but exposes
    ``frozen()`` snapshots for logging and hashing.  All queries are O(1)
    set lookups; bulk operations are O(n).

    ``apply_moves`` additionally records the *dirty region* of the round —
    ``last_changed`` holds every cell whose occupancy flipped (vacated or
    newly occupied), and ``version`` counts applications — so incremental
    consumers (:mod:`repro.core.incremental`, the engine's localized
    connectivity check) can restrict their per-round work to the
    neighborhoods that actually moved.
    """

    __slots__ = (
        "_cells",
        "last_changed",
        "version",
        "_rows",
        "_cols",
        "_bbox",
        "_bbox_version",
    )

    def __init__(self, cells: Iterable[Cell] = ()) -> None:
        self._cells: Set[Cell] = set(cells)
        for c in self._cells:
            if len(c) != 2 or not all(isinstance(v, int) for v in c):
                raise TypeError(f"cells must be (int, int) tuples, got {c!r}")
        #: Cells whose occupancy flipped in the last ``apply_moves``.
        self.last_changed: FrozenSet[Cell] = frozenset()
        #: Number of move applications performed on this state.
        self.version: int = 0
        # Lazily built row/column indices (y -> sorted xs, x -> sorted ys),
        # maintained incrementally once built; None until first requested.
        self._rows: Dict[int, list] | None = None
        self._cols: Dict[int, list] | None = None
        self._bbox: tuple | None = None
        self._bbox_version: int = -1

    @classmethod
    def from_validated(cls, cells: Set[Cell]) -> "SwarmState":
        """Wrap an already-validated cell set without re-checking each cell.

        The per-cell isinstance validation in ``__init__`` is O(n) and shows
        up in profiles when states are copied in hot loops (sweeps, engine
        snapshots).  Callers must pass a *fresh* ``set`` of ``(int, int)``
        tuples — the set is adopted, not copied.
        """
        obj = cls.__new__(cls)
        obj._cells = cells
        obj.last_changed = frozenset()
        obj.version = 0
        obj._rows = None
        obj._cols = None
        obj._bbox = None
        obj._bbox_version = -1
        return obj

    # ------------------------------------------------------------------
    # Basic queries
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._cells)

    def __iter__(self) -> Iterator[Cell]:
        return iter(self._cells)

    def __contains__(self, cell: Cell) -> bool:
        return cell in self._cells

    def __eq__(self, other: object) -> bool:
        if isinstance(other, SwarmState):
            return self._cells == other._cells
        return NotImplemented

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"SwarmState(n={len(self._cells)})"

    @property
    def cells(self) -> Set[Cell]:
        """Direct (mutable) access to the occupied-cell set.

        Exposed for the engines; algorithm code should treat it read-only.
        """
        return self._cells

    def frozen(self) -> FrozenSet[Cell]:
        """An immutable snapshot of the occupied cells."""
        return frozenset(self._cells)

    def copy(self) -> "SwarmState":
        """An independent copy of this state (validated fast path)."""
        return SwarmState.from_validated(set(self._cells))

    # ------------------------------------------------------------------
    # Row/column indices (lazily built, incrementally maintained)
    # ------------------------------------------------------------------
    def rows(self) -> Dict[int, List[int]]:
        """``y -> sorted occupied xs``; built on first use, then kept in
        sync by ``apply_moves``/``move_robot``.  Shared by the merge-
        pattern scan and the bounding-box queries so the per-round cost
        is O(changed), not O(n)."""
        if self._rows is None:
            rows: Dict[int, List[int]] = {}
            cols: Dict[int, List[int]] = {}
            for x, y in self._cells:
                rows.setdefault(y, []).append(x)
                cols.setdefault(x, []).append(y)
            for v in rows.values():
                v.sort()
            for v in cols.values():
                v.sort()
            self._rows, self._cols = rows, cols
        return self._rows

    def cols(self) -> Dict[int, List[int]]:
        """``x -> sorted occupied ys`` (see :meth:`rows`)."""
        if self._cols is None:
            self.rows()
        return self._cols

    def _index_add(self, cell: Cell) -> None:
        x, y = cell
        insort(self._rows.setdefault(y, []), x)
        insort(self._cols.setdefault(x, []), y)

    def _index_remove(self, cell: Cell) -> None:
        x, y = cell
        xs = self._rows[y]
        del xs[bisect_left(xs, x)]
        if not xs:
            del self._rows[y]
        ys = self._cols[x]
        del ys[bisect_left(ys, y)]
        if not ys:
            del self._cols[x]

    # ------------------------------------------------------------------
    # Neighborhood queries (4-neighborhood = connectivity, paper Section 1)
    # ------------------------------------------------------------------
    def occupied_neighbors4(self, cell: Cell) -> tuple[Cell, ...]:
        """Occupied cardinal neighbors of ``cell``."""
        occ = self._cells
        return tuple(n for n in neighbors4(cell) if n in occ)

    def occupied_neighbors8(self, cell: Cell) -> tuple[Cell, ...]:
        """Occupied 8-neighbors of ``cell``."""
        occ = self._cells
        return tuple(n for n in neighbors8(cell) if n in occ)

    def degree(self, cell: Cell) -> int:
        """Number of occupied cardinal neighbors (connectivity degree)."""
        occ = self._cells
        x, y = cell
        return (
            ((x + 1, y) in occ)
            + ((x, y + 1) in occ)
            + ((x - 1, y) in occ)
            + ((x, y - 1) in occ)
        )

    def is_boundary(self, cell: Cell) -> bool:
        """A robot is on *some* boundary iff it has an unconnected side
        (paper Section 1: "the boundaries consist of all robots who have at
        least one unconnected side")."""
        return cell in self._cells and self.degree(cell) < 4

    # ------------------------------------------------------------------
    # Geometry
    # ------------------------------------------------------------------
    def bounding_box(self) -> tuple[int, int, int, int]:
        """Axis-aligned bounding box of the swarm.

        O(#rows) via the row index (cached per ``version``): the engine
        queries the box twice per round (termination + metrics), which
        made the O(n) scan one of the last full-swarm walks per round.
        """
        if not self._cells:
            return bounding_box(self._cells)  # raises ValueError
        if self._bbox_version == self.version and self._bbox is not None:
            return self._bbox
        rows = self.rows()
        min_x = max_x = None
        for xs in rows.values():
            if min_x is None or xs[0] < min_x:
                min_x = xs[0]
            if max_x is None or xs[-1] > max_x:
                max_x = xs[-1]
        self._bbox = (min_x, min(rows), max_x, max(rows))
        self._bbox_version = self.version
        return self._bbox

    def diameter_chebyshev(self) -> int:
        """Chebyshev diameter of the swarm (0 for a single robot)."""
        if not self._cells:
            raise ValueError("diameter of empty swarm")
        min_x, min_y, max_x, max_y = self.bounding_box()
        return max(max_x - min_x, max_y - min_y)

    def is_gathered(self, square: int = 2) -> bool:
        """True when all robots fit in a ``square`` x ``square`` area
        (paper Section 3.2: gathering is finished in a 2x2 square, since that
        configuration cannot be simplified further in the FSYNC model)."""
        if not self._cells:
            return True
        min_x, min_y, max_x, max_y = self.bounding_box()
        return (max_x - min_x) < square and (max_y - min_y) < square

    def to_array(self) -> np.ndarray:
        """The occupied cells as an ``(n, 2)`` int array (sorted, for
        deterministic downstream numpy analysis)."""
        if not self._cells:
            return np.empty((0, 2), dtype=np.int64)
        return np.array(sorted(self._cells), dtype=np.int64)

    # ------------------------------------------------------------------
    # Synchronous move application
    # ------------------------------------------------------------------
    def apply_moves(self, moves: Mapping[Cell, Cell]) -> int:
        """Apply a set of simultaneous robot moves; co-located robots merge.

        ``moves`` maps *source* cells (must be occupied) to *target* cells.
        Targets must be within one 8-neighbor hop (paper's movement model).
        Robots not mentioned stay put.  After application, any cell holding
        more than one robot holds exactly one (merge-on-collision).

        Returns the number of robots removed by merging this round.

        Side effect: ``last_changed`` is set to the cells whose occupancy
        flipped (sources left empty plus targets newly filled) and
        ``version`` is bumped — the dirty region the incremental pipeline
        keys its caches on.
        """
        if not moves:
            self.last_changed = frozenset()
            self.version += 1
            return 0
        cells = self._cells
        for src, dst in moves.items():
            if src not in cells:
                raise KeyError(f"move source {src} is not occupied")
            if chebyshev(src, dst) > 1:
                raise ValueError(
                    f"illegal move {src} -> {dst}: farther than one hop"
                )
        before = len(cells)
        targets = set(moves.values())
        # Mutate in place (O(moved), not O(n)): a vacated source is a
        # changed cell unless some robot moves onto it; a target is
        # changed unless it was already occupied before the round.
        changed = frozenset(
            [src for src in moves if src not in targets]
            + [dst for dst in targets if dst not in cells]
        )
        for src in moves:
            cells.discard(src)
        cells |= targets
        self.last_changed = changed
        if self._rows is not None:
            for c in changed:
                if c in cells:
                    self._index_add(c)
                else:
                    self._index_remove(c)
        self.version += 1
        return before - len(cells)

    def move_robot(self, src: Cell, dst: Cell) -> bool:
        """Move a single robot (sequential/ASYNC semantics); True on merge.

        ``src`` must be occupied; ``dst`` may equal ``src`` (no-op) and,
        unlike ``apply_moves``, range checking is the caller's job.  Keeps
        the row/column indices and dirty tracking coherent — sequential
        engines must use this instead of mutating ``cells`` directly.
        """
        if dst == src:
            return False
        cells = self._cells
        cells.discard(src)
        merged = dst in cells
        if not merged:
            cells.add(dst)
        if self._rows is not None:
            self._index_remove(src)
            if not merged:
                self._index_add(dst)
        self.last_changed = (
            frozenset((src,)) if merged else frozenset((src, dst))
        )
        self.version += 1
        return merged
