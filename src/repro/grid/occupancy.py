"""Swarm occupancy state.

Robots are indistinguishable and merge when they share a cell (paper
Section 1), so the canonical state of the world is simply the *set* of
occupied cells.  :class:`SwarmState` wraps that set with the queries the
algorithm and the engines need, plus a bulk synchronous move application that
implements merge-on-collision.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterable, Iterator, Mapping, Set

import numpy as np

from repro.grid.geometry import (
    Cell,
    bounding_box,
    chebyshev,
    neighbors4,
    neighbors8,
)


class SwarmState:
    """The set of occupied grid cells, with neighborhood queries.

    The class is mutable (``apply_moves`` advances it in place) but exposes
    ``frozen()`` snapshots for logging and hashing.  All queries are O(1)
    set lookups; bulk operations are O(n).
    """

    __slots__ = ("_cells",)

    def __init__(self, cells: Iterable[Cell] = ()) -> None:
        self._cells: Set[Cell] = set(cells)
        for c in self._cells:
            if len(c) != 2 or not all(isinstance(v, int) for v in c):
                raise TypeError(f"cells must be (int, int) tuples, got {c!r}")

    # ------------------------------------------------------------------
    # Basic queries
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._cells)

    def __iter__(self) -> Iterator[Cell]:
        return iter(self._cells)

    def __contains__(self, cell: Cell) -> bool:
        return cell in self._cells

    def __eq__(self, other: object) -> bool:
        if isinstance(other, SwarmState):
            return self._cells == other._cells
        return NotImplemented

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"SwarmState(n={len(self._cells)})"

    @property
    def cells(self) -> Set[Cell]:
        """Direct (mutable) access to the occupied-cell set.

        Exposed for the engines; algorithm code should treat it read-only.
        """
        return self._cells

    def frozen(self) -> FrozenSet[Cell]:
        """An immutable snapshot of the occupied cells."""
        return frozenset(self._cells)

    def copy(self) -> "SwarmState":
        """An independent copy of this state."""
        return SwarmState(self._cells)

    # ------------------------------------------------------------------
    # Neighborhood queries (4-neighborhood = connectivity, paper Section 1)
    # ------------------------------------------------------------------
    def occupied_neighbors4(self, cell: Cell) -> tuple[Cell, ...]:
        """Occupied cardinal neighbors of ``cell``."""
        occ = self._cells
        return tuple(n for n in neighbors4(cell) if n in occ)

    def occupied_neighbors8(self, cell: Cell) -> tuple[Cell, ...]:
        """Occupied 8-neighbors of ``cell``."""
        occ = self._cells
        return tuple(n for n in neighbors8(cell) if n in occ)

    def degree(self, cell: Cell) -> int:
        """Number of occupied cardinal neighbors (connectivity degree)."""
        occ = self._cells
        x, y = cell
        return (
            ((x + 1, y) in occ)
            + ((x, y + 1) in occ)
            + ((x - 1, y) in occ)
            + ((x, y - 1) in occ)
        )

    def is_boundary(self, cell: Cell) -> bool:
        """A robot is on *some* boundary iff it has an unconnected side
        (paper Section 1: "the boundaries consist of all robots who have at
        least one unconnected side")."""
        return cell in self._cells and self.degree(cell) < 4

    # ------------------------------------------------------------------
    # Geometry
    # ------------------------------------------------------------------
    def bounding_box(self) -> tuple[int, int, int, int]:
        """Axis-aligned bounding box of the swarm."""
        return bounding_box(self._cells)

    def diameter_chebyshev(self) -> int:
        """Chebyshev diameter of the swarm (0 for a single robot)."""
        if not self._cells:
            raise ValueError("diameter of empty swarm")
        min_x, min_y, max_x, max_y = self.bounding_box()
        return max(max_x - min_x, max_y - min_y)

    def is_gathered(self, square: int = 2) -> bool:
        """True when all robots fit in a ``square`` x ``square`` area
        (paper Section 3.2: gathering is finished in a 2x2 square, since that
        configuration cannot be simplified further in the FSYNC model)."""
        if not self._cells:
            return True
        min_x, min_y, max_x, max_y = self.bounding_box()
        return (max_x - min_x) < square and (max_y - min_y) < square

    def to_array(self) -> np.ndarray:
        """The occupied cells as an ``(n, 2)`` int array (sorted, for
        deterministic downstream numpy analysis)."""
        if not self._cells:
            return np.empty((0, 2), dtype=np.int64)
        return np.array(sorted(self._cells), dtype=np.int64)

    # ------------------------------------------------------------------
    # Synchronous move application
    # ------------------------------------------------------------------
    def apply_moves(self, moves: Mapping[Cell, Cell]) -> int:
        """Apply a set of simultaneous robot moves; co-located robots merge.

        ``moves`` maps *source* cells (must be occupied) to *target* cells.
        Targets must be within one 8-neighbor hop (paper's movement model).
        Robots not mentioned stay put.  After application, any cell holding
        more than one robot holds exactly one (merge-on-collision).

        Returns the number of robots removed by merging this round.
        """
        if not moves:
            return 0
        cells = self._cells
        for src, dst in moves.items():
            if src not in cells:
                raise KeyError(f"move source {src} is not occupied")
            if chebyshev(src, dst) > 1:
                raise ValueError(
                    f"illegal move {src} -> {dst}: farther than one hop"
                )
        before = len(cells)
        stay = cells - moves.keys()
        after: Set[Cell] = stay | {dst for dst in moves.values()}
        self._cells = after
        return before - len(after)
