"""Canonical forms of occupancy sets: translation and D4 normalization.

The nondeterminism explorer (:mod:`repro.explore`) dedupes swarm states
that differ only by a rigid motion of the grid.  Two normal forms live
here, next to the other pure cell-set predicates:

* :func:`translation_normal_form` — rebase the cells so the bounding
  box's lower-left corner is the origin.  The gathering dynamics is
  translation-equivariant by construction (every predicate the planner
  evaluates is relative), so translation-deduped exploration is *sound*:
  two states with equal normal forms have isomorphic futures.  This is
  the explorer's state key.
* :func:`d4_normal_form` — additionally minimize over the eight
  rotations/reflections of the square grid (the dihedral group D4).
  Rotational equivariance of the dynamics is *not* assumed anywhere; the
  certification sweep uses this form only to group symmetric seed shapes
  and then **checks empirically** that every member of a group certifies
  to the same numbers (``symmetry_consistent`` in the report).

Both are pure functions of the cell iterable and return sorted tuples,
so equal sets always hash equally regardless of input order.
"""

from __future__ import annotations

from typing import Iterable, List, Tuple

from repro.grid.geometry import Cell

#: The eight D4 elements as integer matrices ``(a, b, c, d)`` acting as
#: ``(x, y) -> (a*x + b*y, c*x + d*y)``: rotations by 0/90/180/270
#: degrees, then the same four composed with the x-axis reflection.
D4_MATRICES: Tuple[Tuple[int, int, int, int], ...] = (
    (1, 0, 0, 1),
    (0, -1, 1, 0),
    (-1, 0, 0, -1),
    (0, 1, -1, 0),
    (-1, 0, 0, 1),
    (0, 1, 1, 0),
    (1, 0, 0, -1),
    (0, -1, -1, 0),
)


def apply_d4(index: int, cell: Cell) -> Cell:
    """Apply the ``index``-th D4 element to one cell."""
    a, b, c, d = D4_MATRICES[index]
    x, y = cell
    return (a * x + b * y, c * x + d * y)


def translation_normal_form(
    cells: Iterable[Cell],
) -> Tuple[Tuple[Cell, ...], Cell]:
    """``(normal, offset)`` with ``original = normal + offset``.

    ``normal`` is the sorted tuple of cells rebased so ``min x`` and
    ``min y`` are both zero; ``offset`` is the subtracted corner.
    """
    pts: List[Cell] = sorted(cells)
    if not pts:
        raise ValueError("cannot normalize an empty cell set")
    ox = min(x for x, _ in pts)
    oy = min(y for _, y in pts)
    return tuple((x - ox, y - oy) for x, y in pts), (ox, oy)


def d4_normal_form(cells: Iterable[Cell]) -> Tuple[Cell, ...]:
    """The lexicographically smallest translation normal form over all
    eight D4 images — a canonical representative of the cell set up to
    rotation, reflection, and translation (the "free polyomino" form).
    """
    pts = list(cells)
    best: Tuple[Cell, ...] = ()
    for index in range(len(D4_MATRICES)):
        image = [apply_d4(index, c) for c in pts]
        normal, _ = translation_normal_form(image)
        if not best or normal < best:
            best = normal
    return best


def occupancy_key(
    cells: Iterable[Cell], symmetry: str = "translation"
) -> Tuple[Cell, ...]:
    """A hashable canonical key for an occupancy set.

    ``symmetry`` selects the group factored out: ``"none"`` (sorted
    tuple as-is), ``"translation"`` (the explorer's sound default), or
    ``"d4"`` (translation + rotation/reflection).
    """
    if symmetry == "none":
        return tuple(sorted(cells))
    if symmetry == "translation":
        return translation_normal_form(cells)[0]
    if symmetry == "d4":
        return d4_normal_form(cells)
    raise ValueError(
        f"unknown symmetry {symmetry!r}; "
        f"expected 'none', 'translation', or 'd4'"
    )
