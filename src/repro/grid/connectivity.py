"""Connectivity analysis of swarm states.

The paper's swarms are connected in the 4-neighborhood sense and every
operation must preserve that (it is "the only globally checkable" property,
Section 1).  The engine uses :func:`is_connected` as a per-round invariant
check; :func:`articulation_cells` supports tests and the safety analysis of
merge patterns.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Set

from repro.grid.geometry import Cell, neighbors4


def connected_components(cells: Iterable[Cell]) -> List[Set[Cell]]:
    """Partition ``cells`` into 4-connected components (BFS, O(n))."""
    remaining: Set[Cell] = set(cells)
    components: List[Set[Cell]] = []
    while remaining:
        seed = next(iter(remaining))
        comp: Set[Cell] = {seed}
        frontier = [seed]
        remaining.discard(seed)
        while frontier:
            cur = frontier.pop()
            for nb in neighbors4(cur):
                if nb in remaining:
                    remaining.discard(nb)
                    comp.add(nb)
                    frontier.append(nb)
        components.append(comp)
    return components


def locally_connected_after(
    cells: Set[Cell], changed: Iterable[Cell], window: int = 2
) -> bool:
    """Sound local re-check of connectivity after a bounded change.

    ``cells`` is the post-move occupancy, ``changed`` the cells whose
    occupancy flipped.  Returns True only when connectivity is *proven*
    by independent local certificates; False means "inconclusive — run
    the full BFS", never "disconnected".

    Certificates, one per 4-connected *group* of changed cells (so
    unrelated changes on opposite sides of the swarm never need a joint
    path):

    * every group of *vacated* cells with two or more surviving
      4-neighbors must have those survivors reconnect to each other
      within the group's bounding box grown by ``window`` — then any
      pre-move path entering and leaving the group has a local detour
      (a maximal vacated run along a 4-path is 4-connected, hence inside
      one group);
    * every group of *newly occupied* cells must touch a surviving cell
      — then the new cells hang off the (still connected) survivors.

    A vacated group acting as a cut set — its sides reconnect, if at
    all, only far away — fails its certificate and triggers the full-BFS
    fallback in the caller.
    """
    changed = set(changed)
    if not changed:
        return True  # nothing moved: connectivity is unchanged
    added = {ch for ch in changed if ch in cells}
    vacated = changed - added

    for group in connected_components(added):
        if not any(
            nb in cells and nb not in added
            for c in group
            for nb in neighbors4(c)
        ):
            return False  # new cells not attached to any survivor
    for group in connected_components(vacated):
        survivors = {
            nb for c in group for nb in neighbors4(c) if nb in cells
        }
        if len(survivors) <= 1:
            continue  # no path can cross the group between two survivors
        xs = [c[0] for c in group]
        ys = [c[1] for c in group]
        x_lo, x_hi = min(xs) - window, max(xs) + window
        y_lo, y_hi = min(ys) - window, max(ys) + window
        start = next(iter(survivors))
        seen = {start}
        frontier = [start]
        missing = len(survivors) - 1
        while frontier and missing:
            x, y = frontier.pop()
            for nb in ((x + 1, y), (x, y + 1), (x - 1, y), (x, y - 1)):
                if (
                    nb not in seen
                    and nb in cells
                    and x_lo <= nb[0] <= x_hi
                    and y_lo <= nb[1] <= y_hi
                ):
                    seen.add(nb)
                    frontier.append(nb)
                    if nb in survivors:
                        missing -= 1
        if missing:
            return False  # potential cut: needs the full BFS
    return True


def is_connected(cells: Iterable[Cell]) -> bool:
    """True iff the cell set forms one 4-connected component.

    The empty set and singletons are connected by convention.
    """
    cell_set: Set[Cell] = set(cells)
    if len(cell_set) <= 1:
        return True
    seed = next(iter(cell_set))
    seen: Set[Cell] = {seed}
    frontier = [seed]
    while frontier:
        cur = frontier.pop()
        for nb in neighbors4(cur):
            if nb in cell_set and nb not in seen:
                seen.add(nb)
                frontier.append(nb)
    return len(seen) == len(cell_set)


def articulation_cells(cells: Iterable[Cell]) -> Set[Cell]:
    """Cells whose removal disconnects the swarm (cut vertices).

    Standard Hopcroft-Tarjan DFS on the 4-adjacency graph, iterative to
    survive deep swarms (a 10k-robot line would blow the recursion limit).
    Used by tests to verify that merge/fold operations never move a robot
    whose presence is load-bearing without a replacement path.
    """
    cell_set: Set[Cell] = set(cells)
    if len(cell_set) <= 2:
        return set()

    index: Dict[Cell, int] = {}
    low: Dict[Cell, int] = {}
    parent: Dict[Cell, Cell] = {}
    arts: Set[Cell] = set()
    counter = 0

    # reprolint: ok[D3] the result is the articulation *set*, which is
    # unique for a given occupancy; root order only shapes the DFS tree.
    for root in cell_set:
        if root in index:
            continue
        root_children = 0
        # stack holds (cell, iterator over its occupied neighbors)
        index[root] = low[root] = counter
        counter += 1
        stack = [(root, iter([n for n in neighbors4(root) if n in cell_set]))]
        while stack:
            cell, it = stack[-1]
            advanced = False
            for nb in it:
                if nb not in index:
                    parent[nb] = cell
                    if cell == root:
                        root_children += 1
                    index[nb] = low[nb] = counter
                    counter += 1
                    stack.append(
                        (nb, iter([m for m in neighbors4(nb) if m in cell_set]))
                    )
                    advanced = True
                    break
                elif parent.get(cell) != nb:
                    if index[nb] < low[cell]:
                        low[cell] = index[nb]
            if not advanced:
                stack.pop()
                if stack:
                    pcell = stack[-1][0]
                    if low[cell] < low[pcell]:
                        low[pcell] = low[cell]
                    if pcell != root and low[cell] >= index[pcell]:
                        arts.add(pcell)
        if root_children > 1:
            arts.add(root)
    return arts
