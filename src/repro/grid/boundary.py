"""Boundary extraction and cyclic traversal.

The paper (Section 1, Fig. 1) defines the *boundaries* of a swarm: all robots
with at least one unconnected (free) side.  The swarm has exactly one *outer*
boundary and possibly several *inner* boundaries (around holes).  The
gathering algorithm's run states travel along boundaries, so we need the
boundary as an *ordered cyclic sequence* of robots, not just a set.

We trace contours over *sides*: a side is a pair ``(cell, normal)`` where
``cell`` is occupied and ``cell + normal`` is free.  Walking with the swarm
on the left (counterclockwise for the outer contour, clockwise around holes)
gives the transition rules below.  A robot may legitimately appear several
times in one cycle — e.g. every robot of a 1-thick line appears once per
side, matching the paper's remark that the vector chain "may overlap itself
at places where the diameter of the swarm's boundary amounts only 1".
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import cached_property
from typing import Dict, List, Sequence, Set, Tuple

from repro.errors import InvariantError
from repro.grid.geometry import (
    Cell,
    DIRECTIONS4,
    SOUTH,
    add,
)
from repro.grid.occupancy import SwarmState

#: A boundary side: (occupied cell, outward unit normal into free space).
Side = Tuple[Cell, Cell]


@dataclass(frozen=True)
class Boundary:
    """One closed boundary contour of a swarm.

    ``sides`` is the cyclic side sequence produced by the trace; ``robots``
    is the cyclic robot sequence with consecutive duplicates collapsed (a
    convex corner contributes several sides of the same cell).  ``is_outer``
    distinguishes the single outer boundary from inner (hole) boundaries.
    """

    sides: Tuple[Side, ...]
    robots: Tuple[Cell, ...]
    is_outer: bool

    def __len__(self) -> int:
        return len(self.robots)

    @cached_property
    def robot_set(self) -> frozenset[Cell]:
        """The set of distinct robots on this boundary."""
        return frozenset(self.robots)

    @cached_property
    def position_index(self) -> Dict[Cell, List[int]]:
        """Robot cell -> all cycle indices at which it appears (ascending).

        Cached on the (immutable) boundary so the run manager can relocate
        runs on contours kept across rounds without rebuilding an index.
        """
        idx: Dict[Cell, List[int]] = {}
        setdefault = idx.setdefault
        for pos, robot in enumerate(self.robots):
            setdefault(robot, []).append(pos)
        return idx

    def successor(self, index: int, direction: int = 1) -> int:
        """Index of the next robot along the cycle in ``direction`` (+1/-1)."""
        return (index + direction) % len(self.robots)

    def distance_along(self, i: int, j: int, direction: int = 1) -> int:
        """Number of steps from index ``i`` to index ``j`` walking in
        ``direction`` around the cycle (paper's boundary distance is this
        value; two adjacent boundary robots have distance 1)."""
        n = len(self.robots)
        if direction == 1:
            return (j - i) % n
        return (i - j) % n

    def indices_of(self, robot: Cell) -> Tuple[int, ...]:
        """All cycle indices at which ``robot`` appears."""
        return tuple(i for i, r in enumerate(self.robots) if r == robot)


def _collapse(cells: Sequence[Cell]) -> Tuple[Cell, ...]:
    """Collapse consecutive duplicates cyclically."""
    out: List[Cell] = []
    for c in cells:
        if not out or out[-1] != c:
            out.append(c)
    if len(out) > 1 and out[0] == out[-1]:
        out.pop()
    return tuple(out)


def _trace_cycle(occupied: Set[Cell], start: Side) -> List[Side]:
    """The full boundary cycle through ``start``.

    Successor rule, walking with the swarm on the left: with outward
    normal ``d`` the walk direction is ``m = rotate_ccw(d)``; let
    ``A = cell + m`` (ahead) and ``B = A + d`` (ahead, outside corner):

    * ``A`` free                 -> convex corner: stay on ``cell``,
      normal rotates counterclockwise;
    * ``A`` occupied, ``B`` free -> straight wall: advance to ``A``;
    * ``A`` and ``B`` occupied   -> concave corner: jump to ``B``, normal
      rotates clockwise.

    The rule is inlined (no per-side function call, no geometry helpers):
    this loop runs once per side of every re-traced contour and is the
    profile's hottest spot on contour-dominated swarms.
    """
    trace: List[Side] = [start]
    append = trace.append
    (cx, cy), (dx, dy) = start
    while True:
        mx, my = -dy, dx  # rotate_ccw(d)
        ax, ay = cx + mx, cy + my
        if (ax, ay) not in occupied:
            cur = ((cx, cy), (mx, my))  # convex: normal rotates ccw
            dx, dy = mx, my
        elif (ax + dx, ay + dy) not in occupied:
            cur = ((ax, ay), (dx, dy))  # straight
            cx, cy = ax, ay
        else:
            cx, cy = ax + dx, ay + dy  # concave: normal rotates cw
            dx, dy = dy, -dx
            cur = ((cx, cy), (dx, dy))
        if cur == start:
            return trace
        append(cur)


def _make_boundary(
    trace: List[Side], *, is_outer: bool, anchor: Side
) -> Boundary:
    """Canonicalize a traced cycle into a :class:`Boundary`.

    The cycle is rotated to a start side that depends only on the cycle's
    geometry — the anchor side for the outer contour, the lexicographically
    smallest side for inner contours — so that full and incremental
    extraction produce byte-identical Boundary objects regardless of where
    the trace happened to begin.
    """
    pivot = trace.index(anchor) if is_outer else trace.index(min(trace))
    if pivot:
        trace = trace[pivot:] + trace[:pivot]
    return Boundary(
        sides=tuple(trace),
        robots=_collapse([c for c, _ in trace]),
        is_outer=is_outer,
    )


def _sorted_boundaries(boundaries: List[Boundary]) -> List[Boundary]:
    """Canonical list order: the outer contour first, inner contours by
    their (canonical) first side."""
    boundaries.sort(key=lambda b: (not b.is_outer, b.sides[0]))
    return boundaries


def outer_anchor(occupied: Set[Cell]) -> Side:
    """The bottommost (then leftmost) cell's south side — always on the
    outer contour."""
    anchor_cell = min(occupied, key=lambda c: (c[1], c[0]))
    return (anchor_cell, SOUTH)


def _outer_anchor_from_rows(rows: Dict[int, List[int]]) -> Side:
    """:func:`outer_anchor` in O(#rows) via a maintained row index."""
    y = min(rows)
    return ((rows[y][0], y), SOUTH)


def extract_boundaries(state: SwarmState | Set[Cell]) -> List[Boundary]:
    """All boundary contours of the swarm; the outer one is listed first.

    Raises ``ValueError`` on an empty swarm.  O(total number of sides).
    Output is canonical (see :func:`_make_boundary`): independent of set
    iteration order, and reproduced byte-identically by the incremental
    :class:`repro.grid.ring.RingSet` via ``to_boundary()``.
    """
    occupied: Set[Cell] = (
        state.cells if isinstance(state, SwarmState) else set(state)
    )
    if not occupied:
        raise ValueError("cannot extract boundaries of an empty swarm")

    all_sides: Set[Side] = {
        (c, d)
        for c in occupied
        for d in DIRECTIONS4
        if add(c, d) not in occupied
    }
    anchor = outer_anchor(occupied)
    if anchor not in all_sides:
        raise InvariantError(
            f"outer anchor {anchor} is not a boundary side of the swarm"
        )

    boundaries: List[Boundary] = []
    unvisited = set(all_sides)
    # Trace the outer contour first so callers can rely on ordering.
    seeds: List[Side] = [anchor]
    while seeds or unvisited:
        start = seeds.pop() if seeds else next(iter(unvisited))
        if start not in unvisited:
            continue
        trace = _trace_cycle(occupied, start)
        unvisited.difference_update(trace)
        boundaries.append(
            _make_boundary(trace, is_outer=(start == anchor), anchor=anchor)
        )
    return _sorted_boundaries(boundaries)


def outer_boundary(state: SwarmState | Set[Cell]) -> Boundary:
    """The swarm's single outer boundary (paper Fig. 1, black robots)."""
    return extract_boundaries(state)[0]


def boundary_cells(state: SwarmState | Set[Cell]) -> Set[Cell]:
    """All robots lying on *some* boundary: those with a free 4-neighbor.

    This is the purely local membership test of the paper ("a robot can
    detect if it is located on some boundary ... but it does not know if it
    is the outer or an inner boundary").
    """
    occupied: Set[Cell] = (
        state.cells if isinstance(state, SwarmState) else set(state)
    )
    out: Set[Cell] = set()
    for c in occupied:
        for d in DIRECTIONS4:
            if add(c, d) not in occupied:
                out.add(c)
                break
    return out
