"""Global boundary geometry: envelopes, enclosing rectangles, vector chains.

These are *analysis* tools mirroring the constructions in the paper's proof
of Lemma 1 (Fig. 18): the smallest enclosing rectangle, the upper envelope of
the swarm, and the vector chain along the outer boundary together with its
decomposition into longest x-monotone subchains.  The distributed algorithm
itself never uses them (it is local); the test suite and the progress
instrumentation use them to check that mergeless swarms really decompose
into quasi lines and stairways and that progress pairs exist.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Set, Tuple

import numpy as np

from repro.grid.boundary import Boundary, outer_boundary
from repro.grid.geometry import Cell, bounding_box, sub
from repro.grid.occupancy import SwarmState


def smallest_enclosing_rectangle(
    state: SwarmState | Set[Cell],
) -> tuple[int, int, int, int]:
    """Axis-aligned smallest enclosing rectangle ``(min_x, min_y, max_x,
    max_y)`` of the swarm (paper Fig. 18)."""
    cells = state.cells if isinstance(state, SwarmState) else set(state)
    return bounding_box(cells)


def upper_envelope(state: SwarmState | Set[Cell]) -> Dict[int, int]:
    """For every occupied column ``x``, the maximum occupied ``y``.

    The paper's proof of Lemma 1 considers the upper envelope of the swarm
    and its left-/rightmost robots ``s`` and ``t``.
    """
    cells = state.cells if isinstance(state, SwarmState) else set(state)
    env: Dict[int, int] = {}
    for x, y in cells:
        cur = env.get(x)
        if cur is None or y > cur:
            env[x] = y
    return env


def envelope_extremes(state: SwarmState | Set[Cell]) -> tuple[Cell, Cell]:
    """The left- and rightmost robots of the upper envelope (paper's ``s``
    and ``t`` in the proof of Lemma 1)."""
    env = upper_envelope(state)
    if not env:
        raise ValueError("empty swarm has no envelope")
    xs = sorted(env)
    left, right = xs[0], xs[-1]
    return (left, env[left]), (right, env[right])


def vector_chain(boundary: Boundary) -> List[Cell]:
    """Unit step vectors between consecutive robots of a boundary cycle.

    Consecutive boundary robots are 8-adjacent, so each vector is one of the
    eight unit directions.  This is the paper's Fig. 18 vector chain
    construction (closed: the vectors sum to zero).
    """
    robots = boundary.robots
    n = len(robots)
    if n <= 1:
        return []
    return [sub(robots[(i + 1) % n], robots[i]) for i in range(n)]


def monotone_subchains(vectors: Sequence[Cell]) -> List[Tuple[int, int]]:
    """Decompose a vector chain into longest x-monotone subchains.

    Returns half-open index ranges ``(start, stop)`` into ``vectors``.  A
    subchain is x-monotone while its vectors' x components do not change
    sign; sign changes (east -> west or west -> east) start a new subchain,
    exactly as in the paper's proof of Lemma 1 ("the second subchain starts
    when the first vector points to the west ...").
    """
    if not vectors:
        return []
    ranges: List[Tuple[int, int]] = []
    start = 0
    # Sign of the current subchain's x direction; 0 until a nonzero appears.
    sign = 0
    for i, (vx, _) in enumerate(vectors):
        if vx == 0:
            continue
        s = 1 if vx > 0 else -1
        if sign == 0:
            sign = s
        elif s != sign:
            ranges.append((start, i))
            start = i
            sign = s
    ranges.append((start, len(vectors)))
    return ranges


def boundary_perimeter(state: SwarmState | Set[Cell]) -> int:
    """Length (number of sides) of the outer boundary contour — a useful
    potential function: merges and reshapement folds never increase it."""
    return len(outer_boundary(state).sides)


def enclosed_area(boundary: Boundary) -> float:
    """Signed area enclosed by a boundary's side polygon via the shoelace
    formula (positive for the outer contour, negative around holes).

    Reshapement folds move boundary robots inward, so the outer enclosed
    area is a strictly decreasing potential during mergeless phases; the
    benchmarks use it to visualize progress (experiment E6).
    """
    # Each side (cell, normal) is a unit polygon edge.  Reconstruct vertex
    # coordinates: for a cell (x, y) with normal d, the edge lies on the cell
    # border facing d, walked in direction rotate_ccw(d).
    pts: List[tuple[float, float]] = []
    for (x, y), d in boundary.sides:
        # Start vertex of the edge in walk order, on the unit square
        # [x, x+1] x [y, y+1].
        if d == (0, -1):  # south side, walking east
            pts.append((x, y))
        elif d == (1, 0):  # east side, walking north
            pts.append((x + 1, y))
        elif d == (0, 1):  # north side, walking west
            pts.append((x + 1, y + 1))
        else:  # west side, walking south
            pts.append((x, y + 1))
    arr = np.asarray(pts, dtype=np.float64)
    x = arr[:, 0]
    y = arr[:, 1]
    return float(
        0.5 * np.sum(x * np.roll(y, -1) - np.roll(x, -1) * y)
    )
