"""Persistent linked-ring boundary contours: O(dirty-arc) maintenance.

:mod:`repro.grid.boundary` extracts contours as immutable tuple cycles;
rebuilding those tuples made every *changed* contour cost O(contour) per
round even under the incremental pipeline (``docs/incremental.md``
measured ring-family speedups stuck around 1.8x for exactly this reason).
This module keeps each contour as a **mutable doubly-linked ring** of
side nodes (:class:`RingNode`) with stable node identities, and repairs
it in place by re-tracing and splicing only the *dirty arc* — the
maximal span of nodes whose cells lie within Chebyshev distance 1 of a
cell whose occupancy flipped.

Invariants (see ``docs/incremental.md`` for the full catalogue):

* **Successor locality** — a side's successor under the contour walk of
  :func:`repro.grid.boundary._trace_cycle` reads only occupancy within
  Chebyshev distance 1 of the side's cell, so a *clean* node keeps its
  successor side verbatim and never needs revisiting.
* **Node stability** — nodes outside a spliced arc keep their identity
  (object and ``node_id``); a dirty side that survives a re-trace reuses
  its old node, so only genuinely new sides allocate.
* **Splice precondition** — an arc may be spliced iff the re-trace from
  the clean node before it reaches the clean node after it without
  crossing any other clean side.  Anything else (a contour splitting or
  merging, a trace overrunning its budget) falls back to a full rebuild
  — rare, and byte-identical to full extraction either way.
* **Canonical materialization** — :meth:`BoundaryRing.to_boundary`
  reproduces the exact frozen :class:`~repro.grid.boundary.Boundary` of
  :func:`~repro.grid.boundary.extract_boundaries`: the outer ring's head
  is pinned to the anchor side, inner heads to the lexicographically
  smallest side (tracked by a lazy min-heap), and the ring list is kept
  in canonical order.

Several loops below are manually inlined (no geometry helpers, no
per-step method calls): ``update`` and the occurrence walks run once per
dirty side / probe step of every round and are the profile's hottest
spots on contour-dominated swarms.
"""

from __future__ import annotations

from heapq import heapify, heappop, heappush
from typing import Dict, Iterable, Iterator, List, Optional, Set, Tuple

from repro.errors import InvariantError
from repro.grid.boundary import (
    Boundary,
    Side,
    _collapse,
    _outer_anchor_from_rows,
    _trace_cycle,
    outer_anchor,
)
from repro.grid.geometry import DIRECTIONS4, Cell
from repro.grid.occupancy import SwarmState


def _successor(occupied: Set[Cell], side: Side) -> Side:
    """One step of the contour walk (rule of ``_trace_cycle``, inlined)."""
    (cx, cy), (dx, dy) = side
    mx, my = -dy, dx  # rotate_ccw(d)
    ax, ay = cx + mx, cy + my
    if (ax, ay) not in occupied:
        return ((cx, cy), (mx, my))  # convex corner
    if (ax + dx, ay + dy) not in occupied:
        return ((ax, ay), (dx, dy))  # straight wall
    return ((ax + dx, ay + dy), (dy, -dx))  # concave corner


def _change_edge_count(cells: List[Cell]) -> int:
    """Number of consecutive pairs with different cells (non-cyclic)."""
    return sum(1 for a, b in zip(cells, cells[1:]) if a != b)


#: Initial spacing of the per-ring order labels.  Splices subdivide the
#: gap between their anchors; a fresh gap this wide absorbs ~20 nested
#: same-spot subdivisions before the ring is relabeled (O(ring), rare).
_ORDER_GAP = 1 << 20


class RingNode:
    """One boundary side as a node of a doubly-linked contour ring.

    ``node_id`` is stable for the node's lifetime; a side that survives a
    splice keeps its node (and id), so consumers may hold node references
    across rounds as long as the side itself persists.

    ``order`` is a per-ring *order label*: labels strictly increase along
    the ring except across exactly one "descent" edge, so the cyclic
    order of two nodes relative to any reference node is an O(1) label
    comparison (no walking).  Labels are maintained by ``RingSet`` on
    every splice; consumers (the start-site index) treat them as opaque
    sort keys that may be rewritten wholesale by a relabel.
    """

    __slots__ = ("cell", "normal", "prev", "next", "node_id", "ring", "order")

    def __init__(self, cell: Cell, normal: Cell, node_id: int) -> None:
        self.cell = cell
        self.normal = normal
        self.node_id = node_id
        self.prev: "RingNode" = self
        self.next: "RingNode" = self
        self.ring: Optional["BoundaryRing"] = None
        self.order: int = 0

    @property
    def side(self) -> Side:
        return (self.cell, self.normal)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"RingNode(#{self.node_id} {self.cell}->{self.normal})"


class BoundaryRing:
    """One closed contour as a doubly-linked ring of side nodes.

    The *collapsed robot cycle* (consecutive same-cell sides merged, as in
    ``Boundary.robots``) is never materialized in steady state: consumers
    navigate it through occurrence heads — the first side node of each
    maximal same-cell side run — via :meth:`step` / :meth:`walk_heads`.
    ``len(ring)`` is the collapsed robot count, maintained incrementally.
    """

    __slots__ = (
        "ring_id",
        "is_outer",
        "head",
        "size",
        "_change_edges",
        "_minheap",
    )

    def __init__(self, ring_id: int, is_outer: bool, head: RingNode) -> None:
        self.ring_id = ring_id
        self.is_outer = is_outer
        self.head = head
        self.size = 0  # number of side nodes
        self._change_edges = 0  # cyclic side-to-side cell changes
        # Lazy canonical-min tracking (for inner-contour heads): None
        # until first needed after a splice; then a min-heap of sides
        # with dead entries skipped on query.  Cheaper than a cached
        # min-side: runners fold at corners, which is exactly where the
        # canonical min side lives, so a plain cache would be
        # invalidated (O(ring) recompute) nearly every round.
        self._minheap: Optional[List[Side]] = None

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        """Collapsed robot count (matches ``len(Boundary)``)."""
        if self._change_edges:
            return self._change_edges
        return 1 if self.size else 0

    def iter_nodes(self) -> Iterator[RingNode]:
        """All side nodes, head first, in contour order."""
        node = self.head
        for _ in range(self.size):
            yield node
            node = node.next

    # ------------------------------------------------------------------
    # Robot-cycle navigation (occurrence heads)
    # ------------------------------------------------------------------
    def occurrence_head(self, node: RingNode) -> RingNode:
        """First side node of ``node``'s maximal same-cell run."""
        if not self._change_edges:
            return node  # single-robot cycle: every node is the robot
        cell = node.cell
        while node.prev.cell == cell:
            node = node.prev
        return node

    def step(self, head: RingNode, direction: int) -> RingNode:
        """Occurrence head of the next robot along ``direction`` (+1/-1)."""
        if not self._change_edges:
            return head  # single-robot cycle: stepping stays in place
        if direction == 1:
            cell = head.cell
            node = head.next
            while node.cell == cell:
                node = node.next
            return node
        node = head.prev
        cell = node.cell
        while node.prev.cell == cell:
            node = node.prev
        return node

    def walk_heads(
        self, head: RingNode, direction: int, count: int
    ) -> List[RingNode]:
        """The next ``count`` occurrence heads from ``head`` (exclusive)
        along ``direction`` — one batched call instead of per-step
        :meth:`step` calls in the planner's probe loops."""
        out: List[RingNode] = []
        append = out.append
        if not self._change_edges:
            return [head] * count
        cur = head
        if direction == 1:
            for _ in range(count):
                cell = cur.cell
                cur = cur.next
                while cur.cell == cell:
                    cur = cur.next
                append(cur)
        else:
            for _ in range(count):
                cur = cur.prev
                cell = cur.cell
                while cur.prev.cell == cell:
                    cur = cur.prev
                append(cur)
        return out

    def behind_cell(self, head: RingNode, direction: int) -> Cell:
        """Cell of the boundary robot *behind* a run at ``head`` moving in
        ``direction`` (``robots[(pos - direction) % n]`` of the old tuple
        representation)."""
        return self.step(head, -direction).cell

    def walk_cells(
        self, head: RingNode, direction: int, count: int
    ) -> List[Cell]:
        """``count + 1`` robot cells starting at ``head`` (inclusive)."""
        return [head.cell] + [
            n.cell for n in self.walk_heads(head, direction, count)
        ]

    def robots_cycle(self) -> Tuple[Cell, ...]:
        """The collapsed robot cycle from the canonical head — exactly
        ``self.to_boundary().robots`` (O(contour); start rounds only)."""
        if not self.size:
            return ()
        first = self.occurrence_head(self.head)
        return tuple(
            [first.cell]
            + [n.cell for n in self.walk_heads(first, 1, len(self) - 1)]
        )

    def positions_map(self) -> Dict[RingNode, int]:
        """Occurrence head -> canonical cycle position (O(contour); used
        for start-round spacing and rare locate tie-breaks)."""
        out: Dict[RingNode, int] = {}
        if not self.size:
            return out
        cur = self.occurrence_head(self.head)
        out[cur] = 0
        for i, node in enumerate(self.walk_heads(cur, 1, len(self) - 1)):
            out[node] = i + 1
        return out

    # ------------------------------------------------------------------
    def to_boundary(self) -> Boundary:
        """Materialize the frozen tuple representation — byte-identical to
        the :func:`~repro.grid.boundary.extract_boundaries` output for the
        same configuration (canonical rotation preserved)."""
        sides = tuple((n.cell, n.normal) for n in self.iter_nodes())
        return Boundary(
            sides=sides,
            robots=_collapse([c for c, _ in sides]),
            is_outer=self.is_outer,
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        kind = "outer" if self.is_outer else "inner"
        return f"BoundaryRing(#{self.ring_id} {kind} sides={self.size})"


def _ring_sort_key(ring: BoundaryRing) -> Tuple[bool, Side]:
    head = ring.head
    return (not ring.is_outer, (head.cell, head.normal))


class RingSet:
    """All boundary contours of a swarm as persistent linked rings.

    ``rebuild`` constructs the rings from scratch (O(total sides));
    ``update`` repairs them in place from the round's changed cells,
    splicing only dirty arcs (O(dirty arc) in steady state, with a full
    rebuild fallback on contour splits/merges).  Both leave the ring list
    in canonical order and every ring's head at its canonical start side,
    so materialization is byte-identical to full extraction.

    ``last_resplices`` records the incremental work of the latest update
    as ``(ring_id, arc_sides, removed_sides)`` triples; a full-rebuild
    fallback is recorded as ``ring_id == -1``.

    ``observer`` is an optional structural-change listener (duck-typed;
    used by :class:`repro.core.quasiline.StartSiteIndex`).  Callbacks:

    * ``on_rebuild(ring_set)`` — after any full (re)build; every prior
      node/ring reference is void (doomed rings, reseeded cycles and
      ring-id recycling never happen outside a rebuild's fresh ids, so
      observers reconcile ring lifecycles against ``rings`` lazily);
    * ``on_arc_spliced(ring, a, b, old_nodes, new_nodes)`` — after an
      update committed (structure and canonical order final): the arc
      strictly between the surviving anchors ``a`` and ``b`` was
      replaced, dropping ``old_nodes`` and linking in ``new_nodes``
      (which may reuse old node objects, possibly from other rings).

    Callbacks are intentionally O(arc): observers that derive cached
    values should record the reported nodes and recompute lazily.
    """

    def __init__(self) -> None:
        self.rings: List[BoundaryRing] = []
        self.node_of: Dict[Side, RingNode] = {}
        self.cell_nodes: Dict[Cell, List[RingNode]] = {}
        self.last_resplices: List[Tuple[int, int, int]] = []
        self.observer = None
        self._next_ring_id = 0
        self._next_node_id = 0
        self._primed = False

    @classmethod
    def from_cells(cls, cells: SwarmState | Iterable[Cell]) -> "RingSet":
        """Fresh ring set of a configuration (full extraction)."""
        occupied = (
            cells.cells if isinstance(cells, SwarmState) else set(cells)
        )
        rs = cls()
        rs.rebuild(occupied)
        return rs

    # ------------------------------------------------------------------
    def nodes_at(self, cell: Cell) -> List[RingNode]:
        """All side nodes anchored on ``cell`` (at most four)."""
        return self.cell_nodes.get(cell, [])

    # ------------------------------------------------------------------
    def _make_ring(
        self,
        trace: List[Side],
        *,
        is_outer: bool,
        head_side: Side,
        pool: Optional[Dict[Side, RingNode]] = None,
    ) -> BoundaryRing:
        """Build one ring from a traced cycle (ring_id assigned later)."""
        node_of = self.node_of
        cell_nodes = self.cell_nodes
        nid = self._next_node_id
        nodes: List[RingNode] = []
        append = nodes.append
        if pool:
            for side in trace:
                node = pool.pop(side, None)
                if node is None:
                    node = RingNode(side[0], side[1], nid)
                    nid += 1
                append(node)
        else:
            for cell, normal in trace:
                append(RingNode(cell, normal, nid))
                nid += 1
        self._next_node_id = nid
        ring = BoundaryRing(-1, is_outer, nodes[0])
        prev = nodes[-1]
        order = 0
        for node, side in zip(nodes, trace):
            prev.next = node
            node.prev = prev
            node.ring = ring
            node.order = order
            order += _ORDER_GAP
            node_of[side] = node
            cell_nodes.setdefault(side[0], []).append(node)
            prev = node
        ring.head = node_of[head_side]
        ring.size = len(trace)
        cells = [c for c, _ in trace]
        ring._change_edges = _change_edge_count(cells) + (
            cells[0] != cells[-1]
        )
        return ring

    def _min_node(self, ring: BoundaryRing) -> RingNode:
        """The node of the ring's lexicographically smallest side (lazy
        min-heap, built on first demand, dead entries skipped)."""
        heap = ring._minheap
        if heap is None:
            heap = [(n.cell, n.normal) for n in ring.iter_nodes()]
            heapify(heap)
            ring._minheap = heap
        node_of = self.node_of
        while heap:
            node = node_of.get(heap[0])
            if node is not None and node.ring is ring:
                return node
            heappop(heap)
        raise AssertionError("empty ring has no canonical side")

    def _unregister(self, node: RingNode) -> None:
        del self.node_of[(node.cell, node.normal)]
        lst = self.cell_nodes[node.cell]
        if len(lst) == 1:
            del self.cell_nodes[node.cell]
        else:
            lst.remove(node)

    @staticmethod
    def _relabel(ring: BoundaryRing, gap: int = _ORDER_GAP) -> None:
        """Reassign the ring's order labels with fresh gaps (follows the
        link structure, so it is safe mid-commit while ``ring.size`` is
        stale); only reached when nested splices exhausted a gap."""
        head = ring.head
        order = 0
        node = head
        while True:
            node.order = order
            order += gap
            node = node.next
            if node is head:
                break

    # ------------------------------------------------------------------
    def rebuild(self, occupied: Set[Cell]) -> List[BoundaryRing]:
        """Full extraction; resets every ring (fresh ring ids)."""
        if not occupied:
            raise ValueError("cannot extract boundaries of an empty swarm")
        self.rings = []
        self.node_of = {}
        self.cell_nodes = {}
        self.last_resplices = []
        all_sides = {
            (c, d)
            for c in occupied
            for d in DIRECTIONS4
            if (c[0] + d[0], c[1] + d[1]) not in occupied
        }
        anchor = outer_anchor(occupied)
        unvisited = set(all_sides)
        rings: List[BoundaryRing] = []
        # Outer first, then remaining cycles in deterministic side order.
        for start in [anchor, *sorted(all_sides)]:
            if start not in unvisited:
                continue
            trace = _trace_cycle(occupied, start)
            unvisited.difference_update(trace)
            is_outer = start == anchor
            rings.append(
                self._make_ring(
                    trace,
                    is_outer=is_outer,
                    head_side=anchor if is_outer else min(trace),
                )
            )
        rings.sort(key=_ring_sort_key)
        for ring in rings:
            ring.ring_id = self._next_ring_id
            self._next_ring_id += 1
        self.rings = rings
        self._primed = True
        if self.observer is not None:
            self.observer.on_rebuild(self)
        return list(rings)

    def _fallback(self, occupied: Set[Cell]) -> List[BoundaryRing]:
        total = sum(r.size for r in self.rings)
        out = self.rebuild(occupied)
        self.last_resplices = [(-1, sum(r.size for r in out), total)]
        return out

    # ------------------------------------------------------------------
    def update(
        self,
        occupied: Set[Cell],
        changed: Iterable[Cell],
        rows: Optional[Dict[int, List[int]]] = None,
    ) -> List[BoundaryRing]:
        """Repair the rings after the cells in ``changed`` flipped
        occupancy.  ``rows`` is an optional ``y -> sorted xs`` index of
        ``occupied`` for O(#rows) outer-anchor lookup."""
        if not self._primed:
            return self.rebuild(occupied)
        changed = set(changed)
        self.last_resplices = []
        if not changed:
            return list(self.rings)
        dirty: Set[Cell] = set()
        add_dirty = dirty.add
        for x, y in changed:
            add_dirty((x - 1, y - 1))
            add_dirty((x - 1, y))
            add_dirty((x - 1, y + 1))
            add_dirty((x, y - 1))
            add_dirty((x, y))
            add_dirty((x, y + 1))
            add_dirty((x + 1, y - 1))
            add_dirty((x + 1, y))
            add_dirty((x + 1, y + 1))
        node_of = self.node_of
        cell_get = self.cell_nodes.get

        # One pass over the dirty cells: collect the *stale* nodes — side
        # no longer valid, or successor rewired on the new occupancy.  A
        # dirty node whose side and successor both survived is kept
        # as-is: folds rewire only a couple of sides, while their
        # Chebyshev-1 dirt halo covers a dozen, so this filter shrinks
        # the re-traced arcs severalfold.  ``seed_cells`` collects the
        # only cells that can carry a side of a brand-new, yet-uncovered
        # cycle: cells of removed (stale) nodes, newly occupied cells,
        # and occupied 4-neighbors of newly vacated cells — every new
        # side's cell is one of these, and an uncovered cycle consists
        # exclusively of new or removed sides.
        stale_nodes: List[RingNode] = []
        seed_cells: Set[Cell] = set()
        # reprolint: ok[D3] stale-node order is canonicalized below: the
        # per-ring groups are consumed as sets and arc starts are sorted
        # by node_id before any re-trace.
        for c in dirty:
            nodes = cell_get(c)
            if not nodes:
                continue
            if c not in occupied:
                stale_nodes.extend(nodes)  # cell vacated: sides gone
                continue
            cx, cy = c
            for node in nodes:
                dx, dy = node.normal
                if (cx + dx, cy + dy) in occupied:
                    stale_nodes.append(node)  # side filled in
                    seed_cells.add(c)
                    continue
                # side still valid: successor still the same?
                mx, my = -dy, dx
                ax, ay = cx + mx, cy + my
                if (ax, ay) not in occupied:
                    succ = ((cx, cy), (mx, my))
                elif (ax + dx, ay + dy) not in occupied:
                    succ = ((ax, ay), (dx, dy))
                else:
                    succ = ((ax + dx, ay + dy), (dy, -dx))
                nxt = node.next
                if succ != (nxt.cell, nxt.normal):
                    stale_nodes.append(node)
                    seed_cells.add(c)
        for c in changed:
            if c in occupied:
                seed_cells.add(c)
            else:
                x, y = c
                if (x + 1, y) in occupied:
                    seed_cells.add((x + 1, y))
                if (x, y + 1) in occupied:
                    seed_cells.add((x, y + 1))
                if (x - 1, y) in occupied:
                    seed_cells.add((x - 1, y))
                if (x, y - 1) in occupied:
                    seed_cells.add((x, y - 1))

        # ------------------------------------------------------ phase 1
        # Plan: find each affected ring's maximal dirty arcs and re-trace
        # them on the new occupancy.  No mutation yet: any structural
        # surprise (trace crossing a clean side, two arcs claiming one
        # side, budget overrun) aborts into the full-rebuild fallback.
        stale_set = set(stale_nodes)
        doomed: List[BoundaryRing] = []
        splices: List[
            Tuple[BoundaryRing, RingNode, RingNode, List[RingNode], List[Side]]
        ] = []
        claimed: Set[Side] = set()
        budget = 4 * len(dirty) + 16
        by_ring: Dict[int, List[RingNode]] = {}
        for node in stale_nodes:
            by_ring.setdefault(id(node.ring), []).append(node)
        for ring in self.rings:
            ring_dirty = by_ring.get(id(ring))
            if not ring_dirty:
                continue
            if len(ring_dirty) >= ring.size:
                doomed.append(ring)
                continue
            dset = set(ring_dirty)
            starts = sorted(
                (n for n in ring_dirty if n.prev not in dset),
                key=lambda n: n.node_id,
            )
            for start in starts:
                old_nodes = [start]
                cur = start
                while cur.next in dset:
                    cur = cur.next
                    old_nodes.append(cur)
                a, b = start.prev, cur.next  # clean anchors (b may be a)
                b_side = (b.cell, b.normal)
                new_sides: List[Side] = []
                (cx, cy), (dx, dy) = a.cell, a.normal
                while True:
                    # successor rule, inlined (see _successor)
                    mx, my = -dy, dx
                    ax, ay = cx + mx, cy + my
                    if (ax, ay) not in occupied:
                        dx, dy = mx, my
                    elif (ax + dx, ay + dy) not in occupied:
                        cx, cy = ax, ay
                    else:
                        cx, cy = ax + dx, ay + dy
                        dx, dy = dy, -dx
                    side = ((cx, cy), (dx, dy))
                    if side == b_side:
                        break
                    existing = node_of.get(side)
                    if existing is not None and existing not in stale_set:
                        return self._fallback(occupied)  # crossed clean side
                    if side in claimed or len(new_sides) >= budget:
                        return self._fallback(occupied)
                    claimed.add(side)
                    new_sides.append(side)
                splices.append((ring, a, b, old_nodes, new_sides))

        # ------------------------------------------------------ phase 2
        # Commit: unlink doomed rings and old arcs (pooling their nodes
        # for identity-preserving reuse), then splice the new arcs in.
        # A removed side that reappears in a planned arc keeps its node
        # *and* its node_of/cell_nodes registration — only genuinely new
        # or genuinely gone sides touch the indices.
        pool: Dict[Side, RingNode] = {}
        for ring in doomed:
            for node in ring.iter_nodes():
                side = (node.cell, node.normal)
                pool[side] = node
                if side not in claimed:
                    self._unregister(node)
        if doomed:
            doomed_set = set(doomed)
            rings = [r for r in self.rings if r not in doomed_set]
        else:
            rings = list(self.rings)
        for ring, a, _b, old_nodes, _new_sides in splices:
            head = ring.head
            for node in old_nodes:
                side = (node.cell, node.normal)
                pool[side] = node
                if side not in claimed:
                    self._unregister(node)
                if node is head:
                    # Never leave the head on an unlinked node: walks
                    # (phase 4's canonical-min recompute) start there.
                    ring.head = head = a
        affected: List[BoundaryRing] = []
        cell_nodes = self.cell_nodes
        nid = self._next_node_id
        pool_pop = pool.pop
        for ring, a, b, old_nodes, new_sides in splices:
            heap = ring._minheap
            # Order labels of the inserted arc.  If the cycle's single
            # label descent lies inside the replaced arc (a.order >=
            # b.order, including the a == b full-circle case), the
            # surviving path b..a ascends, so appending above a.order
            # keeps exactly one descent (Python ints never overflow).
            # Otherwise subdivide the (a.order, b.order) gap, relabeling
            # the whole ring first in the rare case nested splices have
            # exhausted it.
            m = len(new_sides)
            if m:
                if a.order < b.order and b.order - a.order <= m:
                    # Nested splices exhausted the (a, b) gap: relabel
                    # with fresh gaps.  The walk starts at ring.head, so
                    # afterwards a may legitimately label *above* b
                    # (head inside the b..a path) — that is exactly the
                    # descent-in-arc case handled below.
                    self._relabel(ring, max(_ORDER_GAP, 2 * (m + 1)))
                if a.order >= b.order:
                    base, step = a.order, _ORDER_GAP
                else:
                    base, step = a.order, (b.order - a.order) // (m + 1)
            order = 0
            prev = a
            for side in new_sides:
                node = pool_pop(side, None)
                if node is None:
                    node = RingNode(side[0], side[1], nid)
                    nid += 1
                    node_of[side] = node
                    cell_nodes.setdefault(side[0], []).append(node)
                node.ring = ring
                order += step
                node.order = base + order
                node.prev = prev
                prev.next = node
                if heap is not None:
                    heappush(heap, side)
                prev = node
            prev.next = b
            b.prev = prev
            ring.size += len(new_sides) - len(old_nodes)
            delta = 0
            pc = a.cell
            for node in old_nodes:
                c = node.cell
                if c != pc:
                    delta -= 1
                    pc = c
            if b.cell != pc:
                delta -= 1
            pc = a.cell
            for c, _ in new_sides:
                if c != pc:
                    delta += 1
                    pc = c
            if b.cell != pc:
                delta += 1
            ring._change_edges += delta
            affected.append(ring)
            self.last_resplices.append(
                (ring.ring_id, len(new_sides), len(old_nodes))
            )
        self._next_node_id = nid

        # ------------------------------------------------------ phase 3
        # Reseed: brand-new cycles (opened holes, re-created small rings)
        # start at free sides of the seed cells that no ring covers.
        # (No observer callback: a reseeded ring has a fresh ring_id, so
        # lazy consumers index it on first sight.)
        if seed_cells:
            maybe_seeds: List[Side] = []
            for c in sorted(seed_cells):
                x, y = c
                if (x + 1, y) not in occupied:
                    maybe_seeds.append((c, (1, 0)))
                if (x, y + 1) not in occupied:
                    maybe_seeds.append((c, (0, 1)))
                if (x - 1, y) not in occupied:
                    maybe_seeds.append((c, (-1, 0)))
                if (x, y - 1) not in occupied:
                    maybe_seeds.append((c, (0, -1)))
            for side in maybe_seeds:
                if side in node_of:
                    continue
                trace = _trace_cycle(occupied, side)
                if any(s in node_of for s in trace):
                    return self._fallback(occupied)  # merged into a ring
                ring = self._make_ring(
                    trace, is_outer=False, head_side=min(trace), pool=pool
                )
                ring.ring_id = self._next_ring_id
                self._next_ring_id += 1
                rings.append(ring)
                affected.append(ring)
                self.last_resplices.append((ring.ring_id, len(trace), 0))

        # ------------------------------------------------------ phase 4
        # Canonical bookkeeping: outer flag + anchor head, canonical heads
        # of affected inner rings, canonical list order.
        anchor = (
            _outer_anchor_from_rows(rows) if rows else outer_anchor(occupied)
        )
        anchor_node = node_of.get(anchor)
        if anchor_node is None:
            return self._fallback(occupied)
        new_outer = anchor_node.ring
        if new_outer is None:
            raise InvariantError(
                f"anchor side {anchor} resolves to a detached ring node"
            )
        old_outer = next((r for r in rings if r.is_outer), None)
        if old_outer is not new_outer:
            if old_outer is not None:
                old_outer.is_outer = False
                old_outer.head = self._min_node(old_outer)
            new_outer.is_outer = True
        new_outer.head = anchor_node
        for ring in affected:
            if not ring.is_outer:
                ring.head = self._min_node(ring)
        rings.sort(key=_ring_sort_key)
        self.rings = rings
        observer = self.observer
        if observer is not None:
            for ring, a, b, old_nodes, new_sides in splices:
                observer.on_arc_spliced(
                    ring, a, b, old_nodes, [node_of[s] for s in new_sides]
                )
        return list(rings)

    # ------------------------------------------------------------------
    def to_boundaries(self) -> List[Boundary]:
        """Materialize every ring (for tests/analysis; O(total sides))."""
        return [r.to_boundary() for r in self.rings]
