"""Integer grid geometry primitives.

Cells are plain ``(x, y)`` tuples of ints.  We deliberately avoid a class for
cells: the simulator's hot loops (pattern matching, boundary traversal) touch
millions of cells per experiment, and tuples + free functions profile ~3x
faster than a small dataclass while staying hashable and comparable.
"""

from __future__ import annotations

from typing import Iterable, Iterator, Tuple

#: A grid cell.  ``x`` grows to the east, ``y`` grows to the north.
Cell = Tuple[int, int]

NORTH: Cell = (0, 1)
EAST: Cell = (1, 0)
SOUTH: Cell = (0, -1)
WEST: Cell = (-1, 0)

#: The four cardinal directions in counterclockwise order starting east.
DIRECTIONS4: tuple[Cell, ...] = (EAST, NORTH, WEST, SOUTH)

#: The four diagonal steps.
DIAGONALS: tuple[Cell, ...] = ((1, 1), (-1, 1), (-1, -1), (1, -1))

#: All eight robot move directions (paper Section 1: a robot may hop to any
#: of its eight neighboring grid cells).
DIRECTIONS8: tuple[Cell, ...] = DIRECTIONS4 + DIAGONALS


def add(a: Cell, b: Cell) -> Cell:
    """Component-wise sum of two cells/vectors."""
    return (a[0] + b[0], a[1] + b[1])


def sub(a: Cell, b: Cell) -> Cell:
    """Component-wise difference ``a - b``."""
    return (a[0] - b[0], a[1] - b[1])


def scale(a: Cell, k: int) -> Cell:
    """Scalar multiple ``k * a``."""
    return (a[0] * k, a[1] * k)


def l1_distance(a: Cell, b: Cell) -> int:
    """Manhattan (L1) distance — the paper's vision metric."""
    return abs(a[0] - b[0]) + abs(a[1] - b[1])


def chebyshev(a: Cell, b: Cell) -> int:
    """Chebyshev (L-infinity) distance — one 8-neighbor hop covers 1."""
    return max(abs(a[0] - b[0]), abs(a[1] - b[1]))


def neighbors4(c: Cell) -> tuple[Cell, Cell, Cell, Cell]:
    """The four cardinal neighbors of ``c`` (connectivity neighborhood)."""
    x, y = c
    return ((x + 1, y), (x, y + 1), (x - 1, y), (x, y - 1))


def neighbors8(c: Cell) -> tuple[Cell, ...]:
    """All eight neighbors of ``c`` (movement neighborhood)."""
    x, y = c
    return (
        (x + 1, y),
        (x, y + 1),
        (x - 1, y),
        (x, y - 1),
        (x + 1, y + 1),
        (x - 1, y + 1),
        (x - 1, y - 1),
        (x + 1, y - 1),
    )


def rotate_ccw(v: Cell) -> Cell:
    """Rotate a vector 90 degrees counterclockwise."""
    return (-v[1], v[0])


def rotate_cw(v: Cell) -> Cell:
    """Rotate a vector 90 degrees clockwise."""
    return (v[1], -v[0])


def perpendicular(a: Cell, b: Cell) -> bool:
    """True if vectors ``a`` and ``b`` are orthogonal (dot product zero)."""
    return a[0] * b[0] + a[1] * b[1] == 0


def bounding_box(cells: Iterable[Cell]) -> tuple[int, int, int, int]:
    """Axis-aligned bounding box ``(min_x, min_y, max_x, max_y)``.

    Raises ``ValueError`` on an empty iterable — an empty swarm has no box,
    and silently returning a sentinel would hide bugs in callers.
    """
    it: Iterator[Cell] = iter(cells)
    try:
        x, y = next(it)
    except StopIteration:
        raise ValueError("bounding_box of empty cell set") from None
    min_x = max_x = x
    min_y = max_y = y
    for x, y in it:
        if x < min_x:
            min_x = x
        elif x > max_x:
            max_x = x
        if y < min_y:
            min_y = y
        elif y > max_y:
            max_y = y
    return (min_x, min_y, max_x, max_y)
