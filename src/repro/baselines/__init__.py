"""Baseline algorithms the paper positions itself against.

* :mod:`repro.baselines.euclidean` — the local go-to-center-of-smallest-
  enclosing-circle gathering in the Euclidean plane of [DKL+11]
  (SPAA 2011), whose tight Theta(n^2) FSYNC round bound is the reference
  point of the paper's O(n) headline (experiment E2);
* :mod:`repro.baselines.global_grid` — a global-vision grid gatherer in the
  spirit of [SN14]: all robots move toward the center of the smallest
  enclosing rectangle (experiment E4);
* :mod:`repro.baselines.async_greedy` — the "simple strategy" the paper's
  introduction says achieves O(n) rounds under a fair ASYNC scheduler
  (experiment E3);
* :mod:`repro.baselines.chain` — [KM09] Hopper-flavoured communication
  chain shortening, the lineage of the paper's linear-time machinery
  (experiment E9);
* :mod:`repro.baselines.closed_chain` — the paper's direct predecessor:
  closed-chain gathering [ACLF+16], simplified (experiment E10).
"""

from repro.baselines.euclidean import (
    EuclideanSwarm,
    GoToCenterGatherer,
    gather_euclidean,
    smallest_enclosing_circle,
    worst_case_circle,
)
from repro.baselines.global_grid import GlobalVisionGatherer, gather_global
from repro.baselines.async_greedy import AsyncGreedyGatherer, gather_async
from repro.baselines.chain import (
    ChainShortener,
    hairpin_chain,
    shorten_chain,
    zigzag_chain,
)
from repro.baselines.closed_chain import (
    ClosedChainGatherer,
    gather_closed_chain,
    rectangle_chain,
)

__all__ = [
    "EuclideanSwarm",
    "GoToCenterGatherer",
    "gather_euclidean",
    "smallest_enclosing_circle",
    "worst_case_circle",
    "GlobalVisionGatherer",
    "gather_global",
    "AsyncGreedyGatherer",
    "gather_async",
    "ChainShortener",
    "hairpin_chain",
    "shorten_chain",
    "zigzag_chain",
    "ClosedChainGatherer",
    "gather_closed_chain",
    "rectangle_chain",
]
