"""Communication-chain shortening on the grid ([KM09] Hopper flavour).

The paper's lineage runs through chain problems: [DKLH06] shortens a
communication chain between two fixed stations in O(n^2 log n) FSYNC
rounds; the Hopper strategy of Kutylowski & Meyer auf der Heide [KM09]
achieves O(n) (optimal on the grid), and the closed-chain gathering
[ACLF+16] the paper builds on transfers those ideas to gathering.

This module implements a compact Hopper-flavoured chain shortener as a
context baseline (experiment E9): a chain ``v0 .. v_{m-1}`` of relay robots
with *fixed endpoints*; consecutive relays must stay 8-adjacent.  Each
FSYNC round, alternating-parity interior relays act (the classic trick to
keep simultaneous moves compatible):

* a relay whose two neighbors are 8-adjacent to each other (or coincide)
  is redundant and removes itself — the chain *shortens*;
* otherwise it hops toward the Manhattan midpoint of its neighbors,
  staying 8-adjacent to both.

The measured claim (E9): the number of rounds to reach a minimal chain
(length = Chebyshev distance of the endpoints + 1) grows linearly in the
initial chain length — the O(n) regime of [KM09], which the gathering
paper inherits.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

from repro.grid.geometry import Cell, chebyshev


@dataclass
class ChainResult:
    shortened: bool
    rounds: int
    initial_length: int
    final_length: int
    optimal_length: int


def _adjacent8(a: Cell, b: Cell) -> bool:
    return chebyshev(a, b) <= 1


def _step_toward(src: Cell, dst: Cell) -> Cell:
    dx = (dst[0] > src[0]) - (dst[0] < src[0])
    dy = (dst[1] > src[1]) - (dst[1] < src[1])
    return (src[0] + dx, src[1] + dy)


class ChainShortener:
    """FSYNC Hopper-flavoured chain shortening with fixed endpoints."""

    def __init__(self, chain: Sequence[Cell]) -> None:
        chain = list(chain)
        if len(chain) < 2:
            raise ValueError("a chain needs at least its two endpoints")
        for a, b in zip(chain, chain[1:]):
            if not _adjacent8(a, b):
                raise ValueError(
                    f"chain links must be 8-adjacent; {a} -> {b} is not"
                )
        self.chain: List[Cell] = chain
        self.round_index = 0

    @property
    def optimal_length(self) -> int:
        """Minimal possible chain length between the fixed endpoints."""
        return chebyshev(self.chain[0], self.chain[-1]) + 1

    def is_minimal(self) -> bool:
        return len(self.chain) <= self.optimal_length

    def step(self) -> None:
        """One FSYNC round: interior relays of one parity act."""
        self.step_active(None)

    def step_active(self, mask: Optional[List[bool]]) -> List[bool]:
        """One round in which relay ``i`` may act only if ``mask[i]`` —
        the SSYNC subset-activation hook (``mask=None`` is the plain
        FSYNC round).  The acting relays are still parity-restricted, so
        any activation subset keeps simultaneous moves compatible.
        Returns the keep mask over the pre-round chain (``False`` =
        relay removed itself), which SSYNC drivers use to migrate their
        stable relay ids."""
        chain = self.chain
        parity = self.round_index % 2
        # Phase 1: redundant relays of this parity mark themselves.
        keep = [True] * len(chain)
        for i in range(1, len(chain) - 1):
            if i % 2 != parity:
                continue
            if mask is not None and not mask[i]:
                continue
            if keep[i - 1] and _adjacent8(chain[i - 1], chain[i + 1]):
                keep[i] = False
        new_chain = [c for c, k in zip(chain, keep) if k]
        new_mask = (
            None
            if mask is None
            else [m for m, k in zip(mask, keep) if k]
        )
        # Phase 2: surviving interior relays of this parity hop toward the
        # midpoint of their (post-removal) neighbors.
        result: List[Cell] = list(new_chain)
        for i in range(1, len(new_chain) - 1):
            if i % 2 != parity:
                continue
            if new_mask is not None and not new_mask[i]:
                continue
            prev_c, cur, nxt = new_chain[i - 1], new_chain[i], new_chain[i + 1]
            mid = ((prev_c[0] + nxt[0]) // 2, (prev_c[1] + nxt[1]) // 2)
            cand = _step_toward(cur, mid)
            if _adjacent8(cand, prev_c) and _adjacent8(cand, nxt):
                result[i] = cand
        self.chain = result
        self.round_index += 1
        return keep

    def run(self, max_rounds: Optional[int] = None) -> ChainResult:
        initial = len(self.chain)
        budget = max_rounds if max_rounds is not None else 50 * initial + 100
        while not self.is_minimal() and self.round_index < budget:
            self.step()
        return ChainResult(
            shortened=self.is_minimal(),
            rounds=self.round_index,
            initial_length=initial,
            final_length=len(self.chain),
            optimal_length=self.optimal_length,
        )


def shorten_chain(
    chain: Sequence[Cell], *, max_rounds: Optional[int] = None
) -> ChainResult:
    """Convenience wrapper: shorten ``chain`` to minimal length.

    .. deprecated:: 1.1
        Thin shim over ``simulate(strategy="chain")`` — prefer
        :func:`repro.api.simulate`, whose :class:`RunResult` also carries
        per-round metrics and events.
    """
    from repro.api import simulate

    result = simulate(chain, strategy="chain", max_rounds=max_rounds)
    return ChainResult(
        shortened=result.gathered,
        rounds=result.rounds,
        initial_length=result.extras["initial_length"],
        final_length=result.extras["final_length"],
        optimal_length=result.extras["optimal_length"],
    )


def hairpin_chain(depth: int, width: int = 2) -> List[Cell]:
    """A long U-detour between nearby endpoints.

    The chain climbs ``depth`` cells, crosses ``width``, and comes back
    down; only the relays at the bend are ever redundant, so shortening
    must *propagate* along the arms — the workload that exhibits [KM09]'s
    linear-round regime (a zigzag collapses in O(1) rounds because all its
    detours are redundant simultaneously).
    """
    if depth < 1 or width < 1:
        raise ValueError("depth and width must be >= 1")
    up = [(0, y) for y in range(depth + 1)]
    across = [(x, depth) for x in range(1, width + 1)]
    down = [(width, y) for y in range(depth - 1, -1, -1)]
    return up + across + down


def zigzag_chain(steps: int, amplitude: int = 3) -> List[Cell]:
    """A detour-heavy chain between (0,0) and (steps, 0) for experiments."""
    if steps < 1 or amplitude < 1:
        raise ValueError("steps and amplitude must be >= 1")
    out: List[Cell] = [(0, 0)]
    x = 0
    while x < steps:
        for y in range(1, amplitude + 1):
            out.append((x, y))
        x += 1
        for y in range(amplitude, -1, -1):
            out.append((x, y))
    return out
