"""Closed-chain gathering on the grid ([ACLF+16], the paper's launchpad).

The paper opens: "we use an idea from our gathering algorithm for a closed
chain [ACLF+16], yet drop the chain connectivity for sake of solving the
general gathering".  This module provides that predecessor system in
simplified form: ``n`` robots forming a **closed chain** (a cyclic sequence
where consecutive robots are 8-adjacent; several robots may share a cell),
to be gathered into a 2x2 square while every chain link stays intact.

Chain connectivity is *given by the problem*, so — unlike the general
grid-gathering — a robot always knows its two chain neighbors.  What
remains hard in FSYNC is symmetry: on a perfectly regular cycle all robots
look alike.  The original paper breaks symmetry with runner states; this
simplified reproduction uses the standard randomized alternative (each
robot draws an independent coin per round, and acts only if its chain
neighbors drew tails), which preserves the O(n)-rounds-in-expectation
behaviour we measure in experiment E10 and keeps the module compact.
Deviations are documented in DESIGN.md.

Operations per acting robot (both keep every chain link 8-adjacent):

* **contract** — if its two chain neighbors are 8-adjacent to each other
  (or coincide), the robot leaves the chain (splice); this is the merge
  analog: the chain shortens by one;
* **pull** — otherwise hop one cell toward the midpoint of the neighbors
  if 8-adjacency to both survives; this tightens slack like the paper's
  reshapement hops.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Iterable, List, Optional, Sequence

from repro.grid.geometry import Cell, chebyshev


@dataclass
class ClosedChainResult:
    gathered: bool
    rounds: int
    robots_initial: int
    robots_final: int


def _adjacent8(a: Cell, b: Cell) -> bool:
    return chebyshev(a, b) <= 1


def _bounding_square(chain: Iterable[Cell]) -> int:
    xs = []
    ys = []
    for x, y in chain:
        xs.append(x)
        ys.append(y)
    return max(max(xs) - min(xs), max(ys) - min(ys))


class _ChainNode:
    """One chain robot as a node of a doubly-linked ring (the same
    persistent linked-ring idiom as :mod:`repro.grid.ring`): a
    contraction unlinks the node in O(1) instead of rebuilding the whole
    chain list, and node identities are stable across rounds."""

    __slots__ = ("cell", "prev", "next", "node_id")

    def __init__(self, cell: Cell, node_id: int) -> None:
        self.cell = cell
        self.node_id = node_id
        self.prev: "_ChainNode" = self
        self.next: "_ChainNode" = self


class ClosedChainGatherer:
    """FSYNC randomized gathering of a closed chain."""

    def __init__(self, chain: Sequence[Cell], *, seed: int = 0) -> None:
        cells = list(chain)
        if len(cells) < 3:
            raise ValueError("a closed chain needs at least 3 robots")
        n = len(cells)
        for i in range(n):
            if not _adjacent8(cells[i], cells[(i + 1) % n]):
                raise ValueError(
                    f"chain links must be 8-adjacent; index {i} is not"
                )
        nodes = [_ChainNode(c, i) for i, c in enumerate(cells)]
        for i, node in enumerate(nodes):
            nxt = nodes[(i + 1) % n]
            node.next = nxt
            nxt.prev = node
        self._head = nodes[0]
        self._size = n
        self.rng = random.Random(seed)
        self.round_index = 0

    @property
    def chain(self) -> List[Cell]:
        """The chain as a cell list, head first (compatibility view)."""
        out: List[Cell] = []
        node = self._head
        for _ in range(self._size):
            out.append(node.cell)
            node = node.next
        return out

    def _nodes(self) -> List[_ChainNode]:
        out: List[_ChainNode] = []
        node = self._head
        for _ in range(self._size):
            out.append(node)
            node = node.next
        return out

    def is_gathered(self) -> bool:
        return _bounding_square(self.chain) <= 1

    @property
    def node_ids(self) -> List[int]:
        """Stable per-robot ids, head first (SSYNC roster tokens)."""
        return [node.node_id for node in self._nodes()]

    def step(self, active_ids: Optional[set] = None) -> None:
        """One round: coin-selected robots contract or pull.

        ``active_ids`` restricts acting to the given node ids (SSYNC
        subset activation); ``None`` means every robot participates —
        the FSYNC round, unchanged.  Coins are part of the *algorithm*
        (every robot draws one each round, activated or not), so the RNG
        stream is independent of the scheduler's choices.
        """
        nodes = self._nodes()
        n = self._size
        coins = [self.rng.random() < 0.5 for _ in range(n)]
        # a robot acts iff it drew heads and both chain neighbors drew
        # tails — acting robots are pairwise non-adjacent along the chain,
        # so their moves/splices are compatible (and no acting robot's
        # neighbor is ever unlinked, keeping neighbor reads stable)
        acting = [
            coins[i] and not coins[(i - 1) % n] and not coins[(i + 1) % n]
            for i in range(n)
        ]
        if active_ids is not None:
            acting = [
                a and nodes[i].node_id in active_ids
                for i, a in enumerate(acting)
            ]
        # Phase 1: contractions — unlink the node (O(1) splice).
        size = n
        for i, node in enumerate(nodes):
            if not acting[i] or size <= 3:
                continue
            if _adjacent8(node.prev.cell, node.next.cell):
                node.prev.next = node.next
                node.next.prev = node.prev
                if node is self._head:
                    self._head = node.next
                size -= 1
        self._size = size
        # Phase 2: pulls on surviving acting robots — collect all targets
        # against the pre-pull cells, then apply (FSYNC simultaneity; the
        # read neighbors are non-acting, hence stationary).
        pulls: List[tuple[_ChainNode, Cell]] = []
        for i, node in enumerate(nodes):
            if not acting[i] or node.prev.next is not node:
                continue  # contracted away above
            prev_c = node.prev.cell
            cur = node.cell
            next_c = node.next.cell
            mid = ((prev_c[0] + next_c[0]) // 2, (prev_c[1] + next_c[1]) // 2)
            dx = (mid[0] > cur[0]) - (mid[0] < cur[0])
            dy = (mid[1] > cur[1]) - (mid[1] < cur[1])
            cand = (cur[0] + dx, cur[1] + dy)
            if (
                cand != cur
                and _adjacent8(cand, prev_c)
                and _adjacent8(cand, next_c)
            ):
                pulls.append((node, cand))
        for node, cand in pulls:
            node.cell = cand
        self.round_index += 1

    def run(self, max_rounds: Optional[int] = None) -> ClosedChainResult:
        n0 = len(self.chain)
        budget = max_rounds if max_rounds is not None else 400 * n0 + 400
        while not self.is_gathered() and self.round_index < budget:
            self.step()
        return ClosedChainResult(
            gathered=self.is_gathered(),
            rounds=self.round_index,
            robots_initial=n0,
            robots_final=len(self.chain),
        )


def gather_closed_chain(
    chain: Sequence[Cell], *, seed: int = 0, max_rounds: Optional[int] = None
) -> ClosedChainResult:
    """Gather a closed chain into a 2x2 square.

    .. deprecated:: 1.1
        Thin shim over ``simulate(strategy="closed_chain")`` — prefer
        :func:`repro.api.simulate`, whose :class:`RunResult` also carries
        per-round metrics and events.
    """
    from repro.api import simulate

    result = simulate(
        chain, strategy="closed_chain", seed=seed, max_rounds=max_rounds
    )
    return ClosedChainResult(
        gathered=result.gathered,
        rounds=result.rounds,
        robots_initial=result.robots_initial,
        robots_final=result.robots_final,
    )


def rectangle_chain(width: int, height: int) -> List[Cell]:
    """A closed chain tracing a width x height rectangle boundary."""
    if width < 2 or height < 2:
        raise ValueError("width and height must be >= 2")
    out: List[Cell] = []
    out += [(x, 0) for x in range(width)]
    out += [(width - 1, y) for y in range(1, height)]
    out += [(x, height - 1) for x in range(width - 2, -1, -1)]
    out += [(0, y) for y in range(height - 2, 0, -1)]
    return out
