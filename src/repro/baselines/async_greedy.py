"""ASYNC fair-scheduler greedy gathering (the paper's Section 1 remark).

"Contrary, if one would assume a fair scheduler in the ASYNC time model,
which allows only one robot to be active at a time and finishes a round
after every robot has been active at least once, a simple strategy could
achieve the same O(n) rounds."

The simple strategy: an activated robot merges onto its only neighbor if it
is a leaf, merges onto the occupied between-diagonal if it is a convex
corner, and otherwise folds inward at a convex corner with a free diagonal.
Because only one robot moves at a time, each action trivially preserves
connectivity (exactly the property FSYNC destroys and the paper's run
machinery restores).  Experiment E3 measures the O(n) rounds claim.
"""

from __future__ import annotations

from typing import Optional

from repro.engine.async_scheduler import AsyncResult
from repro.grid.geometry import Cell, add, neighbors4, perpendicular, sub
from repro.grid.occupancy import SwarmState


class AsyncGreedyGatherer:
    """Per-activation rule for the fair ASYNC scheduler."""

    def activate(self, state: SwarmState, robot: Cell) -> Cell:
        nbrs = [n for n in neighbors4(robot) if n in state]
        if len(nbrs) == 1:
            # Leaf: hop onto the single neighbor (a merge).  With n == 2
            # the engine has already stopped (2 robots are gathered).
            return nbrs[0]
        if len(nbrs) == 2:
            v0, v1 = sub(nbrs[0], robot), sub(nbrs[1], robot)
            if perpendicular(v0, v1):
                target = add(robot, add(v0, v1))
                # Corner: merge onto the occupied diagonal, or fold into a
                # free one.  Sequential execution keeps both anchor
                # adjacencies, so either is safe.
                return target
        return robot


def gather_async(
    cells,
    *,
    seed: int = 0,
    max_rounds: Optional[int] = None,
    check_connectivity: bool = True,
) -> AsyncResult:
    """Gather under the fair ASYNC scheduler; one robot active at a time.

    .. deprecated:: 1.1
        Thin shim over ``simulate(strategy="async_greedy")`` — prefer
        :func:`repro.api.simulate`.
    """
    from repro.api import simulate

    result = simulate(
        cells,
        strategy="async_greedy",
        seed=seed,
        max_rounds=max_rounds,
        check_connectivity=check_connectivity,
    )
    return AsyncResult.from_run_result(result)
