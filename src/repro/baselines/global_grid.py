"""Global-vision grid gathering baseline ([SN14] flavour, experiment E4).

With global vision the problem is easy (the paper says so in Section 2: the
robots "could compute the center of the globally smallest enclosing square
... and just move to this point").  Every robot steps one cell (8-neighbor
move) toward the center of the smallest enclosing rectangle; collisions
merge.  Gathering needs about diameter/2 rounds, and the total number of
cell moves is the quantity [SN14] optimizes.

Connectivity is *not* required in this model, so the engine runs with the
connectivity check off.
"""

from __future__ import annotations

from typing import Dict, Mapping, Optional

from repro.engine.scheduler import GatherResult
from repro.grid.geometry import Cell
from repro.grid.occupancy import SwarmState


def _sign_step(delta: float) -> int:
    """One-cell step toward a fractional target offset."""
    if delta > 0.49:
        return 1
    if delta < -0.49:
        return -1
    return 0


class GlobalVisionGatherer:
    """FSYNC controller: hop toward the enclosing-rectangle center."""

    def __init__(self) -> None:
        self.total_moves = 0

    def plan_round(
        self, state: SwarmState, round_index: int
    ) -> Mapping[Cell, Cell]:
        min_x, min_y, max_x, max_y = state.bounding_box()
        cx = (min_x + max_x) / 2.0
        cy = (min_y + max_y) / 2.0
        moves: Dict[Cell, Cell] = {}
        for (x, y) in state:
            dx = _sign_step(cx - x)
            dy = _sign_step(cy - y)
            if dx or dy:
                moves[(x, y)] = (x + dx, y + dy)
        return moves

    def notify_applied(self, state, round_index, moves, merged) -> None:
        # The [SN14] cost measure counts moves that actually happened —
        # under SSYNC the scheduler drops non-activated robots' planned
        # moves, so counting here (not in plan_round) stays honest.
        self.total_moves += len(moves)


def gather_global(
    cells, *, max_rounds: Optional[int] = None
) -> GatherResult:
    """Gather with global vision; returns the standard result object.

    .. deprecated:: 1.1
        Thin shim over ``simulate(strategy="global")`` — prefer
        :func:`repro.api.simulate`, whose :class:`RunResult` carries the
        [SN14] cost measure in ``extras["total_moves"]``.
    """
    result, _ = gather_global_with_moves(cells, max_rounds=max_rounds)
    return result


def gather_global_with_moves(
    cells, *, max_rounds: Optional[int] = None
) -> tuple[GatherResult, int]:
    """Like :func:`gather_global` but also returns total cell moves.

    .. deprecated:: 1.1
        Thin shim over ``simulate(strategy="global")``.
    """
    from repro.api import simulate

    result = simulate(cells, strategy="global", max_rounds=max_rounds)
    return (
        GatherResult.from_run_result(result),
        result.extras["total_moves"],
    )
