"""Euclidean-plane local gathering baseline ([DKL+11], SPAA 2011).

The paper's headline O(n) is measured against this algorithm's tight
Theta(n^2) bound: n robots in the plane, unit viewing range, FSYNC; every
round each robot computes the **smallest enclosing circle** (SEC) of the
robots it sees and moves toward its center, clipping the step so that no
visibility edge breaks — the classic "go to center" of Ando et al. as
analyzed by Degener, Kempkes, Langner, Meyer auf der Heide, Pietrzyk and
Wattenhofer.

The SEC is computed with Welzl's randomized algorithm (expected linear
time).  The connectivity-preserving clip keeps the new position inside the
disk of radius 1/2 around the midpoint to every visible neighbor: if both
endpoints of an edge do this, their new distance is at most 1 (triangle
inequality), so the visibility graph never loses an edge.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.errors import InvariantError

Point = Tuple[float, float]


# ----------------------------------------------------------------------
# Smallest enclosing circle (Welzl)
# ----------------------------------------------------------------------
def _circle_two(a: Point, b: Point) -> Tuple[Point, float]:
    cx = (a[0] + b[0]) / 2.0
    cy = (a[1] + b[1]) / 2.0
    r = math.hypot(a[0] - b[0], a[1] - b[1]) / 2.0
    return ((cx, cy), r)


def _circle_three(a: Point, b: Point, c: Point) -> Optional[Tuple[Point, float]]:
    ax, ay = a
    bx, by = b
    cx, cy = c
    d = 2.0 * (ax * (by - cy) + bx * (cy - ay) + cx * (ay - by))
    if abs(d) < 1e-14:
        return None  # collinear
    ux = (
        (ax * ax + ay * ay) * (by - cy)
        + (bx * bx + by * by) * (cy - ay)
        + (cx * cx + cy * cy) * (ay - by)
    ) / d
    uy = (
        (ax * ax + ay * ay) * (cx - bx)
        + (bx * bx + by * by) * (ax - cx)
        + (cx * cx + cy * cy) * (bx - ax)
    ) / d
    r = math.hypot(ax - ux, ay - uy)
    return ((ux, uy), r)


def _in_circle(c: Optional[Tuple[Point, float]], p: Point) -> bool:
    if c is None:
        return False
    (cx, cy), r = c
    return math.hypot(p[0] - cx, p[1] - cy) <= r * (1.0 + 1e-12) + 1e-12


def smallest_enclosing_circle(
    points: Sequence[Point], seed: int = 0
) -> Tuple[Point, float]:
    """Welzl's move-to-front algorithm; expected O(len(points))."""
    pts = list(points)
    if not pts:
        raise ValueError("SEC of empty point set")
    rng = random.Random(seed)
    rng.shuffle(pts)
    circle: Optional[Tuple[Point, float]] = ((pts[0][0], pts[0][1]), 0.0)
    for i, p in enumerate(pts):
        if _in_circle(circle, p):
            continue
        circle = ((p[0], p[1]), 0.0)
        for j in range(i):
            q = pts[j]
            if _in_circle(circle, q):
                continue
            circle = _circle_two(p, q)
            for k in range(j):
                s = pts[k]
                if _in_circle(circle, s):
                    continue
                c3 = _circle_three(p, q, s)
                if c3 is not None:
                    circle = c3
                else:  # collinear: take the widest pair
                    best = circle
                    for pair in ((p, q), (p, s), (q, s)):
                        cand = _circle_two(*pair)
                        if cand[1] > best[1]:
                            best = cand
                    circle = best
    if circle is None:
        raise InvariantError(
            "minimum enclosing circle search ended with no candidate"
        )
    return circle


# ----------------------------------------------------------------------
# The FSYNC Euclidean swarm
# ----------------------------------------------------------------------
@dataclass
class EuclideanResult:
    gathered: bool
    rounds: int
    robots: int
    diameters: List[float] = field(default_factory=list)


class EuclideanSwarm:
    """Positions + unit-disk visibility in the plane."""

    def __init__(self, positions: Sequence[Point], view_range: float = 1.0):
        self.pos = np.asarray(positions, dtype=np.float64)
        if self.pos.ndim != 2 or self.pos.shape[1] != 2:
            raise ValueError("positions must be an (n, 2) array-like")
        self.view_range = float(view_range)

    def __len__(self) -> int:
        return int(self.pos.shape[0])

    def visibility_lists(self) -> List[np.ndarray]:
        """Indices visible to each robot (including itself)."""
        diff = self.pos[:, None, :] - self.pos[None, :, :]
        dist2 = np.einsum("ijk,ijk->ij", diff, diff)
        vis = dist2 <= self.view_range**2 + 1e-12
        return [np.nonzero(vis[i])[0] for i in range(len(self))]

    def diameter(self) -> float:
        diff = self.pos[:, None, :] - self.pos[None, :, :]
        return float(np.sqrt(np.einsum("ijk,ijk->ij", diff, diff).max()))

    def is_connected(self) -> bool:
        """Unit-disk graph connectivity (BFS)."""
        n = len(self)
        if n <= 1:
            return True
        lists = self.visibility_lists()
        seen = {0}
        stack = [0]
        while stack:
            i = stack.pop()
            for j in lists[i]:
                if int(j) not in seen:
                    seen.add(int(j))
                    stack.append(int(j))
        return len(seen) == n


class GoToCenterGatherer:
    """One FSYNC round of the [DKL+11] go-to-center algorithm."""

    def __init__(self, step_cap: float = math.inf) -> None:
        #: Optional cap on per-round movement (the model allows bounded
        #: movement; infinite means "move as far as the clip allows").
        self.step_cap = step_cap

    def step(
        self, swarm: EuclideanSwarm, active: Optional[set] = None
    ) -> None:
        """One round.  ``active`` restricts the look-compute-move cycle
        to the given robot indices (SSYNC subset activation); ``None``
        means everyone acts — the FSYNC round, unchanged.  Robots not in
        ``active`` keep their position; the connectivity clip of acting
        robots still accounts for every visible neighbor, so no
        visibility edge breaks under any activation subset."""
        pos = swarm.pos
        lists = swarm.visibility_lists()
        new = pos.copy()
        for i, vis in enumerate(lists):
            if active is not None and i not in active:
                continue
            pts = [tuple(pos[j]) for j in vis]
            (cx, cy), _ = smallest_enclosing_circle(pts, seed=i)
            target = np.array([cx, cy])
            p = pos[i]
            step = target - p
            norm = float(np.hypot(*step))
            if norm > self.step_cap:
                step = step * (self.step_cap / norm)
            cand = p + step
            # Clip into every midpoint disk so no visibility edge breaks.
            for j in vis:
                if j == i:
                    continue
                mid = (p + pos[j]) / 2.0
                d = cand - mid
                dist = float(np.hypot(*d))
                limit = swarm.view_range / 2.0
                if dist > limit:
                    cand = mid + d * (limit / dist)
            new[i] = cand
        swarm.pos = new


def worst_case_circle(n: int) -> List[Point]:
    """[DKL+11]'s tight instance: ``n`` robots on a circle sized so that
    only immediate neighbors see each other (unit visibility)."""
    r = n * 0.9 / (2 * math.pi)
    return [
        (
            r * math.cos(2 * math.pi * i / n),
            r * math.sin(2 * math.pi * i / n),
        )
        for i in range(n)
    ]


def gather_euclidean(
    positions: Sequence[Point],
    *,
    view_range: float = 1.0,
    gather_diameter: float = 1.0,
    max_rounds: Optional[int] = None,
    record_diameter: bool = False,
) -> EuclideanResult:
    """Run go-to-center until the swarm's diameter falls below
    ``gather_diameter`` (robots within one viewing disk count as gathered —
    the merge analog of the continuous model).

    .. deprecated:: 1.1
        Thin shim over ``simulate(strategy="euclidean")`` — prefer
        :func:`repro.api.simulate`, whose :class:`RunResult` also carries
        per-round metrics and events.
    """
    from repro.api import simulate

    result = simulate(
        positions,
        strategy="euclidean",
        max_rounds=max_rounds,
        view_range=view_range,
        gather_diameter=gather_diameter,
        record_diameter=record_diameter,
    )
    return EuclideanResult(
        gathered=result.gathered,
        rounds=result.rounds,
        robots=result.robots_initial,
        diameters=result.extras["diameters"],
    )
