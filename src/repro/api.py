"""The unified simulation facade: ``simulate()`` over pluggable
strategies and schedulers.

The paper's central claim is comparative — the local-view grid strategy
gathers in O(n) FSYNC rounds where the Euclidean go-to-center baseline
needs Theta(n^2), global vision needs O(diameter), and a fair ASYNC
scheduler admits a simple O(n) strategy.  This module gives every one of
those competitors (plus the chain-shortening lineage baselines) the same
surface:

>>> from repro import Scenario, simulate
>>> result = simulate(Scenario(family="ring", n=100))          # the paper
>>> result = simulate(Scenario(family="circle", n=32),
...                   strategy="euclidean")                    # [DKL+11]
>>> result.gathered, result.rounds, result.events.counts()     # uniform

Strategies and schedulers are string-keyed registries (mirroring
:data:`repro.swarms.generators.FAMILIES`), populated by decorator at
import time:

* :data:`STRATEGIES` — ``grid``, ``global``, ``euclidean``,
  ``async_greedy``, ``chain``, ``closed_chain``;
* :data:`SCHEDULERS` — ``fsync`` (the paper's time model; also drives
  the bespoke self-clocked FSYNC loops of the Euclidean and chain
  baselines), ``async`` (the fair sequential scheduler), and ``ssync``
  / ``ssync-faulty`` (semi-synchronous subset activation under a
  k-fairness bound, optionally with seeded crash-stop and transient
  sleep faults — see :mod:`repro.engine.ssync_scheduler`).

Adversarial scheduling, for example — any strategy, one keyword:

>>> result = simulate(Scenario(family="ring", n=64), scheduler="ssync",
...                   activation="uniform", activation_p=0.7, seed=1)
>>> result.events.counts()["activation"] == result.rounds
True

Every run returns one :class:`repro.engine.protocols.RunResult`.  The
legacy per-workload entry points (``gather``, ``gather_async``,
``gather_euclidean``, ``gather_global``, ``shorten_chain``,
``gather_closed_chain``) are thin deprecation shims over ``simulate()``
and keep returning their historical result types byte-identically.

New time models and workloads plug in by registering a class here — see
``docs/api.md`` for the contract and ``docs/schedulers.md`` for the
SSYNC/fault model semantics.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Optional, Sequence

from repro.baselines.async_greedy import AsyncGreedyGatherer
from repro.baselines.chain import ChainShortener, hairpin_chain, zigzag_chain
from repro.baselines.closed_chain import ClosedChainGatherer, rectangle_chain
from repro.baselines.euclidean import (
    EuclideanSwarm,
    GoToCenterGatherer,
    worst_case_circle,
)
from repro.baselines.global_grid import GlobalVisionGatherer
from repro.core.algorithm import GatherOnGrid
from repro.core.config import AlgorithmConfig
from repro.core.tolerant import TolerantGatherOnGrid
from repro.engine.async_lcm import AsyncLcmEngine
from repro.engine.async_scheduler import AsyncEngine
from repro.engine.events import EventLog
from repro.engine.faults import FaultInjector
from repro.engine.metrics import MetricsLog, RoundMetrics
from repro.engine.protocols import (
    AsyncProgram,
    FsyncProgram,
    RunResult,
    Scenario,
    Scheduler,
    SimContext,
    SsyncSteppable,
    StateView,
    SteppedProgram,
    Strategy,
)
from repro.engine.scheduler import FsyncEngine, close_controller
from repro.engine.ssync_scheduler import (
    ActivationSchedule,
    SsyncEngine,
    drive_stepped_ssync,
    make_policy,
)
from repro.grid.occupancy import SwarmState
from repro.swarms.generators import family
from repro.trace.recorder import TraceRecorder

# ----------------------------------------------------------------------
# Registries
# ----------------------------------------------------------------------
STRATEGIES: Dict[str, Strategy] = {}
SCHEDULERS: Dict[str, Scheduler] = {}


def register_strategy(cls: type) -> type:
    """Class decorator: instantiate and register a strategy by its key."""
    inst = cls()
    if inst.key in STRATEGIES:
        raise ValueError(f"duplicate strategy key {inst.key!r}")
    STRATEGIES[inst.key] = inst
    return cls


def register_scheduler(cls: type) -> type:
    """Class decorator: instantiate and register a scheduler by its key."""
    inst = cls()
    if inst.key in SCHEDULERS:
        raise ValueError(f"duplicate scheduler key {inst.key!r}")
    SCHEDULERS[inst.key] = inst
    return cls


# ----------------------------------------------------------------------
# Scenario resolution helpers
# ----------------------------------------------------------------------
def _as_scenario(scenario: Any) -> Scenario:
    if isinstance(scenario, Scenario):
        return scenario
    if isinstance(scenario, str):
        raise TypeError(
            "string scenarios are ambiguous; pass "
            "Scenario(family=..., n=...) or an explicit sequence"
        )
    return Scenario(payload=list(scenario))


def _grid_cells(scenario: Scenario, ctx: SimContext) -> List[Any]:
    if scenario.payload is not None:
        return list(scenario.payload)
    seed = scenario.seed if scenario.seed is not None else ctx.seed
    return family(scenario.family, scenario.n, seed=seed)


def _span(points: Sequence[Any]) -> float:
    """Chebyshev diameter of a point/cell set (the bounding-box span —
    identical to ``SwarmState.diameter_chebyshev`` on grid cells)."""
    if not points:
        raise ValueError("cannot simulate an empty scenario")
    xs = [p[0] for p in points]
    ys = [p[1] for p in points]
    return max(max(xs) - min(xs), max(ys) - min(ys))


# ----------------------------------------------------------------------
# Schedulers
# ----------------------------------------------------------------------
def _drive_stepped(
    program: SteppedProgram, ctx: SimContext, scheduler_key: str
) -> RunResult:
    """Generic loop for self-clocked FSYNC programs: step until done or
    budget, recording round metrics/events the legacy loops lacked."""
    metrics = MetricsLog()
    events = EventLog()
    budget = (
        ctx.max_rounds if ctx.max_rounds is not None
        else program.default_budget()
    )
    rounds = 0
    done = program.done()
    while not done and rounds < budget:
        program.step(rounds, metrics, events)
        if ctx.on_round is not None:
            ctx.on_round(rounds, program.view())
        rounds += 1
        done = program.done()
    fields = program.result_fields()
    robots_final = fields.pop("robots_final")
    final_state = fields.pop("final_state")
    events.emit(
        rounds,
        "gathered" if done else "budget_exhausted",
        rounds=rounds,
        robots=robots_final,
    )
    return RunResult(
        strategy="",
        scheduler=scheduler_key,
        gathered=done,
        rounds=rounds,
        robots_initial=program.robots_initial,
        robots_final=robots_final,
        metrics=metrics,
        events=events,
        final_state=final_state,
        extras=fields,
    )


@register_scheduler
class FsyncScheduler:
    """The paper's fully synchronous look-compute-move rounds.

    Drives either an engine-backed :class:`FsyncProgram` (grid
    controllers via :class:`repro.engine.scheduler.FsyncEngine`) or a
    bespoke self-clocked FSYNC loop (:class:`SteppedProgram`: the
    Euclidean and chain baselines, which are FSYNC models over non-grid
    state).
    """

    key = "fsync"
    description = "fully synchronous rounds (the paper's time model)"
    option_names: tuple = ()

    def drive(self, program: Any, ctx: SimContext) -> RunResult:
        if isinstance(program, FsyncProgram):
            return self._drive_engine(program, ctx)
        return _drive_stepped(program, ctx, self.key)

    def _drive_engine(
        self, program: FsyncProgram, ctx: SimContext
    ) -> RunResult:
        engine = FsyncEngine(
            program.state,
            program.controller,
            check_connectivity=program.check_connectivity,
            track_boundary=ctx.track_boundary,
            on_round=ctx.on_round,
        )
        try:
            res = engine.run(max_rounds=ctx.max_rounds)
        finally:
            close_controller(program.controller)
        extras = dict(program.extras_fn()) if program.extras_fn else {}
        return RunResult(
            strategy="",
            scheduler=self.key,
            gathered=res.gathered,
            rounds=res.rounds,
            robots_initial=res.robots_initial,
            robots_final=res.robots_final,
            metrics=res.metrics,
            events=res.events,
            final_state=res.final_state,
            extras=extras,
        )


@register_scheduler
class AsyncScheduler:
    """The fair sequential scheduler (one robot at a time, a round ends
    when every robot was activated) via
    :class:`repro.engine.async_scheduler.AsyncEngine`."""

    key = "async"
    description = "fair sequential scheduler (one robot active at a time)"
    option_names: tuple = ()

    def drive(self, program: AsyncProgram, ctx: SimContext) -> RunResult:
        seed = ctx.seed if ctx.seed is not None else program.seed
        engine = AsyncEngine(
            program.state,
            program.controller,
            seed=seed,
            check_connectivity=program.check_connectivity,
            on_round=ctx.on_round,
        )
        try:
            res = engine.run(max_rounds=ctx.max_rounds)
        finally:
            close_controller(program.controller)
        return RunResult(
            strategy="",
            scheduler=self.key,
            gathered=res.gathered,
            rounds=res.rounds,
            robots_initial=res.robots_initial,
            robots_final=res.robots_final,
            metrics=res.metrics,
            events=res.events,
            final_state=engine.state,
            activations=res.activations,
        )


#: Seed salts keeping the activation-policy RNG and the fault RNG
#: independent streams of one user-facing ``simulate(seed=...)``.
_POLICY_SEED_SALT = 0x55AC
_FAULT_SEED_SALT = 0xFA17


class _SsyncSchedulerBase:
    """Semi-synchronous subset activation under a k-fairness bound.

    Options (``simulate(..., scheduler="ssync", <option>=...)``):

    ``activation``
        Policy key: ``"uniform"`` (default), ``"round_robin"``,
        ``"adversarial"``, or ``"scripted"`` — see
        :data:`repro.engine.ssync_scheduler.ACTIVATION_POLICIES`.
    ``activation_p``
        Per-robot activation probability for ``uniform`` (default 0.5;
        1.0 reproduces FSYNC trajectories exactly when faults are off).
    ``rr_k``
        Class count for ``round_robin`` (default 3).
    ``schedule``
        Per-round token lists for ``scripted`` (required by, and only
        valid with, that policy) — the nondeterminism explorer's
        witness-replay surface (:mod:`repro.explore`).
    ``k_fairness``
        Fairness bound: every (fault-free) robot is activated at least
        once in any ``k`` consecutive rounds (default 8).
    ``sleep_rate`` / ``crash_rate``
        Per-robot, per-round transient-sleep and crash-stop fault
        probabilities (defaults differ between ``ssync`` and
        ``ssync-faulty``).
    ``byzantine_rate``
        Probability that a robot is byzantine for the whole run —
        each round it reports a stale position, hops off-plan, or
        plays dead (``docs/schedulers.md``).  Grid-state programs
        only; draws are churn-invariant and independent of the
        crash/sleep and activation streams.

    One ``simulate(seed=...)`` seeds policy and fault draws on
    independent RNG streams; ``seed=None`` means seed 0 — adversarial
    runs are always deterministic.
    """

    option_names = (
        "activation",
        "activation_p",
        "rr_k",
        "schedule",
        "k_fairness",
        "sleep_rate",
        "crash_rate",
        "byzantine_rate",
    )
    default_sleep_rate = 0.0
    default_crash_rate = 0.0
    default_byzantine_rate = 0.0
    key = "ssync"  # overridden by the registered subclasses

    def _build_schedule(self, ctx: SimContext) -> ActivationSchedule:
        opts = ctx.options
        name = opts.pop("activation", "uniform")
        p = opts.pop("activation_p", None)
        rr_k = opts.pop("rr_k", None)
        schedule = opts.pop("schedule", None)
        k_fairness = opts.pop("k_fairness", 8)
        sleep_rate = opts.pop("sleep_rate", self.default_sleep_rate)
        crash_rate = opts.pop("crash_rate", self.default_crash_rate)
        byzantine_rate = opts.pop(
            "byzantine_rate", self.default_byzantine_rate
        )
        # A parameter for a policy that is not in effect would be
        # silently ignored — reject it instead, keeping calls honest.
        if p is not None and name != "uniform":
            raise ValueError(
                f"activation_p applies only to the 'uniform' policy, "
                f"not {name!r}"
            )
        if rr_k is not None and name != "round_robin":
            raise ValueError(
                f"rr_k applies only to the 'round_robin' policy, "
                f"not {name!r}"
            )
        if schedule is not None and name != "scripted":
            raise ValueError(
                f"schedule applies only to the 'scripted' policy, "
                f"not {name!r}"
            )
        seed = ctx.seed if ctx.seed is not None else 0
        policy = make_policy(
            name,
            p=0.5 if p is None else p,
            k=3 if rr_k is None else rr_k,
            seed=seed ^ _POLICY_SEED_SALT,
            schedule=schedule,
        )
        injector = FaultInjector(
            sleep_rate,
            crash_rate,
            seed=seed ^ _FAULT_SEED_SALT,
            byzantine_rate=byzantine_rate,
        )
        return ActivationSchedule(
            policy, k_fairness, injector if injector.enabled else None
        )

    def drive(self, program: Any, ctx: SimContext) -> RunResult:
        schedule = self._build_schedule(ctx)
        byzantine = (
            schedule.faults is not None
            and schedule.faults.byzantine_rate > 0.0
        )
        if isinstance(program, (FsyncProgram, AsyncProgram)):
            engine = SsyncEngine(
                program.state,
                program.controller,
                schedule,
                check_connectivity=program.check_connectivity,
                track_boundary=ctx.track_boundary,
                on_round=ctx.on_round,
            )
            try:
                res = engine.run(max_rounds=ctx.max_rounds)
            finally:
                close_controller(program.controller)
            extras_fn = getattr(program, "extras_fn", None)
            return RunResult(
                strategy="",
                scheduler=self.key,
                gathered=res.gathered,
                rounds=res.rounds,
                robots_initial=res.robots_initial,
                robots_final=res.robots_final,
                metrics=res.metrics,
                events=res.events,
                final_state=res.final_state,
                activations=engine.activations,
                byzantine_actions=(
                    engine.byzantine_actions if byzantine else None
                ),
                extras=dict(extras_fn()) if extras_fn else {},
            )
        if isinstance(program, SsyncSteppable):
            if byzantine:
                raise ValueError(
                    "byzantine_rate supports grid-state programs only "
                    "(stale-position perception needs the shared grid "
                    "snapshot); self-clocked programs accept "
                    "sleep_rate/crash_rate"
                )
            return drive_stepped_ssync(program, schedule, ctx, self.key)
        raise TypeError(
            f"program {type(program).__name__} does not support the "
            f"SSYNC scheduler (needs FsyncProgram, AsyncProgram, or the "
            f"ssync_roster/ssync_step surface)"
        )


@register_scheduler
class SsyncScheduler(_SsyncSchedulerBase):
    """SSYNC: per-round activation subsets under a k-fairness bound,
    fault-free by default (fault rates can still be passed explicitly)."""

    key = "ssync"
    description = (
        "semi-synchronous subset activation under a k-fairness bound"
    )


@register_scheduler
class SsyncFaultyScheduler(_SsyncSchedulerBase):
    """SSYNC with fault injection on by default: transient sleep faults
    at rate 0.05 (override with ``sleep_rate``/``crash_rate``)."""

    key = "ssync-faulty"
    description = (
        "SSYNC with seeded crash-stop / transient-sleep fault injection"
    )
    default_sleep_rate = 0.05


#: Salt for the async-lcm staleness draws — a third independent stream
#: next to the activation-policy and fault streams.
_STALENESS_SEED_SALT = 0x5A1E


@register_scheduler
class AsyncLcmScheduler(_SsyncSchedulerBase):
    """Non-atomic ASYNC: look, compute, and move decouple with bounded
    staleness (:class:`repro.engine.async_lcm.AsyncLcmEngine`).

    Accepts every SSYNC option except ``byzantine_rate`` (stale
    perception is this model's native adversary) plus:

    ``staleness``
        The staleness bound Δ (default 0): an activated robot computes
        on a snapshot up to Δ rounds old and its move lands up to Δ
        rounds later.  Δ = 0 makes the engine step-identical to
        ``ssync`` — with full activation, bit-identical to ``fsync``
        (golden-pinned).
    """

    key = "async-lcm"
    description = (
        "non-atomic ASYNC: stale-snapshot compute and delayed moves "
        "under bounded staleness"
    )
    option_names = tuple(
        name
        for name in _SsyncSchedulerBase.option_names
        if name != "byzantine_rate"
    ) + ("staleness",)

    def drive(self, program: Any, ctx: SimContext) -> RunResult:
        staleness = ctx.options.pop("staleness", 0)
        if not isinstance(staleness, int) or isinstance(staleness, bool):
            raise ValueError(
                f"staleness must be a non-negative integer round "
                f"count, got {staleness!r}"
            )
        if staleness < 0:
            raise ValueError(
                f"staleness must be a non-negative integer round "
                f"count, got {staleness!r}"
            )
        schedule = self._build_schedule(ctx)
        seed = ctx.seed if ctx.seed is not None else 0
        if isinstance(program, (FsyncProgram, AsyncProgram)):
            engine = AsyncLcmEngine(
                program.state,
                program.controller,
                schedule,
                staleness=staleness,
                seed=seed ^ _STALENESS_SEED_SALT,
                check_connectivity=program.check_connectivity,
                track_boundary=ctx.track_boundary,
                on_round=ctx.on_round,
            )
            try:
                res = engine.run(max_rounds=ctx.max_rounds)
            finally:
                close_controller(program.controller)
            extras_fn = getattr(program, "extras_fn", None)
            return RunResult(
                strategy="",
                scheduler=self.key,
                gathered=res.gathered,
                rounds=res.rounds,
                robots_initial=res.robots_initial,
                robots_final=res.robots_final,
                metrics=res.metrics,
                events=res.events,
                final_state=res.final_state,
                activations=engine.activations,
                extras=dict(extras_fn()) if extras_fn else {},
            )
        if isinstance(program, SsyncSteppable):
            if staleness > 0:
                raise ValueError(
                    "async-lcm over self-clocked programs supports "
                    "staleness=0 only (their step surface has no "
                    "snapshot archive); grid-state strategies support "
                    "any staleness bound"
                )
            return drive_stepped_ssync(program, schedule, ctx, self.key)
        raise TypeError(
            f"program {type(program).__name__} does not support the "
            f"async-lcm scheduler (needs FsyncProgram, AsyncProgram, or "
            f"the ssync_roster/ssync_step surface)"
        )


# ----------------------------------------------------------------------
# Grid-state strategies (FSYNC engine / ASYNC engine)
# ----------------------------------------------------------------------
@register_strategy
class GridStrategy:
    """The paper's O(n) local-view gathering (``GatherOnGrid``).

    Options: ``controller`` — a pre-built :class:`GatherOnGrid` to plug
    in (the CLI ``watch`` command uses it to read runner marks)."""

    key = "grid"
    description = "paper's local-view O(n) grid gathering (FSYNC)"
    schedulers = ("fsync", "ssync", "ssync-faulty", "async-lcm")
    default_scheduler = "fsync"
    compare_label = "grid"

    def resolve(self, scenario: Scenario, ctx: SimContext) -> List[Any]:
        return _grid_cells(scenario, ctx)

    def build(self, resolved: Any, ctx: SimContext) -> FsyncProgram:
        controller = ctx.options.pop("controller", None)
        if controller is None:
            controller = GatherOnGrid(ctx.config or AlgorithmConfig())
        return FsyncProgram(
            state=SwarmState(resolved),
            controller=controller,
            check_connectivity=ctx.check_connectivity,
        )

    def compare_scenario(self, n: int) -> Scenario:
        # the line realizes the paper's Omega(n) diameter lower bound
        return Scenario(family="line", n=n)


@register_strategy
class TolerantStrategy:
    """The connectivity-tolerant variant of the paper's algorithm
    (:class:`~repro.core.tolerant.TolerantGatherOnGrid`): the stock
    plan filtered through the stationary-core subset-safety certificate,
    so *any* activation subset preserves connectivity — the SSYNC breaks
    the explorer certifies against the stock algorithm vanish by
    construction (``repro certify --strategy tolerant``).

    Options: ``controller`` — a pre-built controller to plug in, like
    the grid strategy."""

    key = "tolerant"
    description = (
        "connectivity-tolerant grid gathering (subset-safe move filter)"
    )
    schedulers = ("fsync", "ssync", "ssync-faulty", "async-lcm")
    default_scheduler = "fsync"
    compare_label = "tolerant"

    def resolve(self, scenario: Scenario, ctx: SimContext) -> List[Any]:
        return _grid_cells(scenario, ctx)

    def build(self, resolved: Any, ctx: SimContext) -> FsyncProgram:
        controller = ctx.options.pop("controller", None)
        if controller is None:
            controller = TolerantGatherOnGrid(
                ctx.config or AlgorithmConfig()
            )
        return FsyncProgram(
            state=SwarmState(resolved),
            controller=controller,
            check_connectivity=ctx.check_connectivity,
        )

    def compare_scenario(self, n: int) -> Scenario:
        return Scenario(family="line", n=n)


@register_strategy
class GlobalVisionStrategy:
    """Global-vision grid gathering ([SN14] flavour): everyone steps
    toward the enclosing-rectangle center.  Connectivity is not part of
    this model, so the check is always off."""

    key = "global"
    description = "global-vision gathering toward the bounding-box center"
    schedulers = ("fsync", "ssync", "ssync-faulty", "async-lcm")
    default_scheduler = "fsync"
    compare_label = "global"

    def resolve(self, scenario: Scenario, ctx: SimContext) -> List[Any]:
        return _grid_cells(scenario, ctx)

    def build(self, resolved: Any, ctx: SimContext) -> FsyncProgram:
        controller = GlobalVisionGatherer()
        return FsyncProgram(
            state=SwarmState(resolved),
            controller=controller,
            check_connectivity=False,
            extras_fn=lambda: {"total_moves": controller.total_moves},
        )

    def compare_scenario(self, n: int) -> Scenario:
        return Scenario(family="line", n=n)


@register_strategy
class AsyncGreedyStrategy:
    """The Section 1 remark: a simple greedy achieves O(n) rounds under
    a fair ASYNC scheduler.  ``simulate(seed=...)`` seeds the scheduler's
    activation order."""

    key = "async_greedy"
    description = "greedy gathering under the fair ASYNC scheduler"
    schedulers = ("async", "ssync", "ssync-faulty", "async-lcm")
    default_scheduler = "async"
    compare_label = "async"

    def resolve(self, scenario: Scenario, ctx: SimContext) -> List[Any]:
        return _grid_cells(scenario, ctx)

    def build(self, resolved: Any, ctx: SimContext) -> AsyncProgram:
        return AsyncProgram(
            state=SwarmState(resolved),
            controller=AsyncGreedyGatherer(),
            check_connectivity=ctx.check_connectivity,
        )

    def compare_scenario(self, n: int) -> Scenario:
        return Scenario(family="blob", n=n, seed=n)


# ----------------------------------------------------------------------
# Self-clocked FSYNC baselines (Euclidean, chains)
# ----------------------------------------------------------------------
class _EuclideanProgram:
    """Drives [DKL+11] go-to-center rounds over a continuous swarm."""

    def __init__(
        self,
        swarm: EuclideanSwarm,
        gather_diameter: float,
        record_diameter: bool,
    ) -> None:
        self.swarm = swarm
        self.gatherer = GoToCenterGatherer()
        self.gather_diameter = gather_diameter
        self.record_diameter = record_diameter
        self.diameters: List[float] = []
        self.robots_initial = len(swarm)

    def done(self) -> bool:
        return self.swarm.diameter() <= self.gather_diameter

    def default_budget(self) -> int:
        # the legacy gather_euclidean budget: generous Theta(n^2)
        n = self.robots_initial
        return 300 * n * n + 1000

    def step(
        self, round_index: int, metrics: MetricsLog, events: EventLog
    ) -> None:
        self.gatherer.step(self.swarm)
        self._record(round_index, metrics)

    def ssync_roster(self) -> List[int]:
        # Continuous robots never merge, so array indices are stable ids.
        return list(range(len(self.swarm)))

    def ssync_step(
        self,
        round_index: int,
        active: Any,
        metrics: MetricsLog,
        events: EventLog,
    ) -> Dict[int, int]:
        self.gatherer.step(self.swarm, active=set(active))
        self._record(round_index, metrics)
        return {}

    def _record(self, round_index: int, metrics: MetricsLog) -> None:
        diameter = self.swarm.diameter()
        if self.record_diameter:
            self.diameters.append(diameter)
        metrics.record(
            RoundMetrics(
                round_index=round_index,
                robots=len(self.swarm),
                merged=0,
                diameter=diameter,
            )
        )

    def view(self) -> StateView:
        return StateView(
            cells=tuple(tuple(p) for p in self.swarm.pos.tolist())
        )

    def result_fields(self) -> Dict[str, Any]:
        return {
            "robots_final": len(self.swarm),
            "final_state": self.swarm,
            "diameters": list(self.diameters),
            "gather_diameter": self.gather_diameter,
        }


@register_strategy
class EuclideanStrategy:
    """[DKL+11] go-to-center in the Euclidean plane (Theta(n^2) FSYNC).

    Scenario families: ``"circle"`` (the tight instance) or any grid
    family (cells become unit-spaced points, so 4-connected swarms stay
    unit-disk connected).  Options: ``view_range`` (default 1.0),
    ``gather_diameter`` (default 1.0), ``record_diameter`` (collect the
    per-round diameter series into ``extras["diameters"]``)."""

    key = "euclidean"
    description = "[DKL+11] Euclidean go-to-center (Theta(n^2) FSYNC)"
    schedulers = ("fsync", "ssync", "ssync-faulty", "async-lcm")
    default_scheduler = "fsync"
    compare_label = "euclid"

    def resolve(self, scenario: Scenario, ctx: SimContext) -> List[Any]:
        if scenario.payload is not None:
            return [tuple(p) for p in scenario.payload]
        if scenario.family == "circle":
            return worst_case_circle(scenario.n)
        cells = _grid_cells(scenario, ctx)
        return [(float(x), float(y)) for (x, y) in cells]

    def build(self, resolved: Any, ctx: SimContext) -> _EuclideanProgram:
        swarm = EuclideanSwarm(
            resolved, ctx.options.pop("view_range", 1.0)
        )
        if not swarm.is_connected():
            raise ValueError("initial Euclidean swarm must be connected")
        return _EuclideanProgram(
            swarm,
            ctx.options.pop("gather_diameter", 1.0),
            ctx.options.pop("record_diameter", False),
        )

    def compare_scenario(self, n: int) -> Scenario:
        return Scenario(family="circle", n=n)


class _ChainProgramBase:
    """Shared stepping for the chain gatherers: both wrap a stepper
    exposing ``.chain`` (the current cell list) and ``.step()`` (one
    FSYNC round); a shrinking chain is the merge analog, recorded as
    ``merge`` events and per-round metrics."""

    def __init__(self, stepper: Any) -> None:
        self.stepper = stepper
        self.robots_initial = len(stepper.chain)

    def step(
        self, round_index: int, metrics: MetricsLog, events: EventLog
    ) -> None:
        before = len(self.stepper.chain)
        self.stepper.step()
        self._record(round_index, before, metrics, events)

    def _record(
        self,
        round_index: int,
        before: int,
        metrics: MetricsLog,
        events: EventLog,
    ) -> None:
        chain = self.stepper.chain
        removed = before - len(chain)
        if removed:
            events.emit(round_index, "merge", removed=removed)
        metrics.record(
            RoundMetrics(
                round_index=round_index,
                robots=len(chain),
                merged=removed,
                diameter=_span(chain),
            )
        )

    def view(self) -> StateView:
        return StateView(cells=tuple(self.stepper.chain))

    def result_fields(self) -> Dict[str, Any]:
        chain = self.stepper.chain
        return {
            "robots_final": len(chain),
            "final_state": list(chain),
        }


class _ChainProgram(_ChainProgramBase):
    """Drives [KM09]-flavoured chain shortening rounds."""

    stepper: ChainShortener

    def __init__(self, stepper: ChainShortener) -> None:
        super().__init__(stepper)
        # Stable relay ids for the SSYNC roster, migrated through the
        # keep mask each round (removed relays drop out).
        self._ids = list(range(len(stepper.chain)))

    def done(self) -> bool:
        return self.stepper.is_minimal()

    def default_budget(self) -> int:
        return 50 * self.robots_initial + 100

    def ssync_roster(self) -> List[int]:
        return list(self._ids)

    def ssync_step(
        self,
        round_index: int,
        active: Any,
        metrics: MetricsLog,
        events: EventLog,
    ) -> Dict[int, int]:
        before = len(self.stepper.chain)
        mask = [relay_id in active for relay_id in self._ids]
        keep = self.stepper.step_active(mask)
        self._ids = [i for i, k in zip(self._ids, keep) if k]
        self._record(round_index, before, metrics, events)
        return {}

    def result_fields(self) -> Dict[str, Any]:
        fields = super().result_fields()
        fields.update(
            initial_length=self.robots_initial,
            final_length=fields["robots_final"],
            optimal_length=self.stepper.optimal_length,
        )
        return fields


@register_strategy
class ChainStrategy:
    """Open communication-chain shortening between fixed endpoints
    ([KM09] Hopper flavour).  ``gathered`` means "reached the minimal
    chain".  Scenario families: ``"hairpin"`` (the linear-round
    workload) and ``"zigzag"``; a payload is the chain itself."""

    key = "chain"
    description = "[KM09]-flavoured open-chain shortening (FSYNC)"
    schedulers = ("fsync", "ssync", "ssync-faulty", "async-lcm")
    default_scheduler = "fsync"
    compare_label = "chain"

    def resolve(self, scenario: Scenario, ctx: SimContext) -> List[Any]:
        if scenario.payload is not None:
            return list(scenario.payload)
        if scenario.family == "hairpin":
            # hairpin_chain(depth) has 2*depth + 3 links
            return hairpin_chain(max(1, (scenario.n - 3) // 2))
        if scenario.family == "zigzag":
            # zigzag_chain(steps) has ~7 links per step
            return zigzag_chain(max(1, scenario.n // 7))
        raise ValueError(
            f"chain strategy knows families 'hairpin'/'zigzag', "
            f"not {scenario.family!r}; pass the chain as payload instead"
        )

    def build(self, resolved: Any, ctx: SimContext) -> _ChainProgram:
        return _ChainProgram(ChainShortener(resolved))

    def compare_scenario(self, n: int) -> Scenario:
        return Scenario(family="hairpin", n=n)


class _ClosedChainProgram(_ChainProgramBase):
    """Drives the randomized closed-chain gatherer ([ACLF+16])."""

    stepper: ClosedChainGatherer

    def done(self) -> bool:
        return self.stepper.is_gathered()

    def default_budget(self) -> int:
        return 400 * self.robots_initial + 400

    def ssync_roster(self) -> List[int]:
        # The gatherer's linked-ring nodes already carry stable ids.
        return self.stepper.node_ids

    def ssync_step(
        self,
        round_index: int,
        active: Any,
        metrics: MetricsLog,
        events: EventLog,
    ) -> Dict[int, int]:
        before = len(self.stepper.chain)
        self.stepper.step(active_ids=set(active))
        self._record(round_index, before, metrics, events)
        return {}


@register_strategy
class ClosedChainStrategy:
    """The paper's predecessor: randomized closed-chain gathering
    ([ACLF+16], simplified).  ``simulate(seed=...)`` seeds the per-round
    coins.  Scenario family: ``"rectangle"`` (a rectangle-boundary
    chain); a payload is the cyclic chain itself."""

    key = "closed_chain"
    description = "[ACLF+16] randomized closed-chain gathering (FSYNC)"
    schedulers = ("fsync", "ssync", "ssync-faulty", "async-lcm")
    default_scheduler = "fsync"
    compare_label = "closed"

    def resolve(self, scenario: Scenario, ctx: SimContext) -> List[Any]:
        if scenario.payload is not None:
            return list(scenario.payload)
        if scenario.family == "rectangle":
            # rectangle_chain(s, s) has 4*s - 4 links
            side = max(2, scenario.n // 4 + 1)
            return rectangle_chain(side, side)
        raise ValueError(
            f"closed_chain strategy knows family 'rectangle', not "
            f"{scenario.family!r}; pass the cyclic chain as payload instead"
        )

    def build(self, resolved: Any, ctx: SimContext) -> _ClosedChainProgram:
        seed = ctx.seed if ctx.seed is not None else 0
        return _ClosedChainProgram(
            ClosedChainGatherer(resolved, seed=seed)
        )

    def compare_scenario(self, n: int) -> Scenario:
        return Scenario(family="rectangle", n=n)


# ----------------------------------------------------------------------
# The facade
# ----------------------------------------------------------------------
def _snapshot(state: Any) -> Any:
    if hasattr(state, "frozen"):
        return state.frozen()
    return tuple(sorted(state.cells if hasattr(state, "cells") else state))


def _chain_hooks(
    hooks: List[Callable[[int, Any], None]],
) -> Callable[[int, Any], None]:
    if len(hooks) == 1:
        return hooks[0]

    def call_all(round_index: int, state: Any) -> None:
        for hook in hooks:
            hook(round_index, state)

    return call_all


def simulate(
    scenario: Any,
    *,
    strategy: str = "grid",
    scheduler: Optional[str] = None,
    config: Optional[AlgorithmConfig] = None,
    max_rounds: Optional[int] = None,
    seed: Optional[int] = None,
    check_connectivity: bool = True,
    track_boundary: bool = False,
    on_round: Optional[Callable[[int, Any], None]] = None,
    record_trajectory: bool = False,
    trace: Optional[Any] = None,
    trace_meta: Optional[Dict[str, Any]] = None,
    **options: Any,
) -> RunResult:
    """Run any registered workload under any compatible scheduler.

    This is the repo's one simulation entry point: pick a workload from
    :data:`STRATEGIES`, a time model from :data:`SCHEDULERS`, and read
    everything off the returned
    :class:`~repro.engine.protocols.RunResult`.

    Parameters
    ----------
    scenario:
        A :class:`Scenario` (family + size, or explicit payload) or a
        raw sequence of cells/points/chain links.
    strategy, scheduler:
        Registry keys (see :data:`STRATEGIES` / :data:`SCHEDULERS`);
        ``scheduler`` defaults to the strategy's canonical time model.
        Every strategy also runs under ``"ssync"`` / ``"ssync-faulty"``
        (adversarial subset activation, optional fault injection — the
        scheduler options below).
    config:
        :class:`AlgorithmConfig` for the grid strategy (others ignore).
    max_rounds:
        Round budget; ``None`` uses the strategy's generous default.
    seed:
        One seed for everything stochastic: scenario generation (unless
        the Scenario pins its own), the ASYNC activation order, the
        closed chain's coins, the SSYNC activation policy and fault
        draws.  ``None`` keeps each component's legacy default, so
        unseeded calls are bit-identical to the old entry points (the
        SSYNC schedulers read ``None`` as seed 0 — always
        deterministic).
    check_connectivity:
        Verify the paper's connectivity invariant each round and raise
        :class:`~repro.engine.errors.ConnectivityViolation` on breakage
        (grid-state strategies only).
    on_round / record_trajectory / trace:
        Per-round hooks: a callback ``(round_index, state)``; collect
        :attr:`RunResult.trajectory` snapshots; write a JSONL trace to
        the given file handle (with strategy/scheduler/family metadata).
    options:
        Strategy-specific keywords (``view_range``, ``controller``, ...)
        and scheduler-specific keywords (for ``ssync``/``ssync-faulty``:
        ``activation``, ``activation_p``, ``rr_k``, ``k_fairness``,
        ``sleep_rate``, ``crash_rate`` — semantics in
        ``docs/schedulers.md``) — unknown ones raise, keeping call
        sites honest.

    Returns
    -------
    RunResult
        Uniform outcome: ``gathered``/``rounds``/population counts,
        per-round ``metrics``, a round-ordered ``events`` log (with
        ``activation``/``fault`` events under the SSYNC schedulers and
        a terminal ``gathered``/``budget_exhausted`` event always), the
        strategy's native ``final_state``, and strategy-specific
        ``extras``.
    """
    try:
        strat = STRATEGIES[strategy]
    except KeyError:
        raise KeyError(
            f"unknown strategy {strategy!r}; available: {sorted(STRATEGIES)}"
        ) from None
    scheduler_key = (
        scheduler if scheduler is not None else strat.default_scheduler
    )
    try:
        sched = SCHEDULERS[scheduler_key]
    except KeyError:
        raise KeyError(
            f"unknown scheduler {scheduler_key!r}; "
            f"available: {sorted(SCHEDULERS)}"
        ) from None
    if scheduler_key not in strat.schedulers:
        raise ValueError(
            f"strategy {strategy!r} supports schedulers "
            f"{strat.schedulers}, not {scheduler_key!r}"
        )

    sc = _as_scenario(scenario)
    ctx = SimContext(
        config=config,
        max_rounds=max_rounds,
        seed=seed,
        check_connectivity=check_connectivity,
        track_boundary=track_boundary,
        options=dict(options),
    )
    resolved = strat.resolve(sc, ctx)
    initial_diameter = _span(resolved)

    hooks: List[Callable[[int, Any], None]] = []
    trajectory: Optional[List[Any]] = None
    if record_trajectory:
        trajectory = []
        frames = trajectory  # local alias for the closure

        def record(round_index: int, state: Any) -> None:
            frames.append(_snapshot(state))

        hooks.append(record)
    if trace is not None:
        meta: Dict[str, Any] = {
            "strategy": strategy,
            "scheduler": scheduler_key,
        }
        if sc.family is not None:
            meta["family"] = sc.family
        if sc.n is not None:
            meta["n"] = sc.n
        meta.update(trace_meta or {})
        hooks.append(TraceRecorder(trace, meta=meta))
    if on_round is not None:
        hooks.append(on_round)
    ctx.on_round = _chain_hooks(hooks) if hooks else None

    program = strat.build(resolved, ctx)
    # Options the strategy's build() did not consume may still belong to
    # the scheduler (popped inside drive()); anything else is a typo and
    # must fail loudly before the run starts.
    scheduler_options = set(getattr(sched, "option_names", ()))
    unknown = set(ctx.options) - scheduler_options
    if unknown:
        accepts = (
            f"scheduler {scheduler_key!r} accepts "
            f"{sorted(scheduler_options)}"
            if scheduler_options
            else f"scheduler {scheduler_key!r} accepts no options"
        )
        raise TypeError(
            f"strategy {strategy!r} / scheduler {scheduler_key!r} got "
            f"unknown options {sorted(unknown)}; {accepts}; registered "
            f"schedulers: {sorted(SCHEDULERS)}"
        )
    result = sched.drive(program, ctx)
    result.strategy = strategy
    result.scheduler = scheduler_key
    result.trajectory = trajectory
    result.extras.setdefault("initial_diameter", initial_diameter)
    return result
