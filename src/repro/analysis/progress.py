"""Progress instrumentation mirroring the paper's proof machinery.

These functions are *analysis-only* (the distributed algorithm never calls
them): they let tests and figures verify the paper's structural claims —

* :func:`is_mergeless` — the global "Mergeless Swarm" predicate
  (Section 3.2);
* :func:`mergeless_structure` — the Lemma 1 structure theorem: in a
  mergeless swarm the outer boundary decomposes into quasi lines and
  stairways;
* :func:`find_progress_sites` — Lemma 1's existence claim: a mergeless
  swarm always offers run start sites forming a good pair.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Set

from repro.core.config import AlgorithmConfig
from repro.core.patterns import plan_merges
from repro.core.quasiline import StartSite, boundary_segments, run_start_sites
from repro.grid.boundary import extract_boundaries
from repro.grid.occupancy import SwarmState


def is_mergeless(state: SwarmState | Set, cfg: AlgorithmConfig | None = None) -> bool:
    """True when no merge pattern fires anywhere in the swarm."""
    cfg = cfg or AlgorithmConfig()
    swarm = state if isinstance(state, SwarmState) else SwarmState(state)
    moves, _ = plan_merges(swarm, cfg)
    return not moves


@dataclass(frozen=True)
class StructureReport:
    """Decomposition statistics of the outer boundary (Lemma 1)."""

    aligned_segments: int
    long_segments: int  # length >= 3 (quasi-line material)
    stair_segments: int  # length == 2 (stairway material)
    max_perpendicular_run: int


def mergeless_structure(state: SwarmState | Set) -> StructureReport:
    """Segment statistics of the outer boundary.

    The paper's Lemma 1 proof shows a mergeless boundary consists of quasi
    lines (aligned runs >= 3 joined by jogs <= 2) and stairways (alternating
    2-runs); tests assert that mergeless swarms indeed contain no aligned
    run that a merge pattern should have consumed.
    """
    swarm = state if isinstance(state, SwarmState) else SwarmState(state)
    outer = extract_boundaries(swarm)[0]
    segs = boundary_segments(outer)
    if not segs:
        return StructureReport(0, 0, 0, 0)
    long_segs = sum(1 for _, _, ln in segs if ln >= 3)
    stair_segs = sum(1 for _, _, ln in segs if ln == 2)
    max_run = max(ln for _, _, ln in segs)
    return StructureReport(
        aligned_segments=len(segs),
        long_segments=long_segs,
        stair_segments=stair_segs,
        max_perpendicular_run=max_run,
    )


@dataclass(frozen=True)
class ProgressAudit:
    """Empirical check of the paper's Theorem 1 accounting on one run.

    Lemma 1 says: every ``L`` rounds either a merge has been performed or a
    new progress pair (run) has started.  Theorem 1 then bounds the number
    of ``L``-windows by ``2 n``.  ``audit_result`` replays a simulation's
    event stream against exactly that bookkeeping.
    """

    windows: int
    windows_with_merge: int
    windows_with_start: int
    idle_windows: int  # neither merge nor run start: Lemma 1 violations
    max_run_lifetime: int
    runs_started: int
    runs_stopped: int

    @property
    def lemma1_holds(self) -> bool:
        return self.idle_windows == 0

    def theorem1_window_bound(self, n_robots: int) -> bool:
        """Theorem 1: at most ~2n windows of length L are needed."""
        return self.windows <= 2 * n_robots + 2


def audit_result(result, cfg: AlgorithmConfig | None = None) -> ProgressAudit:
    """Build a :class:`ProgressAudit` from a ``GatherResult``.

    ``result`` must come from :func:`repro.core.algorithm.gather` (its
    events carry ``merge`` / ``run_start`` / ``run_stop`` records).
    """
    cfg = cfg or AlgorithmConfig()
    L = cfg.run_start_interval
    merges = set(result.events.rounds_with("merge"))
    starts = set(result.events.rounds_with("run_start"))

    total_rounds = result.rounds
    windows = 0
    with_merge = 0
    with_start = 0
    idle = 0
    for w0 in range(0, max(total_rounds, 1), L):
        w1 = min(w0 + L, total_rounds)
        windows += 1
        has_merge = any(r in merges for r in range(w0, w1))
        has_start = any(r in starts for r in range(w0, w1))
        if has_merge:
            with_merge += 1
        if has_start:
            with_start += 1
        if not has_merge and not has_start and w1 - w0 == L:
            idle += 1

    born: dict = {}
    lifetime = 0
    stopped = 0
    for e in result.events:
        if e.kind == "run_start":
            born[e.data["run_id"]] = e.round_index
        elif e.kind == "run_stop":
            stopped += 1
            b = born.get(e.data["run_id"])
            if b is not None:
                lifetime = max(lifetime, e.round_index - b)
    return ProgressAudit(
        windows=windows,
        windows_with_merge=with_merge,
        windows_with_start=with_start,
        idle_windows=idle,
        max_run_lifetime=lifetime,
        runs_started=len(born),
        runs_stopped=stopped,
    )


def find_progress_sites(
    state: SwarmState | Set, cfg: AlgorithmConfig | None = None
) -> List[StartSite]:
    """Run start sites available right now (Lemma 1's progress pairs).

    For a mergeless, non-gathered swarm this must be non-empty — that is
    exactly the paper's progress guarantee, and the property tests assert
    it on every mergeless state they can construct.
    """
    cfg = cfg or AlgorithmConfig()
    swarm = state if isinstance(state, SwarmState) else SwarmState(state)
    boundaries = extract_boundaries(swarm)
    return run_start_sites(boundaries, cfg.start_straight_steps)
