"""Analysis layer: scaling fits, experiment sweeps, tables, progress checks."""

from repro.analysis.fitting import (
    FitResult,
    fit_linear,
    fit_power,
    fit_quadratic,
    scaling_exponent,
)
from repro.analysis.experiments import (
    ScalingPoint,
    run_scaling,
    sweep,
)
from repro.analysis.tables import format_table
from repro.analysis.progress import (
    ProgressAudit,
    audit_result,
    is_mergeless,
    mergeless_structure,
    find_progress_sites,
)
from repro.analysis.potentials import (
    PotentialTrace,
    is_monotone_nonincreasing,
    track_potentials,
)

__all__ = [
    "FitResult",
    "fit_linear",
    "fit_power",
    "fit_quadratic",
    "scaling_exponent",
    "ScalingPoint",
    "run_scaling",
    "sweep",
    "format_table",
    "ProgressAudit",
    "audit_result",
    "is_mergeless",
    "mergeless_structure",
    "find_progress_sites",
    "PotentialTrace",
    "is_monotone_nonincreasing",
    "track_potentials",
]
