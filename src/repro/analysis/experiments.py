"""Experiment sweep helpers shared by benchmarks and examples."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence

from repro.core.algorithm import gather
from repro.core.config import AlgorithmConfig
from repro.swarms.generators import family


@dataclass(frozen=True)
class ScalingPoint:
    """One measured point of a scaling experiment."""

    family: str
    n: int
    rounds: int
    gathered: bool
    merges: int
    diameter: int

    @property
    def rounds_per_n(self) -> float:
        return self.rounds / max(self.n, 1)


def run_scaling(
    family_name: str,
    sizes: Sequence[int],
    cfg: Optional[AlgorithmConfig] = None,
    *,
    check_connectivity: bool = True,
    max_rounds: Optional[int] = None,
) -> List[ScalingPoint]:
    """Gather swarms of each size from one family; collect round counts.

    ``n`` recorded is the *actual* robot count (generators hit the target
    only approximately for structured shapes).
    """
    points: List[ScalingPoint] = []
    for size in sizes:
        cells = family(family_name, size)
        from repro.grid.occupancy import SwarmState

        diameter = SwarmState(cells).diameter_chebyshev()
        result = gather(
            cells,
            cfg,
            check_connectivity=check_connectivity,
            max_rounds=max_rounds,
        )
        points.append(
            ScalingPoint(
                family=family_name,
                n=result.robots_initial,
                rounds=result.rounds,
                gathered=result.gathered,
                merges=result.merges_total,
                diameter=diameter,
            )
        )
    return points


def sweep(
    param_values: Sequence,
    make_cfg: Callable[[object], AlgorithmConfig],
    cells_factory: Callable[[], list],
    *,
    max_rounds: Optional[int] = None,
) -> Dict[object, int]:
    """Ablation helper: rounds-to-gather as a function of one parameter.

    Returns ``{value: rounds}``; a value that fails to gather within the
    budget maps to ``-1`` (benchmarks render it as "stalled").
    """
    out: Dict[object, int] = {}
    for value in param_values:
        result = gather(
            cells_factory(), make_cfg(value), max_rounds=max_rounds
        )
        out[value] = result.rounds if result.gathered else -1
    return out
