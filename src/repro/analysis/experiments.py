"""Experiment sweep helpers shared by benchmarks, the CLI, and examples.

Sweeps are embarrassingly parallel — each point is an independent
simulation — so every runner here accepts a ``workers`` argument and fans
the points out over the process-global sweep orchestrator
(:func:`repro.analysis.orchestrator.default_orchestrator`):

* tasks are described by picklable primitives (family name, size, seed,
  config dataclass), never closures;
* every task carries its own seed, so results are independent of worker
  count and scheduling;
* results are collected order-preserving and chunked — a parallel sweep
  returns bit-identical output to a serial one;
* the orchestrator's pool persists across calls, so a figure build
  that sweeps a dozen times pays one pool spawn, not twelve — and a
  worker that dies mid-sweep is respawned with its job requeued.

``workers=None`` (default) runs serially in-process; ``workers=0`` uses
one worker per CPU.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, replace
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.api import simulate
from repro.core.config import AlgorithmConfig
from repro.engine.protocols import Scenario


@dataclass(frozen=True)
class ScalingPoint:
    """One measured point of a scaling experiment."""

    family: str
    n: int
    rounds: int
    gathered: bool
    merges: int
    diameter: int
    strategy: str = "grid"
    scheduler: Optional[str] = None

    @property
    def rounds_per_n(self) -> float:
        return self.rounds / max(self.n, 1)


@dataclass(frozen=True)
class SweepJob:
    """One unit of sweep work (picklable: safe to ship to a worker).

    ``strategy`` and ``scheduler`` are :data:`repro.api.STRATEGIES` /
    :data:`repro.api.SCHEDULERS` keys, so sweeps cover the baselines and
    every time model through the same facade the CLI uses (strategy and
    scheduler objects never cross process boundaries — only the string
    keys do, and the worker resolves them against its own registry).
    ``options`` carries strategy/scheduler keyword options as a sorted
    tuple of ``(name, value)`` pairs — a picklable, hashable stand-in
    for the ``simulate(**options)`` dict."""

    family: str
    n: int
    seed: Optional[int] = None
    cfg: Optional[AlgorithmConfig] = None
    check_connectivity: bool = True
    max_rounds: Optional[int] = None
    strategy: str = "grid"
    scheduler: Optional[str] = None
    options: Tuple[Tuple[str, object], ...] = ()


def _resolve_workers(workers: Optional[int]) -> Optional[int]:
    """None -> serial; 0 -> one worker per CPU; n -> n workers."""
    if workers is None or workers == 1:
        return None
    if workers == 0:
        return os.cpu_count() or 1
    if workers < 0:
        raise ValueError(f"workers must be >= 0, got {workers}")
    return workers


def _map_maybe_parallel(
    fn,
    items,
    workers: Optional[int],
    *,
    chunksize: Optional[int] = None,
) -> list:
    """Order-preserving map, fanned over the shared orchestrator pool
    when requested.

    ``fn`` and every item must be picklable for the parallel path.
    ``chunksize`` batches items per worker task (default: sized for ~4
    chunks per worker).  The import is deliberately lazy — serial
    callers never touch multiprocessing.
    """
    pool_size = _resolve_workers(workers)
    if pool_size is None:
        return [fn(item) for item in items]
    from repro.analysis.orchestrator import default_orchestrator

    orch = default_orchestrator(pool_size)
    return orch.map(fn, items, chunksize=chunksize)


def run_job(job: SweepJob) -> ScalingPoint:
    """Execute one sweep job (also the process-pool entry point)."""
    result = simulate(
        Scenario(family=job.family, n=job.n, seed=job.seed),
        strategy=job.strategy,
        scheduler=job.scheduler,
        config=job.cfg,
        check_connectivity=job.check_connectivity,
        max_rounds=job.max_rounds,
        seed=job.seed,
        **dict(job.options),
    )
    return ScalingPoint(
        family=job.family,
        n=result.robots_initial,
        rounds=result.rounds,
        gathered=result.gathered,
        merges=result.merges_total,
        diameter=int(round(result.extras["initial_diameter"])),
        strategy=job.strategy,
        scheduler=result.scheduler,
    )


def run_jobs(
    jobs: Sequence[SweepJob], *, workers: Optional[int] = None
) -> List[ScalingPoint]:
    """Run sweep jobs, optionally across processes; order is preserved."""
    return _map_maybe_parallel(run_job, jobs, workers)


def run_scaling(
    family_name: str,
    sizes: Sequence[int],
    cfg: Optional[AlgorithmConfig] = None,
    *,
    strategy: str = "grid",
    scheduler: Optional[str] = None,
    scheduler_options: Optional[Dict[str, object]] = None,
    check_connectivity: bool = True,
    max_rounds: Optional[int] = None,
    seeds: Optional[Sequence[int]] = None,
    workers: Optional[int] = None,
) -> List[ScalingPoint]:
    """Gather swarms of each size from one family; collect round counts.

    ``n`` recorded is the *actual* robot count (generators hit the target
    only approximately for structured shapes).  ``seeds`` optionally
    provides a per-size seed for stochastic families; ``strategy`` sweeps
    any registered workload (baselines included) through the facade, and
    ``scheduler`` any registered time model (``None`` = the strategy's
    canonical one).  ``scheduler_options`` forwards keyword options, e.g.
    ``{"activation_p": 0.7}`` for SSYNC sweeps.
    """
    options = tuple(sorted((scheduler_options or {}).items()))
    jobs = [
        SweepJob(
            family=family_name,
            n=size,
            seed=seeds[i] if seeds is not None else None,
            cfg=cfg,
            check_connectivity=check_connectivity,
            max_rounds=max_rounds,
            strategy=strategy,
            scheduler=scheduler,
            options=options,
        )
        for i, size in enumerate(sizes)
    ]
    return run_jobs(jobs, workers=workers)


# ----------------------------------------------------------------------
# Ablations
# ----------------------------------------------------------------------
_AblationTask = Tuple[
    str, object, str, int, Optional[int], Optional[int]
]


def _run_ablation_point(task: _AblationTask) -> int:
    param_name, value, family_name, n, seed, max_rounds = task
    cfg = replace(AlgorithmConfig(), **{param_name: value})
    result = simulate(
        Scenario(family=family_name, n=n, seed=seed),
        config=cfg,
        max_rounds=max_rounds,
    )
    return result.rounds if result.gathered else -1


def run_ablation(
    param_name: str,
    values: Sequence,
    family_name: str,
    n: int,
    *,
    seed: Optional[int] = None,
    max_rounds: Optional[int] = None,
    workers: Optional[int] = None,
) -> Dict[object, int]:
    """Rounds-to-gather as a function of one AlgorithmConfig field.

    The picklable counterpart of :func:`sweep` (configs are built from
    ``(param_name, value)`` inside the worker, so the sweep can fan out
    over processes).  A value that fails to gather maps to ``-1``.
    """
    tasks: List[_AblationTask] = [
        (param_name, value, family_name, n, seed, max_rounds)
        for value in values
    ]
    results = _map_maybe_parallel(_run_ablation_point, tasks, workers)
    return dict(zip(values, results))


# ----------------------------------------------------------------------
# SSYNC robustness
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class RobustnessPoint:
    """One point of the SSYNC robustness experiment: a strategy on its
    worst-case family under uniform activation probability ``p``."""

    strategy: str
    n: int
    activation_p: float
    rounds: int
    gathered: bool


def run_robustness(
    strategies: Sequence[str],
    probs: Sequence[float],
    n: int,
    *,
    k_fairness: int = 8,
    seed: int = 0,
    max_rounds: Optional[int] = None,
    workers: Optional[int] = None,
) -> List[RobustnessPoint]:
    """Gathering time vs SSYNC activation probability, per strategy.

    Each strategy runs on its own worst-case/showcase family (the
    ``compare_scenario`` hook) under ``scheduler="ssync"`` with the
    ``uniform`` policy at each probability in ``probs`` — the
    degradation curve the SSYNC literature judges strategies by
    (rendered by figure ``fig22``).  Connectivity checking is off: the
    paper's safety argument assumes FSYNC simultaneity, and measuring
    degradation past the breakage point is exactly the purpose.
    """
    from repro.api import STRATEGIES

    jobs = []
    for key in strategies:
        scenario = STRATEGIES[key].compare_scenario(n)
        for p in probs:
            jobs.append(
                SweepJob(
                    family=scenario.family,
                    n=scenario.n,
                    seed=seed if scenario.seed is None else scenario.seed,
                    check_connectivity=False,
                    max_rounds=max_rounds,
                    strategy=key,
                    scheduler="ssync",
                    options=(
                        ("activation", "uniform"),
                        ("activation_p", p),
                        ("k_fairness", k_fairness),
                    ),
                )
            )
    points = run_jobs(jobs, workers=workers)
    out: List[RobustnessPoint] = []
    i = 0
    for key in strategies:
        for p in probs:
            point = points[i]
            i += 1
            out.append(
                RobustnessPoint(
                    strategy=key,
                    n=point.n,
                    activation_p=p,
                    rounds=point.rounds,
                    gathered=point.gathered,
                )
            )
    return out


# ----------------------------------------------------------------------
# Fault axes (sleep / crash / byzantine)
# ----------------------------------------------------------------------
#: Fault axis name -> the scheduler option it sweeps.
FAULT_AXES = {
    "sleep": "sleep_rate",
    "crash": "crash_rate",
    "byzantine": "byzantine_rate",
}


@dataclass(frozen=True)
class FaultAxisPoint:
    """One point of the fault-axis experiment: a strategy on its
    worst-case family under one fault model at one rate."""

    strategy: str
    axis: str
    rate: float
    n: int
    rounds: int
    gathered: bool
    merges: int


def run_fault_axes(
    strategies: Sequence[str],
    axes: Sequence[str],
    rates: Sequence[float],
    n: int,
    *,
    activation_p: float = 0.8,
    k_fairness: int = 8,
    seed: int = 0,
    max_rounds: Optional[int] = None,
    workers: Optional[int] = None,
) -> List[FaultAxisPoint]:
    """Gathering time vs fault rate, per strategy and fault axis.

    Each strategy runs on its own worst-case/showcase family under the
    faulty SSYNC scheduler, sweeping exactly one fault knob per axis —
    ``sleep`` (transient omission), ``crash`` (crash-stop), or
    ``byzantine`` (adversarial robots: stale views, off-plan hops,
    playing dead) — with the others at zero.  Connectivity checking is
    off for the same reason as :func:`run_robustness`: degradation past
    the stock algorithm's breakage point is the measurement (the
    ``tolerant`` strategy is the one expected to survive it).  Rendered
    by figure ``fig23``.
    """
    from repro.api import STRATEGIES

    unknown = sorted(set(axes) - set(FAULT_AXES))
    if unknown:
        raise ValueError(
            f"unknown fault axes {unknown}; expected a subset of "
            f"{sorted(FAULT_AXES)}"
        )
    jobs = []
    combos: List[Tuple[str, str, float]] = []
    for key in strategies:
        scenario = STRATEGIES[key].compare_scenario(n)
        for axis in axes:
            option = FAULT_AXES[axis]
            for rate in rates:
                combos.append((key, axis, rate))
                jobs.append(
                    SweepJob(
                        family=scenario.family,
                        n=scenario.n,
                        seed=seed if scenario.seed is None else scenario.seed,
                        check_connectivity=False,
                        max_rounds=max_rounds,
                        strategy=key,
                        scheduler="ssync-faulty",
                        options=(
                            ("activation", "uniform"),
                            ("activation_p", activation_p),
                            ("k_fairness", k_fairness),
                            (option, rate),
                        ),
                    )
                )
    points = run_jobs(jobs, workers=workers)
    return [
        FaultAxisPoint(
            strategy=key,
            axis=axis,
            rate=rate,
            n=point.n,
            rounds=point.rounds,
            gathered=point.gathered,
            merges=point.merges,
        )
        for (key, axis, rate), point in zip(combos, points)
    ]


def sweep(
    param_values: Sequence,
    make_cfg: Callable[[object], AlgorithmConfig],
    cells_factory: Callable[[], list],
    *,
    max_rounds: Optional[int] = None,
) -> Dict[object, int]:
    """Ablation helper over arbitrary callables (serial only: closures do
    not pickle — use :func:`run_ablation` for the parallel path).

    Returns ``{value: rounds}``; a value that fails to gather within the
    budget maps to ``-1`` (benchmarks render it as "stalled").
    """
    out: Dict[object, int] = {}
    for value in param_values:
        result = simulate(
            cells_factory(), config=make_cfg(value), max_rounds=max_rounds
        )
        out[value] = result.rounds if result.gathered else -1
    return out
