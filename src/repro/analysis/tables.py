"""Plain-text table rendering for benchmark output.

The benchmarks print the series/rows each experiment regenerates; keeping
the renderer dependency-free means ``pytest benchmarks/ -s`` shows the
paper-shaped output anywhere.
"""

from __future__ import annotations

from typing import Iterable, List, Sequence


def format_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[object]],
    title: str | None = None,
) -> str:
    """Render an aligned monospace table."""
    str_rows: List[List[str]] = [[_fmt(v) for v in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        if len(row) != len(headers):
            raise ValueError("row length does not match headers")
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    sep = "-+-".join("-" * w for w in widths)
    lines: List[str] = []
    if title:
        lines.append(title)
    lines.append(" | ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append(sep)
    for row in str_rows:
        lines.append(" | ".join(c.rjust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def _fmt(v: object) -> str:
    if isinstance(v, float):
        return f"{v:.3f}"
    return str(v)
