"""Machine-checked small-``n`` bound certification.

:func:`run_certification` drives the nondeterminism explorer
(:mod:`repro.explore`) over *every* fixed polyomino of each size and
distills the exhaustive closures into one table per ``n``:

* the exact worst-case FSYNC gathering rounds over all seed shapes,
  checked against the linear budget (``40 n + 40``, the bound the
  exhaustive suite has always enforced) — and cross-checked against the
  DAG's own full-activation path, so the explorer and the engine vouch
  for each other;
* how many shapes an unrestricted SSYNC adversary can disconnect, the
  earliest violation round, and the smallest k-fairness boundary found
  among the scanned witnesses (a witness with ``fairness_k = K`` proves
  a K-fair adversary suffices to break safety);
* a D4 symmetry audit: seed shapes that are rotations/reflections of
  each other must certify to identical *verdicts* (worst-case FSYNC
  rounds and earliest violation depth).  Rotational equivariance is
  *not* assumed by the explorer (its state key only factors out
  translation), and the planner's lexicographic tie-breaks are in fact
  not rotation-equivariant — rotated seeds can traverse slightly
  different intermediate state sets — so the audit compares outcomes,
  not mechanism.  This check turns the sweep itself into an empirical
  verdict-equivariance certificate.

The minimal witness of the smallest breakable size is replayed through
the stock SSYNC scheduler before the report is returned
(``witness_verified``), so a green certification is end-to-end: search,
dedup, reconstruction, and engine agree bit for bit.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.analysis.tables import format_table
from repro.core.config import AlgorithmConfig
from repro.engine.scheduler import FsyncEngine
from repro.errors import InvariantError
from repro.explore.driver import StateDag, explore
from repro.explore.witness import Witness, build_witness, verify_witness
from repro.grid.canonical import d4_normal_form
from repro.grid.occupancy import SwarmState
from repro.swarms.enumerate import all_polyominoes


def fsync_budget(n: int) -> int:
    """The linear round budget the exhaustive suite certifies against."""
    return 40 * n + 40


def _fsync_rounds(
    cells, cfg: AlgorithmConfig, budget: int, strategy: str = "grid"
) -> int:
    """Exact FSYNC rounds to gather (raises if the budget is blown —
    a budget violation at certified sizes is a finding, not a datum)."""
    from repro.trace.replay import grid_controller_class

    controller = grid_controller_class(strategy)(cfg)
    engine = FsyncEngine(SwarmState(list(cells)), controller)
    result = engine.run(max_rounds=budget)
    if not result.gathered:
        raise InvariantError(
            f"shape {sorted(cells)} failed to gather under FSYNC "
            f"within {budget} rounds"
        )
    return result.rounds


def _fsync_path_rounds(dag: StateDag) -> Optional[int]:
    """Rounds along the DAG's full-activation path (every planned mover
    activated every round), or ``None`` if the path leaves the DAG —
    must equal the engine's FSYNC rounds when the closure is complete."""
    key = dag.root
    rounds = 0
    while True:
        node = dag.nodes[key]
        if node.status == "gathered":
            return rounds
        if node.status != "open" or node.edges is None:
            return None
        full = max(node.edges, key=lambda e: len(e.choice))
        key = full.child
        rounds += 1
        if rounds > len(dag.nodes):
            return None


def certify_shape(
    cells,
    *,
    cfg: Optional[AlgorithmConfig] = None,
    max_nodes: int = 200_000,
    scan_witnesses: int = 8,
    strategy: str = "grid",
    symmetry: str = "translation",
) -> Dict[str, object]:
    """The certification record of one seed shape (exhaustive mode).

    ``strategy`` certifies the stock algorithm (``"grid"``) or its
    connectivity-``"tolerant"`` variant; ``symmetry="d4"`` accelerates
    the closure by folding rotations/reflections into the state key
    (verdicts only — witness scanning is skipped on D4 DAGs).
    """
    cfg = cfg or AlgorithmConfig()
    cells = sorted(cells)
    budget = fsync_budget(len(cells))
    dag = explore(
        cells, cfg=cfg, mode="exhaustive", max_nodes=max_nodes,
        strategy=strategy, symmetry=symmetry,
    )
    counts = dag.counts()
    fsync_rounds = _fsync_rounds(cells, cfg, budget, strategy)
    path_rounds = _fsync_path_rounds(dag)

    violation_depth: Optional[int] = None
    fairness_k: Optional[int] = None
    witness: Optional[Witness] = None
    broken = dag.nodes_of_status("disconnected")
    if broken:
        violation_depth = broken[0].depth
        # The earliest witness is the headline; scanning a few more
        # minimizes the reported k-fairness boundary.  D4 DAGs carry no
        # exact frames, so witness extraction is skipped there (the
        # verdict fields still stand).
        if symmetry == "translation":
            for node in broken[:scan_witnesses]:
                candidate = build_witness(dag, target=node.key, cfg=cfg)
                if fairness_k is None or candidate.fairness_k < fairness_k:
                    fairness_k = candidate.fairness_k
                    witness = candidate
    return {
        "cells": tuple(cells),
        "free_form": d4_normal_form(cells),
        "states": counts["total"],
        "edges": counts["edges"],
        "complete": dag.complete,
        "fsync_rounds": fsync_rounds,
        "fsync_path_rounds": path_rounds,
        "violation_depth": violation_depth,
        "fairness_k": fairness_k,
        "witness": witness,
    }


def run_certification(
    max_n: int = 6,
    min_n: int = 3,
    *,
    cfg: Optional[AlgorithmConfig] = None,
    max_nodes: int = 200_000,
    scan_witnesses: int = 8,
    verify: bool = True,
    strategy: str = "grid",
    symmetry: str = "translation",
) -> Dict[str, object]:
    """Certify every fixed polyomino of sizes ``min_n..max_n``.

    Returns ``{"rows": [...], "overall_ok": bool, "witness": ...}``;
    see the module docstring for the row fields.  ``verify=True``
    replays each size's minimal-``k`` witness through the stock SSYNC
    scheduler and records the bit-identity verdict.  ``strategy``
    selects the certified grid-state algorithm (stock ``"grid"`` or the
    connectivity-``"tolerant"`` variant); ``symmetry="d4"`` folds
    rotations/reflections into the explorer's dedup key — verdicts must
    (and, per the D4 audit, empirically do) match the translation-only
    sweep, but witness extraction/verification is skipped.
    """
    cfg = cfg or AlgorithmConfig()
    rows: List[Dict[str, object]] = []
    headline: Optional[Witness] = None
    overall_ok = True
    for n in range(min_n, max_n + 1):
        shapes = [certify_shape(
            shape,
            cfg=cfg,
            max_nodes=max_nodes,
            scan_witnesses=scan_witnesses,
            strategy=strategy,
            symmetry=symmetry,
        ) for shape in all_polyominoes(n)]
        complete = all(s["complete"] for s in shapes)
        max_fsync = max(s["fsync_rounds"] for s in shapes)
        bound = fsync_budget(n)
        path_consistent = all(
            s["fsync_path_rounds"] == s["fsync_rounds"] for s in shapes
        )
        breakable = [s for s in shapes if s["violation_depth"] is not None]

        # D4 audit: symmetric seed shapes must reach identical verdicts.
        # DAG sizes are deliberately excluded — the planner's lex
        # tie-breaks are translation- but not rotation-equivariant, so
        # rotated seeds may visit slightly different intermediate
        # states while certifying to the same bounds.
        groups: Dict[tuple, List[tuple]] = {}
        for s in shapes:
            signature = (
                s["fsync_rounds"],
                s["violation_depth"],
            )
            groups.setdefault(s["free_form"], []).append(signature)
        symmetry_consistent = all(
            len(set(signatures)) == 1 for signatures in groups.values()
        )

        min_violation = (
            min(s["violation_depth"] for s in breakable)
            if breakable
            else None
        )
        fairness_values = [
            s["fairness_k"] for s in breakable if s["fairness_k"] is not None
        ]
        min_fairness = min(fairness_values) if fairness_values else None

        witness_verified: Optional[bool] = None
        with_witness = [s for s in breakable if s["witness"] is not None]
        if verify and with_witness:
            best = min(
                with_witness,
                key=lambda s: (s["fairness_k"], s["violation_depth"]),
            )
            witness_verified = verify_witness(best["witness"], cfg=cfg)
            if headline is None:
                headline = best["witness"]

        ok = (
            complete
            and max_fsync <= bound
            and path_consistent
            and symmetry_consistent
            and witness_verified is not False
        )
        overall_ok = overall_ok and ok
        rows.append(
            {
                "n": n,
                "shapes": len(shapes),
                "free_shapes": len(groups),
                "states": sum(s["states"] for s in shapes),
                "complete": complete,
                "max_fsync_rounds": max_fsync,
                "fsync_bound": bound,
                "fsync_bound_ok": max_fsync <= bound,
                "fsync_path_consistent": path_consistent,
                "breakable_shapes": len(breakable),
                "min_violation_round": min_violation,
                "min_fairness_k": min_fairness,
                "symmetry_consistent": symmetry_consistent,
                "witness_verified": witness_verified,
                "ok": ok,
            }
        )
    return {
        "min_n": min_n,
        "max_n": max_n,
        "strategy": strategy,
        "symmetry": symmetry,
        "rows": rows,
        "overall_ok": overall_ok,
        "witness": headline,
    }


def format_certification(report: Dict[str, object]) -> str:
    """Render the per-``n`` certification rows as an aligned table."""
    headers = [
        "n",
        "shapes",
        "states",
        "fsync worst",
        "bound",
        "breakable",
        "first break",
        "min k",
        "symmetric",
        "verified",
        "ok",
    ]
    table_rows = [
        [
            row["n"],
            row["shapes"],
            row["states"],
            row["max_fsync_rounds"],
            row["fsync_bound"],
            row["breakable_shapes"],
            (
                row["min_violation_round"]
                if row["min_violation_round"] is not None
                else "-"
            ),
            (
                row["min_fairness_k"]
                if row["min_fairness_k"] is not None
                else "-"
            ),
            "yes" if row["symmetry_consistent"] else "NO",
            (
                "yes"
                if row["witness_verified"]
                else ("-" if row["witness_verified"] is None else "NO")
            ),
            "yes" if row["ok"] else "NO",
        ]
        for row in report["rows"]
    ]
    title = (
        f"SSYNC certification sweep "
        f"({report.get('strategy', 'grid')} strategy, "
        f"{report.get('symmetry', 'translation')} dedup), "
        f"all fixed polyominoes "
        f"n={report['min_n']}..{report['max_n']}"
    )
    return format_table(headers, table_rows, title=title)
