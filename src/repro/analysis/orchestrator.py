"""The sweep orchestrator: one persistent pool for every experiment.

Sweeps are embarrassingly parallel, but the seed's per-call
``ProcessPoolExecutor`` paid a full pool spawn for every
``run_scaling`` / ``run_ablation`` / ``run_robustness`` call — dozens
of times per figure build.  :class:`SweepOrchestrator` keeps one
:class:`~repro.engine.executors.PersistentWorkerPool` alive across
calls (the process-global :func:`default_orchestrator` is what
``experiments._map_maybe_parallel`` routes through), adds job-level
submit/poll/collect with stable ids, and inherits the pool's death
handling: a worker SIGKILLed mid-sweep is respawned, its job requeued,
and the sweep's results are identical to an undisturbed run
(``tests/test_orchestrator.py`` kills workers to pin this).

For long simulations :class:`SweepJobStore` adds durability on top:
jobs live in a directory (``spec.json`` + ``results/*.json`` +
``traces/*.jsonl``), grid-strategy jobs record checkpointed traces
(:class:`~repro.trace.recorder.CheckpointRecorder`), and
:func:`run_store` resumes interrupted jobs from their last checkpoint
instead of from round zero — the CLI's ``sweep`` subcommands are a thin
shell over this module.

Determinism: results never depend on worker count, scheduling, or
recovery.  Jobs are pure functions of their (picklable) descriptions,
collection is keyed by stable ids, and ``collect`` returns results in
submission order.
"""

from __future__ import annotations

import atexit
import dataclasses
import json
import os
from pathlib import Path
from typing import (
    Callable,
    Dict,
    Iterator,
    List,
    Optional,
    Sequence,
    Tuple,
    Union,
)

from repro.analysis.experiments import ScalingPoint, SweepJob, run_job
from repro.core.config import AlgorithmConfig
from repro.engine.executors import (
    OnEvent,
    PersistentWorkerPool,
    WorkerTaskError,
)

#: Collection wait modes: ``gather`` blocks for everything and returns
#: submission order; ``yield`` streams ``(job_id, result)`` pairs in
#: completion order.
WAIT_MODES = ("gather", "yield")


def _run_chunk(fn: Callable, chunk: tuple) -> list:
    """Worker task behind :meth:`SweepOrchestrator.map`: apply ``fn``
    over one chunk of items, preserving order."""
    return [fn(item) for item in chunk]


class SweepOrchestrator:
    """Job-level orchestration over one persistent worker pool.

    ``workers`` is the pool size (default: ``min(4, cpus)``); the pool
    is created lazily on first use and grows (never shrinks) via
    :meth:`ensure_workers`.  ``on_event`` hears the pool's
    ``worker_failed`` / ``worker_respawned`` telemetry; every event is
    also appended to :attr:`worker_events` for inspection.
    """

    def __init__(
        self,
        workers: Optional[int] = None,
        *,
        on_event: Optional[OnEvent] = None,
        task_timeout: Optional[float] = None,
    ) -> None:
        if workers is None:
            workers = min(4, os.cpu_count() or 1)
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        self._workers = workers
        self._user_on_event = on_event
        self._task_timeout = task_timeout
        self._pool_obj: Optional[PersistentWorkerPool] = None
        self._closed = False
        #: Lifecycle telemetry log: ``(kind, data)`` pairs.
        self.worker_events: List[Tuple[str, dict]] = []
        self._next_job = 1
        self._order: List[str] = []  # submission order
        self._task_of: Dict[str, int] = {}
        self._job_of: Dict[int, str] = {}
        self._done: Dict[str, Tuple[bool, object]] = {}

    # -- pool lifecycle ------------------------------------------------
    def _on_event(self, kind: str, **data) -> None:
        self.worker_events.append((kind, data))
        if self._user_on_event is not None:
            self._user_on_event(kind, **data)

    def _pool(self) -> PersistentWorkerPool:
        if self._closed:
            raise RuntimeError("orchestrator is closed")
        if self._pool_obj is None:
            self._pool_obj = PersistentWorkerPool(
                self._workers,
                on_event=self._on_event,
                task_timeout=self._task_timeout,
                daemon=False,  # sweep jobs may nest planning pools
            )
        return self._pool_obj

    @property
    def closed(self) -> bool:
        return self._closed

    def ensure_workers(self, workers: int) -> None:
        """Grow the pool to at least ``workers``."""
        self._workers = max(self._workers, workers)
        if self._pool_obj is not None:
            self._pool_obj.ensure_workers(self._workers)

    def worker_pids(self) -> List[int]:
        """Live worker pids (tests kill these to exercise recovery)."""
        return self._pool().worker_pids()

    def close(self) -> None:
        """Stop the pool; idempotent.  Uncollected jobs are dropped."""
        self._closed = True
        if self._pool_obj is not None:
            pool = self._pool_obj
            self._pool_obj = None
            pool.close()

    def __enter__(self) -> "SweepOrchestrator":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.close()
        return False

    # -- job submission / collection -----------------------------------
    def submit_task(
        self, fn: Callable, args: tuple = ()
    ) -> str:
        """Queue one arbitrary call as a job; returns its stable id.

        The generic entry point under :meth:`submit` — ``fn`` and
        ``args`` must be picklable (module-level function, plain-data
        arguments).  The serving layer
        (:mod:`repro.service.workers`) dispatches its run executions
        through this, sharing the persistent pool, the stable-id
        bookkeeping, and the pool's respawn-and-requeue recovery with
        the sweep machinery.
        """
        job_id = f"job-{self._next_job:06d}"
        self._next_job += 1
        task_id = self._pool().submit(fn, tuple(args))
        self._order.append(job_id)
        self._task_of[job_id] = task_id
        self._job_of[task_id] = job_id
        return job_id

    def submit(self, job: SweepJob) -> str:
        """Queue one sweep job; returns its stable id (``job-000001``,
        numbered in submission order)."""
        return self.submit_task(run_job, (job,))

    def submit_all(self, jobs: Sequence[SweepJob]) -> List[str]:
        return [self.submit(job) for job in jobs]

    def _route(self, task_id: int, ok: bool, value: object) -> None:
        job_id = self._job_of.pop(task_id, None)
        if job_id is not None:
            self._done[job_id] = (ok, value)

    def _unwrap(self, job_id: str) -> ScalingPoint:
        ok, value = self._done[job_id]
        if ok:
            return value
        if isinstance(value, BaseException):
            raise value
        raise WorkerTaskError(f"sweep job {job_id} failed:\n{value}")

    def outcome(self, job_id: str) -> Optional[Tuple[bool, object]]:
        """The raw ``(ok, value)`` of a completed job, else ``None``.

        Non-blocking and non-raising (unlike :meth:`collect`):
        ``value`` is the task's return value when ``ok`` or its
        exception/traceback text when not.  Call :meth:`poll` first to
        drain newly completed tasks.  Unknown ids raise ``KeyError``.
        """
        if job_id not in self._done and job_id not in self._task_of:
            raise KeyError(f"unknown job id: {job_id}")
        return self._done.get(job_id)

    def poll(self) -> Dict[str, str]:
        """Non-blocking status of every submitted job:
        ``pending`` / ``done`` / ``failed``."""
        if self._pool_obj is not None:
            while True:
                item = self._pool_obj.next_completed(timeout=0)
                if item is None:
                    break
                self._route(*item)
        out: Dict[str, str] = {}
        for job_id in self._order:
            if job_id not in self._done:
                out[job_id] = "pending"
            else:
                ok, _ = self._done[job_id]
                out[job_id] = "done" if ok else "failed"
        return out

    def collect(
        self, *, mode: str = "gather"
    ) -> Union[
        List[Tuple[str, ScalingPoint]],
        Iterator[Tuple[str, ScalingPoint]],
    ]:
        """Collect every submitted job's result.

        ``mode="gather"`` blocks until all jobs finish and returns
        ``(job_id, point)`` pairs in submission order; ``mode="yield"``
        returns an iterator streaming pairs in completion order (useful
        for progress display — a slow job does not gate the rest).
        Either mode raises on a failed job (a task that exhausted the
        pool's retry budget surfaces its
        :class:`~repro.engine.executors.WorkerCrashLoop`).
        """
        if mode not in WAIT_MODES:
            raise ValueError(
                f"mode must be one of {WAIT_MODES}, got {mode!r}"
            )
        if mode == "gather":
            self._wait_for(
                {
                    self._task_of[jid]
                    for jid in self._order
                    if jid not in self._done
                }
            )
            return [(jid, self._unwrap(jid)) for jid in self._order]
        return self._iter_completed()

    def _wait_for(self, task_ids: set) -> None:
        pool = self._pool()
        while task_ids:
            item = pool.next_completed()
            if item is None:
                raise RuntimeError(
                    f"pool went idle with {len(task_ids)} tasks "
                    f"uncollected"
                )
            task_id, ok, value = item
            task_ids.discard(task_id)
            self._route(task_id, ok, value)

    def _iter_completed(self) -> Iterator[Tuple[str, ScalingPoint]]:
        pending = [
            jid for jid in self._order if jid not in self._done
        ]
        emitted = set()
        # Anything already collected streams out first.
        for jid in self._order:
            if jid in self._done:
                emitted.add(jid)
                yield jid, self._unwrap(jid)
        want = {self._task_of[jid] for jid in pending}
        pool = self._pool()
        while want:
            item = pool.next_completed()
            if item is None:
                raise RuntimeError(
                    f"pool went idle with {len(want)} jobs uncollected"
                )
            task_id, ok, value = item
            want.discard(task_id)
            self._route(task_id, ok, value)
            jid = next(
                (
                    j
                    for j in self._order
                    if j in self._done and j not in emitted
                ),
                None,
            )
            while jid is not None:
                emitted.add(jid)
                yield jid, self._unwrap(jid)
                jid = next(
                    (
                        j
                        for j in self._order
                        if j in self._done and j not in emitted
                    ),
                    None,
                )

    # -- order-preserving map ------------------------------------------
    def map(
        self,
        fn: Callable,
        items: Sequence,
        *,
        chunksize: Optional[int] = None,
    ) -> list:
        """Order-preserving parallel map over the persistent pool.

        ``fn`` and every item must be picklable.  ``chunksize`` batches
        items per worker task (default: ~4 chunks per worker) —
        per-task IPC is one pickle either way, so batching amortizes
        dispatch for large sweeps without hurting small ones.
        """
        items = list(items)
        if not items:
            return []
        if chunksize is None:
            chunksize = max(
                1, -(-len(items) // (self._workers * 4))
            )
        if chunksize < 1:
            raise ValueError(
                f"chunksize must be >= 1, got {chunksize}"
            )
        chunks = [
            tuple(items[i : i + chunksize])
            for i in range(0, len(items), chunksize)
        ]
        pool = self._pool()
        ids = [
            pool.submit(_run_chunk, (fn, chunk)) for chunk in chunks
        ]
        want = set(ids)
        got: Dict[int, Tuple[bool, object]] = {}
        while want:
            item = pool.next_completed()
            if item is None:
                raise RuntimeError(
                    f"pool went idle with {len(want)} chunks "
                    f"uncollected"
                )
            task_id, ok, value = item
            if task_id in want:
                want.discard(task_id)
                got[task_id] = (ok, value)
            else:
                # A sweep job's completion surfaced mid-map: route it
                # to its job record instead of dropping it.
                self._route(task_id, ok, value)
        out: list = []
        for task_id in ids:
            ok, value = got[task_id]
            if not ok:
                if isinstance(value, BaseException):
                    raise value
                raise WorkerTaskError(
                    f"parallel map task failed:\n{value}"
                )
            out.extend(value)
        return out


# ----------------------------------------------------------------------
# The process-global orchestrator (experiments route through this)
# ----------------------------------------------------------------------
_DEFAULT: Optional[SweepOrchestrator] = None


def default_orchestrator(
    workers: Optional[int] = None,
) -> SweepOrchestrator:
    """The shared orchestrator: one pool reused by every
    ``run_scaling`` / ``run_ablation`` / ``run_robustness`` call in the
    process (grown to the largest ``workers`` ever requested, closed at
    interpreter exit)."""
    global _DEFAULT
    if _DEFAULT is None or _DEFAULT.closed:
        _DEFAULT = SweepOrchestrator(workers)
    elif workers is not None:
        _DEFAULT.ensure_workers(workers)
    return _DEFAULT


def _close_default() -> None:
    global _DEFAULT
    if _DEFAULT is not None:
        orch = _DEFAULT
        _DEFAULT = None
        orch.close()


atexit.register(_close_default)


# ----------------------------------------------------------------------
# Durable job stores (the CLI's ``sweep`` subcommands)
# ----------------------------------------------------------------------
def _job_to_dict(job: SweepJob) -> dict:
    return {
        "family": job.family,
        "n": job.n,
        "seed": job.seed,
        "cfg": (
            None if job.cfg is None else dataclasses.asdict(job.cfg)
        ),
        "check_connectivity": job.check_connectivity,
        "max_rounds": job.max_rounds,
        "strategy": job.strategy,
        "scheduler": job.scheduler,
        "options": [list(pair) for pair in job.options],
    }


def _job_from_dict(data: dict) -> SweepJob:
    cfg = data.get("cfg")
    return SweepJob(
        family=data["family"],
        n=int(data["n"]),
        seed=data.get("seed"),
        cfg=None if cfg is None else AlgorithmConfig(**cfg),
        check_connectivity=bool(data.get("check_connectivity", True)),
        max_rounds=data.get("max_rounds"),
        strategy=data.get("strategy", "grid"),
        scheduler=data.get("scheduler"),
        options=tuple(
            (str(k), v) for k, v in data.get("options", ())
        ),
    )


class SweepJobStore:
    """A sweep as a directory: durable specs, results, and traces.

    Layout::

        <root>/spec.json            the job list (written once)
        <root>/results/<id>.json    one result or failure per job
        <root>/traces/<id>.jsonl    checkpointed trace (grid jobs)

    Job ids are ``job-000001`` ... in spec order — stable across
    processes, so ``sweep status`` / ``collect`` / resumed ``run``
    invocations all agree.  Results are written atomically (temp file +
    rename) by whichever worker finishes the job.
    """

    def __init__(self, root: Union[str, Path]) -> None:
        self.root = Path(root)

    # -- creation / opening --------------------------------------------
    @classmethod
    def create(
        cls, root: Union[str, Path], jobs: Sequence[SweepJob]
    ) -> "SweepJobStore":
        store = cls(root)
        if store.spec_path.exists():
            raise FileExistsError(
                f"sweep store already exists: {store.spec_path}"
            )
        if not jobs:
            raise ValueError("a sweep needs at least one job")
        store.root.mkdir(parents=True, exist_ok=True)
        (store.root / "results").mkdir(exist_ok=True)
        (store.root / "traces").mkdir(exist_ok=True)
        spec = {"jobs": [_job_to_dict(job) for job in jobs]}
        tmp = store.spec_path.with_suffix(".tmp")
        tmp.write_text(json.dumps(spec, indent=2) + "\n")
        tmp.rename(store.spec_path)
        return store

    @classmethod
    def open(cls, root: Union[str, Path]) -> "SweepJobStore":
        store = cls(root)
        if not store.spec_path.exists():
            raise FileNotFoundError(
                f"no sweep store at {store.root} (missing spec.json)"
            )
        return store

    @property
    def spec_path(self) -> Path:
        return self.root / "spec.json"

    # -- contents ------------------------------------------------------
    def jobs(self) -> Dict[str, SweepJob]:
        """``{job_id: job}`` in spec order."""
        spec = json.loads(self.spec_path.read_text())
        return {
            f"job-{i:06d}": _job_from_dict(data)
            for i, data in enumerate(spec["jobs"], start=1)
        }

    def result_path(self, job_id: str) -> Path:
        return self.root / "results" / f"{job_id}.json"

    def trace_path(self, job_id: str) -> Path:
        return self.root / "traces" / f"{job_id}.jsonl"

    def result(self, job_id: str) -> Optional[ScalingPoint]:
        """The job's result, ``None`` while pending; raises
        :class:`~repro.engine.executors.WorkerTaskError` for a recorded
        failure."""
        path = self.result_path(job_id)
        if not path.exists():
            return None
        data = json.loads(path.read_text())
        if "failed" in data:
            raise WorkerTaskError(
                f"sweep job {job_id} failed:\n{data['failed']}"
            )
        return ScalingPoint(**data)

    def write_result(self, job_id: str, point: ScalingPoint) -> None:
        self._write_json(job_id, dataclasses.asdict(point))

    def write_failure(self, job_id: str, message: str) -> None:
        self._write_json(job_id, {"failed": message})

    def _write_json(self, job_id: str, data: dict) -> None:
        path = self.result_path(job_id)
        tmp = path.with_suffix(".tmp")
        tmp.write_text(json.dumps(data) + "\n")
        tmp.rename(path)

    def status(self) -> Dict[str, str]:
        """Per-job state: ``pending`` / ``checkpointed`` / ``done`` /
        ``failed`` (``checkpointed`` = no result yet, but a resumable
        trace exists)."""
        out: Dict[str, str] = {}
        for job_id in self.jobs():
            path = self.result_path(job_id)
            if path.exists():
                data = json.loads(path.read_text())
                out[job_id] = (
                    "failed" if "failed" in data else "done"
                )
            elif self.trace_path(job_id).exists():
                out[job_id] = "checkpointed"
            else:
                out[job_id] = "pending"
        return out


def _checkpointable(job: SweepJob) -> bool:
    """Only plain grid/FSYNC jobs run through the checkpointing engine
    path; everything else replays from scratch on resume (correct
    either way — checkpoints are an optimization, not a semantic)."""
    return (
        job.strategy == "grid"
        and job.scheduler in (None, "fsync")
        and not job.options
    )


def _run_store_job(
    root: str, job_id: str, checkpoint_every: int
) -> ScalingPoint:
    """Worker task behind :func:`run_store`: execute (or resume) one
    stored job, writing the result and checkpointed trace into the
    store.  Results are written from the worker, so a sweep interrupted
    after this returns still keeps the job's outcome."""
    store = SweepJobStore.open(root)
    job = store.jobs()[job_id]
    if not _checkpointable(job):
        point = run_job(job)
    else:
        point = _run_grid_job_checkpointed(
            store, job_id, job, checkpoint_every
        )
    store.write_result(job_id, point)
    return point


def _run_grid_job_checkpointed(
    store: SweepJobStore,
    job_id: str,
    job: SweepJob,
    checkpoint_every: int,
) -> ScalingPoint:
    """Run one grid job under a checkpointing recorder, resuming from
    the job's last trace checkpoint when one exists."""
    from repro.engine.scheduler import FsyncEngine
    from repro.engine.termination import default_round_budget
    from repro.grid.occupancy import SwarmState
    from repro.swarms.generators import family
    from repro.trace.recorder import CheckpointRecorder, read_trace
    from repro.trace.replay import (
        controller_checkpoint,
        last_checkpoint,
        resume_engine,
    )
    from repro.core.algorithm import GatherOnGrid

    trace_path = store.trace_path(job_id)
    meta: dict = {}
    row = None
    if trace_path.exists():
        with trace_path.open() as fh:
            meta, rows = read_trace(fh)
        row = last_checkpoint(rows)
    if row is not None:
        engine = resume_engine(
            row,
            job.cfg,
            check_connectivity=job.check_connectivity,
        )
        budget = int(meta["budget"])
        n0 = int(meta["n"])
        diameter = int(meta["initial_diameter"])
        mode = "a"
    else:
        cells = family(job.family, job.n, seed=job.seed)
        state = SwarmState(cells)
        n0 = len(state)
        diameter = state.diameter_chebyshev()
        budget = (
            job.max_rounds
            if job.max_rounds is not None
            else default_round_budget(n0)
        )
        meta = {
            "family": job.family,
            "target_n": job.n,
            "seed": job.seed,
            "n": n0,
            "initial_diameter": diameter,
            "budget": budget,
        }
        engine = FsyncEngine(
            state,
            GatherOnGrid(job.cfg),
            check_connectivity=job.check_connectivity,
        )
        mode = "w"
    with trace_path.open(mode) as fh:
        recorder = CheckpointRecorder(
            fh,
            lambda: controller_checkpoint(engine.controller),
            meta=meta,
            every=checkpoint_every,
        )
        if mode == "a":
            recorder._wrote_header = True  # resuming an existing trace
        engine.on_round = recorder
        with engine:
            result = engine.run(max_rounds=budget)
    return ScalingPoint(
        family=job.family,
        n=n0,
        rounds=result.rounds,
        gathered=result.gathered,
        merges=n0 - result.robots_final,
        diameter=diameter,
        strategy="grid",
        scheduler="fsync",
    )


def run_store(
    store: SweepJobStore,
    *,
    workers: Optional[int] = None,
    checkpoint_every: int = 200,
    orchestrator: Optional[SweepOrchestrator] = None,
    on_result: Optional[Callable[[str, ScalingPoint], None]] = None,
) -> Dict[str, ScalingPoint]:
    """Execute every unfinished job of a store; returns all results.

    Jobs already ``done`` are loaded, not re-run — so a ``run`` after
    an interruption (or after new ``sweep run`` invocations on the same
    store) finishes only what is missing, resuming checkpointed grid
    jobs mid-simulation.  Failed jobs are retried.  ``on_result`` fires
    as each job completes (the CLI's progress line).
    """
    jobs = store.jobs()
    status = store.status()
    results: Dict[str, ScalingPoint] = {}
    pending: List[str] = []
    for job_id in jobs:
        if status[job_id] == "done":
            results[job_id] = store.result(job_id)
            if on_result is not None:
                on_result(job_id, results[job_id])
        else:
            pending.append(job_id)
    if not pending:
        return results
    own = orchestrator is None
    orch = orchestrator or SweepOrchestrator(workers)
    try:
        if workers is not None:
            orch.ensure_workers(workers)
        pool = orch._pool()
        task_of = {
            pool.submit(
                _run_store_job,
                (str(store.root), job_id, checkpoint_every),
            ): job_id
            for job_id in pending
        }
        want = set(task_of)
        while want:
            item = pool.next_completed()
            if item is None:
                raise RuntimeError(
                    f"pool went idle with {len(want)} jobs uncollected"
                )
            task_id, ok, value = item
            if task_id not in want:
                orch._route(task_id, ok, value)
                continue
            want.discard(task_id)
            job_id = task_of[task_id]
            if not ok:
                message = (
                    "".join(value.args)
                    if isinstance(value, BaseException)
                    else str(value)
                )
                store.write_failure(job_id, message)
                if isinstance(value, BaseException):
                    raise value
                raise WorkerTaskError(
                    f"sweep job {job_id} failed:\n{value}"
                )
            results[job_id] = value
            if on_result is not None:
                on_result(job_id, value)
    finally:
        if own:
            orch.close()
    return dict(sorted(results.items()))
