"""Least-squares scaling fits for the experiment harness.

The experiments need three statements about measured round counts:

* "rounds grow linearly in n" (Theorem 1) — :func:`fit_linear` plus R²;
* "rounds grow quadratically" ([DKL+11] baseline) — :func:`fit_quadratic`;
* "the empirical exponent is p" — :func:`fit_power` / log-log regression.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np


@dataclass(frozen=True)
class FitResult:
    """Coefficients and goodness of fit of one model."""

    model: str
    coefficients: tuple[float, ...]
    r_squared: float

    def predict(self, x: float) -> float:
        if self.model == "linear":
            a, b = self.coefficients
            return a * x + b
        if self.model == "quadratic":
            a, b, c = self.coefficients
            return a * x * x + b * x + c
        if self.model == "power":
            c, p = self.coefficients
            return c * x**p
        raise ValueError(f"unknown model {self.model}")


def _r_squared(y: np.ndarray, pred: np.ndarray) -> float:
    ss_res = float(np.sum((y - pred) ** 2))
    ss_tot = float(np.sum((y - np.mean(y)) ** 2))
    if ss_tot == 0.0:
        return 1.0 if ss_res == 0.0 else 0.0
    return 1.0 - ss_res / ss_tot


def fit_linear(x: Sequence[float], y: Sequence[float]) -> FitResult:
    """Fit ``y ~ a*x + b``."""
    xa = np.asarray(x, dtype=np.float64)
    ya = np.asarray(y, dtype=np.float64)
    if xa.size < 2:
        raise ValueError("need at least two points to fit")
    a, b = np.polyfit(xa, ya, 1)
    return FitResult("linear", (float(a), float(b)), _r_squared(ya, a * xa + b))


def fit_quadratic(x: Sequence[float], y: Sequence[float]) -> FitResult:
    """Fit ``y ~ a*x^2 + b*x + c``."""
    xa = np.asarray(x, dtype=np.float64)
    ya = np.asarray(y, dtype=np.float64)
    if xa.size < 3:
        raise ValueError("need at least three points to fit")
    a, b, c = np.polyfit(xa, ya, 2)
    pred = a * xa * xa + b * xa + c
    return FitResult(
        "quadratic", (float(a), float(b), float(c)), _r_squared(ya, pred)
    )


def fit_power(x: Sequence[float], y: Sequence[float]) -> FitResult:
    """Fit ``y ~ c * x^p`` by log-log least squares (requires positives)."""
    xa = np.asarray(x, dtype=np.float64)
    ya = np.asarray(y, dtype=np.float64)
    if np.any(xa <= 0) or np.any(ya <= 0):
        raise ValueError("power fit requires strictly positive data")
    p, logc = np.polyfit(np.log(xa), np.log(ya), 1)
    c = float(np.exp(logc))
    pred = c * xa ** float(p)
    return FitResult("power", (c, float(p)), _r_squared(ya, pred))


def scaling_exponent(x: Sequence[float], y: Sequence[float]) -> float:
    """The empirical growth exponent p of ``y ~ x^p`` — the single number
    the scaling experiments assert on (≈1 for the paper's algorithm, ≈2 for
    the Euclidean baseline)."""
    return fit_power(x, y).coefficients[1]
