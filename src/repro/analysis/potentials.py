"""Potential functions underpinning the termination argument.

DESIGN.md Section 3 argues termination via two monotone quantities:

* **robot count** — strictly decreases at every merge;
* **outer boundary perimeter** — never increased by reshapement folds
  (a fold at a convex corner changes the perimeter by ``2 - deg(target)
  <= 0``) nor by merges.

``track_potentials`` runs a simulation while recording both series;
``is_monotone_nonincreasing`` is the assertion the integration tests make.
A violation would mean some operation can undo progress — the precursor of
a livelock.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

from repro.core.algorithm import GatherOnGrid
from repro.core.config import AlgorithmConfig
from repro.engine.scheduler import FsyncEngine
from repro.grid.boundary import outer_boundary
from repro.grid.envelope import enclosed_area
from repro.grid.occupancy import SwarmState


@dataclass(frozen=True)
class PotentialTrace:
    """Per-round potential series of one simulation."""

    robots: List[int]
    perimeter: List[int]
    area: List[float]
    gathered: bool
    rounds: int


def track_potentials(
    cells,
    cfg: Optional[AlgorithmConfig] = None,
    *,
    max_rounds: Optional[int] = None,
) -> PotentialTrace:
    """Gather ``cells`` while recording robots/perimeter/area per round."""
    robots: List[int] = []
    perimeter: List[int] = []
    area: List[float] = []

    def snap(state: SwarmState) -> None:
        ob = outer_boundary(state)
        robots.append(len(state))
        perimeter.append(len(ob.sides))
        area.append(enclosed_area(ob))

    state = SwarmState(cells)
    snap(state)
    engine = FsyncEngine(
        state,
        GatherOnGrid(cfg),
        on_round=lambda i, s: snap(s),
    )
    result = engine.run(max_rounds=max_rounds)
    return PotentialTrace(
        robots=robots,
        perimeter=perimeter,
        area=area,
        gathered=result.gathered,
        rounds=result.rounds,
    )


def is_monotone_nonincreasing(
    series: Sequence[float], tolerance: float = 0.0
) -> bool:
    """True iff the series never rises by more than ``tolerance``."""
    return all(b <= a + tolerance for a, b in zip(series, series[1:]))


def first_violation(
    series: Sequence[float], tolerance: float = 0.0
) -> Optional[int]:
    """Index of the first rise (for debugging), or None."""
    for i, (a, b) in enumerate(zip(series, series[1:])):
        if b > a + tolerance:
            return i + 1
    return None
