"""The reprolint rule engine: source model, suppressions, runner.

Design
------
* A :class:`SourceFile` wraps one parsed Python file: repo-relative
  posix path, source lines, AST with parent links, and the inline
  suppressions found in its comments.
* Rules come in two shapes.  A :class:`FileRule` inspects one file at a
  time (most determinism/facade rules).  A :class:`ProjectRule` runs
  once over the whole file set plus the repo root — the purity checker
  (cross-module call graph) and the docs/code event cross-check need
  global context.
* The :class:`Runner` loads files, executes rules, matches findings
  against suppressions, and renders text/JSON reports.  A finding
  without a matching suppression makes the run fail (exit 1).

Suppression syntax (checked, not free-form)::

    risky_line()  # reprolint: ok[D3] iteration order irrelevant: see X

    # reprolint: ok[D1] seeded stream documented in docs/schedulers.md
    risky_line()

The rule id in ``ok[...]`` must name the rule being silenced; a reason
is required — bare ``ok[D3]`` with no prose is itself an error.
"""

from __future__ import annotations

import ast
import io
import json
import re
import tokenize
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

#: ``# reprolint: ok[D1] reason`` / ``# reprolint: ok[D1,D3] reason``
_SUPPRESS_RE = re.compile(
    r"#\s*reprolint:\s*ok\[([A-Za-z0-9_,\s-]+)\]\s*(.*)"
)


@dataclass(frozen=True)
class Finding:
    """One rule violation at a source location."""

    rule: str
    path: str  # repo-relative posix path
    line: int
    message: str
    suppressed: bool = False
    reason: str = ""  # suppression reason when suppressed

    def render(self) -> str:
        tag = " (suppressed)" if self.suppressed else ""
        return f"{self.path}:{self.line}: {self.rule}{tag} {self.message}"

    def as_json(self) -> Dict[str, object]:
        out: Dict[str, object] = {
            "rule": self.rule,
            "path": self.path,
            "line": self.line,
            "message": self.message,
            "suppressed": self.suppressed,
        }
        if self.suppressed:
            out["reason"] = self.reason
        return out


@dataclass(frozen=True)
class Suppression:
    """An inline ``# reprolint: ok[...]`` annotation."""

    path: str
    line: int  # the line the suppression covers (not the comment line)
    rules: Tuple[str, ...]
    reason: str


class SourceFile:
    """One parsed source file with parent links and suppressions."""

    def __init__(self, path: Path, rel: str, text: str) -> None:
        self.path = path
        self.rel = rel
        self.text = text
        self.lines = text.splitlines()
        self.tree: Optional[ast.Module] = None
        self.parse_error: Optional[str] = None
        try:
            self.tree = ast.parse(text)
        except SyntaxError as exc:  # surfaced as a finding by the runner
            self.parse_error = f"syntax error: {exc.msg} (line {exc.lineno})"
        self._parents: Optional[Dict[int, ast.AST]] = None
        self.suppressions: List[Suppression] = _scan_suppressions(rel, text)
        self._by_line: Dict[int, List[Suppression]] = {}
        for sup in self.suppressions:
            self._by_line.setdefault(sup.line, []).append(sup)

    # -- AST helpers ---------------------------------------------------
    @property
    def parents(self) -> Dict[int, ast.AST]:
        """Map ``id(node) -> parent node`` over the whole tree (lazy)."""
        if self._parents is None:
            parents: Dict[int, ast.AST] = {}
            if self.tree is not None:
                for parent in ast.walk(self.tree):
                    for child in ast.iter_child_nodes(parent):
                        parents[id(child)] = parent
            self._parents = parents
        return self._parents

    def ancestors(self, node: ast.AST) -> Iterable[ast.AST]:
        """Walk from ``node``'s parent up to the module root."""
        parents = self.parents
        cur = parents.get(id(node))
        while cur is not None:
            yield cur
            cur = parents.get(id(cur))

    # -- suppression matching ------------------------------------------
    def suppression_for(
        self, rule: str, line: int
    ) -> Optional[Suppression]:
        for sup in self._by_line.get(line, ()):
            if rule in sup.rules:
                return sup
        return None


def _scan_suppressions(rel: str, text: str) -> List[Suppression]:
    """Tokenize comments; a suppression on a code line covers that line,
    a comment-only line covers the next code line below it."""
    out: List[Suppression] = []
    try:
        tokens = list(tokenize.generate_tokens(io.StringIO(text).readline))
    except (tokenize.TokenError, SyntaxError, IndentationError):
        return out
    lines = text.splitlines()
    for tok in tokens:
        if tok.type != tokenize.COMMENT:
            continue
        m = _SUPPRESS_RE.search(tok.string)
        if m is None:
            continue
        rules = tuple(
            r.strip() for r in m.group(1).split(",") if r.strip()
        )
        reason = m.group(2).strip()
        row = tok.start[0]
        before = lines[row - 1][: tok.start[1]].strip()
        target = row
        if not before:  # comment-only line: covers the next code line
            target = row + 1
            while target <= len(lines):
                stripped = lines[target - 1].strip()
                if stripped and not stripped.startswith("#"):
                    break
                target += 1
        out.append(Suppression(rel, target, rules, reason))
    return out


# ----------------------------------------------------------------------
# Rule base classes
# ----------------------------------------------------------------------
class FileRule:
    """A rule that inspects one file at a time."""

    rule_id: str = "?"
    title: str = ""

    def applies(self, rel: str) -> bool:  # pragma: no cover - interface
        return True

    def check_file(self, sf: SourceFile) -> List[Finding]:
        raise NotImplementedError

    def finding(self, sf: SourceFile, node: ast.AST, msg: str) -> Finding:
        return Finding(
            self.rule_id, sf.rel, getattr(node, "lineno", 1), msg
        )


class ProjectRule:
    """A rule that runs once over the whole analyzed file set."""

    rule_id: str = "?"
    title: str = ""

    def check_project(
        self, files: Sequence[SourceFile], repo_root: Path
    ) -> List[Finding]:
        raise NotImplementedError


# ----------------------------------------------------------------------
# Runner
# ----------------------------------------------------------------------
_SKIP_DIRS = {
    "__pycache__",
    ".git",
    ".pytest_cache",
    ".ruff_cache",
    "node_modules",
}


def collect_files(paths: Sequence[Path], repo_root: Path) -> List[Path]:
    """Expand the CLI paths into a sorted, deduplicated ``.py`` list."""
    seen: Dict[str, Path] = {}
    for p in paths:
        candidates: Iterable[Path]
        if p.is_dir():
            candidates = sorted(p.rglob("*.py"))
        elif p.suffix == ".py":
            candidates = [p]
        else:
            candidates = []
        for c in candidates:
            if any(part in _SKIP_DIRS for part in c.parts):
                continue
            seen[str(c.resolve())] = c
    return [seen[k] for k in sorted(seen)]


@dataclass
class Report:
    """The outcome of one reprolint run."""

    findings: List[Finding] = field(default_factory=list)
    files_checked: int = 0
    rules_run: List[str] = field(default_factory=list)

    @property
    def active(self) -> List[Finding]:
        return [f for f in self.findings if not f.suppressed]

    @property
    def suppressed(self) -> List[Finding]:
        return [f for f in self.findings if f.suppressed]

    def as_json(self) -> Dict[str, object]:
        counts: Dict[str, int] = {}
        for f in self.active:
            counts[f.rule] = counts.get(f.rule, 0) + 1
        return {
            "files_checked": self.files_checked,
            "rules": self.rules_run,
            "counts_by_rule": counts,
            "findings": [f.as_json() for f in self.findings],
            "ok": not self.active,
        }


class Runner:
    """Load files, run rules, apply suppressions, report."""

    def __init__(
        self,
        rules: Sequence[object],
        repo_root: Optional[Path] = None,
    ) -> None:
        self.rules = list(rules)
        self.repo_root = (
            repo_root if repo_root is not None else Path.cwd()
        ).resolve()

    def load(self, path: Path) -> SourceFile:
        resolved = path.resolve()
        try:
            rel = resolved.relative_to(self.repo_root).as_posix()
        except ValueError:
            rel = path.as_posix()
        return SourceFile(resolved, rel, resolved.read_text())

    def run(self, paths: Sequence[Path]) -> Report:
        report = Report()
        files = [self.load(p) for p in collect_files(paths, self.repo_root)]
        report.files_checked = len(files)
        for sf in files:
            if sf.parse_error is not None:
                report.findings.append(
                    Finding("parse", sf.rel, 1, sf.parse_error)
                )
        parsed = [sf for sf in files if sf.tree is not None]
        by_file = {sf.rel: sf for sf in parsed}
        for rule in self.rules:
            report.rules_run.append(rule.rule_id)
            raw: List[Tuple[Finding, Optional[SourceFile]]] = []
            if isinstance(rule, FileRule):
                for sf in parsed:
                    if rule.applies(sf.rel):
                        raw.extend((f, sf) for f in rule.check_file(sf))
            elif isinstance(rule, ProjectRule):
                for f in rule.check_project(parsed, self.repo_root):
                    raw.append((f, by_file.get(f.path)))
            else:  # pragma: no cover - registry misuse
                raise TypeError(f"not a rule: {rule!r}")
            for f, sf in raw:
                sup = (
                    sf.suppression_for(f.rule, f.line)
                    if sf is not None
                    else None
                )
                if sup is not None:
                    if not sup.reason:
                        report.findings.append(
                            Finding(
                                f.rule,
                                f.path,
                                f.line,
                                "suppression without a reason: "
                                "write `# reprolint: ok[%s] <why>`"
                                % f.rule,
                            )
                        )
                    else:
                        f = Finding(
                            f.rule,
                            f.path,
                            f.line,
                            f.message,
                            suppressed=True,
                            reason=sup.reason,
                        )
                report.findings.append(f)
        report.findings.sort(key=lambda f: (f.path, f.line, f.rule))
        return report


def write_json_report(report: Report, out_path: Path) -> None:
    out_path.write_text(json.dumps(report.as_json(), indent=2) + "\n")
