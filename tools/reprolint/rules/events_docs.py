"""E1 — event schema: docs and code must agree exactly.

``RunResult.events`` is part of the public result surface (the trace
recorder serializes it, goldens hash it, the dashboard-to-be will
stream it), and ``docs/schedulers.md`` documents its schema.  Schema
docs rot silently: a renamed event kind breaks downstream consumers
with no test failing.  This rule cross-checks the set of event kinds
*actually emitted* by the engines against the event tables in
``docs/schedulers.md``:

* every kind emitted in code appears in a marked docs table;
* every kind documented there is emitted somewhere in code;
* every ``.emit(...)`` call's kind argument is statically resolvable
  (a string literal, a literal conditional, or a local name assigned
  only literals) — otherwise the schema cannot be machine-checked.

The docs side reads markdown tables delimited by::

    <!-- reprolint: event-table -->
    | kind | ... |
    |------|-----|
    | `merge` | ... |
    <!-- /reprolint: event-table -->

(multiple marked tables are unioned).
"""

from __future__ import annotations

import ast
import re
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Set, Tuple

from tools.reprolint.engine import Finding, ProjectRule, SourceFile

_BEGIN = re.compile(r"<!--\s*reprolint:\s*event-table\s*-->")
_END = re.compile(r"<!--\s*/reprolint:\s*event-table\s*-->")
_ROW_KIND = re.compile(r"^\|\s*`([^`]+)`\s*\|")


def documented_kinds(text: str) -> Dict[str, int]:
    """``kind -> line`` for rows of the marked tables in a doc."""
    out: Dict[str, int] = {}
    inside = False
    for i, line in enumerate(text.splitlines(), start=1):
        if _BEGIN.search(line):
            inside = True
            continue
        if _END.search(line):
            inside = False
            continue
        if not inside:
            continue
        m = _ROW_KIND.match(line.strip())
        if m is not None:
            out.setdefault(m.group(1), i)
    return out


class EventDocsCrossCheckRule(ProjectRule):
    """E1: emitted event kinds == documented event kinds."""

    rule_id = "E1"
    title = "event-kind drift between engines and docs"

    def __init__(
        self,
        code_prefixes: Sequence[str] = (
            "src/repro/engine/",
            "src/repro/core/",
            "src/repro/api.py",
        ),
        doc_path: str = "docs/schedulers.md",
    ) -> None:
        self.code_prefixes = tuple(code_prefixes)
        self.doc_path = doc_path

    # -- code side -----------------------------------------------------
    def _resolve_kind(
        self, expr: ast.expr, sf: SourceFile
    ) -> Optional[Set[str]]:
        """The set of string values ``expr`` can take, or None."""
        if isinstance(expr, ast.Constant) and isinstance(expr.value, str):
            return {expr.value}
        if isinstance(expr, ast.IfExp):
            body = self._resolve_kind(expr.body, sf)
            orelse = self._resolve_kind(expr.orelse, sf)
            if body is not None and orelse is not None:
                return body | orelse
            return None
        if isinstance(expr, ast.Name):
            func = None
            for anc in sf.ancestors(expr):
                if isinstance(
                    anc, (ast.FunctionDef, ast.AsyncFunctionDef)
                ):
                    func = anc
                    break
            if func is None:
                return None
            values: Set[str] = set()
            for sub in ast.walk(func):
                if not isinstance(sub, ast.Assign):
                    continue
                if not any(
                    isinstance(t, ast.Name) and t.id == expr.id
                    for t in sub.targets
                ):
                    continue
                resolved = self._resolve_kind(sub.value, sf)
                if resolved is None:
                    return None
                values |= resolved
            return values or None
        return None

    def _emitted_kinds(
        self, files: Sequence[SourceFile]
    ) -> Tuple[Dict[str, Tuple[str, int]], List[Finding]]:
        kinds: Dict[str, Tuple[str, int]] = {}
        problems: List[Finding] = []
        for sf in files:
            if not sf.rel.startswith(self.code_prefixes):
                continue
            for node in ast.walk(sf.tree):
                if not (
                    isinstance(node, ast.Call)
                    and isinstance(node.func, ast.Attribute)
                    and node.func.attr == "emit"
                    and len(node.args) >= 2
                ):
                    continue
                resolved = self._resolve_kind(node.args[1], sf)
                if resolved is None:
                    problems.append(
                        Finding(
                            self.rule_id,
                            sf.rel,
                            node.lineno,
                            "event kind is not statically resolvable "
                            "(use a string literal, a literal "
                            "conditional, or a local assigned only "
                            "literals) — the event schema must be "
                            "machine-checkable against "
                            f"{self.doc_path}",
                        )
                    )
                    continue
                for kind in resolved:
                    kinds.setdefault(kind, (sf.rel, node.lineno))
        return kinds, problems

    # -- cross-check ---------------------------------------------------
    def check_project(
        self, files: Sequence[SourceFile], repo_root: Path
    ) -> List[Finding]:
        emitted, out = self._emitted_kinds(files)
        doc_file = repo_root / self.doc_path
        if not doc_file.exists():
            out.append(
                Finding(
                    self.rule_id,
                    self.doc_path,
                    1,
                    "event-schema doc not found; the emitted kinds "
                    f"({', '.join(sorted(emitted))}) are undocumented",
                )
            )
            return out
        documented = documented_kinds(doc_file.read_text())
        if not documented:
            out.append(
                Finding(
                    self.rule_id,
                    self.doc_path,
                    1,
                    "no `<!-- reprolint: event-table -->` marked table "
                    "found; the event schema must be machine-checkable",
                )
            )
            return out
        for kind in sorted(set(emitted) - set(documented)):
            rel, line = emitted[kind]
            out.append(
                Finding(
                    self.rule_id,
                    rel,
                    line,
                    f"event kind `{kind}` is emitted here but missing "
                    f"from the event tables in {self.doc_path}",
                )
            )
        for kind in sorted(set(documented) - set(emitted)):
            out.append(
                Finding(
                    self.rule_id,
                    self.doc_path,
                    documented[kind],
                    f"event kind `{kind}` is documented but no longer "
                    f"emitted by any engine module",
                )
            )
        return out
