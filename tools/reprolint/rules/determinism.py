"""Determinism rules D1/D2/D3.

These are the static counterparts of the golden-trajectory equivalence
suite: they forbid the *sources* of nondeterminism (unseeded RNG,
wall-clock reads, identity-keyed ordering, unordered iteration feeding
ordered sinks) instead of hoping a dynamic test catches the symptom.
Rationale per rule in ``docs/lint.md``.
"""

from __future__ import annotations

import ast
from typing import Dict, List, Optional, Sequence, Set, Tuple

from tools.reprolint.engine import FileRule, Finding, SourceFile

#: The layers whose iteration order reaches trajectories, event logs, or
#: RunResult fields (goldens hash all three).
ORDER_SENSITIVE_PREFIXES: Tuple[str, ...] = (
    "src/repro/core/",
    "src/repro/engine/",
    "src/repro/explore/",
    "src/repro/grid/",
)

#: Paths whose *wall-clock* reads are legitimate (D2 still flags their
#: ``id()``-keyed ordering).  The serving layer stamps run records with
#: submission/start/finish times — service metadata that never feeds a
#: simulation decision; an explicit allowlist here beats inline
#: suppressions on every ``time.time()`` because the boundary is
#: auditable in one place (and pinned by ``tests/test_reprolint.py``).
WALL_CLOCK_ALLOWED_PREFIXES: Tuple[str, ...] = (
    "src/repro/service/",
)


def _attr_base(node: ast.AST) -> Optional[str]:
    """Root ``Name.id`` of an ``a.b.c`` / ``a[k].b`` chain, else None."""
    while isinstance(node, (ast.Attribute, ast.Subscript)):
        node = node.value
    if isinstance(node, ast.Name):
        return node.id
    return None


# ----------------------------------------------------------------------
# D1 — unseeded / module-level RNG
# ----------------------------------------------------------------------
class UnseededRandomRule(FileRule):
    """D1: only ``random.Random(seed)`` instances, threaded from config.

    Flags any use of the module-level :mod:`random` API other than the
    ``Random`` constructor (``random.random()``, ``random.seed()``,
    ``random.shuffle`` passed as a callback, ...), ``from random import
    <fn>`` of anything but ``Random``, module-level RNG singletons, and
    any touch of the global :data:`numpy.random` state.  Shared global
    RNG state makes trajectories depend on *call order across
    subsystems* — exactly what the run-granular caches and sharded
    planner reorder.
    """

    rule_id = "D1"
    title = "unseeded or module-global RNG"

    def __init__(self, prefixes: Sequence[str] = ("src/repro/",)) -> None:
        self.prefixes = tuple(prefixes)

    def applies(self, rel: str) -> bool:
        return rel.startswith(self.prefixes)

    def check_file(self, sf: SourceFile) -> List[Finding]:
        out: List[Finding] = []
        for node in ast.walk(sf.tree):
            if isinstance(node, ast.ImportFrom) and node.module == "random":
                for alias in node.names:
                    if alias.name != "Random":
                        out.append(
                            self.finding(
                                sf,
                                node,
                                f"`from random import {alias.name}` uses "
                                f"the process-global RNG; import Random "
                                f"and thread a seeded instance instead",
                            )
                        )
            elif isinstance(node, ast.Attribute):
                if (
                    isinstance(node.value, ast.Name)
                    and node.value.id == "random"
                    and node.attr != "Random"
                ):
                    out.append(
                        self.finding(
                            sf,
                            node,
                            f"`random.{node.attr}` draws from the "
                            f"process-global RNG; use a "
                            f"`random.Random(seed)` instance threaded "
                            f"from config",
                        )
                    )
                elif (
                    isinstance(node.value, ast.Name)
                    and node.value.id in ("np", "numpy")
                    and node.attr == "random"
                ):
                    out.append(
                        self.finding(
                            sf,
                            node,
                            "`numpy.random` global state is shared "
                            "across the process; use "
                            "`numpy.random.Generator` seeded from "
                            "config (via a local `default_rng(seed)`)",
                        )
                    )
        # Module/class-level RNG singletons: one shared stream whose
        # draw order depends on which code path runs first.
        body: List[ast.stmt] = list(sf.tree.body)
        for stmt in sf.tree.body:
            if isinstance(stmt, ast.ClassDef):
                body.extend(stmt.body)
        for stmt in body:
            values: List[ast.expr] = []
            if isinstance(stmt, ast.Assign):
                values.append(stmt.value)
            elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
                values.append(stmt.value)
            for value in values:
                if (
                    isinstance(value, ast.Call)
                    and isinstance(value.func, ast.Attribute)
                    and isinstance(value.func.value, ast.Name)
                    and value.func.value.id == "random"
                    and value.func.attr == "Random"
                ):
                    out.append(
                        self.finding(
                            sf,
                            stmt,
                            "module-level RNG instance: a singleton "
                            "stream couples unrelated call sites; "
                            "construct `random.Random(seed)` where the "
                            "seed is in scope",
                        )
                    )
        return out


# ----------------------------------------------------------------------
# D2 — wall clock + id()-keyed ordering
# ----------------------------------------------------------------------
_WALL_CLOCK_TIME_ATTRS = frozenset(
    {
        "time",
        "time_ns",
        "monotonic",
        "monotonic_ns",
        "perf_counter",
        "perf_counter_ns",
        "localtime",
        "gmtime",
        "ctime",
        "asctime",
    }
)
_WALL_CLOCK_DT_ATTRS = frozenset({"now", "utcnow", "today"})
_ORDERING_FUNCS = frozenset({"sorted", "min", "max"})


def _lambda_calls_id(node: ast.expr) -> bool:
    if isinstance(node, ast.Name):
        return node.id == "id"
    if isinstance(node, ast.Lambda):
        for sub in ast.walk(node.body):
            if (
                isinstance(sub, ast.Call)
                and isinstance(sub.func, ast.Name)
                and sub.func.id == "id"
            ):
                return True
    return False


class IdOrderingWallClockRule(FileRule):
    """D2: no wall-clock reads, no ``id()``-keyed ordering.

    Wall-clock time in engine/core/grid code makes behavior a function
    of when it runs; ``id()`` as a sort key orders by allocation address
    — both are invisible to seeded replay.  (Using ``id()`` for
    *identity* — set membership, dict keys that are never ordered — is
    fine and pervasive in the ring code; only ordering is flagged.)

    ``wall_clock_allow`` names path prefixes whose wall-clock reads
    are exempt (the serving layer's run-record timestamps); ``id()``
    ordering stays flagged there — allocation-address ordering is
    never legitimate.
    """

    rule_id = "D2"
    title = "wall-clock or id()-keyed ordering"

    def __init__(
        self,
        prefixes: Sequence[str] = ORDER_SENSITIVE_PREFIXES,
        *,
        wall_clock_allow: Sequence[str] = (),
    ) -> None:
        self.prefixes = tuple(prefixes)
        self.wall_clock_allow = tuple(wall_clock_allow)

    def applies(self, rel: str) -> bool:
        return rel.startswith(self.prefixes)

    def _wall_clock_allowed(self, rel: str) -> bool:
        return bool(self.wall_clock_allow) and rel.startswith(
            self.wall_clock_allow
        )

    def check_file(self, sf: SourceFile) -> List[Finding]:
        out: List[Finding] = []
        clock_ok = self._wall_clock_allowed(sf.rel)
        for node in ast.walk(sf.tree):
            if isinstance(node, ast.Attribute):
                if clock_ok:
                    continue
                base = node.value
                if (
                    isinstance(base, ast.Name)
                    and base.id == "time"
                    and node.attr in _WALL_CLOCK_TIME_ATTRS
                ):
                    out.append(
                        self.finding(
                            sf,
                            node,
                            f"wall-clock read `time.{node.attr}` in an "
                            f"ordering-sensitive module; behavior must "
                            f"be a function of (state, seed) only",
                        )
                    )
                elif node.attr in _WALL_CLOCK_DT_ATTRS and _attr_base(
                    base
                ) in ("datetime", "date"):
                    out.append(
                        self.finding(
                            sf,
                            node,
                            f"wall-clock read `.{node.attr}` on "
                            f"datetime/date; behavior must be a "
                            f"function of (state, seed) only",
                        )
                    )
            elif isinstance(node, ast.Call):
                is_sort_call = (
                    isinstance(node.func, ast.Name)
                    and node.func.id in _ORDERING_FUNCS
                ) or (
                    isinstance(node.func, ast.Attribute)
                    and node.func.attr == "sort"
                )
                if not is_sort_call:
                    continue
                for kw in node.keywords:
                    if kw.arg == "key" and _lambda_calls_id(kw.value):
                        out.append(
                            self.finding(
                                sf,
                                node,
                                "`id()` used as an ordering key: "
                                "allocation addresses differ between "
                                "runs; key on stable ids (ring_id, "
                                "order labels, run ids) instead",
                            )
                        )
        return out


# ----------------------------------------------------------------------
# D3 — unordered iteration feeding ordered sinks
# ----------------------------------------------------------------------
#: Consumers whose result does not depend on iteration order — a set
#: expression flowing into these is safe without sorted().
_ORDER_INSENSITIVE = frozenset(
    {"sorted", "min", "max", "sum", "len", "any", "all", "set", "frozenset"}
)
#: Builtins that freeze iteration order into an ordered container.
_ORDER_FREEZERS = frozenset({"list", "tuple", "enumerate"})
#: Project-specific calls known to return sets (beyond set()/frozenset()).
_SET_RETURNING_CALLS = frozenset(
    {"set", "frozenset", "boundary_cells", "runner_cells"}
)
#: Project-specific attributes known to hold sets (SwarmState.cells is
#: the canonical occupied-cell set of the whole engine).
_SET_ATTRS = frozenset({"cells"})
#: Typing spellings that mark a parameter/variable as a set.
_SET_ANNOTATIONS = frozenset(
    {"Set", "FrozenSet", "set", "frozenset", "AbstractSet", "MutableSet"}
)
#: Mutating sinks inside a for-over-set body that freeze order.
_ORDERED_SINK_ATTRS = frozenset({"append", "extend", "insert", "emit"})


def _annotation_is_set(node: Optional[ast.expr]) -> bool:
    if node is None:
        return False
    target = node
    if isinstance(target, ast.Subscript):
        target = target.value
    if isinstance(target, ast.Attribute):
        return target.attr in _SET_ANNOTATIONS
    return isinstance(target, ast.Name) and target.id in _SET_ANNOTATIONS


class _FunctionSetLocals(ast.NodeVisitor):
    """Names bound (exactly consistently) to set expressions in one
    function body — a one-pass, assignment-only dataflow."""

    def __init__(self, rule: "UnorderedIterationRule") -> None:
        self.rule = rule
        self.status: Dict[str, bool] = {}

    def note(self, name: str, is_set: bool) -> None:
        if name in self.status and self.status[name] != is_set:
            self.status[name] = False  # ambiguous: never treat as set
        else:
            self.status[name] = is_set

    def visit_Assign(self, node: ast.Assign) -> None:
        for tgt in node.targets:
            if isinstance(tgt, ast.Name):
                self.note(tgt.id, self.rule.is_set_expr(node.value, {}))
        self.generic_visit(node)

    def visit_AnnAssign(self, node: ast.AnnAssign) -> None:
        if isinstance(node.target, ast.Name):
            self.note(
                node.target.id,
                _annotation_is_set(node.annotation)
                or (
                    node.value is not None
                    and self.rule.is_set_expr(node.value, {})
                ),
            )
        self.generic_visit(node)


class UnorderedIterationRule(FileRule):
    """D3: set / ``dict.keys`` iteration must not feed ordered sinks.

    Iterating a set (hash order) and freezing the result into a list,
    tuple, event emission, or yield sequence bakes hash-table layout
    into observable behavior.  CPython's int hashing keeps this stable
    *per build and insertion history*, which is exactly how such bugs
    pass goldens on CI and explode later (alternate interpreters, cell
    types with randomized hashes, differently-ordered insertions on the
    sharded path).  Wrap the iterable in ``sorted()`` or consume it
    order-insensitively.

    Detection is syntactic plus a one-pass local dataflow: set
    literals/comprehensions, ``set()``/``frozenset()`` calls,
    ``.keys()``, known set-returning project calls
    (``boundary_cells``, ``runner_cells``), the ``.cells`` attribute
    (SwarmState's occupied set), parameters annotated ``Set[...]``, and
    locals assigned from any of those.
    """

    rule_id = "D3"
    title = "unordered iteration feeding an ordered sink"

    def __init__(
        self, prefixes: Sequence[str] = ORDER_SENSITIVE_PREFIXES
    ) -> None:
        self.prefixes = tuple(prefixes)

    def applies(self, rel: str) -> bool:
        return rel.startswith(self.prefixes)

    # -- set-expression classifier -------------------------------------
    def is_set_expr(
        self, node: ast.expr, set_locals: Dict[str, bool]
    ) -> bool:
        if isinstance(node, (ast.Set, ast.SetComp)):
            return True
        if isinstance(node, ast.Name):
            return set_locals.get(node.id, False)
        if isinstance(node, ast.Attribute):
            return node.attr in _SET_ATTRS
        if isinstance(node, ast.Call):
            func = node.func
            if (
                isinstance(func, ast.Name)
                and func.id in _SET_RETURNING_CALLS
            ):
                return True
            if isinstance(func, ast.Attribute) and (
                func.attr == "keys" or func.attr in _SET_RETURNING_CALLS
            ):
                return True
        if isinstance(node, ast.BinOp) and isinstance(
            node.op, (ast.BitOr, ast.BitAnd, ast.Sub, ast.BitXor)
        ):
            # set algebra propagates set-ness through either operand
            return self.is_set_expr(
                node.left, set_locals
            ) or self.is_set_expr(node.right, set_locals)
        return False

    def _consumed_order_insensitively(
        self, sf: SourceFile, node: ast.AST
    ) -> bool:
        """True when an ancestor call sorts or order-insensitively
        consumes the value within the same statement."""
        for anc in sf.ancestors(node):
            if isinstance(anc, ast.Call):
                func = anc.func
                if (
                    isinstance(func, ast.Name)
                    and func.id in _ORDER_INSENSITIVE
                ):
                    return True
            if isinstance(anc, (ast.SetComp, ast.DictComp)):
                return True
            if isinstance(anc, ast.stmt):
                break
        return False

    # -- main pass -----------------------------------------------------
    def check_file(self, sf: SourceFile) -> List[Finding]:
        out: List[Finding] = []
        # set-typed locals per enclosing function scope
        scope_locals: Dict[int, Dict[str, bool]] = {}

        def locals_for(node: ast.AST) -> Dict[str, bool]:
            func = None
            for anc in sf.ancestors(node):
                if isinstance(
                    anc, (ast.FunctionDef, ast.AsyncFunctionDef)
                ):
                    func = anc
                    break
            if func is None:
                return {}
            cached = scope_locals.get(id(func))
            if cached is None:
                pass_ = _FunctionSetLocals(self)
                for stmt in func.body:
                    pass_.visit(stmt)
                cached = {
                    name: True
                    for name, ok in pass_.status.items()
                    if ok
                }
                for arg in (
                    list(func.args.posonlyargs)
                    + list(func.args.args)
                    + list(func.args.kwonlyargs)
                ):
                    if _annotation_is_set(arg.annotation):
                        cached[arg.arg] = True
                scope_locals[id(func)] = cached
            return cached

        def flag(node: ast.AST, msg: str) -> None:
            out.append(self.finding(sf, node, msg))

        for node in ast.walk(sf.tree):
            if isinstance(node, ast.Call):
                func = node.func
                freezer = (
                    isinstance(func, ast.Name)
                    and func.id in _ORDER_FREEZERS
                    and len(node.args) >= 1
                )
                joiner = (
                    isinstance(func, ast.Attribute)
                    and func.attr == "join"
                    and len(node.args) == 1
                )
                if not (freezer or joiner):
                    continue
                arg = node.args[0]
                env = locals_for(node)
                target = None
                if self.is_set_expr(arg, env):
                    target = arg
                elif isinstance(
                    arg, ast.GeneratorExp
                ) and self.is_set_expr(arg.generators[0].iter, env):
                    target = arg.generators[0].iter
                if target is None:
                    continue
                if self._consumed_order_insensitively(sf, node):
                    continue
                name = (
                    func.id
                    if isinstance(func, ast.Name)
                    else f".{func.attr}"
                )
                flag(
                    node,
                    f"`{name}(...)` freezes set/dict-key iteration "
                    f"order into an ordered value; wrap the iterable "
                    f"in `sorted(...)` (or consume it "
                    f"order-insensitively)",
                )
            elif isinstance(node, ast.ListComp):
                env = locals_for(node)
                if self.is_set_expr(
                    node.generators[0].iter, env
                ) and not self._consumed_order_insensitively(sf, node):
                    flag(
                        node,
                        "list comprehension over a set/dict-key "
                        "iterable freezes hash order; iterate "
                        "`sorted(...)` instead",
                    )
            elif isinstance(node, ast.For):
                env = locals_for(node)
                if not self.is_set_expr(node.iter, env):
                    continue
                sink = self._ordered_sink_in(node)
                if sink is not None:
                    flag(
                        node,
                        f"for-loop over a set/dict-key iterable feeds "
                        f"an ordered sink (`{sink}`); iterate "
                        f"`sorted(...)` instead",
                    )
        return out

    @staticmethod
    def _ordered_sink_in(loop: ast.For) -> Optional[str]:
        for stmt in loop.body:
            for sub in ast.walk(stmt):
                if isinstance(sub, (ast.Yield, ast.YieldFrom)):
                    return "yield"
                if (
                    isinstance(sub, ast.Call)
                    and isinstance(sub.func, ast.Attribute)
                    and sub.func.attr in _ORDERED_SINK_ATTRS
                ):
                    return f".{sub.func.attr}"
        return None
