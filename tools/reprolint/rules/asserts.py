"""A1 — no bare ``assert`` outside tests.

``python -O`` strips ``assert`` statements, so an invariant guarded by
one silently stops being checked exactly when someone runs the engine
"optimized".  Load-bearing invariants belong in ``repro.errors``
exceptions (:class:`repro.errors.InvariantError` for internal
invariants); asserts are fine in pytest suites (``tests/``,
``benchmarks/``), which never run under ``-O``.
"""

from __future__ import annotations

import ast
from typing import List, Sequence

from tools.reprolint.engine import FileRule, Finding, SourceFile


class BareAssertRule(FileRule):
    """A1: bare ``assert`` in shipped code."""

    rule_id = "A1"
    title = "bare assert outside tests"

    def __init__(
        self,
        prefixes: Sequence[str] = ("src/", "tools/"),
        exempt_prefixes: Sequence[str] = ("tests/", "benchmarks/"),
    ) -> None:
        self.prefixes = tuple(prefixes)
        self.exempt_prefixes = tuple(exempt_prefixes)

    def applies(self, rel: str) -> bool:
        if rel.startswith(self.exempt_prefixes):
            return False
        name = rel.rsplit("/", 1)[-1]
        if name.startswith("test_") or name == "conftest.py":
            return False
        return rel.startswith(self.prefixes)

    def check_file(self, sf: SourceFile) -> List[Finding]:
        return [
            self.finding(
                sf,
                node,
                "bare `assert` is stripped under `python -O`; raise "
                "`repro.errors.InvariantError` (or a specific "
                "`repro.errors` exception) for load-bearing "
                "invariants",
            )
            for node in ast.walk(sf.tree)
            if isinstance(node, ast.Assert)
        ]
