"""P1 — purity of the sharded planner's per-run compute.

``RunManager.plan`` shards ``_plan_one`` across an order-preserving
``map`` executor (``cfg.shard_planning``); sharded == serial ==
full-rescan bit-identity holds **by construction** only if
``_plan_one`` is a pure function of the round's read-only context.  The
equivalence suite checks this dynamically on the scenarios it runs;
this rule proves the write-freedom statically for *every* code path:
``_plan_one`` and everything it transitively calls within ``core/``
must not

* write to ``self`` (attribute/subscript stores, mutating method calls),
* declare ``global``/``nonlocal`` names,
* write to module-level names, or
* mutate its parameters (the shared round context is passed in).

Locally created objects may be mutated freely — purity here means "no
writes observable outside the call".  Calls that cannot be resolved
statically (methods on non-``self`` objects, builtins) are skipped;
the dynamic equivalence suite remains the backstop for those.
"""

from __future__ import annotations

import ast
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Set, Tuple

from tools.reprolint.engine import Finding, ProjectRule, SourceFile

#: Method names that mutate their receiver in the stdlib containers.
_MUTATORS = frozenset(
    {
        "append",
        "appendleft",
        "add",
        "update",
        "pop",
        "popleft",
        "popitem",
        "remove",
        "discard",
        "clear",
        "extend",
        "insert",
        "setdefault",
        "sort",
        "reverse",
        "difference_update",
        "intersection_update",
        "symmetric_difference_update",
        "write",
    }
)


def _root_name(node: ast.AST) -> Optional[str]:
    while isinstance(node, (ast.Attribute, ast.Subscript, ast.Starred)):
        node = node.value
    if isinstance(node, ast.Name):
        return node.id
    return None


class _FuncInfo:
    """Index entry: one function/method definition."""

    def __init__(
        self,
        sf: SourceFile,
        node: ast.FunctionDef,
        class_name: Optional[str],
    ) -> None:
        self.sf = sf
        self.node = node
        self.class_name = class_name

    @property
    def qualname(self) -> str:
        if self.class_name:
            return f"{self.class_name}.{self.node.name}"
        return self.node.name


class SharedStatePurityRule(ProjectRule):
    """P1: the sharded planner's call graph must be write-free."""

    rule_id = "P1"
    title = "shared-state write inside the sharded planner"

    def __init__(
        self,
        entries: Sequence[Tuple[str, str]] = (
            ("src/repro/core/runs.py", "RunManager._plan_one"),
            # Worker-process entry points of the snapshot codec: a
            # worker's planning path must be as write-free as the
            # in-process one (its only sanctioned impurity is the
            # executors' cached_decode boundary, which stays outside
            # these call graphs).
            ("src/repro/engine/snapshot.py", "decode_round_context"),
            ("src/repro/engine/snapshot.py", "plan_shard"),
            # The explorer's state-key construction: a canonical key
            # must be a pure function of the checkpoint it summarizes —
            # a write here would let one branch leak into its siblings.
            ("src/repro/explore/canonical.py", "canonical_state_key"),
            # The tolerant variant's admission filter: the subset-safety
            # certificate must be a pure function of (occupied, planned)
            # — a write here would make safety depend on evaluation
            # order, voiding the stationary-core argument.
            ("src/repro/core/tolerant.py", "certified_subset"),
        ),
        follow_prefixes: Sequence[str] = (
            "src/repro/core/",
            "src/repro/engine/snapshot.py",
            "src/repro/explore/",
            "src/repro/grid/canonical.py",
        ),
    ) -> None:
        self.entries = tuple(entries)
        self.follow_prefixes = tuple(follow_prefixes)

    # -- indexing ------------------------------------------------------
    def _index(
        self, files: Sequence[SourceFile]
    ) -> Tuple[Dict[str, Dict[str, _FuncInfo]], Dict[str, Dict[str, str]]]:
        """Per followed file: qualname -> function, and the import map
        ``local name -> "<rel>:<name>"`` for first-party core imports."""
        funcs: Dict[str, Dict[str, _FuncInfo]] = {}
        imports: Dict[str, Dict[str, str]] = {}
        by_module: Dict[str, str] = {}  # dotted module -> rel path
        for sf in files:
            if not sf.rel.startswith(self.follow_prefixes):
                continue
            if sf.rel.startswith("src/") and sf.rel.endswith(".py"):
                dotted = sf.rel[len("src/") : -len(".py")].replace(
                    "/", "."
                )
                by_module[dotted] = sf.rel
        for sf in files:
            if not sf.rel.startswith(self.follow_prefixes):
                continue
            table: Dict[str, _FuncInfo] = {}
            imap: Dict[str, str] = {}
            for stmt in sf.tree.body:
                if isinstance(stmt, ast.FunctionDef):
                    table[stmt.name] = _FuncInfo(sf, stmt, None)
                elif isinstance(stmt, ast.ClassDef):
                    for sub in stmt.body:
                        if isinstance(sub, ast.FunctionDef):
                            table[f"{stmt.name}.{sub.name}"] = _FuncInfo(
                                sf, sub, stmt.name
                            )
                elif isinstance(stmt, ast.ImportFrom) and stmt.module:
                    target_rel = by_module.get(stmt.module)
                    if target_rel is None:
                        continue
                    for alias in stmt.names:
                        imap[alias.asname or alias.name] = (
                            f"{target_rel}:{alias.name}"
                        )
            funcs[sf.rel] = table
            imports[sf.rel] = imap
        return funcs, imports

    # -- analysis ------------------------------------------------------
    def check_project(
        self, files: Sequence[SourceFile], repo_root: Path
    ) -> List[Finding]:
        funcs, imports = self._index(files)
        out: List[Finding] = []
        for entry_rel, entry_qual in self.entries:
            table = funcs.get(entry_rel, {})
            info = table.get(entry_qual)
            if info is None:
                out.append(
                    Finding(
                        self.rule_id,
                        entry_rel,
                        1,
                        f"purity entry point {entry_qual!r} not found "
                        f"(rule configuration is stale)",
                    )
                )
                continue
            visited: Set[Tuple[str, str]] = set()
            self._analyze(
                info, f"{entry_qual}", funcs, imports, visited, out
            )
        return out

    def _analyze(
        self,
        info: _FuncInfo,
        chain: str,
        funcs: Dict[str, Dict[str, _FuncInfo]],
        imports: Dict[str, Dict[str, str]],
        visited: Set[Tuple[str, str]],
        out: List[Finding],
    ) -> None:
        key = (info.sf.rel, info.qualname)
        if key in visited:
            return
        visited.add(key)
        node = info.node
        args = node.args
        params = {
            a.arg
            for a in (
                list(args.posonlyargs)
                + list(args.args)
                + list(args.kwonlyargs)
            )
        }
        if args.vararg:
            params.add(args.vararg.arg)
        if args.kwarg:
            params.add(args.kwarg.arg)
        local_names = {
            sub.id
            for sub in ast.walk(node)
            if isinstance(sub, ast.Name)
            and isinstance(sub.ctx, (ast.Store, ast.Del))
        }

        def classify(base: Optional[str]) -> Optional[str]:
            """Why writing through ``base`` is a violation (or None)."""
            if base is None:
                return None
            if base == "self":
                return "self"
            if base in params:
                return f"parameter `{base}` (shared round context)"
            if base in local_names:
                return None
            return f"module-level name `{base}`"

        def report(sub: ast.AST, what: str) -> None:
            out.append(
                Finding(
                    self.rule_id,
                    info.sf.rel,
                    getattr(sub, "lineno", node.lineno),
                    f"{info.qualname} (reached via {chain}) {what} — "
                    f"breaks sharded==serial planning bit-identity",
                )
            )

        callees: List[Tuple[_FuncInfo, str]] = []
        for sub in ast.walk(node):
            if isinstance(sub, (ast.Global, ast.Nonlocal)):
                report(
                    sub,
                    "declares `global`/`nonlocal` state",
                )
            elif isinstance(sub, (ast.Assign, ast.AnnAssign, ast.AugAssign)):
                targets = (
                    sub.targets
                    if isinstance(sub, ast.Assign)
                    else [sub.target]
                )
                for tgt in targets:
                    elts = (
                        tgt.elts
                        if isinstance(tgt, (ast.Tuple, ast.List))
                        else [tgt]
                    )
                    for t in elts:
                        if isinstance(t, ast.Name):
                            continue  # plain local rebind
                        why = classify(_root_name(t))
                        if why is not None:
                            report(sub, f"writes to {why}")
            elif isinstance(sub, ast.Delete):
                for tgt in sub.targets:
                    if isinstance(tgt, ast.Name):
                        continue
                    why = classify(_root_name(tgt))
                    if why is not None:
                        report(sub, f"deletes from {why}")
            elif isinstance(sub, ast.Call):
                func = sub.func
                if (
                    isinstance(func, ast.Attribute)
                    and func.attr in _MUTATORS
                ):
                    why = classify(_root_name(func.value))
                    if why is not None:
                        report(
                            sub,
                            f"calls mutating `.{func.attr}()` on {why}",
                        )
                callee = self._resolve(sub, info, funcs, imports)
                if callee is not None:
                    callees.append(callee)
        for callee_info, label in callees:
            self._analyze(
                callee_info,
                f"{chain} -> {label}",
                funcs,
                imports,
                visited,
                out,
            )

    def _resolve(
        self,
        call: ast.Call,
        caller: _FuncInfo,
        funcs: Dict[str, Dict[str, _FuncInfo]],
        imports: Dict[str, Dict[str, str]],
    ) -> Optional[Tuple[_FuncInfo, str]]:
        func = call.func
        table = funcs.get(caller.sf.rel, {})
        if isinstance(func, ast.Name):
            hit = table.get(func.id)
            if hit is not None:
                return hit, func.id
            origin = imports.get(caller.sf.rel, {}).get(func.id)
            if origin is not None:
                rel, name = origin.rsplit(":", 1)
                hit = funcs.get(rel, {}).get(name)
                if hit is not None:
                    return hit, func.id
        elif (
            isinstance(func, ast.Attribute)
            and isinstance(func.value, ast.Name)
            and func.value.id in ("self", "cls")
            and caller.class_name is not None
        ):
            hit = table.get(f"{caller.class_name}.{func.attr}")
            if hit is not None:
                return hit, f"self.{func.attr}"
        return None
