"""F1 — facade discipline.

PR 3 made ``repro.api.simulate`` the one simulation entry point; the
legacy per-baseline functions survive only as deprecation shims.  Two
checks keep the facade honest:

* no imports of the legacy entry points outside the shim surface
  (``baselines/``, the package re-export ``__init__``s, and the module
  that defines ``gather``) — new code must go through ``simulate()``;
* every ``@register_scheduler`` class declares ``option_names`` (the
  facade validates leftover keyword options against it; a scheduler
  without the declaration silently swallows typos).
"""

from __future__ import annotations

import ast
from typing import List, Sequence

from tools.reprolint.engine import FileRule, Finding, SourceFile

#: The per-workload entry points superseded by ``repro.api.simulate``.
LEGACY_ENTRY_POINTS = frozenset(
    {
        "gather",
        "gather_async",
        "gather_euclidean",
        "gather_global",
        "gather_global_with_moves",
        "shorten_chain",
        "gather_closed_chain",
    }
)

#: The shim surface: files allowed to import/re-export legacy entries.
_DEFAULT_SHIM_FILES = (
    "src/repro/__init__.py",
    "src/repro/core/__init__.py",
)
_DEFAULT_SHIM_PREFIXES = ("src/repro/baselines/",)


class LegacyEntryPointRule(FileRule):
    """F1: legacy per-baseline entry points stay behind the facade."""

    rule_id = "F1"
    title = "legacy entry-point import outside the shim surface"

    def __init__(
        self,
        shim_files: Sequence[str] = _DEFAULT_SHIM_FILES,
        shim_prefixes: Sequence[str] = _DEFAULT_SHIM_PREFIXES,
        legacy: frozenset = LEGACY_ENTRY_POINTS,
    ) -> None:
        self.shim_files = tuple(shim_files)
        self.shim_prefixes = tuple(shim_prefixes)
        self.legacy = legacy

    def applies(self, rel: str) -> bool:
        if rel in self.shim_files:
            return False
        return not rel.startswith(self.shim_prefixes)

    def check_file(self, sf: SourceFile) -> List[Finding]:
        out: List[Finding] = []
        for node in ast.walk(sf.tree):
            if not isinstance(node, ast.ImportFrom):
                continue
            module = node.module or ""
            if not (module == "repro" or module.startswith("repro.")):
                continue
            for alias in node.names:
                if alias.name in self.legacy:
                    out.append(
                        self.finding(
                            sf,
                            node,
                            f"imports legacy entry point "
                            f"`{alias.name}` from `{module}`; use "
                            f"`repro.api.simulate(scenario, "
                            f"strategy=..., scheduler=...)` instead",
                        )
                    )
        return out


class SchedulerOptionNamesRule(FileRule):
    """F1: registered schedulers must declare ``option_names``.

    ``simulate()`` validates unconsumed keyword options against the
    scheduler's ``option_names``; a registered scheduler without the
    declaration (directly or via a base class in the same module) turns
    every user typo into a silent no-op.
    """

    rule_id = "F1"
    title = "@register_scheduler class without option_names"

    def __init__(self, prefixes: Sequence[str] = ("src/",)) -> None:
        self.prefixes = tuple(prefixes)

    def applies(self, rel: str) -> bool:
        return rel.startswith(self.prefixes)

    def check_file(self, sf: SourceFile) -> List[Finding]:
        classes = {
            node.name: node
            for node in ast.walk(sf.tree)
            if isinstance(node, ast.ClassDef)
        }

        def declares(cls: ast.ClassDef, seen: set) -> bool:
            if cls.name in seen:
                return False
            seen.add(cls.name)
            for stmt in cls.body:
                if isinstance(stmt, ast.Assign) and any(
                    isinstance(t, ast.Name) and t.id == "option_names"
                    for t in stmt.targets
                ):
                    return True
                if (
                    isinstance(stmt, ast.AnnAssign)
                    and isinstance(stmt.target, ast.Name)
                    and stmt.target.id == "option_names"
                ):
                    return True
            for base in cls.bases:
                if isinstance(base, ast.Name) and base.id in classes:
                    if declares(classes[base.id], seen):
                        return True
            return False

        out: List[Finding] = []
        for cls in classes.values():
            registered = any(
                (isinstance(dec, ast.Name) and dec.id == "register_scheduler")
                or (
                    isinstance(dec, ast.Attribute)
                    and dec.attr == "register_scheduler"
                )
                for dec in cls.decorator_list
            )
            if registered and not declares(cls, set()):
                out.append(
                    self.finding(
                        sf,
                        cls,
                        f"scheduler class `{cls.name}` is registered "
                        f"but declares no `option_names`; the facade "
                        f"cannot validate its options (declare `()` if "
                        f"it takes none)",
                    )
                )
        return out
