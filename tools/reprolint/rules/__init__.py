"""Rule registry for reprolint.

Each rule family lives in its own module; :func:`default_rules` builds
the production configuration (the one ``python -m tools.reprolint``
runs).  Tests construct rule instances directly with narrowed scopes to
lint fixture trees.
"""

from __future__ import annotations

from typing import List

from tools.reprolint.rules.asserts import BareAssertRule
from tools.reprolint.rules.determinism import (
    ORDER_SENSITIVE_PREFIXES,
    WALL_CLOCK_ALLOWED_PREFIXES,
    IdOrderingWallClockRule,
    UnorderedIterationRule,
    UnseededRandomRule,
)
from tools.reprolint.rules.events_docs import EventDocsCrossCheckRule
from tools.reprolint.rules.facade import (
    LegacyEntryPointRule,
    SchedulerOptionNamesRule,
)
from tools.reprolint.rules.purity import SharedStatePurityRule


def default_rules() -> List[object]:
    """The production rule set, in catalogue order."""
    return [
        UnseededRandomRule(),
        # D2 widens to the service layer so its id()-ordering ban
        # applies there too, but wall-clock reads are allowlisted for
        # exactly that layer (run-record timestamps).
        IdOrderingWallClockRule(
            prefixes=(
                *ORDER_SENSITIVE_PREFIXES,
                *WALL_CLOCK_ALLOWED_PREFIXES,
            ),
            wall_clock_allow=WALL_CLOCK_ALLOWED_PREFIXES,
        ),
        UnorderedIterationRule(),
        SharedStatePurityRule(),
        LegacyEntryPointRule(),
        SchedulerOptionNamesRule(),
        EventDocsCrossCheckRule(),
        BareAssertRule(),
    ]


__all__ = [
    "BareAssertRule",
    "EventDocsCrossCheckRule",
    "IdOrderingWallClockRule",
    "LegacyEntryPointRule",
    "SchedulerOptionNamesRule",
    "SharedStatePurityRule",
    "UnorderedIterationRule",
    "UnseededRandomRule",
    "default_rules",
]
