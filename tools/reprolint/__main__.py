"""CLI: ``python -m tools.reprolint [paths...]``.

Exit status 0 when every finding is suppressed with a reasoned
``# reprolint: ok[RULE] why`` annotation, 1 otherwise.  The
``static-analysis`` CI job runs this over ``src tools benchmarks`` and
uploads the ``--json`` report as an artifact; ``tests/test_reprolint.py``
runs the same configuration inside tier-1.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import List, Optional, Sequence

from tools.reprolint.engine import Runner, write_json_report
from tools.reprolint.rules import default_rules

DEFAULT_PATHS = ("src", "tools", "benchmarks")


def find_repo_root(start: Path) -> Path:
    """Nearest ancestor containing pyproject.toml (else ``start``)."""
    for cand in (start, *start.parents):
        if (cand / "pyproject.toml").exists():
            return cand
    return start


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m tools.reprolint",
        description=(
            "Project-specific static analysis: determinism, planner "
            "purity, facade discipline (rule catalogue in docs/lint.md)."
        ),
    )
    parser.add_argument(
        "paths",
        nargs="*",
        help=f"files/directories to lint (default: {' '.join(DEFAULT_PATHS)})",
    )
    parser.add_argument(
        "--json",
        metavar="FILE",
        help="also write a machine-readable report (CI artifact)",
    )
    parser.add_argument(
        "--rules",
        metavar="IDS",
        help="comma-separated rule ids to run (default: all)",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print the rule catalogue and exit",
    )
    parser.add_argument(
        "--show-suppressed",
        action="store_true",
        help="also print suppressed findings",
    )
    args = parser.parse_args(argv)

    rules = default_rules()
    if args.list_rules:
        for rule in rules:
            print(f"{rule.rule_id:4s} {rule.title}")
        return 0
    if args.rules:
        wanted = {r.strip() for r in args.rules.split(",") if r.strip()}
        unknown = wanted - {r.rule_id for r in rules}
        if unknown:
            parser.error(
                f"unknown rule ids {sorted(unknown)}; "
                f"see --list-rules"
            )
        rules = [r for r in rules if r.rule_id in wanted]

    repo_root = find_repo_root(Path.cwd())
    raw_paths: List[Path] = [
        Path(p) for p in (args.paths or DEFAULT_PATHS)
    ]
    missing = [p for p in raw_paths if not p.exists()]
    if missing:
        parser.error(f"paths do not exist: {[str(p) for p in missing]}")

    runner = Runner(rules, repo_root=repo_root)
    report = runner.run(raw_paths)

    for f in report.active:
        print(f.render())
    if args.show_suppressed:
        for f in report.suppressed:
            print(f.render())
    if args.json:
        write_json_report(report, Path(args.json))
    n_active = len(report.active)
    n_sup = len(report.suppressed)
    print(
        f"reprolint: {report.files_checked} files, "
        f"{len(report.rules_run)} rules, {n_active} findings"
        f" ({n_sup} suppressed)"
    )
    return 1 if n_active else 0


if __name__ == "__main__":
    sys.exit(main())
