"""reprolint — project-specific static analysis for the repro codebase.

The engine's whole value proposition is *bit-identical* behavior:
goldens pin the seed's trajectories, sharded/serial/full-rescan planning
must agree exactly, and SSYNC runs must be reproducible from a seed.
The dynamic guards (golden-equivalence suites, sharded==serial
differentials) can only catch a nondeterministic code path that
misbehaves *on this machine, on this run*.  reprolint is the static
counterpart: an AST-level analyzer that proves, at lint time, that
engine code cannot depend on unseeded randomness, wall-clock time,
unordered iteration, or mutable shared state in the sharded planner.

Rule families (catalogue + rationale in ``docs/lint.md``):

* **D1** — no unseeded/module-level RNG in ``src/repro``; only
  ``random.Random(seed)`` instances threaded from config.
* **D2** — no wall-clock reads or ``id()``-keyed ordering in the
  ordering-sensitive layers (``core/``, ``engine/``, ``grid/``).
* **D3** — no unordered (set / ``dict.keys``) iteration feeding lists,
  event emission, or yields in the ordering-sensitive layers without an
  enclosing ``sorted()``.
* **P1** — the sharded planner's purity contract: ``_plan_one`` and
  everything it transitively calls within ``core/`` must not write to
  ``self``, globals, or its shared-context arguments.
* **F1** — facade discipline: no imports of the legacy per-baseline
  entry points outside the shim surface, and every registered scheduler
  declares ``option_names``.
* **E1** — the event-kind tables in ``docs/schedulers.md`` and the
  kinds actually emitted by the engines must match exactly.
* **A1** — no bare ``assert`` outside tests/benchmarks (stripped under
  ``python -O``); use ``repro.errors`` exceptions.

Findings are suppressed inline with::

    something_flagged()  # reprolint: ok[D3] <reason>

(or the same comment alone on the preceding line).  Run with
``python -m tools.reprolint src tools benchmarks``.
"""

from tools.reprolint.engine import (
    Finding,
    FileRule,
    ProjectRule,
    Runner,
    SourceFile,
)
from tools.reprolint.rules import default_rules

__all__ = [
    "Finding",
    "FileRule",
    "ProjectRule",
    "Runner",
    "SourceFile",
    "default_rules",
]
