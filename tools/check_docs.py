#!/usr/bin/env python3
"""Check that intra-repo markdown links resolve.

Scans every ``*.md`` file in the repo (skipping hidden and vendored
directories) for inline links/images ``[text](target)`` and verifies
that each *relative* target exists on disk, resolved against the linking
file's directory.  External targets (``http(s)://``, ``mailto:``) and
pure in-page anchors (``#section``) are skipped; a ``file#anchor``
target is checked for the file part only.

Exit status 0 when every link resolves, 1 otherwise (broken links are
listed one per line) — the CI ``docs`` job and
``tests/test_docs.py`` both run this.
"""

from __future__ import annotations

import re
import sys
from pathlib import Path
from typing import Iterator, List, Tuple

#: Inline markdown links/images: [text](target) / ![alt](target).
#: Reference-style definitions are rare here and intentionally ignored.
_LINK = re.compile(r"!?\[[^\]]*\]\(([^)\s]+)(?:\s+\"[^\"]*\")?\)")

_SKIP_DIRS = {
    ".git", ".github", "__pycache__", ".pytest_cache", "node_modules",
}

_EXTERNAL = ("http://", "https://", "mailto:", "ftp://")


def iter_markdown(root: Path) -> Iterator[Path]:
    for path in sorted(root.rglob("*.md")):
        if any(part in _SKIP_DIRS for part in path.parts):
            continue
        yield path


def broken_links(root: Path) -> List[Tuple[Path, str]]:
    """All (file, target) pairs whose relative target does not exist."""
    out: List[Tuple[Path, str]] = []
    for md in iter_markdown(root):
        text = md.read_text(encoding="utf-8")
        for match in _LINK.finditer(text):
            target = match.group(1)
            if target.startswith(_EXTERNAL) or target.startswith("#"):
                continue
            file_part = target.split("#", 1)[0]
            if not file_part:
                continue
            if (md.parent / file_part).exists():
                continue
            out.append((md.relative_to(root), target))
    return out


def main(argv: List[str]) -> int:
    root = Path(argv[1]) if len(argv) > 1 else Path(__file__).parent.parent
    broken = broken_links(root.resolve())
    if broken:
        for md, target in broken:
            print(f"BROKEN {md}: ({target})")
        print(f"{len(broken)} broken markdown link(s)", file=sys.stderr)
        return 1
    count = sum(1 for _ in iter_markdown(root.resolve()))
    print(f"all intra-repo markdown links resolve ({count} files checked)")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
