#!/usr/bin/env python3
"""End-to-end smoke of the simulation service over real HTTP.

Boots :class:`repro.service.server.ServiceServer` on an ephemeral port
with the pooled worker backend, then exercises the full client
lifecycle the dashboard depends on:

1. ``POST /runs`` submits a small blob scenario (202 + links);
2. ``GET /runs/<id>`` is polled until the run reaches ``done``;
3. the final metrics must be bit-identical to a direct
   ``repro.api.simulate()`` with the same parameters;
4. ``GET /runs/<id>/frame.svg`` returns a rendered SVG frame;
5. ``GET /runs/<id>/events`` replays every round event in order;
6. ``GET /health`` and ``GET /metrics`` answer with sane counters.

Exit status 0 on success, 1 with a diagnostic on the first failure.
CI's ``service-smoke`` job runs this on every PR.

Usage::

    PYTHONPATH=src python tools/service_smoke.py [--rounds-budget 600]
"""

from __future__ import annotations

import argparse
import json
import sys
import tempfile
import time
from http.client import HTTPConnection

from repro.api import simulate
from repro.engine.protocols import Scenario
from repro.service.app import ServiceApp
from repro.service.server import ServiceServer

SCENARIO = {"family": "blob", "n": 24, "seed": 3}


class SmokeFailure(RuntimeError):
    pass


def check(condition: bool, message: str) -> None:
    if not condition:
        raise SmokeFailure(message)


def request_json(host, port, method, path, payload=None, timeout=60.0):
    conn = HTTPConnection(host, port, timeout=timeout)
    try:
        body = None
        headers = {}
        if payload is not None:
            body = json.dumps(payload).encode("utf-8")
            headers["Content-Type"] = "application/json"
        conn.request(method, path, body=body, headers=headers)
        response = conn.getresponse()
        return response.status, json.loads(response.read())
    finally:
        conn.close()


def request_raw(host, port, path, timeout=120.0):
    conn = HTTPConnection(host, port, timeout=timeout)
    try:
        conn.request("GET", path)
        response = conn.getresponse()
        return response.status, response.read()
    finally:
        conn.close()


def poll_until_done(host, port, run_id, deadline_s=120.0):
    start = time.time()
    while True:
        status, record = request_json(
            host, port, "GET", f"/runs/{run_id}"
        )
        check(status == 200, f"GET /runs/{run_id} -> {status}")
        if record["status"] in ("done", "failed"):
            return record
        check(
            time.time() - start < deadline_s,
            f"run {run_id} still {record['status']} "
            f"after {deadline_s}s",
        )
        time.sleep(0.1)


def sse_rounds(body: bytes):
    """Round indexes, in stream order, from a raw SSE byte stream."""
    rounds = []
    for block in body.decode("utf-8").split("\n\n"):
        name = data = None
        for line in block.splitlines():
            if line.startswith("event: "):
                name = line[len("event: "):]
            elif line.startswith("data: "):
                data = line[len("data: "):]
        if name == "round" and data is not None:
            rounds.append(json.loads(data)["round"])
    return rounds


def run_smoke(data_dir: str) -> None:
    app = ServiceApp(data_dir, workers=2, poll_interval=0.02)
    server = ServiceServer(app, port=0)
    server.start()
    try:
        host, port = server.host, server.port
        print(f"service up on {server.url}")

        status, body = request_json(
            host, port, "POST", "/runs", SCENARIO
        )
        check(status == 202, f"POST /runs -> {status}: {body}")
        run_id = body["id"]
        check(
            body["links"]["self"] == f"/runs/{run_id}",
            f"submit links malformed: {body}",
        )
        print(f"submitted {run_id} {SCENARIO}")

        record = poll_until_done(host, port, run_id)
        check(
            record["status"] == "done",
            f"run ended {record['status']}: {record.get('error')}",
        )
        metrics = record["metrics"]
        direct = simulate(Scenario(**SCENARIO)).summary()
        check(
            metrics == direct,
            f"service metrics diverge from direct simulate():\n"
            f"  service: {metrics}\n  direct:  {direct}",
        )
        print(
            f"run done: rounds={metrics['rounds']} "
            f"gathered={metrics['gathered']} (bit-identical to "
            f"direct simulate)"
        )

        status, frame = request_raw(
            host, port, f"/runs/{run_id}/frame.svg?round=latest"
        )
        check(status == 200, f"frame.svg -> {status}")
        check(
            frame.startswith(b"<svg"),
            f"frame is not SVG: {frame[:40]!r}",
        )
        print(f"frame.svg ok ({len(frame)} bytes)")

        status, stream = request_raw(
            host, port, f"/runs/{run_id}/events"
        )
        check(status == 200, f"events -> {status}")
        rounds = sse_rounds(stream)
        check(
            rounds == list(range(metrics["rounds"])),
            f"SSE rounds {rounds} != 0..{metrics['rounds'] - 1}",
        )
        print(f"SSE replayed {len(rounds)} rounds in order")

        status, health = request_json(host, port, "GET", "/health")
        check(status == 200, f"/health -> {status}")
        check(
            health["status"] == "ok" and health["runs"]["done"] == 1,
            f"unhealthy: {health}",
        )
        status, counters = request_json(
            host, port, "GET", "/metrics"
        )
        check(status == 200, f"/metrics -> {status}")
        check(
            counters["http_requests_total"] > 0
            and counters["sse"]["streams_total"] >= 1,
            f"metrics counters off: {counters}",
        )
        print("health + metrics ok")
    finally:
        server.shutdown()


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--data-dir",
        default=None,
        help="service data directory (default: a fresh temp dir)",
    )
    args = parser.parse_args(argv)
    try:
        if args.data_dir is not None:
            run_smoke(args.data_dir)
        else:
            with tempfile.TemporaryDirectory() as tmp:
                run_smoke(tmp)
    except SmokeFailure as exc:
        print(f"SMOKE FAILURE: {exc}", file=sys.stderr)
        return 1
    print("service smoke OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
