"""Capture golden trajectories for the incremental-pipeline equivalence suite.

Run from the repo root::

    PYTHONPATH=src python tools/make_goldens.py

Writes ``tests/data/golden_trajectories.json``: per scenario, the round
count, a per-round hash of the swarm state, and a per-round hash of the
controller events.  The committed file was generated from the *seed*
implementation (commit aa9a9e6, full per-round rescans), so
``tests/test_incremental_equivalence.py`` proves the incremental pipeline
is bit-identical to the seed on every generator family.

Engine-terminal events (``gathered`` / ``budget_exhausted``) are excluded
from the event hashes: the seed never emitted them (the event-log bugfix
added them), and they are derived from the trajectory anyway.
"""

from __future__ import annotations

import hashlib
import json
import os
import sys

# reprolint: ok[F1] golden capture intentionally pins the legacy shim so
# the shim's own behavior stays under test.
from repro.core.algorithm import gather
from repro.core.config import AlgorithmConfig
from repro.swarms.generators import (
    FAMILIES,
    comb,
    diamond_ring,
    double_donut,
    family,
    h_shape,
    l_corridor,
    ring,
    spiral,
    staircase_corridor,
)

#: Non-trajectory event kinds, excluded from golden hashes: engine
#: terminals (the seed never emitted them), the incremental pipeline's
#: ``boundary_respliced`` audit events (diagnostics of *how* boundaries
#: were maintained — full-rescan mode does no splicing, so they cannot be
#: part of the trajectory comparison), and the planning executors'
#: worker lifecycle telemetry (whether a worker died and was respawned
#: mid-round must never change the trajectory — the equivalence suite
#: pins exactly that).
ENGINE_EVENT_KINDS = frozenset(
    {
        "gathered",
        "budget_exhausted",
        "boundary_respliced",
        "worker_failed",
        "worker_respawned",
    }
)

SCENARIOS = {
    # every generator family, two sizes each
    **{
        f"{name}_{n}": (lambda name=name, n=n: family(name, n))
        for name in sorted(FAMILIES)
        for n in (24, 72)
    },
    # larger instances with long mergeless phases
    "ring_160": lambda: family("ring", 160),
    "spiral_160": lambda: family("spiral", 160),
    "blob_300": lambda: family("blob", 300),
    # hole-bearing and degenerate stress shapes
    "ring12": lambda: ring(12),
    "ring9_t2": lambda: ring(9, 2),
    "double_donut12": lambda: double_donut(12),
    "diamond_ring6": lambda: diamond_ring(6),
    "spiral3_g2": lambda: spiral(3, 2),
    "stair_corridor8": lambda: staircase_corridor(8),
    "comb5x4": lambda: comb(5, 4),
    "h_9x5": lambda: h_shape(9, 5),
    "l_corridor10": lambda: l_corridor(10, 2),
}


def _state_digest(cells) -> str:
    h = hashlib.sha256(repr(sorted(cells)).encode())
    return h.hexdigest()[:12]


#: Movement events — a pure function of the per-round moves.
CORE_EVENT_KINDS = frozenset({"fold", "merge"})


def _events_digest(events, round_index: int, kinds=None) -> str:
    """Digest of one round's events (optionally restricted to ``kinds``).

    Events within a round are sorted and ``run_id`` is dropped: an FSYNC
    round is simultaneous, so the emission order and run numbering are
    artifacts of site processing order, not part of the trajectory.
    """
    lines = sorted(
        f"{e.kind}:{sorted(i for i in e.data.items() if i[0] != 'run_id')!r}"
        for e in events
        if e.round_index == round_index
        and e.kind not in ENGINE_EVENT_KINDS
        and (kinds is None or e.kind in kinds)
    )
    return hashlib.sha256("\n".join(lines).encode()).hexdigest()[:12]


def run_scenario(make_cells, cfg: AlgorithmConfig | None = None) -> dict:
    snapshots: list[str] = []
    result = gather(
        make_cells(),
        cfg,
        on_round=lambda i, state: snapshots.append(_state_digest(state.cells)),
    )
    event_hashes = [
        _events_digest(result.events, i) for i in range(result.rounds)
    ]
    core_event_hashes = [
        _events_digest(result.events, i, CORE_EVENT_KINDS)
        for i in range(result.rounds)
    ]
    return {
        "rounds": result.rounds,
        "gathered": result.gathered,
        "robots_final": result.robots_final,
        "final": sorted(map(list, result.final_state.cells)),
        "state_hashes": snapshots,
        "event_hashes": event_hashes,
        "core_event_hashes": core_event_hashes,
    }


def main() -> int:
    out = {}
    for name in sorted(SCENARIOS):
        out[name] = run_scenario(SCENARIOS[name])
        print(f"{name}: rounds={out[name]['rounds']}", flush=True)
    path = os.path.join(
        os.path.dirname(__file__), "..", "tests", "data",
        "golden_trajectories.json",
    )
    os.makedirs(os.path.dirname(path), exist_ok=True)
    with open(path, "w") as fh:
        json.dump(out, fh, indent=1, sort_keys=True)
    print(f"wrote {os.path.normpath(path)}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
