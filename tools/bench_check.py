#!/usr/bin/env python3
"""Compare freshly measured benchmark reports against committed ones.

Default mode: BENCH_ring.json speedup ratios.  ``--shard`` mode:
BENCH_shard.json executor-backend reports (structure, the
process-beats-serial claim where the machine can support it, backend
speedup ratios, and the sweep pool-reuse floor).

CI's ``bench-smoke`` job regenerates the steady-state micro-bench report
(``BENCH_RING_OUT=... pytest benchmarks/bench_micro.py -k
ring_resplice``) and calls this checker.  Absolute ms/round numbers are
machine-bound and meaningless across runners, so the comparison is on
the **speedup ratios** (incremental vs full rescan of the *same* run on
the *same* machine): a fresh speedup may not fall more than
``--tolerance`` (default 30%) below the committed baseline for any
instance present in both files.  Instances only present on one side
(newly added benches) are reported but never fail the check.

Several fresh reports may be given (CI measures twice): each instance is
judged on its **best** fresh speedup, so a single noisy-neighbor run
cannot red-X an unrelated PR.

Exit status 0 when every shared instance is within tolerance, 1
otherwise.

Usage::

    python tools/bench_check.py BENCH_ring.json fresh1.json [fresh2.json
        ...] [--tolerance 0.3]
"""

from __future__ import annotations

import argparse
import json
import sys


def load_speedups(path: str) -> dict:
    with open(path) as fh:
        report = json.load(fh)
    instances = report.get("instances")
    if not isinstance(instances, dict) or not instances:
        raise ValueError(f"{path}: no instances in report")
    out = {}
    for name, values in instances.items():
        speedup = values.get("speedup")
        if not isinstance(speedup, (int, float)) or speedup <= 0:
            raise ValueError(f"{path}: instance {name!r} has no speedup")
        out[name] = float(speedup)
    return out


def compare(
    baseline: dict, fresh: dict, tolerance: float
) -> list[str]:
    """Human-readable comparison lines; raises nothing, failures are
    marked with ``REGRESSION``."""
    lines = []
    for name in sorted(baseline.keys() | fresh.keys()):
        base = baseline.get(name)
        new = fresh.get(name)
        if base is None:
            lines.append(f"  {name}: new instance, fresh {new:.2f}x (info)")
            continue
        if new is None:
            lines.append(
                f"  {name}: missing from fresh report, baseline "
                f"{base:.2f}x (info)"
            )
            continue
        floor = base * (1.0 - tolerance)
        verdict = "ok" if new >= floor else "REGRESSION"
        lines.append(
            f"  {name}: baseline {base:.2f}x, fresh {new:.2f}x, "
            f"floor {floor:.2f}x -> {verdict}"
        )
    return lines


_SHARD_INSTANCE_KEYS = (
    "serial_ms_per_round",
    "thread_ms_per_round",
    "process_ms_per_round",
    "thread_speedup",
    "process_speedup",
)
_SHARD_SWEEP_KEYS = ("fresh_pool_s", "persistent_pool_s", "reuse_speedup")


def load_shard_report(path: str) -> dict:
    """Load and structurally validate a BENCH_shard.json report."""
    with open(path) as fh:
        report = json.load(fh)
    cpus = report.get("cpu_count")
    if not isinstance(cpus, int) or cpus < 1:
        raise ValueError(f"{path}: missing/invalid cpu_count")
    instances = report.get("instances")
    if not isinstance(instances, dict) or not instances:
        raise ValueError(f"{path}: no instances in report")
    for name, values in instances.items():
        for key in _SHARD_INSTANCE_KEYS:
            v = values.get(key)
            if not isinstance(v, (int, float)) or v <= 0:
                raise ValueError(
                    f"{path}: instance {name!r} missing {key}"
                )
    sweep = report.get("sweep_dispatch")
    if not isinstance(sweep, dict):
        raise ValueError(f"{path}: missing sweep_dispatch")
    for key in _SHARD_SWEEP_KEYS:
        v = sweep.get(key)
        if not isinstance(v, (int, float)) or v <= 0:
            raise ValueError(f"{path}: sweep_dispatch missing {key}")
    return report


def check_shard(
    baseline: dict,
    fresh_reports: list,
    tolerance: float,
    reuse_floor: float,
) -> list[str]:
    """Comparison lines for ``--shard`` mode; failures are marked with
    ``REGRESSION`` / ``FAILED``.

    Absolute ms are machine-bound, so everything is ratios.  The
    process-beats-serial claim is only asserted on fresh reports whose
    machine has >= 2 CPUs (on one core the snapshot publish is pure
    overhead), and baseline-vs-fresh ratio floors only apply when the
    two machines have comparable parallelism (equal cpu_count) —
    otherwise the lines are informational.
    """
    lines = []
    multi = [r for r in fresh_reports if r["cpu_count"] >= 2]
    if multi:
        best = max(
            v["process_speedup"]
            for r in multi
            for v in r["instances"].values()
        )
        verdict = "ok" if best > 1.0 else "FAILED"
        lines.append(
            f"  process-beats-serial (cpu_count>=2): best "
            f"{best:.2f}x -> {verdict}"
        )
    else:
        lines.append(
            "  process-beats-serial: skipped (no fresh report from a "
            "multi-core machine)"
        )
    comparable = [
        r for r in fresh_reports if r["cpu_count"] == baseline["cpu_count"]
    ]
    for name in sorted(baseline["instances"]):
        base = baseline["instances"][name]
        for key in ("thread_speedup", "process_speedup"):
            news = [
                r["instances"][name][key]
                for r in comparable
                if name in r["instances"]
            ]
            if not news:
                lines.append(
                    f"  {name}.{key}: baseline {base[key]:.2f}x, no "
                    f"comparable fresh report (info)"
                )
                continue
            new = max(news)
            floor = base[key] * (1.0 - tolerance)
            verdict = "ok" if new >= floor else "REGRESSION"
            lines.append(
                f"  {name}.{key}: baseline {base[key]:.2f}x, fresh "
                f"{new:.2f}x, floor {floor:.2f}x -> {verdict}"
            )
    best_reuse = max(
        r["sweep_dispatch"]["reuse_speedup"] for r in fresh_reports
    )
    verdict = "ok" if best_reuse >= reuse_floor else "FAILED"
    lines.append(
        f"  sweep pool reuse: best {best_reuse:.2f}x, floor "
        f"{reuse_floor:.2f}x -> {verdict}"
    )
    return lines


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("baseline", help="committed BENCH_ring.json")
    parser.add_argument(
        "fresh",
        nargs="+",
        help="freshly measured report(s); instances judged on their "
        "best fresh speedup",
    )
    parser.add_argument(
        "--tolerance",
        type=float,
        default=0.3,
        help="allowed relative speedup drop before failing (default 0.3)",
    )
    parser.add_argument(
        "--shard",
        action="store_true",
        help="compare BENCH_shard.json executor-backend reports instead "
        "of BENCH_ring.json speedups",
    )
    parser.add_argument(
        "--reuse-floor",
        type=float,
        default=1.0,
        help="--shard only: minimum sweep pool-reuse speedup "
        "(default 1.0 — reusing workers must never lose to "
        "respawning them)",
    )
    args = parser.parse_args(argv)
    if not 0.0 <= args.tolerance < 1.0:
        print("error: --tolerance must be in [0, 1)", file=sys.stderr)
        return 2
    if args.shard:
        try:
            baseline = load_shard_report(args.baseline)
            fresh_reports = [load_shard_report(p) for p in args.fresh]
        except (OSError, ValueError, json.JSONDecodeError) as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
        lines = check_shard(
            baseline, fresh_reports, args.tolerance, args.reuse_floor
        )
        print(f"shard bench check (tolerance {args.tolerance:.0%}):")
        print("\n".join(lines))
        if any(
            "REGRESSION" in line or "FAILED" in line for line in lines
        ):
            print("FAILED: shard bench check", file=sys.stderr)
            return 1
        print("OK")
        return 0
    try:
        baseline = load_speedups(args.baseline)
        fresh: dict = {}
        for path in args.fresh:
            for name, speedup in load_speedups(path).items():
                fresh[name] = max(speedup, fresh.get(name, 0.0))
    except (OSError, ValueError, json.JSONDecodeError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    lines = compare(baseline, fresh, args.tolerance)
    print(f"bench speedup check (tolerance {args.tolerance:.0%}):")
    print("\n".join(lines))
    if any("REGRESSION" in line for line in lines):
        print("FAILED: speedup regression beyond tolerance", file=sys.stderr)
        return 1
    print("OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
