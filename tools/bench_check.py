#!/usr/bin/env python3
"""Compare a freshly measured BENCH_ring.json against the committed one.

CI's ``bench-smoke`` job regenerates the steady-state micro-bench report
(``BENCH_RING_OUT=... pytest benchmarks/bench_micro.py -k
ring_resplice``) and calls this checker.  Absolute ms/round numbers are
machine-bound and meaningless across runners, so the comparison is on
the **speedup ratios** (incremental vs full rescan of the *same* run on
the *same* machine): a fresh speedup may not fall more than
``--tolerance`` (default 30%) below the committed baseline for any
instance present in both files.  Instances only present on one side
(newly added benches) are reported but never fail the check.

Several fresh reports may be given (CI measures twice): each instance is
judged on its **best** fresh speedup, so a single noisy-neighbor run
cannot red-X an unrelated PR.

Exit status 0 when every shared instance is within tolerance, 1
otherwise.

Usage::

    python tools/bench_check.py BENCH_ring.json fresh1.json [fresh2.json
        ...] [--tolerance 0.3]
"""

from __future__ import annotations

import argparse
import json
import sys


def load_speedups(path: str) -> dict:
    with open(path) as fh:
        report = json.load(fh)
    instances = report.get("instances")
    if not isinstance(instances, dict) or not instances:
        raise ValueError(f"{path}: no instances in report")
    out = {}
    for name, values in instances.items():
        speedup = values.get("speedup")
        if not isinstance(speedup, (int, float)) or speedup <= 0:
            raise ValueError(f"{path}: instance {name!r} has no speedup")
        out[name] = float(speedup)
    return out


def compare(
    baseline: dict, fresh: dict, tolerance: float
) -> list[str]:
    """Human-readable comparison lines; raises nothing, failures are
    marked with ``REGRESSION``."""
    lines = []
    for name in sorted(baseline.keys() | fresh.keys()):
        base = baseline.get(name)
        new = fresh.get(name)
        if base is None:
            lines.append(f"  {name}: new instance, fresh {new:.2f}x (info)")
            continue
        if new is None:
            lines.append(
                f"  {name}: missing from fresh report, baseline "
                f"{base:.2f}x (info)"
            )
            continue
        floor = base * (1.0 - tolerance)
        verdict = "ok" if new >= floor else "REGRESSION"
        lines.append(
            f"  {name}: baseline {base:.2f}x, fresh {new:.2f}x, "
            f"floor {floor:.2f}x -> {verdict}"
        )
    return lines


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("baseline", help="committed BENCH_ring.json")
    parser.add_argument(
        "fresh",
        nargs="+",
        help="freshly measured report(s); instances judged on their "
        "best fresh speedup",
    )
    parser.add_argument(
        "--tolerance",
        type=float,
        default=0.3,
        help="allowed relative speedup drop before failing (default 0.3)",
    )
    args = parser.parse_args(argv)
    if not 0.0 <= args.tolerance < 1.0:
        print("error: --tolerance must be in [0, 1)", file=sys.stderr)
        return 2
    try:
        baseline = load_speedups(args.baseline)
        fresh: dict = {}
        for path in args.fresh:
            for name, speedup in load_speedups(path).items():
                fresh[name] = max(speedup, fresh.get(name, 0.0))
    except (OSError, ValueError, json.JSONDecodeError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    lines = compare(baseline, fresh, args.tolerance)
    print(f"bench speedup check (tolerance {args.tolerance:.0%}):")
    print("\n".join(lines))
    if any("REGRESSION" in line for line in lines):
        print("FAILED: speedup regression beyond tolerance", file=sys.stderr)
        return 1
    print("OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
