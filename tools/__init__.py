"""Repo tooling: golden capture, bench checking, docs and lint passes.

A regular package so ``python -m tools.reprolint`` works from the repo
root (the scripts here also keep working when invoked directly, e.g.
``python tools/bench_check.py``).
"""
