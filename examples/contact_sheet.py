#!/usr/bin/env python3
"""Export an SVG contact sheet of a gathering (one panel per sampled round).

Run:  python examples/contact_sheet.py [out.svg]
"""

import sys

from repro import SwarmState, ring
from repro.core import GatherOnGrid
from repro.engine import FsyncEngine
from repro.viz import FrameRecorder


def main() -> None:
    out = sys.argv[1] if len(sys.argv) > 1 else "gathering_contact_sheet.svg"
    cells = ring(18)
    recorder = FrameRecorder(every=8, max_frames=12)
    engine = FsyncEngine(SwarmState(cells), GatherOnGrid(), on_round=recorder)
    result = engine.run()
    assert result.gathered
    recorder.to_svg(columns=4).save(out)
    print(
        f"gathered {result.robots_initial} robots in {result.rounds} rounds; "
        f"wrote {len(recorder.frames)} panels to {out}"
    )


if __name__ == "__main__":
    main()
