#!/usr/bin/env python3
"""Experiment E1 as a standalone study: rounds vs n across families.

Prints the measured table per family, fits the growth, and writes an SVG
chart (rounds vs n) to scaling_study.svg.

Run:  python examples/scaling_study.py [--fast]
"""

import sys

from repro.analysis import fit_linear, format_table, run_scaling, scaling_exponent
from repro.viz.svg import line_chart


def main() -> None:
    fast = "--fast" in sys.argv
    sweeps = {
        "line": [40, 80, 160] if fast else [40, 80, 160, 320, 640],
        "ring": [92, 124, 188] if fast else [92, 124, 188, 252, 380],
        "solid": [64, 144, 256] if fast else [64, 144, 256, 400, 625],
        "blob": [100, 200, 400] if fast else [100, 200, 400, 700, 1000],
        "tree": [80, 160, 320] if fast else [80, 160, 320, 500, 800],
    }
    series = {}
    for fam, sizes in sweeps.items():
        points = run_scaling(fam, sizes, check_connectivity=False)
        rows = [
            (p.n, p.diameter, p.rounds, f"{p.rounds_per_n:.2f}")
            for p in points
        ]
        ns = [p.n for p in points]
        rounds = [p.rounds for p in points]
        exp = scaling_exponent(ns, rounds)
        lin = fit_linear(ns, rounds)
        print(
            format_table(
                ["n", "diameter", "rounds", "rounds/n"],
                rows,
                title=(
                    f"[{fam}] exponent {exp:.2f}, slope "
                    f"{lin.coefficients[0]:.2f} (R2 {lin.r_squared:.3f})"
                ),
            )
        )
        print()
        series[fam] = [(float(p.n), float(p.rounds)) for p in points]

    chart = line_chart(series, title="rounds vs n (Theorem 1: O(n))")
    chart.save("scaling_study.svg")
    print("wrote scaling_study.svg")


if __name__ == "__main__":
    main()
