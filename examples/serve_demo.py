#!/usr/bin/env python3
"""Drive the simulation service like an HTTP client would.

Boots a local service (unless ``--url`` points at a running one),
submits three scenarios through ``POST /runs``, waits for the workers
to finish them, and prints a status table assembled *entirely from the
API* — the same endpoints the dashboard at ``/`` consumes.

Run:  python examples/serve_demo.py
      python examples/serve_demo.py --url http://127.0.0.1:8765
"""

from __future__ import annotations

import argparse
import json
import sys
import tempfile
import time
from urllib.request import Request, urlopen

SCENARIOS = [
    {"family": "ring", "n": 40, "seed": 2},
    {"family": "blob", "n": 24, "seed": 3},
    {"family": "plus", "n": 30, "seed": 1},
]


def api(url: str, method: str = "GET", payload: dict | None = None):
    data = None
    headers = {}
    if payload is not None:
        data = json.dumps(payload).encode("utf-8")
        headers["Content-Type"] = "application/json"
    request = Request(url, data=data, headers=headers, method=method)
    with urlopen(request, timeout=60) as response:
        return json.loads(response.read())


def wait_until_settled(base: str, run_ids, deadline_s=120.0):
    start = time.time()
    while time.time() - start < deadline_s:
        records = {
            r["run_id"]: r
            for r in api(f"{base}/runs")["runs"]
            if r["run_id"] in run_ids
        }
        if all(
            r["status"] in ("done", "failed")
            for r in records.values()
        ):
            return records
        time.sleep(0.1)
    raise TimeoutError(f"runs not settled after {deadline_s}s")


def demo(base: str) -> None:
    health = api(f"{base}/health")
    print(
        f"service at {base}: {health['status']}, "
        f"{health['workers']} workers\n"
    )

    run_ids = []
    for scenario in SCENARIOS:
        accepted = api(f"{base}/runs", "POST", scenario)
        run_ids.append(accepted["id"])
        print(f"submitted {accepted['id']}: {scenario}")

    records = wait_until_settled(base, set(run_ids))

    print(f"\n{'run':<12} {'scenario':<22} {'status':<8} "
          f"{'rounds':>6} {'robots':>7} {'gathered':>8}")
    for run_id in run_ids:
        record = records[run_id]
        params = record["params"]
        scenario = f"{params.get('family')}/n={params.get('n')}"
        metrics = record.get("metrics") or {}
        robots = (
            f"{metrics.get('robots_initial', '?')}"
            f"->{metrics.get('robots_final', '?')}"
        )
        print(
            f"{run_id:<12} {scenario:<22} {record['status']:<8} "
            f"{metrics.get('rounds', '-'):>6} {robots:>7} "
            f"{str(metrics.get('gathered', '-')):>8}"
        )

    first = run_ids[0]
    frame_url = f"{base}/runs/{first}/frame.svg?round=latest"
    print(f"\nlive dashboard: {base}/")
    print(f"frames, e.g.:   {frame_url}")


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--url",
        default=None,
        help="base URL of a running service (default: self-host one)",
    )
    args = parser.parse_args(argv)
    if args.url is not None:
        demo(args.url.rstrip("/"))
        return 0

    # Self-host: an in-process server over a throwaway data directory.
    from repro.service.app import ServiceApp
    from repro.service.server import ServiceServer

    with tempfile.TemporaryDirectory() as tmp:
        server = ServiceServer(
            ServiceApp(tmp, workers=2, poll_interval=0.02), port=0
        )
        server.start()
        try:
            demo(server.url)
        finally:
            server.shutdown()
    return 0


if __name__ == "__main__":
    sys.exit(main())
