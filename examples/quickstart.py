#!/usr/bin/env python3
"""Quickstart: gather a swarm and inspect the result.

Run:  python examples/quickstart.py
"""

from repro import AlgorithmConfig, Scenario, gather, ring, simulate
from repro.viz import render


def main() -> None:
    # A square ring of robots — a "mergeless" swarm: no local merge is
    # possible anywhere, so the paper's run/reshapement machinery has to
    # reshape it before merges can fire.
    cells = ring(16)
    print(f"initial swarm: {len(cells)} robots")
    print(render(cells))

    result = gather(cells)

    print(
        f"\ngathered = {result.gathered} after {result.rounds} rounds "
        f"({result.robots_initial} -> {result.robots_final} robots)"
    )
    print(f"rounds / n = {result.rounds_per_robot():.2f}  (Theorem 1: O(n))")
    print("\nfinal state:")
    print(render(result.final_state))

    # Event accounting: merges, run starts/stops, reshapement folds.
    print("\nevents:", result.events.counts())

    # Everything is configurable — the paper's constants are the defaults.
    cfg = AlgorithmConfig()
    print(
        f"\npaper constants: viewing radius {cfg.viewing_radius}, "
        f"run start interval L = {cfg.run_start_interval}, "
        f"run passing distance {cfg.run_passing_distance}"
    )

    # Weaker time models: the same algorithm under an adversarial SSYNC
    # scheduler that activates each robot with probability 0.8 per round
    # (docs/schedulers.md).  Activation probability 1.0 would reproduce
    # the FSYNC run above exactly.
    ssync = simulate(
        Scenario(family="line", n=16),
        scheduler="ssync",
        activation="uniform",
        activation_p=0.8,
        seed=1,
    )
    fsync = simulate(Scenario(family="line", n=16))
    print(
        f"\nSSYNC(p=0.8) on a 16-robot line: gathered={ssync.gathered} "
        f"in {ssync.rounds} rounds ({ssync.activations} activations) "
        f"vs {fsync.rounds} FSYNC rounds"
    )


if __name__ == "__main__":
    main()
