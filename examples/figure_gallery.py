#!/usr/bin/env python3
"""Regenerate the paper's Figures 1-21 from live simulator state.

Each figure is rebuilt by running the actual library machinery (boundary
extraction, merge patterns, run manager, full engine) on the configuration
the paper illustrates — see repro.viz.figures.

Run:  python examples/figure_gallery.py [figN ...]
"""

import sys

from repro.viz.figures import FIGURES, figure


def main() -> None:
    names = sys.argv[1:] or sorted(
        FIGURES, key=lambda s: int(s.removeprefix("fig"))
    )
    for name in names:
        print("=" * 72)
        print(figure(name))
        print()


if __name__ == "__main__":
    main()
