#!/usr/bin/env python3
"""Watch a swarm gather, round by round, as terminal animation frames.

Shows the paper's mechanics live: runners (R) travel along the boundary
folding corners inward; once the reshaped walls come close enough, merge
patterns fire and the swarm implodes.

Run:  python examples/watch_gathering.py [shape] [size]
      shapes: ring (default), line, solid, blob, spiral, donut
"""

import sys

from repro import SwarmState
from repro.core import AlgorithmConfig, GatherOnGrid
from repro.engine import FsyncEngine
from repro.swarms import (
    double_donut,
    line,
    random_blob,
    ring,
    solid_rectangle,
    spiral,
)
from repro.viz import render_with_marks

SHAPES = {
    "ring": lambda n: ring(max(6, n)),
    "line": lambda n: line(max(4, n * 2)),
    "solid": lambda n: solid_rectangle(n, n),
    "blob": lambda n: random_blob(n * n // 2, seed=7),
    "spiral": lambda n: spiral(max(3, n // 2)),
    "donut": lambda n: double_donut(max(10, n)),
}


def main() -> None:
    shape = sys.argv[1] if len(sys.argv) > 1 else "ring"
    size = int(sys.argv[2]) if len(sys.argv) > 2 else 14
    cells = SHAPES[shape](size)

    ctrl = GatherOnGrid(AlgorithmConfig())
    engine = FsyncEngine(SwarmState(cells), ctrl)

    frame = 0
    while not engine.state.is_gathered() and frame < 4000:
        marks = {r.robot: "R" for r in ctrl.run_manager.runs.values()}
        print(
            f"\n=== round {frame}: {len(engine.state)} robots, "
            f"{ctrl.active_run_count} active runs ==="
        )
        print(render_with_marks(engine.state, marks))
        engine.step()
        frame += 1

    print(f"\n=== gathered after {frame} rounds ===")
    print(render_with_marks(engine.state, {}))
    stops = {}
    for e in ctrl.events.of_kind("run_stop"):
        stops[e.data["reason"]] = stops.get(e.data["reason"], 0) + 1
    print(
        f"\nrun starts: {len(ctrl.events.of_kind('run_start'))}, "
        f"folds: {len(ctrl.events.of_kind('fold'))}, stops: {stops}"
    )


if __name__ == "__main__":
    main()
