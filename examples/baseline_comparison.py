#!/usr/bin/env python3
"""Experiments E2-E4 as a standalone study: the paper's context.

Compares, on matched sizes, every strategy in the unified facade's
registry lineup:
  * this paper's grid algorithm (FSYNC, local)        -> O(n) rounds
  * [DKL+11] Euclidean go-to-center (FSYNC, local)    -> Theta(n^2) rounds
  * the ASYNC fair-scheduler greedy (Section 1 remark)-> O(n) rounds
  * global-vision gathering ([SN14] context)          -> O(diameter) rounds

Each strategy is invoked through one entry point —
``simulate(strategy=key)`` on its worst-case family
(``STRATEGIES[key].compare_scenario(n)``) — and returns the same
``RunResult``; this file is the facade's showcase.

Run:  python examples/baseline_comparison.py
"""

from repro import STRATEGIES, simulate
from repro.analysis import format_table, scaling_exponent

LINEUP = [
    ("grid", "grid (paper)"),
    ("euclidean", "euclid GTC"),
    ("async_greedy", "async greedy"),
    ("global", "global vision"),
]


def main() -> None:
    sizes = [16, 32, 48, 64]
    rows = []
    series = {key: [] for key, _ in LINEUP}
    for n in sizes:
        row = [n]
        for key, _ in LINEUP:
            result = simulate(
                STRATEGIES[key].compare_scenario(n),
                strategy=key,
                check_connectivity=False,
            )
            series[key].append(max(result.rounds, 1))
            row.append(result.rounds)
        rows.append(tuple(row))

    print(
        format_table(
            ["n"] + [label for _, label in LINEUP],
            rows,
            title="rounds to gather (worst-case family per model)",
        )
    )
    print()
    for key, label in LINEUP:
        print(
            f"{label:14s} growth exponent "
            f"{scaling_exponent([float(s) for s in sizes], series[key]):.2f}"
        )
    print(
        "\npaper's claim: the grid algorithm matches the linear models "
        "while the\nEuclidean local algorithm is quadratic — the exponent "
        "column shows exactly that."
    )


if __name__ == "__main__":
    main()
