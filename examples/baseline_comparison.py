#!/usr/bin/env python3
"""Experiments E2-E4 as a standalone study: the paper's context.

Compares, on matched sizes:
  * this paper's grid algorithm (FSYNC, local)        -> O(n) rounds
  * [DKL+11] Euclidean go-to-center (FSYNC, local)    -> Theta(n^2) rounds
  * the ASYNC fair-scheduler greedy (Section 1 remark)-> O(n) rounds
  * global-vision gathering ([SN14] context)          -> O(diameter) rounds

Run:  python examples/baseline_comparison.py
"""

import math

from repro import gather, line, random_blob
from repro.analysis import format_table, scaling_exponent
from repro.baselines import gather_async, gather_euclidean
from repro.baselines.global_grid import gather_global_with_moves


def euclid_circle(n):
    r = n * 0.9 / (2 * math.pi)
    return [
        (r * math.cos(2 * math.pi * i / n), r * math.sin(2 * math.pi * i / n))
        for i in range(n)
    ]


def main() -> None:
    sizes = [16, 32, 48, 64]
    rows = []
    grid_r, euc_r, asy_r, glob_r = [], [], [], []
    for n in sizes:
        g = gather(line(n), check_connectivity=False)
        e = gather_euclidean(euclid_circle(n))
        a = gather_async(random_blob(n, seed=n), check_connectivity=False)
        gl, _ = gather_global_with_moves(line(n))
        grid_r.append(max(g.rounds, 1))
        euc_r.append(max(e.rounds, 1))
        asy_r.append(max(a.rounds, 1))
        glob_r.append(max(gl.rounds, 1))
        rows.append((n, g.rounds, e.rounds, a.rounds, gl.rounds))

    print(
        format_table(
            ["n", "grid (paper)", "euclid GTC", "async greedy", "global vision"],
            rows,
            title="rounds to gather (worst-case family per model)",
        )
    )
    print()
    for name, data in [
        ("grid (paper)", grid_r),
        ("euclid GTC", euc_r),
        ("async greedy", asy_r),
        ("global vision", glob_r),
    ]:
        print(
            f"{name:14s} growth exponent "
            f"{scaling_exponent([float(s) for s in sizes], data):.2f}"
        )
    print(
        "\npaper's claim: the grid algorithm matches the linear models "
        "while the\nEuclidean local algorithm is quadratic — the exponent "
        "column shows exactly that."
    )


if __name__ == "__main__":
    main()
