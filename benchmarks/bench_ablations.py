"""Experiments E5-E7: ablations of the paper's design choices.

E5 — the constants: viewing radius and the run-start interval L
     (paper Lemma 3 fixes radius 20, L = 22).
E6 — pipelining (paper Section 4.2): periodic run starts are what makes
     reshapement-bound families linear.
E7 — merge operation length k (paper Fig. 2): longer local merges buy
     parallelism on thick material.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import emit
from repro.analysis.tables import format_table
from repro.api import simulate
from repro.core.config import AlgorithmConfig
from repro.swarms.generators import ring, solid_rectangle

STALL = 6000


def _rounds(cells, cfg):
    r = simulate(cells, config=cfg, max_rounds=STALL, check_connectivity=False)
    return r.rounds if r.gathered else -1


def test_e5_interval_sweep(benchmark):
    """E5a: run-start interval L sweep on a mergeless ring."""
    cells = ring(24)
    rows = []
    for interval in (6, 12, 22, 44, 88):
        cfg = AlgorithmConfig(run_start_interval=interval)
        rounds = _rounds(cells, cfg)
        rows.append((interval, rounds if rounds >= 0 else "stalled"))
    emit(
        format_table(
            ["L (run start interval)", "rounds"],
            rows,
            title="E5a interval sweep, ring(24) — paper default L=22",
        )
    )
    benchmark.extra_info["rows"] = rows
    # all intervals gather; smaller L reshapes more aggressively
    assert all(isinstance(r[1], int) for r in rows)
    benchmark.pedantic(
        lambda: _rounds(cells, AlgorithmConfig(run_start_interval=22)),
        rounds=1,
        iterations=1,
    )


def test_e5_radius_sweep(benchmark):
    """E5b: viewing radius sweep (radius bounds the merge length via the
    locality budget 2k+2 <= r)."""
    cells = ring(24)
    rows = []
    for radius in (6, 11, 14, 20, 30):
        k = (radius - 2) // 2
        cfg = AlgorithmConfig(viewing_radius=radius, max_bump_length=k)
        rounds = _rounds(cells, cfg)
        rows.append((radius, k, rounds if rounds >= 0 else "stalled"))
    emit(
        format_table(
            ["viewing radius", "max merge k", "rounds"],
            rows,
            title="E5b radius sweep, ring(24) — paper default radius 20",
        )
    )
    benchmark.extra_info["rows"] = rows
    assert all(isinstance(r[2], int) for r in rows)
    benchmark.pedantic(
        lambda: _rounds(cells, AlgorithmConfig()), rounds=1, iterations=1
    )


def test_e6_pipelining(benchmark):
    """E6: disabling periodic run starts (pipelining off) slows or stalls
    reshapement-bound swarms — the paper's Fig. 15 mechanism."""
    rows = []
    for side in (16, 24, 32):
        cells = ring(side)
        on = _rounds(cells, AlgorithmConfig(pipelining=True))
        off = _rounds(cells, AlgorithmConfig(pipelining=False))
        rows.append(
            (
                side,
                len(cells),
                on,
                off if off >= 0 else "stalled",
                f"{off / on:.1f}x" if off > 0 and on > 0 else "inf",
            )
        )
    emit(
        format_table(
            ["ring side", "n", "pipelined", "single batch", "slowdown"],
            rows,
            title="E6 pipelining ablation (paper Section 4.2)",
        )
    )
    benchmark.extra_info["rows"] = rows
    # pipelining must never lose, and must win somewhere
    for _, _, on, off, _ in rows:
        assert on > 0
        assert off == "stalled" or off >= on
    benchmark.pedantic(
        lambda: _rounds(ring(24), AlgorithmConfig()), rounds=1, iterations=1
    )


def test_e7_merge_length(benchmark):
    """E7: merge length k ablation (paper Fig. 2's parameter)."""
    rows = []
    shapes = [("ring(20)", ring(20)), ("solid 12x12", solid_rectangle(12, 12))]
    for k in (1, 2, 4, 9):
        cfg = AlgorithmConfig(max_bump_length=k)
        measured = []
        for _, cells in shapes:
            r = _rounds(cells, cfg)
            measured.append(r if r >= 0 else "stalled")
        rows.append((k, *measured))
    emit(
        format_table(
            ["max k", *[s[0] for s in shapes]],
            rows,
            title="E7 merge-length ablation — longer merges buy parallelism",
        )
    )
    benchmark.extra_info["rows"] = rows
    # k=9 must beat or match k=1 on the solid block
    k1_solid = rows[0][2]
    k9_solid = rows[-1][2]
    assert isinstance(k9_solid, int)
    assert k1_solid == "stalled" or k9_solid <= k1_solid
    benchmark.pedantic(
        lambda: _rounds(solid_rectangle(12, 12), AlgorithmConfig()),
        rounds=1,
        iterations=1,
    )


def test_e7b_runs_required(benchmark):
    """E7 companion: with runs disabled, mergeless families stall while
    thick material still gathers — the paper's motivation for runners."""
    rows = []
    for name, cells in (
        ("ring(16)", ring(16)),
        ("solid 10x10", solid_rectangle(10, 10)),
    ):
        with_runs = _rounds(cells, AlgorithmConfig())
        without = _rounds(cells, AlgorithmConfig(enable_runs=False))
        rows.append(
            (name, with_runs, without if without >= 0 else "stalled")
        )
    emit(
        format_table(
            ["shape", "with runs", "without runs"],
            rows,
            title="E7b run machinery ablation",
        )
    )
    benchmark.extra_info["rows"] = rows
    assert rows[0][2] == "stalled"  # mergeless ring needs runs
    assert isinstance(rows[1][2], int)  # solid gathers on merges alone
    benchmark.pedantic(
        lambda: _rounds(ring(16), AlgorithmConfig()), rounds=1, iterations=1
    )
