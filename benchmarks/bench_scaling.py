"""Experiment E1 (Theorem 1) and E8 (lower bound): linear-time gathering.

Regenerates the paper's headline claim as a measured series: for every
workload family, rounds-to-gather vs n with a power-law fit.  The fitted
exponent must stay near 1 (the paper proves O(n); the lower bound is
Omega(n) on the line family, whose diameter is n-1).
"""

from __future__ import annotations

import os

import pytest

from benchmarks.conftest import emit
from repro.analysis.experiments import run_scaling
from repro.analysis.fitting import fit_linear, scaling_exponent
from repro.analysis.tables import format_table
from repro.api import simulate
from repro.core.config import AlgorithmConfig
from repro.swarms.generators import family, line

#: Worker processes for the sweeps: REPRO_JOBS=0 means one per CPU,
#: unset/1 runs serially.  Results are bit-identical either way (per-task
#: seeds, order-preserving collection).
JOBS = int(os.environ.get("REPRO_JOBS", "1"))
WORKERS = None if JOBS == 1 else JOBS


def _env_flag(name: str) -> bool:
    """Parse a boolean environment knob, failing loudly on junk (same
    clean-failure style as the CLI: name the knob and the valid
    spellings instead of tracebacking deep in a sweep)."""
    raw = os.environ.get(name)
    if raw is None:
        return False
    value = raw.strip().lower()
    if value in ("1", "true", "yes", "on"):
        return True
    if value in ("0", "false", "no", "off", ""):
        return False
    raise ValueError(
        f"{name} must be one of 1/0/true/false/yes/no/on/off, got {raw!r}"
    )


#: REPRO_SHARD=1 plans run reshapements in parallel shards
#: (cfg.shard_planning) across the sweep — bit-identical trajectories,
#: exercised here so scaling runs cover the sharded planner.
SHARD = _env_flag("REPRO_SHARD")
SWEEP_CFG = AlgorithmConfig(shard_planning=True) if SHARD else None

# family -> sweep sizes (kept modest so the suite runs in minutes)
SWEEPS = {
    "line": [40, 80, 160, 320],
    "solid": [64, 144, 256, 400],
    # rings below ~n=90 ride the bump-merge shortcut; start past it so the
    # fit reflects the asymptotic regime
    "ring": [92, 124, 188, 252],
    "blob": [100, 200, 400, 700],
    "tree": [80, 160, 320, 500],
    "staircase": [61, 121, 241, 361],
    "plus": [61, 121, 241, 361],
    "spiral": [64, 127, 247, 493],
}

#: Theorem 1 bound constant asserted on every measured point: the paper
#: proves rounds <= (2L+1) n; our implementation stays far below.
LINEAR_C = 6.0


@pytest.mark.parametrize("family_name", sorted(SWEEPS))
def test_e1_rounds_scale_linearly(benchmark, family_name):
    """E1: rounds vs n per family; exponent ~1, paper Theorem 1."""
    sizes = SWEEPS[family_name]
    points = run_scaling(
        family_name,
        sizes,
        SWEEP_CFG,
        check_connectivity=False,
        workers=WORKERS,
    )
    assert all(p.gathered for p in points), f"{family_name} stalled"

    ns = [p.n for p in points]
    rounds = [p.rounds for p in points]
    exponent = scaling_exponent(ns, rounds)
    lin = fit_linear(ns, rounds)

    rows = [
        (p.n, p.diameter, p.rounds, f"{p.rounds_per_n:.2f}") for p in points
    ]
    emit(
        format_table(
            ["n", "diameter", "rounds", "rounds/n"],
            rows,
            title=(
                f"E1 [{family_name}] rounds vs n — fitted exponent "
                f"{exponent:.2f}, linear fit slope {lin.coefficients[0]:.2f} "
                f"(R2={lin.r_squared:.3f})"
            ),
        )
    )
    benchmark.extra_info["family"] = family_name
    benchmark.extra_info["exponent"] = exponent
    benchmark.extra_info["rows"] = rows
    # Theorem 1's actual claim: a linear bound on every point.  (The raw
    # power-fit exponent is reported for information; on families whose
    # round counts start near zero it overstates growth.)
    for p in points:
        assert p.rounds <= LINEAR_C * p.n + 40, (
            f"{family_name}: {p.rounds} rounds for n={p.n} breaks the "
            f"{LINEAR_C}n+40 budget"
        )

    # benchmark one representative mid-size instance
    cells = family(family_name, sizes[1])
    benchmark.pedantic(
        lambda: simulate(cells, check_connectivity=False),
        rounds=1,
        iterations=1,
    )


def test_e8_lower_bound_gap(benchmark):
    """E8: measured rounds vs the Omega(diameter) lower bound on lines.

    One 8-neighbor hop shrinks the Chebyshev diameter by at most 2 per
    round, so any algorithm needs >= (d-1)/2 rounds; we report the
    multiplicative gap of the implementation (paper: asymptotically
    optimal, i.e. the gap is O(1))."""
    rows = []
    gaps = []
    for n in (40, 80, 160, 320):
        cells = line(n)
        result = simulate(cells, check_connectivity=False)
        assert result.gathered
        bound = (n - 1 - 1) / 2
        gap = result.rounds / bound
        gaps.append(gap)
        rows.append((n, result.rounds, f"{bound:.0f}", f"{gap:.2f}"))
    emit(
        format_table(
            ["n", "rounds", "lower bound (d-1)/2", "gap"],
            rows,
            title="E8 lower-bound gap on the diameter-worst-case family",
        )
    )
    benchmark.extra_info["rows"] = rows
    assert max(gaps) < 3.0, "gap must stay O(1) for asymptotic optimality"
    benchmark.pedantic(
        lambda: simulate(line(80), check_connectivity=False),
        rounds=1,
        iterations=1,
    )
