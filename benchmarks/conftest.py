"""Shared helpers for the benchmark/experiment harness.

Run with::

    pytest benchmarks/ --benchmark-only -s

Each benchmark measures a representative end-to-end simulation with
pytest-benchmark *and* prints the experiment's table (the rows/series the
paper's claims correspond to).  Tables are also attached to
``benchmark.extra_info`` so they land in the benchmark JSON.
"""

from __future__ import annotations

import sys


def emit(text: str) -> None:
    """Print an experiment table so it survives pytest capture settings."""
    sys.stdout.write("\n" + text + "\n")
    sys.stdout.flush()
