"""Experiments E2-E4: the baselines the paper positions itself against.

E2 — [DKL+11] Euclidean go-to-center is Theta(n^2) in FSYNC rounds while
     the grid algorithm is O(n): measure both, fit exponents, locate the
     crossover.
E3 — the Section 1 remark: a fair ASYNC scheduler admits a simple O(n)
     strategy.
E4 — [SN14] context: global vision gathers in O(diameter) rounds.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import emit
from repro.analysis.fitting import scaling_exponent
from repro.analysis.tables import format_table
# reprolint: ok[F1] E2-E4 benchmark the per-baseline APIs themselves,
# head-to-head against the facade path.
from repro.baselines.async_greedy import gather_async

# reprolint: ok[F1] E2 measures Euclidean go-to-center via its own API.
from repro.baselines.euclidean import gather_euclidean, worst_case_circle

# reprolint: ok[F1] no facade equivalent: E4 needs the per-robot moves.
from repro.baselines.global_grid import gather_global_with_moves
from repro.api import simulate
from repro.swarms.generators import line, random_blob, solid_rectangle

#: The [DKL+11] worst-case family: a circle with unit visibility.
_euclid_circle = worst_case_circle


def test_e2_euclidean_comparison(benchmark):
    """E2: grid O(n) vs Euclidean Theta(n^2) — exponents and crossover."""
    # worst-case family on each side: the line (diameter n-1) for the grid
    # algorithm, the circle for Euclidean go-to-center ([DKL+11]'s tight
    # instance)
    sizes = [16, 32, 48, 64]
    rows = []
    grid_rounds = []
    euc_rounds = []
    for n in sizes:
        g = simulate(line(n), check_connectivity=False)
        e = gather_euclidean(_euclid_circle(n))
        assert g.gathered and e.gathered
        grid_rounds.append(max(g.rounds, 1))
        euc_rounds.append(max(e.rounds, 1))
        rows.append((n, g.rounds, e.rounds, f"{e.rounds / max(g.rounds, 1):.1f}x"))
    exp_grid = scaling_exponent([float(s) for s in sizes], grid_rounds)
    exp_euc = scaling_exponent([float(s) for s in sizes], euc_rounds)
    emit(
        format_table(
            ["n", "grid rounds", "euclid rounds", "euclid/grid"],
            rows,
            title=(
                f"E2 grid (exp {exp_grid:.2f}) vs Euclidean go-to-center "
                f"(exp {exp_euc:.2f}); paper: O(n) vs Theta(n^2)"
            ),
        )
    )
    benchmark.extra_info["rows"] = rows
    # shape check: the Euclidean exponent must clearly exceed the grid one
    assert exp_euc > exp_grid + 0.5
    assert exp_euc > 1.6
    assert exp_grid < 1.45
    benchmark.pedantic(
        lambda: gather_euclidean(_euclid_circle(32)), rounds=1, iterations=1
    )


def test_e3_async_fair_scheduler(benchmark):
    """E3: the 'simple strategy' under a fair ASYNC scheduler is O(n)
    rounds (paper Section 1 remark)."""
    rows = []
    ns, rnds = [], []
    for n in (50, 100, 200, 400):
        cells = random_blob(n, seed=n)
        r = gather_async(cells, check_connectivity=False)
        assert r.gathered
        ns.append(n)
        rnds.append(max(r.rounds, 1))
        rows.append((n, r.rounds, r.activations, f"{r.rounds / n:.3f}"))
    exponent = scaling_exponent(ns, rnds)
    emit(
        format_table(
            ["n", "rounds", "activations", "rounds/n"],
            rows,
            title=f"E3 ASYNC fair-scheduler greedy — exponent {exponent:.2f}",
        )
    )
    benchmark.extra_info["rows"] = rows
    assert exponent < 1.3
    benchmark.pedantic(
        lambda: gather_async(random_blob(100, seed=100), check_connectivity=False),
        rounds=1,
        iterations=1,
    )


def test_e4_global_vision(benchmark):
    """E4: global vision gathers in ~diameter/2 rounds ([SN14] context —
    with global information the problem is easy)."""
    rows = []
    for n in (49, 100, 225, 400):
        side = int(round(n**0.5))
        cells = solid_rectangle(side, side)
        result, moves = gather_global_with_moves(cells)
        assert result.gathered
        rows.append(
            (
                len(cells),
                side - 1,
                result.rounds,
                moves,
                f"{result.rounds / max(side - 1, 1):.2f}",
            )
        )
    emit(
        format_table(
            ["n", "diameter", "rounds", "total moves", "rounds/diameter"],
            rows,
            title="E4 global-vision gatherer — rounds track diameter, not n",
        )
    )
    benchmark.extra_info["rows"] = rows
    # rounds/diameter stays ~0.5-1.5 across a 8x growth in n
    ratios = [float(r[4]) for r in rows]
    assert max(ratios) < 2.0
    benchmark.pedantic(
        lambda: gather_global_with_moves(solid_rectangle(10, 10)),
        rounds=1,
        iterations=1,
    )


def test_e2b_same_shape_both_models(benchmark):
    """E2 companion: the same logical line swarm in both worlds."""
    rows = []
    for n in (16, 32, 64):
        g = simulate(line(n), check_connectivity=False)
        e = gather_euclidean([(0.9 * i, 0.0) for i in range(n)])
        assert g.gathered and e.gathered
        rows.append((n, g.rounds, e.rounds))
    emit(
        format_table(
            ["n", "grid rounds", "euclid rounds"],
            rows,
            title="E2b line swarms: grid vs Euclidean (same shape)",
        )
    )
    benchmark.extra_info["rows"] = rows
    benchmark.pedantic(
        lambda: simulate(line(64), check_connectivity=False),
        rounds=1,
        iterations=1,
    )


def test_e9_chain_shortening(benchmark):
    """E9: context baseline — [KM09]-flavoured chain shortening is linear.

    The gathering paper inherits its linear-time machinery from the chain
    line of work ([DKLH06] O(n^2 log n) -> [KM09] O(n) -> [ACLF+16] closed
    chains); this measures our chain shortener's regime."""
    # reprolint: ok[F1] E9 benchmarks the chain baseline's own API.
    from repro.baselines.chain import hairpin_chain, shorten_chain

    rows = []
    lens, rnds = [], []
    for depth in (16, 32, 64, 128):
        chain = hairpin_chain(depth)
        r = shorten_chain(chain)
        assert r.shortened
        lens.append(r.initial_length)
        rnds.append(max(r.rounds, 1))
        rows.append(
            (r.initial_length, r.optimal_length, r.rounds,
             f"{r.rounds / r.initial_length:.2f}")
        )
    exponent = scaling_exponent(lens, rnds)
    emit(
        format_table(
            ["chain length", "optimal", "rounds", "rounds/length"],
            rows,
            title=(
                f"E9 chain shortening on hairpins ([KM09] flavour) — "
                f"exponent {exponent:.2f}"
            ),
        )
    )
    benchmark.extra_info["rows"] = rows
    assert exponent < 1.4
    benchmark.pedantic(
        lambda: shorten_chain(hairpin_chain(64)), rounds=1, iterations=1
    )


def test_e10_closed_chain(benchmark):
    """E10: the paper's predecessor — closed-chain gathering [ACLF+16].

    Measures the simplified randomized closed-chain gatherer's round growth
    on rectangle chains, next to the general algorithm on rings of the same
    robot count (the general problem the paper solves by *dropping* the
    chain structure)."""
    # reprolint: ok[F1] E10 benchmarks the closed-chain baseline's API.
    from repro.baselines.closed_chain import gather_closed_chain, rectangle_chain
    from repro.swarms.generators import ring as ring_swarm

    rows = []
    lens, rnds = [], []
    for side in (8, 12, 16, 24):
        chain = rectangle_chain(side, side)
        cc = gather_closed_chain(chain, seed=side)
        assert cc.gathered
        general = simulate(ring_swarm(side), check_connectivity=False)
        assert general.gathered
        lens.append(len(chain))
        rnds.append(max(cc.rounds, 1))
        rows.append(
            (len(chain), cc.rounds, f"{cc.rounds / len(chain):.2f}",
             general.rounds)
        )
    exponent = scaling_exponent(lens, rnds)
    emit(
        format_table(
            ["chain n", "chain rounds", "rounds/n", "general alg on ring"],
            rows,
            title=(
                f"E10 closed-chain gathering ([ACLF+16] simplified) — "
                f"exponent {exponent:.2f}"
            ),
        )
    )
    benchmark.extra_info["rows"] = rows
    assert exponent < 1.6  # randomized variant: linear in expectation
    benchmark.pedantic(
        lambda: gather_closed_chain(rectangle_chain(12, 12), seed=1),
        rounds=1,
        iterations=1,
    )
