"""M1: micro-benchmarks of the simulator's hot paths.

Engineering benchmarks (not paper claims): boundary extraction, merge
pattern matching, one full engine round, and connectivity checking — the
four operations that dominate a simulation's profile.

``test_ring_resplice_speedup`` additionally writes ``BENCH_ring.json``
at the repo root: the steady-state per-round cost of the linked-ring
incremental pipeline vs full rescans on contour-dominated (ring) and
blob instances, so the performance trajectory stays machine-readable
across PRs.
"""

from __future__ import annotations

import json
import os
import time

import pytest

from repro.api import simulate
from repro.core.algorithm import GatherOnGrid
from repro.core.config import AlgorithmConfig
from repro.core.patterns import plan_merges
from repro.engine.scheduler import FsyncEngine
from repro.grid.boundary import extract_boundaries
from repro.grid.connectivity import is_connected
from repro.grid.occupancy import SwarmState
from repro.swarms.generators import random_blob, ring, solid_rectangle

CFG = AlgorithmConfig()

BENCH_RING_PATH = os.path.join(
    os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
    "BENCH_ring.json",
)


@pytest.mark.parametrize(
    "name,cells",
    [
        ("solid_1600", solid_rectangle(40, 40)),
        ("ring_200", ring(51)),
        ("blob_2000", random_blob(2000, 1)),
    ],
    ids=["solid_1600", "ring_200", "blob_2000"],
)
def test_boundary_extraction(benchmark, name, cells):
    state = SwarmState(cells)
    result = benchmark(lambda: extract_boundaries(state))
    assert result[0].is_outer


@pytest.mark.parametrize(
    "name,cells",
    [
        ("solid_1600", solid_rectangle(40, 40)),
        ("blob_2000", random_blob(2000, 1)),
    ],
    ids=["solid_1600", "blob_2000"],
)
def test_pattern_matching(benchmark, name, cells):
    state = SwarmState(cells)
    moves, pats = benchmark(lambda: plan_merges(state, CFG))
    assert pats is not None


def test_single_engine_round(benchmark):
    cells = random_blob(1500, 2)

    def one_round():
        engine = FsyncEngine(
            SwarmState(cells), GatherOnGrid(CFG), check_connectivity=False
        )
        engine.step()
        return engine

    engine = benchmark(one_round)
    assert engine.round_index == 1


@pytest.mark.parametrize("incremental", [False, True], ids=["full", "inc"])
def test_steady_state_round(benchmark, incremental):
    """One mid-simulation round, incremental pipeline off vs on.

    This is the tentpole's headline measurement: the cold round above
    pays the cache build; this one shows the per-round win (>= 2x on
    blob_1500) once the caches are primed.
    """
    cells = random_blob(1500, 2)
    cfg = AlgorithmConfig(incremental=incremental)

    def setup():
        engine = FsyncEngine(
            SwarmState(cells), GatherOnGrid(cfg), check_connectivity=False
        )
        engine.step()  # prime caches / the seed's first full scans
        return (engine,), {}

    benchmark.pedantic(
        lambda engine: engine.step(), setup=setup, rounds=10, iterations=1
    )


@pytest.mark.parametrize("incremental", [False, True], ids=["full", "inc"])
def test_steady_state_round_ring(benchmark, incremental):
    """Steady-state round on a contour-dominated instance (ring n=508).

    The contour work per round is the boundary maintenance plus the run
    machinery; this is the instance family the linked-ring splice was
    built for (blobs go quiescent quickly, rings fold for hundreds of
    rounds)."""
    cells = ring(128)  # 508 robots
    cfg = AlgorithmConfig(incremental=incremental)

    def setup():
        engine = FsyncEngine(
            SwarmState(cells), GatherOnGrid(cfg), check_connectivity=False
        )
        for _ in range(10):
            engine.step()  # reach the folding steady state
        return (engine,), {}

    benchmark.pedantic(
        lambda engine: engine.step(), setup=setup, rounds=10, iterations=1
    )


def _steady_state_ms(cells, incremental, *, warm, rounds):
    engine = FsyncEngine(
        SwarmState(cells),
        GatherOnGrid(AlgorithmConfig(incremental=incremental)),
        check_connectivity=False,
    )
    for _ in range(warm):
        engine.step()
    t0 = time.perf_counter()
    for _ in range(rounds):
        engine.step()
    return (time.perf_counter() - t0) / rounds * 1000


def test_ring_resplice_speedup(benchmark):
    """Record the incremental-vs-full steady-state round costs in
    ``BENCH_ring.json`` (the cross-PR perf trajectory artifact) and keep
    a regression floor on the ring-family speedup."""
    report = {"instances": {}}
    for name, cells, warm, rounds in (
        ("ring_252", ring(64), 10, 100),
        ("ring_508", ring(128), 10, 100),
        ("ring_764", ring(192), 10, 100),
        ("blob_1500", random_blob(1500, 2), 1, 10),
    ):
        full = _steady_state_ms(cells, False, warm=warm, rounds=rounds)
        inc = _steady_state_ms(cells, True, warm=warm, rounds=rounds)
        report["instances"][name] = {
            "n": len(cells),
            "full_ms_per_round": round(full, 4),
            "incremental_ms_per_round": round(inc, 4),
            "speedup": round(full / inc, 2),
        }
    with open(BENCH_RING_PATH, "w") as fh:
        json.dump(report, fh, indent=1, sort_keys=True)
        fh.write("\n")
    benchmark.extra_info["bench_ring"] = report
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    ring_speedups = [
        v["speedup"]
        for k, v in report["instances"].items()
        if k.startswith("ring_") and v["n"] >= 508
    ]
    # regression floor (the recorded values are the real measurement;
    # the floor is loose to survive noisy CI machines)
    assert max(ring_speedups) >= 2.0, report


def test_connectivity_check(benchmark):
    cells = random_blob(3000, 3)
    assert benchmark(lambda: is_connected(cells))


def test_full_gather_blob_800(benchmark):
    """End-to-end gather through the facade (what users call): also
    guards the `simulate()` orchestration against overhead regressions
    relative to driving the engine directly."""
    cells = random_blob(800, 4)

    def run():
        return simulate(cells, strategy="grid", check_connectivity=False)

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    assert result.gathered
