"""M1: micro-benchmarks of the simulator's hot paths.

Engineering benchmarks (not paper claims): boundary extraction, merge
pattern matching, one full engine round, and connectivity checking — the
four operations that dominate a simulation's profile.
"""

from __future__ import annotations

import pytest

from repro.core.algorithm import GatherOnGrid
from repro.core.config import AlgorithmConfig
from repro.core.patterns import plan_merges
from repro.engine.scheduler import FsyncEngine
from repro.grid.boundary import extract_boundaries
from repro.grid.connectivity import is_connected
from repro.grid.occupancy import SwarmState
from repro.swarms.generators import random_blob, ring, solid_rectangle

CFG = AlgorithmConfig()


@pytest.mark.parametrize(
    "name,cells",
    [
        ("solid_1600", solid_rectangle(40, 40)),
        ("ring_200", ring(51)),
        ("blob_2000", random_blob(2000, 1)),
    ],
    ids=["solid_1600", "ring_200", "blob_2000"],
)
def test_boundary_extraction(benchmark, name, cells):
    state = SwarmState(cells)
    result = benchmark(lambda: extract_boundaries(state))
    assert result[0].is_outer


@pytest.mark.parametrize(
    "name,cells",
    [
        ("solid_1600", solid_rectangle(40, 40)),
        ("blob_2000", random_blob(2000, 1)),
    ],
    ids=["solid_1600", "blob_2000"],
)
def test_pattern_matching(benchmark, name, cells):
    state = SwarmState(cells)
    moves, pats = benchmark(lambda: plan_merges(state, CFG))
    assert pats is not None


def test_single_engine_round(benchmark):
    cells = random_blob(1500, 2)

    def one_round():
        engine = FsyncEngine(
            SwarmState(cells), GatherOnGrid(CFG), check_connectivity=False
        )
        engine.step()
        return engine

    engine = benchmark(one_round)
    assert engine.round_index == 1


@pytest.mark.parametrize("incremental", [False, True], ids=["full", "inc"])
def test_steady_state_round(benchmark, incremental):
    """One mid-simulation round, incremental pipeline off vs on.

    This is the tentpole's headline measurement: the cold round above
    pays the cache build; this one shows the per-round win (>= 2x on
    blob_1500) once the caches are primed.
    """
    cells = random_blob(1500, 2)
    cfg = AlgorithmConfig(incremental=incremental)

    def setup():
        engine = FsyncEngine(
            SwarmState(cells), GatherOnGrid(cfg), check_connectivity=False
        )
        engine.step()  # prime caches / the seed's first full scans
        return (engine,), {}

    benchmark.pedantic(
        lambda engine: engine.step(), setup=setup, rounds=10, iterations=1
    )


def test_connectivity_check(benchmark):
    cells = random_blob(3000, 3)
    assert benchmark(lambda: is_connected(cells))


def test_full_gather_blob_800(benchmark):
    cells = random_blob(800, 4)

    def run():
        engine = FsyncEngine(
            SwarmState(cells), GatherOnGrid(CFG), check_connectivity=False
        )
        return engine.run()

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    assert result.gathered
