"""Unit tests for the run-state machinery (Sections 3.2/3.3, Table 1)."""

from repro.core.algorithm import GatherOnGrid
from repro.core.config import AlgorithmConfig
from repro.core.quasiline import run_start_sites
from repro.core.runs import RunManager
from repro.engine.scheduler import FsyncEngine
from repro.grid.occupancy import SwarmState
from repro.grid.ring import RingSet
from repro.swarms.generators import ring


CFG = AlgorithmConfig()


def manager_with_starts(cells, cfg=CFG):
    state = SwarmState(cells)
    contours = RingSet.from_cells(state)
    mgr = RunManager(cfg)
    sites = run_start_sites(contours.rings, cfg.start_straight_steps)
    located, lost = mgr.locate(contours)
    mgr.start_runs(contours, sites, 0, located)
    return state, contours, mgr


class TestStartRuns:
    def test_runs_created_on_ring(self):
        _, _, mgr = manager_with_starts(ring(12))
        assert mgr.active_run_count >= 2

    def test_crowding_blocks_near_sites(self):
        # ring(12)'s outer contour (44 robots) is long enough for the
        # spacing filter; adjacent corners are 11 apart (below the viewing
        # radius) and opposite corners 22 apart (above it), so exactly the
        # two alternating corners fire (inner boundary sites are separate
        # contours and may still start)
        _, _, mgr = manager_with_starts(ring(12))
        outer_corners = {
            r.robot
            for r in mgr.runs.values()
            if r.robot in {(0, 0), (11, 0), (0, 11), (11, 11)}
        }
        assert len(outer_corners) == 2

    def test_short_contour_starts_unconditionally(self):
        # ring(8)'s outer contour (28 robots) fits inside two viewing
        # radii: every site sees every other, so the spacing filter would
        # starve the contour down to one run per batch — a livelock on
        # mergeless shapes.  Short contours admit all sites, as the paper
        # does.
        _, _, mgr = manager_with_starts(ring(8))
        outer_corners = {
            r.robot
            for r in mgr.runs.values()
            if r.robot in {(0, 0), (7, 0), (0, 7), (7, 7)}
        }
        assert len(outer_corners) == 4

    def test_start_b_two_runs_same_robot(self):
        _, _, mgr = manager_with_starts(ring(12))
        by_robot = {}
        for r in mgr.runs.values():
            by_robot.setdefault(r.robot, []).append(r)
        assert any(len(v) == 2 for v in by_robot.values())

    def test_no_duplicate_key(self):
        state, contours, mgr = manager_with_starts(ring(12))
        sites = run_start_sites(contours.rings, CFG.start_straight_steps)
        located, _ = mgr.locate(contours)
        before = mgr.active_run_count
        mgr.start_runs(contours, sites, 1, located)
        assert mgr.active_run_count == before  # same (robot, dir) blocked


class TestLocate:
    def test_fresh_runs_locatable(self):
        state, contours, mgr = manager_with_starts(ring(12))
        located, lost = mgr.locate(contours)
        assert not lost
        assert set(located) == set(mgr.runs)

    def test_lost_run_reported(self):
        state, contours, mgr = manager_with_starts(ring(12))
        # teleport a run's robot context away
        rid = min(mgr.runs)
        run = mgr.runs[rid]
        mgr.runs[rid] = run.__class__(
            run_id=run.run_id,
            robot=(99, 99),
            prev=(98, 99),
            direction=run.direction,
            axis=run.axis,
            born_round=run.born_round,
        )
        located, lost = mgr.locate(contours)
        assert rid in lost


class TestRunLifecycle:
    def test_runs_advance_one_robot_per_round(self):
        cells = ring(16)
        ctrl = GatherOnGrid(CFG)
        engine = FsyncEngine(SwarmState(cells), ctrl)
        engine.step()
        pos0 = {r.run_id: r.robot for r in ctrl.run_manager.runs.values()}
        engine.step()
        pos1 = {r.run_id: r.robot for r in ctrl.run_manager.runs.values()}
        moved = [
            rid for rid in pos0
            if rid in pos1 and pos1[rid] != pos0[rid]
        ]
        assert moved, "runs must move along the boundary every round"

    def test_folds_happen_on_mergeless_ring(self):
        cells = ring(16)
        ctrl = GatherOnGrid(CFG)
        engine = FsyncEngine(SwarmState(cells), ctrl)
        for _ in range(3):
            engine.step()
        assert len(ctrl.events.of_kind("fold")) >= 1

    def test_merged_runner_terminates(self):
        # run the full algorithm; every terminated run must carry a reason
        cells = ring(10)
        ctrl = GatherOnGrid(CFG)
        engine = FsyncEngine(SwarmState(cells), ctrl)
        for _ in range(10):
            if engine.state.is_gathered():
                break
            engine.step()
        reasons = {e.data["reason"] for e in ctrl.events.of_kind("run_stop")}
        allowed = {
            "run_lost",
            "run_merged",
            "run_saw_sequent",
            "run_saw_endpoint",
        }
        assert reasons <= allowed

    def test_run_ids_unique_and_monotone(self):
        cells = ring(30)
        ctrl = GatherOnGrid(CFG)
        engine = FsyncEngine(SwarmState(cells), ctrl)
        seen = set()
        for _ in range(50):
            if engine.state.is_gathered():
                break
            engine.step()
            for e in ctrl.events.of_kind("run_start"):
                seen.add(e.data["run_id"])
        assert len(seen) == len(
            {e.data["run_id"] for e in ctrl.events.of_kind("run_start")}
        )


class TestRunPassing:
    def test_opposite_runs_survive_meeting(self):
        """A good pair's runs approach head-on; passing (paper Fig. 9 b)
        must let them coexist instead of mutually terminating."""
        cells = ring(24)
        ctrl = GatherOnGrid(CFG)
        engine = FsyncEngine(SwarmState(cells), ctrl)
        # Start-B corners launch opposite-direction pairs; run until the
        # first merge: no run may die via 'run_saw_sequent' with an
        # opposite-direction partner (only same-direction crowding counts).
        for _ in range(30):
            if engine.state.is_gathered():
                break
            engine.step()
        stops = [e.data["reason"] for e in ctrl.events.of_kind("run_stop")]
        # opposite-direction meetings end in merges or passing, never in
        # the sequent-run rule alone on this symmetric shape
        assert stops.count("run_saw_sequent") <= len(stops) // 2

    def test_passing_suspends_folds_at_close_range(self):
        """While two opposite runs are within the passing distance the
        planner must not emit folds for them."""
        from repro.core.runs import Run

        mgr = RunManager(CFG)
        cells = ring(16)
        state = SwarmState(cells)
        contours = RingSet.from_cells(state)
        robots = contours.rings[0].robots_cycle()
        n = len(robots)
        # place run 0 on a corner robot (foldable!) with an opposite run
        # 2 steps ahead of it
        i = robots.index((0, 0))
        j = (i + 2) % n
        mgr.runs[0] = Run(0, robots[i], robots[(i - 1) % n], 1, "h", -5)
        mgr.runs[1] = Run(1, robots[j], robots[(j + 1) % n], -1, "h", -5)
        located, lost = mgr.locate(contours)
        moves = mgr.plan(contours, state.cells, {}, located, lost, 99)
        assert robots[i] not in moves, "corner must not fold while passing"
        # sanity: without the opposite run the same corner does fold
        mgr2 = RunManager(CFG)
        mgr2.runs[0] = Run(0, robots[i], robots[(i - 1) % n], 1, "h", -5)
        located2, lost2 = mgr2.locate(contours)
        moves2 = mgr2.plan(contours, state.cells, {}, located2, lost2, 99)
        assert robots[i] in moves2


class TestFoldGuards:
    def test_fold_requires_corner(self):
        mgr = RunManager(CFG)
        occ = {(0, 0), (1, 0), (2, 0)}
        assert mgr._fold_target(occ, (1, 0), {}, set()) is None  # collinear

    def test_fold_target_is_between_diagonal(self):
        mgr = RunManager(CFG)
        occ = {(0, 0), (1, 0), (0, 1)}
        assert mgr._fold_target(occ, (0, 0), {}, set()) == (1, 1)

    def test_fold_blocked_by_occupied_diagonal(self):
        mgr = RunManager(CFG)
        occ = {(0, 0), (1, 0), (0, 1), (1, 1)}
        assert mgr._fold_target(occ, (0, 0), {}, set()) is None

    def test_fold_blocked_by_moving_anchor(self):
        mgr = RunManager(CFG)
        occ = {(0, 0), (1, 0), (0, 1)}
        assert (
            mgr._fold_target(occ, (0, 0), {(1, 0): (1, 1)}, set()) is None
        )

    def test_fold_blocked_by_runner_anchor(self):
        mgr = RunManager(CFG)
        occ = {(0, 0), (1, 0), (0, 1)}
        assert mgr._fold_target(occ, (0, 0), {}, {(1, 0)}) is None

    def test_fold_allowed_with_distant_runner(self):
        mgr = RunManager(CFG)
        occ = {(0, 0), (1, 0), (0, 1)}
        assert mgr._fold_target(occ, (0, 0), {}, {(5, 5)}) == (1, 1)


class TestEndpointAheadDegenerate:
    """Regression: `_endpoint_ahead` on tiny contours.

    ``horizon = min(run_passing_distance + 1, n - 2)`` goes non-positive
    for 2-robot cycles; the guard must return False instead of probing a
    degenerate wrap-around window.
    """

    def _run(self, robots):
        from repro.core.runs import Run

        return Run(0, robots[0], robots[-1], 1, "h", -5)

    def test_two_robot_cycle(self):
        mgr = RunManager(CFG)
        robots = ((0, 0), (1, 0))
        assert mgr._endpoint_ahead(robots, 0, self._run(robots)) is False

    def test_single_robot_cycle(self):
        mgr = RunManager(CFG)
        robots = ((0, 0),)
        assert mgr._endpoint_ahead(robots, 0, self._run(robots)) is False

    def test_three_robot_cycle_detects_endpoint(self):
        # horizon clamps to 1; a perpendicular 3-robot segment right ahead
        # must still be seen
        mgr = RunManager(CFG)
        robots = ((0, 0), (0, 1), (0, 2))  # vertical segment, axis "h"
        run = self._run(robots)
        assert mgr._endpoint_ahead(robots, 0, run) is True

    def test_degenerate_boundary_simulation(self):
        # a 2x3 block gathers without tripping the degenerate horizon
        from repro.core.algorithm import gather

        r = gather([(x, y) for x in range(3) for y in range(2)])
        assert r.gathered


class TestOneThickContours:
    """A robot on a 1-thick contour appears several times in one cycle,
    and its occurrences are *not* contiguous (the contour passes it once
    per side).  Run location must disambiguate occurrences by the
    remembered predecessor, never by assuming contiguity."""

    L_SHAPE = [(0, 0), (1, 0), (2, 0), (2, 1), (2, 2)]

    def _locate_single(self, robot, prev, direction):
        from repro.core.runs import Run

        state = SwarmState(self.L_SHAPE)
        contours = RingSet.from_cells(state)
        mgr = RunManager(CFG)
        mgr.runs[0] = Run(0, robot, prev, direction, "h", -5)
        located, lost = mgr.locate(contours)
        return contours, located, lost

    def test_occurrences_not_contiguous(self):
        contours = RingSet.from_cells(SwarmState(self.L_SHAPE))
        robots = contours.rings[0].robots_cycle()
        idx = [i for i, r in enumerate(robots) if r == (1, 0)]
        assert len(idx) == 2
        i, j = idx
        assert j - i > 1 and (i + len(robots)) - j > 1

    def test_locate_picks_occurrence_by_predecessor(self):
        # heading right along the bottom: behind is (0, 0)
        contours, located, lost = self._locate_single((1, 0), (0, 0), 1)
        assert not lost
        _, ring_, node = located[0]
        assert ring_.behind_cell(node, 1) == (0, 0)
        assert ring_.step(node, 1).cell == (2, 0)
        # the same robot+direction with the return-leg predecessor (the
        # contour steps diagonally from (2, 1) home to (1, 0)) must
        # resolve to the *other* occurrence
        contours, located2, lost2 = self._locate_single((1, 0), (2, 1), 1)
        assert not lost2
        _, ring2, node2 = located2[0]
        assert ring2.behind_cell(node2, 1) == (2, 1)
        assert ring2.step(node2, 1).cell == (0, 0)
        assert node2 is not node

    def test_one_thick_shapes_gather(self):
        from repro.core.algorithm import gather

        for cells in (
            [(i, 0) for i in range(7)],
            self.L_SHAPE,
            [(0, 0), (1, 0), (2, 0), (1, 1), (1, 2)],  # T shape
        ):
            r = gather(cells)
            assert r.gathered, f"1-thick shape {cells} must gather"
