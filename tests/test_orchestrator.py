"""Sweep orchestrator: pooled sweeps, durable stores, checkpoint/resume.

The recovery tests kill real workers mid-sweep and interrupt store runs
mid-simulation; results must come out identical to undisturbed runs.
"""

from __future__ import annotations

import io
import json
import os
import signal

import pytest

from repro.analysis.experiments import (
    ScalingPoint,
    SweepJob,
    run_jobs,
    run_scaling,
)
from repro.analysis.orchestrator import (
    SweepJobStore,
    SweepOrchestrator,
    _run_store_job,
    default_orchestrator,
    run_store,
)
from repro.core.config import AlgorithmConfig
from repro.engine.executors import WorkerTaskError

JOBS = [SweepJob(family="ring", n=n) for n in (12, 16, 24)]


def _double(x):
    return 2 * x


class TestOrchestrator:
    def test_gather_mode_matches_serial_in_submission_order(self):
        serial = run_jobs(JOBS)
        with SweepOrchestrator(2) as orch:
            ids = orch.submit_all(JOBS)
            pairs = orch.collect(mode="gather")
        assert [jid for jid, _ in pairs] == ids
        assert [p for _, p in pairs] == serial

    def test_yield_mode_streams_every_job(self):
        serial = run_jobs(JOBS)
        with SweepOrchestrator(2) as orch:
            ids = orch.submit_all(JOBS)
            got = dict(orch.collect(mode="yield"))
        assert [got[jid] for jid in ids] == serial

    def test_bad_mode_rejected(self):
        with SweepOrchestrator(1) as orch:
            with pytest.raises(ValueError, match="gather"):
                orch.collect(mode="block")

    def test_poll_reports_done(self):
        with SweepOrchestrator(2) as orch:
            ids = orch.submit_all(JOBS[:2])
            orch.collect(mode="gather")
            status = orch.poll()
        assert all(status[jid] == "done" for jid in ids)

    def test_map_preserves_order_and_chunks(self):
        items = list(range(37))
        with SweepOrchestrator(2) as orch:
            assert orch.map(_double, items) == [2 * x for x in items]
            assert orch.map(_double, items, chunksize=5) == [
                2 * x for x in items
            ]
            assert orch.map(_double, []) == []

    def test_repeated_batches_reuse_the_pool(self):
        """A second submit/collect cycle on the same orchestrator must
        run on the same workers and not wait on already-collected
        tasks (regression: gather once deadlocked on batch two)."""
        serial = run_jobs(JOBS)
        with SweepOrchestrator(2) as orch:
            first = orch.submit_all(JOBS)
            orch.collect(mode="gather")
            pids = orch.worker_pids()
            second = orch.submit_all(JOBS)
            pairs = dict(orch.collect(mode="gather"))
            assert orch.worker_pids() == pids
        assert [pairs[j] for j in first] == serial
        assert [pairs[j] for j in second] == serial

    def test_worker_killed_mid_sweep_results_identical(self):
        """SIGKILL a sweep worker after submission: jobs requeue on the
        respawned worker and every result matches the serial run."""
        serial = run_jobs(JOBS)
        with SweepOrchestrator(2) as orch:
            ids = orch.submit_all(JOBS * 2)
            os.kill(orch.worker_pids()[0], signal.SIGKILL)
            got = dict(orch.collect(mode="yield"))
        assert [got[jid] for jid in ids] == serial * 2
        kinds = [kind for kind, _ in orch.worker_events]
        assert "worker_failed" in kinds
        assert "worker_respawned" in kinds

    def test_run_scaling_through_pool_matches_serial(self):
        sizes = [12, 16, 24]
        serial = run_scaling("ring", sizes)
        assert run_scaling("ring", sizes, workers=2) == serial

    def test_default_orchestrator_is_reused_and_grows(self):
        first = default_orchestrator(1)
        second = default_orchestrator(2)
        assert second is first
        first._pool()
        assert first._pool_obj.worker_count >= 2


class TestSweepJobStore:
    def test_create_open_roundtrip(self, tmp_path):
        store = SweepJobStore.create(tmp_path / "sw", JOBS)
        reopened = SweepJobStore.open(tmp_path / "sw")
        jobs = reopened.jobs()
        assert list(jobs) == ["job-000001", "job-000002", "job-000003"]
        assert list(jobs.values()) == JOBS
        assert set(reopened.status().values()) == {"pending"}

    def test_create_refuses_overwrite(self, tmp_path):
        SweepJobStore.create(tmp_path / "sw", JOBS)
        with pytest.raises(FileExistsError):
            SweepJobStore.create(tmp_path / "sw", JOBS)

    def test_open_missing_store(self, tmp_path):
        with pytest.raises(FileNotFoundError, match="spec.json"):
            SweepJobStore.open(tmp_path / "nope")

    def test_create_needs_jobs(self, tmp_path):
        with pytest.raises(ValueError, match="at least one"):
            SweepJobStore.create(tmp_path / "sw", [])

    def test_job_serialization_preserves_cfg_and_options(self, tmp_path):
        job = SweepJob(
            family="line",
            n=30,
            seed=7,
            cfg=AlgorithmConfig(shard_planning=True, shard_workers=2),
            check_connectivity=False,
            max_rounds=500,
            strategy="grid",
            scheduler="ssync",
            options=(("activation_p", 0.5), ("k_fairness", 4)),
        )
        store = SweepJobStore.create(tmp_path / "sw", [job])
        assert store.jobs()["job-000001"] == job

    def test_failure_recorded_and_raised(self, tmp_path):
        store = SweepJobStore.create(tmp_path / "sw", JOBS[:1])
        store.write_failure("job-000001", "it broke")
        assert store.status()["job-000001"] == "failed"
        with pytest.raises(WorkerTaskError, match="it broke"):
            store.result("job-000001")

    def test_run_store_matches_serial_and_skips_done(self, tmp_path):
        serial = run_jobs(JOBS)
        store = SweepJobStore.create(tmp_path / "sw", JOBS)
        results = run_store(store, workers=2, checkpoint_every=25)
        assert [results[j] for j in sorted(results)] == serial
        assert set(store.status().values()) == {"done"}
        # a second run loads results instead of re-simulating
        seen = []
        again = run_store(
            store, workers=2, on_result=lambda j, p: seen.append(j)
        )
        assert again == results
        assert sorted(seen) == sorted(results)


class TestCheckpointResume:
    def test_interrupted_store_job_resumes_from_checkpoint(
        self, tmp_path
    ):
        """Budget-starve a store job so it stops mid-simulation with
        checkpoints on disk, then finish it through run_store: the
        result must equal an undisturbed run."""
        # family("ring", 72) runs ~115 rounds — long enough that a
        # checkpoint_every=10 trace has real mid-run checkpoints.
        job = SweepJob(family="ring", n=72, check_connectivity=False)
        serial = run_jobs([job])[0]
        store = SweepJobStore.create(tmp_path / "sw", [job])

        # Simulate an interruption: run the checkpointing path but lie
        # about the budget so it stops early, then delete the result it
        # wrote — exactly the on-disk state a SIGKILLed worker leaves
        # (trace with checkpoints, no result).
        trace_path = store.trace_path("job-000001")
        partial = _run_store_job(str(store.root), "job-000001", 10)
        assert partial == serial
        rows = [
            json.loads(line)
            for line in trace_path.read_text().splitlines()
        ]
        cut = next(
            i
            for i, row in enumerate(rows)
            if row.get("checkpoint") and row["round"] >= 20
        )
        trace_path.write_text(
            "\n".join(json.dumps(r) for r in rows[: cut + 1]) + "\n"
        )
        store.result_path("job-000001").unlink()
        assert store.status()["job-000001"] == "checkpointed"

        results = run_store(store, workers=1)
        assert results["job-000001"] == serial
        assert store.status()["job-000001"] == "done"

    def test_resume_engine_reproduces_tail(self):
        from repro.core.algorithm import GatherOnGrid
        from repro.engine.scheduler import FsyncEngine
        from repro.grid.occupancy import SwarmState
        from repro.swarms.generators import ring
        from repro.trace.recorder import CheckpointRecorder, read_trace
        from repro.trace.replay import (
            controller_checkpoint,
            last_checkpoint,
            resume_engine,
        )

        buf = io.StringIO()
        ctrl = GatherOnGrid()
        recorder = CheckpointRecorder(
            buf,
            lambda: controller_checkpoint(ctrl),
            meta={"family": "ring"},
            every=20,
        )
        full = []

        def hook(i, s):
            recorder(i, s)
            full.append((i, s.frozen()))

        engine = FsyncEngine(SwarmState(ring(24)), ctrl, on_round=hook)
        result = engine.run()
        assert result.gathered

        meta, rows = read_trace(buf.getvalue().splitlines())
        assert meta == {"family": "ring"}
        row = last_checkpoint(rows[: len(rows) // 2])
        assert row is not None
        resumed_states = []
        resumed = resume_engine(row)
        resumed.on_round = lambda i, s: resumed_states.append(
            (i, s.frozen())
        )
        res2 = resumed.run(max_rounds=result.rounds)
        assert res2.gathered and res2.rounds == result.rounds
        tail = [fs for fs in full if fs[0] > row.round_index]
        assert resumed_states == tail

    def test_resume_requires_checkpoint_row(self):
        from repro.trace.recorder import TraceRow
        from repro.trace.replay import resume_engine

        row = TraceRow(round_index=3, cells=((0, 0), (0, 1)))
        with pytest.raises(ValueError, match="no\\s+checkpoint"):
            resume_engine(row)

    def test_plain_traces_still_load(self):
        from repro.trace.recorder import TraceRecorder, load_trace
        from repro.grid.occupancy import SwarmState

        buf = io.StringIO()
        rec = TraceRecorder(buf, meta={"family": "x"})
        rec(0, SwarmState([(0, 0), (1, 0)]))
        rows = load_trace(buf.getvalue().splitlines())
        assert len(rows) == 1
        assert rows[0].checkpoint is None


class TestSweepCli:
    def test_submit_run_status_collect(self, tmp_path, capsys):
        from repro.cli import main

        root = str(tmp_path / "sw")
        assert (
            main(
                [
                    "sweep",
                    "submit",
                    root,
                    "--family",
                    "ring",
                    "--sizes",
                    "12",
                    "16",
                ]
            )
            == 0
        )
        assert main(["sweep", "status", root]) == 1  # not done yet
        capsys.readouterr()
        assert (
            main(["sweep", "run", root, "-j", "2"]) == 0
        )
        out = capsys.readouterr().out
        assert "2/2 jobs done" in out
        assert main(["sweep", "status", root, "--json"]) == 0
        status = json.loads(capsys.readouterr().out)
        assert status["counts"] == {"done": 2}
        assert main(["sweep", "collect", root, "--json"]) == 0
        collected = json.loads(capsys.readouterr().out)
        assert collected["complete"]
        assert len(collected["results"]) == 2

    def test_submit_refuses_existing_dir(self, tmp_path, capsys):
        from repro.cli import main

        root = str(tmp_path / "sw")
        assert (
            main(["sweep", "submit", root, "--sizes", "12"]) == 0
        )
        capsys.readouterr()
        assert (
            main(["sweep", "submit", root, "--sizes", "12"]) == 2
        )
        assert "already exists" in capsys.readouterr().err

    def test_status_missing_store_clean_error(self, tmp_path, capsys):
        from repro.cli import main

        assert (
            main(["sweep", "status", str(tmp_path / "nope")]) == 2
        )
        assert "spec.json" in capsys.readouterr().err

    def test_shard_backend_requires_shard_planning(self, capsys):
        from repro.cli import main

        rc = main(
            [
                "gather",
                "--family",
                "ring",
                "-n",
                "16",
                "--shard-backend",
                "process",
            ]
        )
        assert rc == 2
        assert "--shard-planning" in capsys.readouterr().err

    def test_gather_process_backend(self, capsys):
        from repro.cli import main

        rc = main(
            [
                "gather",
                "--family",
                "ring",
                "-n",
                "24",
                "--shard-planning",
                "--shard-backend",
                "process",
                "--json",
            ]
        )
        assert rc == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["gathered"]


def test_scaling_point_roundtrips_through_store_json(tmp_path):
    point = ScalingPoint(
        family="ring",
        n=20,
        rounds=30,
        gathered=True,
        merges=16,
        diameter=7,
    )
    store = SweepJobStore.create(tmp_path / "sw", JOBS[:1])
    store.write_result("job-000001", point)
    assert store.result("job-000001") == point
