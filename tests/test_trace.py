"""Unit tests for trace recording, deterministic replay, and tailing."""

import io
import threading

from repro.core.algorithm import GatherOnGrid
from repro.engine.scheduler import FsyncEngine
from repro.grid.occupancy import SwarmState
from repro.swarms.generators import ring
from repro.trace.recorder import TraceRecorder, load_trace
from repro.trace.replay import replay, verify_trace
from repro.trace.tail import follow_rounds


def record(cells, rounds):
    buf = io.StringIO()
    rec = TraceRecorder(buf, meta={"shape": "test"})
    engine = FsyncEngine(SwarmState(cells), GatherOnGrid(), on_round=rec)
    for _ in range(rounds):
        if engine.state.is_gathered():
            break
        engine.step()
    return buf.getvalue()


class TestRecorder:
    def test_header_written_once(self):
        payload = record(ring(8), 3)
        lines = payload.strip().splitlines()
        assert lines[0].startswith('{"type": "header"')
        assert sum(1 for l in lines if '"header"' in l) == 1

    def test_rows_parse(self):
        payload = record(ring(8), 3)
        rows = load_trace(payload.splitlines())
        assert [r.round_index for r in rows] == [0, 1, 2]
        assert all(isinstance(r.cells, tuple) for r in rows)

    def test_cells_sorted_canonical(self):
        payload = record(ring(8), 1)
        rows = load_trace(payload.splitlines())
        assert list(rows[0].cells) == sorted(rows[0].cells)


class TestReplay:
    def test_replay_matches_recording(self):
        cells = ring(10)
        payload = record(cells, 5)
        rows = load_trace(payload.splitlines())
        assert verify_trace(cells, rows)

    def test_tampered_trace_detected(self):
        cells = ring(10)
        payload = record(cells, 5)
        rows = load_trace(payload.splitlines())
        bad = list(rows)
        tampered = tuple([(99, 99)] + list(bad[-1].cells[1:]))
        bad[-1] = type(bad[-1])(bad[-1].round_index, tampered)
        assert not verify_trace(cells, bad)

    def test_replay_stops_at_gathering(self):
        states = replay([(0, 0), (1, 0), (2, 0)], rounds=50)
        assert len(states) <= 3


class TestFollowRounds:
    """Live tailing across the worker/server process boundary."""

    def test_follows_a_growing_file(self, tmp_path):
        # A writer thread appends rows with per-row flushes while the
        # follower reads; the follower must see every round, in order,
        # including rows written *after* stop() first returns False.
        path = tmp_path / "trace.jsonl"
        done = threading.Event()
        payload = record(ring(16), 8)
        expected = [
            r.round_index for r in load_trace(payload.splitlines())
        ]
        assert len(expected) >= 5  # meaningful follow window

        def write_slowly():
            with path.open("w") as fh:
                for line in payload.splitlines():
                    fh.write(line + "\n")
                    fh.flush()
            done.set()

        writer = threading.Thread(target=write_slowly)
        writer.start()
        rows = list(
            follow_rounds(
                str(path), poll_interval=0.005, stop=done.is_set
            )
        )
        writer.join()
        assert [r.round_index for r in rows] == expected

    def test_waits_for_missing_file_and_start_round(self, tmp_path):
        path = tmp_path / "late.jsonl"
        done = threading.Event()
        payload = record(ring(16), 8)
        expected = [
            r.round_index
            for r in load_trace(payload.splitlines())
            if r.round_index >= 2
        ]
        assert expected  # the tail must be non-empty to test skipping

        def create_late():
            path.write_text(payload)
            done.set()

        writer = threading.Thread(target=create_late)
        writer.start()
        rows = list(
            follow_rounds(
                str(path),
                poll_interval=0.005,
                stop=done.is_set,
                start_round=2,
            )
        )
        writer.join()
        assert [r.round_index for r in rows] == expected

    def test_partial_lines_are_not_parsed(self, tmp_path):
        # Only newline-terminated lines count; a torn tail line is
        # buffered until its newline arrives (here: never).
        path = tmp_path / "torn.jsonl"
        full = record(ring(8), 3)
        path.write_text(full[: len(full) - 10])  # cut mid-row
        rows = list(
            follow_rounds(
                str(path), poll_interval=0.005, stop=lambda: True
            )
        )
        assert [r.round_index for r in rows] == [0, 1]
