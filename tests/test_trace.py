"""Unit tests for trace recording and deterministic replay."""

import io

from repro.core.algorithm import GatherOnGrid
from repro.engine.scheduler import FsyncEngine
from repro.grid.occupancy import SwarmState
from repro.swarms.generators import ring
from repro.trace.recorder import TraceRecorder, load_trace
from repro.trace.replay import replay, verify_trace


def record(cells, rounds):
    buf = io.StringIO()
    rec = TraceRecorder(buf, meta={"shape": "test"})
    engine = FsyncEngine(SwarmState(cells), GatherOnGrid(), on_round=rec)
    for _ in range(rounds):
        if engine.state.is_gathered():
            break
        engine.step()
    return buf.getvalue()


class TestRecorder:
    def test_header_written_once(self):
        payload = record(ring(8), 3)
        lines = payload.strip().splitlines()
        assert lines[0].startswith('{"type": "header"')
        assert sum(1 for l in lines if '"header"' in l) == 1

    def test_rows_parse(self):
        payload = record(ring(8), 3)
        rows = load_trace(payload.splitlines())
        assert [r.round_index for r in rows] == [0, 1, 2]
        assert all(isinstance(r.cells, tuple) for r in rows)

    def test_cells_sorted_canonical(self):
        payload = record(ring(8), 1)
        rows = load_trace(payload.splitlines())
        assert list(rows[0].cells) == sorted(rows[0].cells)


class TestReplay:
    def test_replay_matches_recording(self):
        cells = ring(10)
        payload = record(cells, 5)
        rows = load_trace(payload.splitlines())
        assert verify_trace(cells, rows)

    def test_tampered_trace_detected(self):
        cells = ring(10)
        payload = record(cells, 5)
        rows = load_trace(payload.splitlines())
        bad = list(rows)
        tampered = tuple([(99, 99)] + list(bad[-1].cells[1:]))
        bad[-1] = type(bad[-1])(bad[-1].round_index, tampered)
        assert not verify_trace(cells, bad)

    def test_replay_stops_at_gathering(self):
        states = replay([(0, 0), (1, 0), (2, 0)], rounds=50)
        assert len(states) <= 3
