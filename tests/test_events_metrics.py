"""Unit tests for events, metrics, and termination helpers."""

import numpy as np

from repro.engine.events import Event, EventLog
from repro.engine.metrics import MetricsLog, RoundMetrics
from repro.engine.termination import default_round_budget, is_gathered
from repro.grid.occupancy import SwarmState


class TestEventLog:
    def test_emit_and_filter(self):
        log = EventLog()
        log.emit(0, "merge", removed=2)
        log.emit(1, "fold", robot=(0, 0))
        log.emit(1, "merge", removed=1)
        assert len(log) == 3
        merges = log.of_kind("merge")
        assert [e.round_index for e in merges] == [0, 1]

    def test_counts(self):
        log = EventLog()
        for _ in range(3):
            log.emit(0, "a")
        log.emit(1, "b")
        assert log.counts() == {"a": 3, "b": 1}

    def test_rounds_with(self):
        log = EventLog()
        log.emit(5, "x")
        log.emit(2, "x")
        log.emit(5, "x")
        assert log.rounds_with("x") == [2, 5]

    def test_event_data_frozen_shape(self):
        e = Event(0, "merge", {"removed": 1})
        assert e.data["removed"] == 1


class TestMetricsLog:
    def _make(self):
        log = MetricsLog()
        log.record(RoundMetrics(0, 10, 0, 5))
        log.record(RoundMetrics(1, 8, 2, 5))
        log.record(RoundMetrics(2, 8, 0, 4, boundary_length=12))
        return log

    def test_series(self):
        log = self._make()
        assert list(log.series("robots")) == [10, 8, 8]

    def test_series_with_missing(self):
        log = self._make()
        s = log.series("boundary_length")
        assert np.isnan(s[0]) and s[2] == 12

    def test_totals(self):
        log = self._make()
        assert log.total_merged() == 2
        assert log.rounds_without_merge() == 2

    def test_summary(self):
        log = self._make()
        s = log.summary()
        assert s["rounds"] == 3
        assert s["merged"] == 2
        assert s["merge_rounds"] == 1

    def test_empty_summary(self):
        assert MetricsLog().summary()["rounds"] == 0


class TestTermination:
    def test_is_gathered(self):
        assert is_gathered(SwarmState([(0, 0), (1, 1)]))
        assert not is_gathered(SwarmState([(0, 0), (2, 1)]))

    def test_budget_linear(self):
        assert default_round_budget(10) == 2200
        assert default_round_budget(0) >= 1
        # Theorem 1's constant (2nL + n with L=22 is 45n) fits in the budget
        n = 100
        assert default_round_budget(n) > 45 * n
