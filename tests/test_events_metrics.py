"""Unit tests for events, metrics, and termination helpers."""

import numpy as np

from repro.engine.events import Event, EventLog
from repro.engine.metrics import MetricsLog, RoundMetrics
from repro.engine.termination import default_round_budget, is_gathered
from repro.grid.occupancy import SwarmState


class TestEventLog:
    def test_emit_and_filter(self):
        log = EventLog()
        log.emit(0, "merge", removed=2)
        log.emit(1, "fold", robot=(0, 0))
        log.emit(1, "merge", removed=1)
        assert len(log) == 3
        merges = log.of_kind("merge")
        assert [e.round_index for e in merges] == [0, 1]

    def test_counts(self):
        log = EventLog()
        for _ in range(3):
            log.emit(0, "a")
        log.emit(1, "b")
        assert log.counts() == {"a": 3, "b": 1}

    def test_rounds_with(self):
        log = EventLog()
        log.emit(5, "x")
        log.emit(2, "x")
        log.emit(5, "x")
        assert log.rounds_with("x") == [2, 5]

    def test_event_data_frozen_shape(self):
        e = Event(0, "merge", {"removed": 1})
        assert e.data["removed"] == 1


class TestSharedEngineLog:
    """The engine adopts the controller's EventLog (one round-ordered
    stream) and emits terminal events into it."""

    def _gather(self, cells, **kwargs):
        from repro.core.algorithm import gather

        return gather(cells, **kwargs)

    def test_result_events_is_controller_log(self):
        from repro.core.algorithm import GatherOnGrid
        from repro.engine.scheduler import FsyncEngine
        from repro.swarms.generators import ring

        ctrl = GatherOnGrid()
        engine = FsyncEngine(SwarmState(ring(10)), ctrl)
        result = engine.run()
        assert result.events is ctrl.events  # one shared log

    def test_gather_emits_terminal_gathered(self):
        from repro.swarms.generators import ring

        result = self._gather(ring(10))
        terminal = result.events.of_kind("gathered")
        assert len(terminal) == 1
        assert terminal[0].round_index == result.rounds
        assert terminal[0].data["robots"] == result.robots_final

    def test_budget_exhaustion_event(self):
        from repro.swarms.generators import ring

        result = self._gather(ring(20), max_rounds=2)
        assert not result.gathered
        assert len(result.events.of_kind("budget_exhausted")) == 1
        assert not result.events.of_kind("gathered")

    def test_events_round_ordered(self):
        from repro.swarms.generators import ring

        result = self._gather(ring(12))
        rounds = [e.round_index for e in result.events]
        assert rounds == sorted(rounds)
        # controller events (run_start/fold/merge/run_stop) and the
        # engine's terminal event share the log
        kinds = set(result.events.counts())
        assert "fold" in kinds and "gathered" in kinds

    def test_controller_without_log_gets_fresh_one(self):
        from repro.engine.events import EventLog
        from repro.engine.scheduler import FsyncEngine

        class Still:
            def plan_round(self, state, round_index):
                return {}

            def notify_applied(self, state, round_index, moves, merged):
                pass

        engine = FsyncEngine(SwarmState([(0, 0), (3, 0), (1, 0), (2, 0)]), Still())
        assert isinstance(engine.events, EventLog)
        result = engine.run(max_rounds=1)
        assert result.events.counts() == {"budget_exhausted": 1}


class TestMetricsLog:
    def _make(self):
        log = MetricsLog()
        log.record(RoundMetrics(0, 10, 0, 5))
        log.record(RoundMetrics(1, 8, 2, 5))
        log.record(RoundMetrics(2, 8, 0, 4, boundary_length=12))
        return log

    def test_series(self):
        log = self._make()
        assert list(log.series("robots")) == [10, 8, 8]

    def test_series_with_missing(self):
        log = self._make()
        s = log.series("boundary_length")
        assert np.isnan(s[0]) and s[2] == 12

    def test_totals(self):
        log = self._make()
        assert log.total_merged() == 2
        assert log.rounds_without_merge() == 2

    def test_summary(self):
        log = self._make()
        s = log.summary()
        assert s["rounds"] == 3
        assert s["merged"] == 2
        assert s["merge_rounds"] == 1

    def test_empty_summary(self):
        assert MetricsLog().summary()["rounds"] == 0


class TestTermination:
    def test_is_gathered(self):
        assert is_gathered(SwarmState([(0, 0), (1, 1)]))
        assert not is_gathered(SwarmState([(0, 0), (2, 1)]))

    def test_budget_linear(self):
        assert default_round_budget(10) == 2200
        assert default_round_budget(0) >= 1
        # Theorem 1's constant (2nL + n with L=22 is 45n) fits in the budget
        n = 100
        assert default_round_budget(n) > 45 * n


class TestTerminalEventDedup:
    def test_rerun_without_progress_does_not_duplicate(self):
        from repro.core.algorithm import GatherOnGrid
        from repro.engine.scheduler import FsyncEngine
        from repro.swarms.generators import ring

        eng = FsyncEngine(SwarmState(ring(10)), GatherOnGrid())
        r1 = eng.run()
        assert r1.gathered
        r2 = eng.run()  # already gathered: no steps, no new terminal
        assert len(r2.events.of_kind("gathered")) == 1

    def test_resumed_run_logs_both_outcomes(self):
        from repro.core.algorithm import GatherOnGrid
        from repro.engine.scheduler import FsyncEngine
        from repro.swarms.generators import ring

        eng = FsyncEngine(SwarmState(ring(14)), GatherOnGrid())
        r1 = eng.run(max_rounds=2)
        assert not r1.gathered
        r2 = eng.run()  # resume with the default budget
        assert r2.gathered
        # chronological journal: the interim budget stop, then the finish
        assert len(r2.events.of_kind("budget_exhausted")) == 1
        assert len(r2.events.of_kind("gathered")) == 1
