"""Unit tests for the global-vision and ASYNC greedy baselines."""

import pytest

from repro.baselines.async_greedy import AsyncGreedyGatherer, gather_async
from repro.baselines.global_grid import (
    GlobalVisionGatherer,
    _sign_step,
    gather_global,
    gather_global_with_moves,
)
from repro.grid.occupancy import SwarmState
from repro.swarms.generators import line, random_blob, ring, solid_rectangle


class TestSignStep:
    def test_zero_band(self):
        assert _sign_step(0.2) == 0
        assert _sign_step(-0.2) == 0

    def test_directions(self):
        assert _sign_step(3.0) == 1
        assert _sign_step(-0.6) == -1


class TestGlobalVision:
    def test_line_gathers_in_half_diameter(self):
        cells = line(21)
        r = gather_global(cells)
        assert r.gathered
        assert r.rounds <= 11  # ~diameter/2

    def test_ring_gathers(self):
        r = gather_global(ring(10))
        assert r.gathered

    def test_rounds_scale_with_diameter_not_n(self):
        r_small = gather_global(solid_rectangle(5, 5))
        r_big = gather_global(solid_rectangle(10, 10))
        # 4x the robots but only ~2x the rounds
        assert r_big.rounds <= 3 * max(r_small.rounds, 1)

    def test_total_moves_reported(self):
        res, moves = gather_global_with_moves(line(9))
        assert res.gathered
        assert moves > 0

    def test_does_not_need_connectivity(self):
        # global vision tolerates moves that break 4-connectivity
        cells = line(15)
        r = gather_global(cells)
        assert r.gathered


class TestAsyncGreedy:
    def test_line_gathers(self):
        r = gather_async(line(30))
        assert r.gathered

    def test_ring_gathers(self):
        r = gather_async(ring(10))
        assert r.gathered

    def test_blob_gathers(self):
        r = gather_async(random_blob(150, seed=5))
        assert r.gathered

    def test_linear_rounds_on_line(self):
        n = 60
        r = gather_async(line(n))
        assert r.gathered
        assert r.rounds <= 2 * n  # the paper's O(n) rounds remark

    def test_activation_returns_self_when_stuck(self):
        g = AsyncGreedyGatherer()
        state = SwarmState([(0, 0), (1, 0), (2, 0)])
        # middle robot has two collinear neighbors: must stay
        assert g.activate(state, (1, 0)) == (1, 0)

    def test_leaf_activation_merges(self):
        g = AsyncGreedyGatherer()
        state = SwarmState([(0, 0), (1, 0), (2, 0)])
        assert g.activate(state, (0, 0)) == (1, 0)

    def test_corner_activation(self):
        g = AsyncGreedyGatherer()
        state = SwarmState([(0, 0), (1, 0), (0, 1), (1, 1)])
        assert g.activate(state, (0, 0)) == (1, 1)

    def test_seed_reproducibility(self):
        a = gather_async(random_blob(80, seed=3), seed=11)
        b = gather_async(random_blob(80, seed=3), seed=11)
        assert a.rounds == b.rounds and a.activations == b.activations
