"""Unit tests for visualization: ascii, svg, animation, figures."""

import pytest

from repro.grid.occupancy import SwarmState
from repro.swarms.generators import ring, solid_rectangle
from repro.viz.ascii_art import render, render_with_marks, side_by_side
from repro.viz.animate import FrameRecorder
from repro.viz.figures import FIGURES, figure
from repro.viz.svg import SvgCanvas, frame_svg, line_chart, swarm_to_svg


class TestAscii:
    def test_render_square(self):
        art = render(solid_rectangle(2, 2))
        assert art == "##\n##"

    def test_render_orientation_top_is_max_y(self):
        art = render([(0, 0), (1, 1)])
        assert art == ".#\n#."

    def test_render_empty(self):
        assert render([]) == ""

    def test_marks_override(self):
        art = render_with_marks([(0, 0), (1, 0)], {(0, 0): "R"})
        assert art == "R#"

    def test_marks_outside_swarm(self):
        art = render_with_marks([(0, 0)], {(2, 0): "X"})
        assert art == "#.X"

    def test_side_by_side(self):
        out = side_by_side(["ab\ncd", "x"], gap="|")
        lines = out.splitlines()
        assert lines[0] == "ab|x"
        assert lines[1].startswith("cd")

    def test_pad(self):
        art = render([(0, 0)], pad=1)
        assert art == "...\n.#.\n..."


class TestSvg:
    def test_canvas_builds_valid_document(self):
        c = SvgCanvas(100, 50)
        c.rect(0, 0, 10, 10)
        c.circle(5, 5, 2)
        c.text(1, 1, "hi <&>")
        s = c.to_string()
        assert s.startswith("<svg")
        assert "&lt;&amp;&gt;" in s
        assert s.count("<rect") == 2  # background + one rect

    def test_swarm_to_svg(self):
        c = swarm_to_svg(SwarmState(ring(5)), highlights={(0, 0): "#f00"})
        s = c.to_string()
        assert "#f00" in s
        assert s.count("<rect") == len(ring(5)) + 1

    def test_swarm_to_svg_empty_raises(self):
        with pytest.raises(ValueError):
            swarm_to_svg(SwarmState([]))

    def test_line_chart(self):
        c = line_chart({"a": [(0, 0), (1, 1)], "b": [(0, 1), (1, 0)]})
        s = c.to_string()
        assert s.count("<polyline") == 3  # axes + 2 series

    def test_line_chart_empty_raises(self):
        with pytest.raises(ValueError):
            line_chart({"a": []})

    def test_save(self, tmp_path):
        p = tmp_path / "out.svg"
        swarm_to_svg(SwarmState([(0, 0)])).save(str(p))
        assert p.read_text().startswith("<svg")


class TestFrameSvg:
    """The dashboard edge cases: round-0, terminal, empty diff."""

    def test_round_zero_has_no_highlights(self):
        # prev_cells=None is the initial frame; nothing has moved yet.
        s = frame_svg(ring(5), label="round 0 (initial)").to_string()
        assert "#c0392b" not in s
        assert "round 0 (initial)" in s
        assert s.count("<rect") == len(ring(5)) + 1  # + background

    def test_terminal_gathered_frame_renders(self):
        # A gathered swarm is a 2x2 block (or smaller); still a frame.
        terminal = [(0, 0), (0, 1), (1, 0), (1, 1)]
        prev = [(0, 0), (0, 1), (1, 0), (2, 1)]
        s = frame_svg(terminal, prev, label="round 9 (4 robots)")
        out = s.to_string()
        assert out.count('fill="#c0392b"') == 1  # only (1, 1) is new
        assert "round 9 (4 robots)" in out

    def test_empty_diff_window_has_no_highlights(self):
        cells = ring(4)
        s = frame_svg(cells, cells).to_string()
        assert "#c0392b" not in s
        assert s.count("<rect") == len(ring(4)) + 1

    def test_empty_current_frame_raises(self):
        with pytest.raises(ValueError):
            frame_svg([])

    def test_custom_moved_fill(self):
        out = frame_svg(
            [(0, 0), (1, 0)], [(0, 0)], moved_fill="#00f"
        ).to_string()
        assert out.count('fill="#00f"') == 1


class TestFrameRecorder:
    def test_capture_every_round(self):
        rec = FrameRecorder()
        s = SwarmState([(0, 0)])
        rec(0, s)
        rec(1, s)
        assert rec.rounds == [0, 1]

    def test_subsampling(self):
        rec = FrameRecorder(every=2)
        s = SwarmState([(0, 0)])
        for i in range(5):
            rec(i, s)
        assert rec.rounds == [0, 2, 4]

    def test_max_frames(self):
        rec = FrameRecorder(max_frames=2)
        s = SwarmState([(0, 0)])
        for i in range(5):
            rec(i, s)
        assert len(rec.frames) == 2

    def test_film_strip(self):
        rec = FrameRecorder()
        rec(0, SwarmState([(0, 0)]))
        strip = rec.film_strip()
        assert "round 0" in strip and "#" in strip

    def test_bad_every(self):
        with pytest.raises(ValueError):
            FrameRecorder(every=0)

    def test_to_svg_contact_sheet(self):
        rec = FrameRecorder()
        rec(0, SwarmState(ring(5)))
        rec(1, SwarmState([(0, 0), (1, 0)]))
        svg = rec.to_svg(columns=2).to_string()
        assert svg.count("round ") == 2
        assert "<rect" in svg

    def test_to_svg_empty_raises(self):
        with pytest.raises(ValueError):
            FrameRecorder().to_svg()


class TestFigures:
    def test_all_figures_render(self):
        # the paper's 21 figures plus the repo-original fig22/fig23
        assert len(FIGURES) == 23
        for name in FIGURES:
            out = figure(name)
            assert isinstance(out, str) and len(out) > 20, name

    def test_fig22_robustness_table(self):
        out = figure("fig22")
        assert "SSYNC" in out and "grid" in out and "1.00" in out

    def test_fig23_fault_axes_table(self):
        out = figure("fig23")
        assert "byzantine" in out and "tolerant" in out
        assert "sleep" in out and "crash" in out

    def test_unknown_figure(self):
        with pytest.raises(KeyError):
            figure("fig99")

    def test_fig2_shows_before_after(self):
        assert "->" in figure("fig2")

    def test_fig15_shows_pipelining(self):
        out = figure("fig15")
        assert "Active runs per round" in out
