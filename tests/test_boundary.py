"""Unit tests for repro.grid.boundary (contour tracing)."""

import pytest

from repro.grid.boundary import (
    boundary_cells,
    extract_boundaries,
    outer_boundary,
)
from repro.grid.geometry import chebyshev
from repro.grid.occupancy import SwarmState
from repro.swarms.generators import double_donut, ring, solid_rectangle


class TestExtraction:
    def test_empty_raises(self):
        with pytest.raises(ValueError):
            extract_boundaries(SwarmState([]))

    def test_single_robot(self):
        bs = extract_boundaries(SwarmState([(5, 5)]))
        assert len(bs) == 1
        assert bs[0].robots == ((5, 5),)
        assert len(bs[0].sides) == 4

    def test_solid_square_one_boundary(self):
        bs = extract_boundaries(SwarmState(solid_rectangle(4, 4)))
        assert len(bs) == 1
        assert bs[0].is_outer

    def test_ring_has_inner_boundary(self):
        bs = extract_boundaries(SwarmState(ring(5)))
        assert len(bs) == 2
        assert bs[0].is_outer and not bs[1].is_outer

    def test_double_donut_three_boundaries(self):
        bs = extract_boundaries(SwarmState(double_donut(12)))
        assert len(bs) == 3
        assert sum(b.is_outer for b in bs) == 1

    def test_outer_first(self):
        bs = extract_boundaries(SwarmState(ring(6)))
        assert bs[0].is_outer


class TestContourProperties:
    def test_consecutive_robots_are_8_adjacent(self):
        for cells in (ring(7), solid_rectangle(5, 3), double_donut(10)):
            for b in extract_boundaries(SwarmState(cells)):
                robots = b.robots
                n = len(robots)
                for i in range(n):
                    assert chebyshev(robots[i], robots[(i + 1) % n]) == 1

    def test_line_visits_interior_twice(self):
        # a 1-thick line's contour passes every interior robot twice
        b = outer_boundary(SwarmState([(i, 0) for i in range(4)]))
        counts = {}
        for r in b.robots:
            counts[r] = counts.get(r, 0) + 1
        assert counts[(1, 0)] == 2 and counts[(2, 0)] == 2
        assert counts[(0, 0)] == 1 and counts[(3, 0)] == 1

    def test_sides_face_free_cells(self):
        state = SwarmState(ring(6))
        occ = state.cells
        for b in extract_boundaries(state):
            for (cell, d) in b.sides:
                assert cell in occ
                assert (cell[0] + d[0], cell[1] + d[1]) not in occ

    def test_all_sides_covered_once(self):
        state = SwarmState(double_donut(10))
        occ = state.cells
        from repro.grid.geometry import DIRECTIONS4, add

        expected = {
            (c, d)
            for c in occ
            for d in DIRECTIONS4
            if add(c, d) not in occ
        }
        got = []
        for b in extract_boundaries(state):
            got.extend(b.sides)
        assert len(got) == len(expected)
        assert set(got) == expected


class TestBoundaryNavigation:
    def test_distance_along(self):
        b = outer_boundary(SwarmState(solid_rectangle(3, 3)))
        n = len(b.robots)
        assert b.distance_along(0, 2, 1) == 2
        assert b.distance_along(2, 0, 1) == n - 2
        assert b.distance_along(0, 2, -1) == n - 2

    def test_successor_wraps(self):
        b = outer_boundary(SwarmState(solid_rectangle(3, 3)))
        n = len(b.robots)
        assert b.successor(n - 1, 1) == 0
        assert b.successor(0, -1) == n - 1

    def test_indices_of(self):
        b = outer_boundary(SwarmState([(i, 0) for i in range(3)]))
        assert len(b.indices_of((1, 0))) == 2


class TestBoundaryCells:
    def test_solid_interior_excluded(self):
        cells = boundary_cells(SwarmState(solid_rectangle(5, 5)))
        assert (2, 2) not in cells
        assert (0, 0) in cells
        assert len(cells) == 16

    def test_thin_everything_is_boundary(self):
        line = [(i, 0) for i in range(5)]
        assert boundary_cells(SwarmState(line)) == set(line)

    def test_matches_union_of_contours(self):
        state = SwarmState(double_donut(10))
        union = set()
        for b in extract_boundaries(state):
            union |= b.robot_set
        assert boundary_cells(state) == union


class TestRingSetDisconnected:
    """The linked-ring cache must survive the same disconnected-input
    regressions the old tuple BoundaryCache did (reachable only with
    check_connectivity=False): materialized output stays byte-identical
    to a full extraction."""

    def test_anchor_migrates_to_kept_contour(self):
        """Regression: on disconnected input the global anchor can move
        onto a contour the cache kept; update() must re-flag it as outer,
        byte-identically to a full extraction."""
        from repro.grid.ring import RingSet

        block = {(x, y) for x in range(10, 13) for y in range(1, 4)}
        old = {(0, 0), (0, 1)} | block  # column is bottommost -> outer
        new = {(0, 2), (0, 3)} | block  # column rises above the block
        changed = old ^ new

        rs = RingSet.from_cells(old)
        rs.update(new, changed)
        incremental = rs.to_boundaries()
        full = extract_boundaries(new)
        assert incremental == full
        assert sum(b.is_outer for b in incremental) == 1
        assert incremental[0].is_outer  # outer listed first

    def test_anchor_migrates_from_kept_outer_to_retraced_contour(self):
        """Mirror regression: the old outer contour is kept while another
        component moves below it — the outer flag must migrate to the
        re-traced contour, byte-identically to full extraction."""
        from repro.grid.ring import RingSet

        block = {(x, y) for x in range(10, 13) for y in range(1, 4)}
        old = {(0, 2), (0, 3)} | block  # block is bottommost -> outer
        new = {(0, 0), (0, 1)} | block  # column sinks below the block
        changed = old ^ new

        rs = RingSet.from_cells(old)
        rs.update(new, changed)
        incremental = rs.to_boundaries()
        full = extract_boundaries(new)
        assert incremental == full
        assert [b.is_outer for b in incremental] == [True, False]

    def test_interior_vacancy_opens_new_hole_contour(self):
        """Regression: vacating an interior cell creates a hole contour
        whose robots were on no cached ring — no node is dirty, but the
        new cycle must still be seeded."""
        from repro.grid.ring import RingSet

        old = {(x, y) for x in range(5) for y in range(5)}
        new = old - {(2, 2)}

        rs = RingSet.from_cells(old)
        rs.update(new, {(2, 2)})
        incremental = rs.to_boundaries()
        full = extract_boundaries(new)
        assert incremental == full
        assert len(incremental) == 2  # outer + the new hole
        assert not incremental[1].is_outer

    def test_demoted_outer_keeps_canonical_order(self):
        """Regression: when a kept outer is demoted (anchor lands on a
        re-traced contour of another component), the ring list must come
        back in fully canonical order."""
        from repro.grid.ring import RingSet
        from repro.swarms.generators import ring as make_ring

        block = {(x + 100, y) for x in range(2) for y in range(2)}
        ring_cells = {(x, y + 1) for (x, y) in make_ring(12)}
        old = block | ring_cells  # block holds the anchor -> outer
        new = (old - {(5, 1)}) | {(5, 0)}  # ring's wall dips below it
        changed = old ^ new

        rs = RingSet.from_cells(old)
        rs.update(new, changed)
        incremental = rs.to_boundaries()
        full = extract_boundaries(new)
        assert incremental == full
        assert sum(b.is_outer for b in incremental) == 1
