"""Unit tests for repro.grid.connectivity."""

from repro.grid.connectivity import (
    articulation_cells,
    connected_components,
    is_connected,
)


class TestIsConnected:
    def test_empty_and_singleton(self):
        assert is_connected([])
        assert is_connected([(0, 0)])

    def test_line_connected(self):
        assert is_connected([(i, 0) for i in range(10)])

    def test_diagonal_not_connected(self):
        # 4-connectivity: diagonal adjacency does not count (paper model)
        assert not is_connected([(0, 0), (1, 1)])

    def test_two_components(self):
        assert not is_connected([(0, 0), (5, 5)])

    def test_ring_connected(self):
        cells = [
            (x, y)
            for x in range(4)
            for y in range(4)
            if x in (0, 3) or y in (0, 3)
        ]
        assert is_connected(cells)


class TestComponents:
    def test_counts(self):
        comps = connected_components([(0, 0), (1, 0), (5, 5)])
        assert sorted(len(c) for c in comps) == [1, 2]

    def test_partition(self):
        cells = [(0, 0), (1, 0), (5, 5), (5, 6), (9, 9)]
        comps = connected_components(cells)
        assert sum(len(c) for c in comps) == len(cells)
        union = set().union(*comps)
        assert union == set(cells)

    def test_empty(self):
        assert connected_components([]) == []


class TestArticulation:
    def test_line_interior_cut(self):
        cells = [(i, 0) for i in range(5)]
        arts = articulation_cells(cells)
        assert arts == {(1, 0), (2, 0), (3, 0)}

    def test_block_has_none(self):
        cells = [(x, y) for x in range(3) for y in range(3)]
        assert articulation_cells(cells) == set()

    def test_ring_has_none(self):
        cells = [
            (x, y)
            for x in range(4)
            for y in range(4)
            if x in (0, 3) or y in (0, 3)
        ]
        assert articulation_cells(cells) == set()

    def test_bridge_between_blocks(self):
        block1 = [(x, y) for x in range(2) for y in range(2)]
        block2 = [(x + 4, y) for x in range(2) for y in range(2)]
        bridge = [(2, 0), (3, 0)]
        arts = articulation_cells(block1 + bridge + block2)
        assert (2, 0) in arts and (3, 0) in arts

    def test_tiny_swarms(self):
        assert articulation_cells([(0, 0)]) == set()
        assert articulation_cells([(0, 0), (1, 0)]) == set()

    def test_deep_line_no_recursion_error(self):
        # iterative Tarjan must survive a 5000-cell line
        cells = [(i, 0) for i in range(5000)]
        arts = articulation_cells(cells)
        assert len(arts) == 4998
