"""Unit tests for repro.grid.ring (persistent linked-ring contours).

The load-bearing property is **materialization equivalence**: after any
sequence of ``update`` calls, ``RingSet.to_boundaries()`` must be
byte-identical to a fresh ``extract_boundaries`` of the same cells —
canonical rotation, canonical order, outer flag and all.  The edge-case
tests pin the splice paths the equivalence suite only exercises
statistically: arcs spanning the canonical rotation origin, holes opening
and closing, and contour splits/merges (which must fall back to a full
re-trace rather than corrupt the rings).
"""

import pytest

from repro.core.algorithm import GatherOnGrid
from repro.core.config import AlgorithmConfig
from repro.engine.scheduler import FsyncEngine
from repro.grid.boundary import extract_boundaries
from repro.grid.occupancy import SwarmState
from repro.grid.ring import RingSet
from repro.swarms.generators import ring, solid_rectangle


def assert_canonical(rs, cells):
    got = rs.to_boundaries()
    want = extract_boundaries(set(cells))
    assert got == want
    for rg, b in zip(rs.rings, want):
        assert len(rg) == len(b.robots)
        assert rg.robots_cycle() == b.robots


class TestConstruction:
    def test_matches_extraction_on_families(self):
        from repro.swarms.generators import FAMILIES, family

        for name in sorted(FAMILIES):
            cells = family(name, 48)
            rs = RingSet.from_cells(set(cells))
            assert_canonical(rs, cells)

    def test_single_robot(self):
        rs = RingSet.from_cells({(3, 3)})
        assert len(rs.rings) == 1
        assert len(rs.rings[0]) == 1
        assert rs.rings[0].robots_cycle() == ((3, 3),)

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            RingSet.from_cells(set())


class TestSpliceEdgeCases:
    def test_dirty_arc_spans_canonical_origin(self):
        """Vacating the anchor cell itself: the dirty arc covers the
        outer ring's canonical start side, and the anchor (hence the
        head) must migrate — byte-identically to full extraction."""
        old = set(solid_rectangle(5, 5))
        anchor_cell = min(old, key=lambda c: (c[1], c[0]))
        new = (old - {anchor_cell}) | {(2, 5)}
        rs = RingSet.from_cells(old)
        rs.update(new, {anchor_cell, (2, 5)})
        assert_canonical(rs, new)

    def test_dirty_arc_spans_inner_canonical_origin(self):
        """An update touching the hole contour's lexicographically
        smallest side must re-canonicalize the inner head."""
        old = set(ring(6))
        inner = extract_boundaries(old)[1]
        min_cell = min(c for c, _ in inner.sides)
        # fold the min-side robot's cell... simplest: fill a hole cell
        # adjacent to it so its sides rewire
        new = old | {(1, 1)}
        rs = RingSet.from_cells(old)
        rs.update(new, {(1, 1)})
        assert_canonical(rs, new)
        assert min_cell is not None  # (sanity: the shape has a hole)

    def test_hole_opens(self):
        old = set(solid_rectangle(5, 5))
        new = old - {(2, 2)}
        rs = RingSet.from_cells(old)
        rs.update(new, {(2, 2)})
        assert_canonical(rs, new)
        assert len(rs.rings) == 2

    def test_hole_closes(self):
        old = set(solid_rectangle(3, 3)) - {(1, 1)}
        new = old | {(1, 1)}
        rs = RingSet.from_cells(old)
        assert len(rs.rings) == 2
        rs.update(new, {(1, 1)})
        assert_canonical(rs, new)
        assert len(rs.rings) == 1

    def test_contour_split_falls_back(self):
        """Closing a C into an O splits the outer contour into outer +
        hole; the splice cannot represent that and must fall back to a
        full re-trace, still matching extraction exactly."""
        full = set(ring(6))
        gap = (3, 0)
        old = full - {gap}  # C shape: one contour
        rs = RingSet.from_cells(old)
        assert len(rs.rings) == 1
        rs.update(full, {gap})
        assert_canonical(rs, full)
        assert len(rs.rings) == 2

    def test_contour_merge_falls_back(self):
        """Opening an O into a C merges the hole contour into the outer;
        must fall back and still match extraction exactly."""
        full = set(ring(6))
        gap = (3, 0)
        new = full - {gap}
        rs = RingSet.from_cells(full)
        assert len(rs.rings) == 2
        rs.update(new, {gap})
        assert_canonical(rs, new)
        assert len(rs.rings) == 1
        # a structural change of this size is recorded as a fallback
        assert any(cid == -1 for cid, _, _ in rs.last_resplices)

    def test_no_change_is_noop(self):
        cells = set(ring(8))
        rs = RingSet.from_cells(cells)
        before = [id(r) for r in rs.rings]
        rs.update(cells, set())
        assert [id(r) for r in rs.rings] == before
        assert rs.last_resplices == []


class TestNodeStability:
    def test_clean_nodes_keep_identity(self):
        """Nodes outside the dirty arcs survive an update as the same
        objects with the same node ids."""
        old = set(ring(10))
        # vacate one outer corner robot (a fold-like local change)
        new = (old - {(0, 0)}) | {(1, 1)}
        rs = RingSet.from_cells(old)
        far_side = ((5, 0), (0, -1))  # bottom wall, far from the change
        far_node = rs.node_of[far_side]
        rs.update(new, {(0, 0), (1, 1)})
        assert rs.node_of[far_side] is far_node
        assert_canonical(rs, new)

    def test_persisting_dirty_side_reuses_node(self):
        """A side inside the dirty halo that survives the re-trace keeps
        its node object (identity-preserving splice)."""
        old = set(ring(10))
        new = (old - {(0, 0)}) | {(1, 1)}
        rs = RingSet.from_cells(old)
        # (2, 0) is within the halo of (1, 1); its south side survives
        near_side = ((2, 0), (0, -1))
        near_node = rs.node_of[near_side]
        rs.update(new, {(0, 0), (1, 1)})
        assert rs.node_of[near_side] is near_node

    def test_ring_ids_stable_for_untouched_rings(self):
        old = set(ring(10))
        new = (old - {(0, 0)}) | {(1, 1)}
        rs = RingSet.from_cells(old)
        inner_id = rs.rings[1].ring_id
        rs.update(new, {(0, 0), (1, 1)})
        assert rs.rings[1].ring_id == inner_id


class TestRobotCycleNavigation:
    def test_robots_cycle_matches_collapse(self):
        for cells in (ring(7), solid_rectangle(4, 2), [(i, 0) for i in range(5)]):
            rs = RingSet.from_cells(set(cells))
            for rg, b in zip(rs.rings, extract_boundaries(set(cells))):
                assert rg.robots_cycle() == b.robots

    def test_walk_and_positions_on_one_thick_line(self):
        """1-thick contours visit interior robots twice; stepping and
        positions must follow the collapsed cycle, occurrences distinct."""
        cells = [(i, 0) for i in range(4)]
        rs = RingSet.from_cells(set(cells))
        rg = rs.rings[0]
        robots = rg.robots_cycle()
        assert len(robots) == 6  # 4 robots, 2 interior ones twice
        pm = rg.positions_map()
        assert sorted(pm.values()) == list(range(6))
        # walking n steps returns to the start occurrence
        start = next(iter(pm))
        cur = start
        for _ in range(len(rg)):
            cur = rg.step(cur, 1)
        assert cur is start

    def test_step_directions_inverse(self):
        rs = RingSet.from_cells(set(ring(6)))
        rg = rs.rings[0]
        head = rg.occurrence_head(rg.head)
        assert rg.step(rg.step(head, 1), -1) is head


class TestTrajectoryEquivalence:
    @pytest.mark.parametrize("name", ["ring_48", "blob_48", "spiral_48"])
    def test_update_tracks_engine(self, name):
        from repro.swarms.generators import family

        fam, n = name.rsplit("_", 1)
        cells = family(fam, int(n))
        rs = RingSet.from_cells(set(cells))
        ctrl = GatherOnGrid(AlgorithmConfig())
        eng = FsyncEngine(SwarmState(cells), ctrl)
        rounds = 0
        while not eng.state.is_gathered() and rounds < 200:
            eng.step()
            rounds += 1
            rs.update(
                eng.state.cells,
                eng.state.last_changed,
                rows=eng.state.rows(),
            )
            assert_canonical(rs, eng.state.cells)


class TestResplicedEvents:
    def test_incremental_emits_audit_events(self):
        from repro.core.algorithm import gather

        r = gather(ring(12), AlgorithmConfig(incremental=True))
        events = r.events.of_kind("boundary_respliced")
        assert events, "incremental mode must audit its boundary work"
        for e in events:
            for cycle_id, arc, removed in e.data["arcs"]:
                assert isinstance(cycle_id, int)
                assert arc >= 0 and removed >= 0

    def test_full_rescan_emits_none(self):
        from repro.core.algorithm import gather

        r = gather(ring(12), AlgorithmConfig(incremental=False))
        assert not r.events.of_kind("boundary_respliced")
