"""Simulation-as-a-service: registry, router, app, HTTP E2E, resume.

Four layers of coverage, cheapest first:

* unit tests over the durable :class:`RunRegistry` and the
  :class:`Router` / ``validate_params`` plumbing;
* transport-free app tests driving ``ServiceApp.handle`` with inline
  workers (every endpoint, every error shape);
* one real HTTP end-to-end test over ``ServiceServer`` on an
  ephemeral port with the pooled worker backend: submit -> SSE
  delivers every round event in order -> recorded metrics are
  bit-identical to a direct ``simulate()`` with the same parameters;
* restart semantics: completed runs survive a server restart intact,
  and an interrupted checkpointed run *resumes* from its trace and
  finishes with the same trajectory and metrics as an undisturbed run.
"""

from __future__ import annotations

import json
import threading
import time
from http.client import HTTPConnection

import pytest

from repro.api import simulate
from repro.core.algorithm import GatherOnGrid
from repro.core.config import AlgorithmConfig
from repro.engine.protocols import Scenario, SimContext
from repro.engine.scheduler import FsyncEngine
from repro.engine.termination import default_round_budget
from repro.grid.occupancy import SwarmState
from repro.service.app import (
    Request,
    Response,
    Router,
    ServiceApp,
    validate_params,
)
from repro.service.records import RunRecord, RunRegistry
from repro.service.runner import checkpointable, execute_run
from repro.service.server import ServiceServer
from repro.service.sse import StreamHub, format_event
from repro.trace.recorder import CheckpointRecorder, read_trace
from repro.trace.replay import controller_checkpoint


def submit_request(payload: dict) -> Request:
    return Request(
        method="POST",
        path="/runs",
        body=json.dumps(payload).encode("utf-8"),
    )


def get(app: ServiceApp, path: str, **query: str) -> Response:
    return app.handle(Request(method="GET", path=path, query=query))


# ----------------------------------------------------------------------
# Registry
# ----------------------------------------------------------------------
class TestRunRegistry:
    def test_create_get_roundtrip(self, tmp_path):
        reg = RunRegistry(tmp_path)
        record = reg.create({"family": "ring", "n": 8})
        assert record.run_id == "run-000001"
        assert record.status == "queued"
        loaded = reg.get(record.run_id)
        assert loaded == record
        assert reg.run_ids() == ["run-000001"]

    def test_ids_are_sequential_and_restart_safe(self, tmp_path):
        reg = RunRegistry(tmp_path)
        reg.create({})
        reg.create({})
        # A fresh registry over the same root continues the sequence.
        again = RunRegistry(tmp_path)
        assert again.create({}).run_id == "run-000003"

    def test_get_missing_raises_keyerror(self, tmp_path):
        with pytest.raises(KeyError):
            RunRegistry(tmp_path).get("run-999999")

    def test_update_fields_and_counts(self, tmp_path):
        reg = RunRegistry(tmp_path)
        rid = reg.create({}).run_id
        reg.update(rid, status="running", started_at=1.0)
        reg.update(rid, status="done", metrics={"rounds": 3})
        loaded = reg.get(rid)
        assert loaded.status == "done"
        assert loaded.metrics == {"rounds": 3}
        assert reg.counts() == {
            "queued": 0,
            "running": 0,
            "done": 1,
            "failed": 0,
        }

    def test_update_rejects_unknown_fields_and_statuses(self, tmp_path):
        reg = RunRegistry(tmp_path)
        rid = reg.create({}).run_id
        with pytest.raises(TypeError):
            reg.update(rid, nonsense=1)
        with pytest.raises(ValueError):
            reg.update(rid, status="exploded")

    def test_from_dict_ignores_unknown_keys(self):
        record = RunRecord.from_dict(
            {"run_id": "run-000001", "status": "queued", "future": 1}
        )
        assert record.run_id == "run-000001"


# ----------------------------------------------------------------------
# Router / validation / SSE plumbing
# ----------------------------------------------------------------------
class TestRouter:
    def build(self) -> Router:
        router = Router()
        router.add("GET", "/runs", lambda r: Response.of_json("list"))
        router.add(
            "GET",
            "/runs/<run_id>",
            lambda r: Response.of_json(r.params["run_id"]),
        )
        return router

    def test_literal_and_param_dispatch(self):
        router = self.build()
        assert (
            router.dispatch(Request("GET", "/runs")).json() == "list"
        )
        response = router.dispatch(Request("GET", "/runs/run-000042"))
        assert response.json() == "run-000042"

    def test_unknown_path_is_404(self):
        response = self.build().dispatch(Request("GET", "/nope"))
        assert response.status == 404

    def test_wrong_method_is_405(self):
        response = self.build().dispatch(Request("POST", "/runs/xyz"))
        assert response.status == 405


class TestValidateParams:
    def test_accepts_and_normalizes(self):
        params = validate_params(
            {"family": "blob", "n": 24, "seed": 3, "max_rounds": None}
        )
        assert params == {"family": "blob", "n": 24, "seed": 3}

    @pytest.mark.parametrize(
        "payload",
        [
            "not a dict",
            {"frobnicate": 1},
            {"strategy": "quantum"},
            {"scheduler": "quantum"},
            {"strategy": "grid", "scheduler": "async"},
            {"n": "ten"},
            {"n": 0},
            {"max_rounds": 0},
            {"check_connectivity": "yes"},
            {"config": [1]},
            {"options": [1]},
            {"payload": {"x": 1}},
            {"config": {"no_such_knob": 1}},
            {},  # Scenario needs family+n or payload
        ],
    )
    def test_rejections(self, payload):
        with pytest.raises(ValueError):
            validate_params(payload)

    def test_explicit_payload_scenario(self):
        params = validate_params({"payload": [[0, 0], [1, 0]]})
        assert params["payload"] == [[0, 0], [1, 0]]

    def test_checkpointable_predicate(self):
        assert checkpointable({"family": "ring", "n": 8})
        assert checkpointable({"scheduler": "fsync"})
        assert not checkpointable({"strategy": "chain"})
        assert not checkpointable({"scheduler": "ssync"})
        assert not checkpointable({"options": {"k": 1}})


class TestSse:
    def test_format_event_wire_shape(self):
        wire = format_event("round", {"round": 2, "robots": 5})
        assert wire == (
            b'event: round\ndata: {"round": 2, "robots": 5}\n\n'
        )

    def test_hub_counts(self):
        hub = StreamHub()
        hub.opened()
        hub.opened()
        hub.closed()
        assert hub.snapshot() == {
            "streams_active": 1,
            "streams_total": 2,
        }


# ----------------------------------------------------------------------
# The app, transport-free (inline workers)
# ----------------------------------------------------------------------
@pytest.fixture
def app(tmp_path):
    with ServiceApp(tmp_path, inline_workers=True) as inline_app:
        yield inline_app


class TestServiceApp:
    def test_submit_runs_to_completion(self, app):
        response = app.handle(
            submit_request({"family": "blob", "n": 16, "seed": 5})
        )
        assert response.status == 202
        body = response.json()
        rid = body["id"]
        assert body["links"]["self"] == f"/runs/{rid}"
        record = get(app, f"/runs/{rid}").json()
        assert record["status"] == "done"
        assert record["metrics"]["gathered"] is True
        assert [t["kind"] for t in record["terminal"]] == ["gathered"]
        direct = simulate(Scenario(family="blob", n=16, seed=5))
        assert record["metrics"] == direct.summary()

    def test_submit_validation_is_400(self, app):
        response = app.handle(submit_request({"strategy": "quantum"}))
        assert response.status == 400
        assert "strategy" in response.json()["error"]

    def test_submit_bad_json_is_400(self, app):
        response = app.handle(
            Request("POST", "/runs", body=b"not json")
        )
        assert response.status == 400

    def test_unknown_run_is_404_everywhere(self, app):
        for path in (
            "/runs/run-000042",
            "/runs/run-000042/frame.svg",
            "/runs/run-000042/events",
            "/runs/run-000042/trace",
        ):
            assert get(app, path).status == 404, path

    def test_method_mismatch_is_405(self, app):
        response = app.handle(Request("DELETE", "/runs"))
        assert response.status == 405

    def test_health_and_metrics(self, app):
        app.handle(submit_request({"family": "blob", "n": 9, "seed": 1}))
        health = get(app, "/health").json()
        assert health["status"] == "ok"
        assert health["runs"]["done"] == 1
        metrics = get(app, "/metrics").json()
        assert metrics["http_requests_total"] >= 2
        assert metrics["sse"] == {
            "streams_active": 0,
            "streams_total": 0,
        }

    def test_dashboard_is_html(self, app):
        response = get(app, "/")
        assert response.content_type.startswith("text/html")
        html = response.body.decode("utf-8")
        assert "<html" in html
        assert "/runs" in html  # wired to the API
        assert "EventSource" in html  # live streaming client

    def test_events_replay_finished_run_in_order(self, app):
        rid = app.handle(
            submit_request({"family": "blob", "n": 16, "seed": 5})
        ).json()["id"]
        response = get(app, f"/runs/{rid}/events")
        assert response.content_type == "text/event-stream"
        chunks = b"".join(response.stream).decode("utf-8")
        events = parse_sse(chunks)
        assert events[0][0] == "status"
        assert events[-1][0] == "end"
        rounds = [d["round"] for name, d in events if name == "round"]
        total = get(app, f"/runs/{rid}").json()["metrics"]["rounds"]
        assert rounds == list(range(total))
        assert events[-1][1]["status"] == "done"

    def test_events_start_round_skips_prefix(self, app):
        rid = app.handle(
            submit_request({"family": "ring", "n": 40, "seed": 2})
        ).json()["id"]
        response = get(
            app, f"/runs/{rid}/events", start_round="3"
        )
        events = parse_sse(b"".join(response.stream).decode("utf-8"))
        rounds = [d["round"] for name, d in events if name == "round"]
        assert rounds[0] == 3

    def test_frames(self, app):
        rid = app.handle(
            submit_request({"family": "ring", "n": 40, "seed": 2})
        ).json()["id"]
        initial = get(app, f"/runs/{rid}/frame.svg", round="initial")
        assert initial.status == 200
        assert initial.content_type == "image/svg+xml"
        assert b"round 0 (initial)" in initial.body
        latest = get(app, f"/runs/{rid}/frame.svg")
        assert latest.status == 200
        third = get(app, f"/runs/{rid}/frame.svg", round="2")
        assert b"round 3" in third.body
        missing = get(app, f"/runs/{rid}/frame.svg", round="99999")
        assert missing.status == 404
        bad = get(app, f"/runs/{rid}/frame.svg", round="soonish")
        assert bad.status == 400

    def test_trace_endpoint_serves_raw_jsonl(self, app):
        rid = app.handle(
            submit_request({"family": "blob", "n": 16, "seed": 5})
        ).json()["id"]
        response = get(app, f"/runs/{rid}/trace")
        assert response.content_type == "application/x-ndjson"
        lines = response.body.decode("utf-8").splitlines()
        header = json.loads(lines[0])
        assert header["type"] == "header"
        assert header["run_id"] == rid
        total = get(app, f"/runs/{rid}").json()["metrics"]["rounds"]
        assert len(lines) == 1 + total

    def test_failed_run_is_recorded_not_raised(self, app):
        # connectivity_lost raises inside the engine for a
        # disconnected swarm; the record absorbs it.
        response = app.handle(
            submit_request({"payload": [[0, 0], [10, 10]]})
        )
        assert response.status == 202
        record = get(app, f"/runs/{response.json()['id']}").json()
        assert record["status"] == "failed"
        assert "connected" in record["error"]

    def test_non_grid_strategy_runs(self, app):
        rid = app.handle(
            submit_request(
                {"family": "hairpin", "n": 6, "strategy": "chain"}
            )
        ).json()["id"]
        record = get(app, f"/runs/{rid}").json()
        assert record["status"] == "done"
        assert record["metrics"]["strategy"] == "chain"


def parse_sse(text: str):
    """[(event_name, data_dict), ...] from a raw SSE byte stream."""
    events = []
    for block in text.split("\n\n"):
        if not block.strip():
            continue
        name = data = None
        for line in block.splitlines():
            if line.startswith("event: "):
                name = line[len("event: "):]
            elif line.startswith("data: "):
                data = json.loads(line[len("data: "):])
        events.append((name, data))
    return events


# ----------------------------------------------------------------------
# Real HTTP end-to-end (ephemeral port, pooled workers)
# ----------------------------------------------------------------------
def http_json(host, port, method, path, payload=None, timeout=60.0):
    conn = HTTPConnection(host, port, timeout=timeout)
    try:
        body = None
        headers = {}
        if payload is not None:
            body = json.dumps(payload).encode("utf-8")
            headers["Content-Type"] = "application/json"
        conn.request(method, path, body=body, headers=headers)
        response = conn.getresponse()
        return response.status, json.loads(response.read())
    finally:
        conn.close()


class TestHttpEndToEnd:
    def test_submit_stream_and_bit_identical_metrics(self, tmp_path):
        app = ServiceApp(tmp_path, workers=2, poll_interval=0.02)
        server = ServiceServer(app, port=0)
        server.start()
        try:
            host, port = server.host, server.port
            status, body = http_json(
                host,
                port,
                "POST",
                "/runs",
                {"family": "ring", "n": 40, "seed": 2},
            )
            assert status == 202
            rid = body["id"]

            # Attach the SSE stream while the run executes; the
            # connection closes when the stream ends, so one blocking
            # read collects the whole narration.
            conn = HTTPConnection(host, port, timeout=120.0)
            try:
                conn.request("GET", f"/runs/{rid}/events")
                raw = conn.getresponse().read().decode("utf-8")
            finally:
                conn.close()
            events = parse_sse(raw)
            assert events[0][0] == "status"
            assert events[-1][0] == "end"
            assert events[-1][1]["status"] == "done"

            status, record = http_json(
                host, port, "GET", f"/runs/{rid}"
            )
            assert status == 200
            assert record["status"] == "done"
            # Every round event, in order, no gaps.
            rounds = [
                d["round"] for name, d in events if name == "round"
            ]
            assert rounds == list(range(record["metrics"]["rounds"]))
            # The service recorded exactly what a direct call yields.
            direct = simulate(Scenario(family="ring", n=40, seed=2))
            assert record["metrics"] == direct.summary()
            assert events[-1][1]["metrics"] == direct.summary()

            # A frame and the ops endpoints answer over HTTP too.
            conn = HTTPConnection(host, port, timeout=60.0)
            try:
                conn.request("GET", f"/runs/{rid}/frame.svg?round=3")
                response = conn.getresponse()
                frame = response.read()
                assert response.status == 200
                assert frame.startswith(b"<svg")
            finally:
                conn.close()
            status, health = http_json(host, port, "GET", "/health")
            assert status == 200
            assert health["runs"]["done"] == 1
            assert health["workers"] == 2
            status, metrics = http_json(host, port, "GET", "/metrics")
            assert metrics["sse"]["streams_total"] == 1
            assert metrics["sse"]["streams_active"] == 0
        finally:
            server.shutdown()


class TestPooledBacklog:
    def test_more_runs_than_workers_all_complete(self, tmp_path):
        # One worker, three runs: 2 and 3 sit in the pool queue until
        # the completion poller's zero-timeout polls dispatch them.
        pooled = ServiceApp(tmp_path, workers=1, poll_interval=0.01)
        pooled.start()
        try:
            rids = [
                pooled.handle(
                    submit_request(
                        {"family": "blob", "n": 12, "seed": s}
                    )
                ).json()["id"]
                for s in (1, 2, 3)
            ]
            deadline = time.time() + 60
            while True:
                records = [
                    get(pooled, f"/runs/{rid}").json()
                    for rid in rids
                ]
                if all(r["status"] == "done" for r in records):
                    break
                assert time.time() < deadline, [
                    (r["run_id"], r["status"]) for r in records
                ]
                time.sleep(0.05)
        finally:
            pooled.close()


# ----------------------------------------------------------------------
# Restart survival + checkpoint resume
# ----------------------------------------------------------------------
def interrupt_grid_run(registry, rid, params, rounds, every):
    """Execute ``rounds`` rounds of a checkpointed grid run, then
    stop — as if the worker was SIGKILLed mid-run (record still says
    ``running``, trace ends at an arbitrary flushed row)."""
    from repro.api import STRATEGIES
    from repro.service.runner import _header_line, _span

    registry.update(rid, status="running", started_at=time.time())
    scenario = Scenario(
        family=params["family"], n=params["n"], seed=params["seed"]
    )
    cells = STRATEGIES["grid"].resolve(
        scenario, SimContext(seed=params["seed"])
    )
    controller = GatherOnGrid(AlgorithmConfig())
    state = SwarmState(cells)
    unique = sorted(set(tuple(c) for c in cells))
    meta = {
        "run_id": rid,
        "strategy": "grid",
        "scheduler": "fsync",
        "n": len(unique),
        "initial_cells": [list(c) for c in unique],
        "family": params["family"],
        "seed": params["seed"],
        "budget": default_round_budget(len(unique)),
        "initial_diameter": _span(unique),
    }
    with registry.trace_path(rid).open("w") as fh:
        fh.write(_header_line(meta))
        recorder = CheckpointRecorder(
            fh,
            lambda: controller_checkpoint(controller),
            meta=meta,
            every=every,
        )
        recorder._wrote_header = True
        engine = FsyncEngine(state, controller, on_round=recorder)
        for _ in range(rounds):
            engine.step()
    return meta


class TestRestartAndResume:
    def test_completed_runs_survive_restart(self, tmp_path):
        with ServiceApp(tmp_path, inline_workers=True) as app:
            rid = app.handle(
                submit_request({"family": "blob", "n": 16, "seed": 5})
            ).json()["id"]
            before = get(app, f"/runs/{rid}").json()
        # "Restart": a brand-new app over the same data directory.
        with ServiceApp(tmp_path, inline_workers=True) as app:
            listed = get(app, "/runs").json()["runs"]
            assert [r["run_id"] for r in listed] == [rid]
            assert get(app, f"/runs/{rid}").json() == before
            health = get(app, "/health").json()
            assert health["runs"] == {
                "queued": 0,
                "running": 0,
                "done": 1,
                "failed": 0,
            }

    def test_interrupted_run_resumes_from_checkpoint(self, tmp_path):
        params = {"family": "ring", "n": 48, "seed": 7}
        registry = RunRegistry(tmp_path)
        rid = registry.create(validate_params(params)).run_id
        # Worker dies after 7 rounds (checkpoints at 0, 3, 6).
        interrupt_grid_run(registry, rid, params, rounds=7, every=3)
        assert registry.get(rid).status == "running"

        app = ServiceApp(tmp_path, inline_workers=True)
        try:
            requeued = app.start()  # inline: resumes synchronously
            assert requeued == [rid]
            record = get(app, f"/runs/{rid}").json()
        finally:
            app.close()
        assert record["status"] == "done"
        assert record["resumed_from_round"] == 6

        # The resumed trajectory equals the undisturbed one: same
        # terminal metrics (modulo event counts, which only cover the
        # resumed tail — documented in docs/service.md) ...
        direct = simulate(
            Scenario(**params), max_rounds=None
        ).summary()
        for key in (
            "strategy",
            "scheduler",
            "gathered",
            "rounds",
            "robots_initial",
            "robots_final",
            "merges",
            "rounds_per_robot",
            "extras",
        ):
            assert record["metrics"][key] == direct[key], key
        # ... and the trace is one contiguous round sequence.
        with registry.trace_path(rid).open() as fh:
            meta, rows = read_trace(fh)
        assert meta["run_id"] == rid
        indexes = [row.round_index for row in rows]
        assert indexes == list(range(record["metrics"]["rounds"]))

    def test_interrupted_unstarted_run_is_requeued(self, tmp_path):
        registry = RunRegistry(tmp_path)
        rid = registry.create(
            validate_params({"family": "blob", "n": 9, "seed": 1})
        ).run_id
        app = ServiceApp(tmp_path, inline_workers=True)
        try:
            assert app.start() == [rid]
            assert get(app, f"/runs/{rid}").json()["status"] == "done"
        finally:
            app.close()

    def test_execute_run_records_failure_and_reraises(self, tmp_path):
        registry = RunRegistry(tmp_path)
        rid = registry.create(
            validate_params({"payload": [[0, 0], [9, 9]]})
        ).run_id
        with pytest.raises(Exception):
            execute_run(str(tmp_path), rid)
        record = registry.get(rid)
        assert record.status == "failed"
        assert record.error
