"""Unit tests for swarm generators, validation, serialization."""

import pytest

from repro.grid.connectivity import is_connected
from repro.swarms import (
    FAMILIES,
    comb,
    diamond_ring,
    double_donut,
    ensure_connected,
    family,
    from_json,
    from_text,
    h_shape,
    l_corridor,
    line,
    normalize,
    plus_shape,
    random_blob,
    random_tree,
    ring,
    solid_rectangle,
    spiral,
    staircase,
    staircase_corridor,
    to_json,
    to_text,
)


class TestGeneratorsConnectivity:
    @pytest.mark.parametrize(
        "cells",
        [
            line(17),
            solid_rectangle(7, 4),
            ring(9),
            ring(9, thickness=2),
            plus_shape(6),
            plus_shape(5, width=3),
            h_shape(9, 5),
            staircase(12),
            staircase_corridor(8, run=3),
            diamond_ring(8),
            spiral(6),
            comb(5, 7),
            l_corridor(8, 2),
            double_donut(14),
            random_blob(200, 7),
            random_tree(150, 7),
        ],
        ids=lambda c: f"n={len(c)}",
    )
    def test_connected_and_unique(self, cells):
        assert is_connected(cells)
        assert len(cells) == len(set(cells))


class TestGeneratorShapes:
    def test_line_count(self):
        assert len(line(13)) == 13

    def test_vertical_line(self):
        cells = line(5, vertical=True)
        assert all(x == 0 for x, _ in cells)

    def test_solid_count(self):
        assert len(solid_rectangle(6, 3)) == 18

    def test_ring_has_hole(self):
        cells = set(ring(6))
        assert (3, 3) not in cells
        assert len(cells) == 20

    def test_thick_ring(self):
        cells = set(ring(8, thickness=2))
        assert (3, 3) not in cells
        assert (1, 1) in cells

    def test_diamond_ring_is_thin(self):
        cells = diamond_ring(10)
        from repro.grid.occupancy import SwarmState

        state = SwarmState(cells)
        assert all(state.degree(c) <= 3 for c in cells)

    def test_blob_seed_determinism(self):
        assert random_blob(100, 42) == random_blob(100, 42)
        assert random_blob(100, 42) != random_blob(100, 43)

    def test_tree_has_many_leaves(self):
        from repro.grid.occupancy import SwarmState

        cells = random_tree(200, 1)
        state = SwarmState(cells)
        leaves = sum(1 for c in cells if state.degree(c) == 1)
        assert leaves >= 5

    def test_bad_args_raise(self):
        with pytest.raises(ValueError):
            line(0)
        with pytest.raises(ValueError):
            ring(2)
        with pytest.raises(ValueError):
            ring(8, thickness=5)
        with pytest.raises(ValueError):
            solid_rectangle(0, 3)


class TestFamilies:
    @pytest.mark.parametrize("name", sorted(FAMILIES))
    def test_family_sizes_roughly_match(self, name):
        cells = family(name, 150)
        assert is_connected(cells)
        assert 0.5 * 150 <= len(cells) <= 2.5 * 150

    def test_unknown_family(self):
        with pytest.raises(KeyError):
            family("nope", 10)


class TestValidation:
    def test_ensure_connected_ok(self):
        assert ensure_connected([(1, 0), (0, 0)]) == [(0, 0), (1, 0)]

    def test_ensure_connected_rejects(self):
        with pytest.raises(ValueError):
            ensure_connected([(0, 0), (5, 5)])
        with pytest.raises(ValueError):
            ensure_connected([])

    def test_normalize(self):
        assert normalize([(5, 7), (6, 7)]) == [(0, 0), (1, 0)]
        assert normalize([]) == []


class TestSerialization:
    def test_text_roundtrip(self):
        cells = ring(5)
        assert from_text(to_text(cells)) == normalize(cells)

    def test_text_orientation(self):
        art = to_text([(0, 0), (0, 1)])
        assert art == "#\n#"

    def test_from_text_shape(self):
        cells = from_text("##\n.#")
        assert cells == [(0, 1), (1, 0), (1, 1)]

    def test_json_roundtrip(self):
        cells = random_blob(50, 9)
        assert from_json(to_json(cells)) == cells

    def test_empty_text(self):
        assert to_text([]) == ""
        assert from_text("") == []
