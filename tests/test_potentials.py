"""Potential-function monotonicity: the termination argument, measured."""

import pytest

from repro.analysis.potentials import (
    first_violation,
    is_monotone_nonincreasing,
    track_potentials,
)
from repro.swarms.generators import (
    double_donut,
    random_blob,
    ring,
    solid_rectangle,
    spiral,
)


class TestHelpers:
    def test_monotone(self):
        assert is_monotone_nonincreasing([5, 5, 3, 1])
        assert not is_monotone_nonincreasing([3, 4])
        assert is_monotone_nonincreasing([3, 3.5], tolerance=1.0)

    def test_first_violation(self):
        assert first_violation([5, 4, 6, 2]) == 2
        assert first_violation([5, 4]) is None


@pytest.mark.parametrize(
    "cells",
    [ring(16), ring(24), solid_rectangle(8, 8), spiral(5),
     random_blob(150, 21), double_donut(12)],
    ids=["ring16", "ring24", "solid", "spiral", "blob", "donut"],
)
def test_robot_count_and_perimeter_monotone(cells):
    trace = track_potentials(cells)
    assert trace.gathered
    assert is_monotone_nonincreasing(trace.robots), (
        f"robot count rose at round {first_violation(trace.robots)}"
    )
    assert is_monotone_nonincreasing(trace.perimeter), (
        f"perimeter rose at round {first_violation(trace.perimeter)}"
    )


@pytest.mark.parametrize(
    "cells", [ring(16), solid_rectangle(8, 8)], ids=["ring", "solid"]
)
def test_enclosed_area_monotone(cells):
    """Folds move boundary robots inward: the outer enclosed area never
    grows (the reshapement progress measure of DESIGN.md Section 3)."""
    trace = track_potentials(cells)
    assert trace.gathered
    assert is_monotone_nonincreasing(trace.area), (
        f"area rose at round {first_violation(trace.area)}"
    )


def test_trace_lengths_consistent():
    trace = track_potentials(ring(12))
    assert len(trace.robots) == len(trace.perimeter) == len(trace.area)
    assert len(trace.robots) == trace.rounds + 1  # initial snapshot + rounds
