"""Unit tests for the Euclidean go-to-center baseline ([DKL+11])."""

import math

import pytest

from repro.baselines.euclidean import (
    EuclideanSwarm,
    GoToCenterGatherer,
    gather_euclidean,
    smallest_enclosing_circle,
)


class TestSEC:
    def test_single_point(self):
        (cx, cy), r = smallest_enclosing_circle([(3.0, 4.0)])
        assert (cx, cy) == (3.0, 4.0) and r == 0.0

    def test_two_points(self):
        (cx, cy), r = smallest_enclosing_circle([(0, 0), (2, 0)])
        assert (cx, cy) == pytest.approx((1.0, 0.0))
        assert r == pytest.approx(1.0)

    def test_equilateral_triangle(self):
        pts = [(0, 0), (1, 0), (0.5, math.sqrt(3) / 2)]
        (cx, cy), r = smallest_enclosing_circle(pts)
        assert r == pytest.approx(1 / math.sqrt(3), rel=1e-9)

    def test_collinear_points(self):
        (cx, cy), r = smallest_enclosing_circle([(0, 0), (1, 0), (4, 0)])
        assert cx == pytest.approx(2.0)
        assert r == pytest.approx(2.0)

    def test_contains_all_points(self):
        import random

        rng = random.Random(1)
        pts = [(rng.uniform(-5, 5), rng.uniform(-5, 5)) for _ in range(60)]
        (cx, cy), r = smallest_enclosing_circle(pts)
        for (x, y) in pts:
            assert math.hypot(x - cx, y - cy) <= r + 1e-9

    def test_interior_points_do_not_inflate(self):
        pts = [(0, 0), (2, 0), (1, 0.1), (1, -0.1)]
        _, r = smallest_enclosing_circle(pts)
        assert r == pytest.approx(1.0, abs=1e-6)

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            smallest_enclosing_circle([])


class TestEuclideanSwarm:
    def test_connectivity(self):
        assert EuclideanSwarm([(0, 0), (0.9, 0)]).is_connected()
        assert not EuclideanSwarm([(0, 0), (1.5, 0)]).is_connected()

    def test_diameter(self):
        s = EuclideanSwarm([(0, 0), (3, 4)])
        assert s.diameter() == pytest.approx(5.0)

    def test_bad_shape_rejected(self):
        with pytest.raises(ValueError):
            EuclideanSwarm([(0, 0, 0)])


class TestGoToCenter:
    def test_edges_never_break(self):
        swarm = EuclideanSwarm([(0.9 * i, 0.0) for i in range(12)])
        g = GoToCenterGatherer()
        for _ in range(20):
            g.step(swarm)
            assert swarm.is_connected()

    def test_diameter_decreases(self):
        swarm = EuclideanSwarm([(0.9 * i, 0.0) for i in range(10)])
        d0 = swarm.diameter()
        GoToCenterGatherer().step(swarm)
        assert swarm.diameter() < d0

    def test_line_gathers(self):
        r = gather_euclidean([(0.9 * i, 0.0) for i in range(10)])
        assert r.gathered

    def test_disconnected_rejected(self):
        with pytest.raises(ValueError):
            gather_euclidean([(0, 0), (10, 0)])

    def test_quadratic_on_circles(self):
        """The [DKL+11] worst-case family: rounds/n^2 roughly constant."""
        ratios = []
        for n in (16, 32):
            rad = n * 0.9 / (2 * math.pi)
            pts = [
                (
                    rad * math.cos(2 * math.pi * i / n),
                    rad * math.sin(2 * math.pi * i / n),
                )
                for i in range(n)
            ]
            res = gather_euclidean(pts)
            assert res.gathered
            ratios.append(res.rounds / n**2)
        assert ratios[1] == pytest.approx(ratios[0], rel=0.5)

    def test_record_diameter_series(self):
        r = gather_euclidean(
            [(0.9 * i, 0.0) for i in range(8)], record_diameter=True
        )
        assert len(r.diameters) == r.rounds
        assert all(a >= b - 1e-9 for a, b in zip(r.diameters, r.diameters[1:]))
