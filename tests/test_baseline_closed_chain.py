"""Unit tests for the closed-chain gathering baseline ([ACLF+16])."""

import pytest

from repro.baselines.closed_chain import (
    ClosedChainGatherer,
    gather_closed_chain,
    rectangle_chain,
)
from repro.grid.geometry import chebyshev


class TestConstruction:
    def test_too_short_rejected(self):
        with pytest.raises(ValueError):
            ClosedChainGatherer([(0, 0), (1, 0)])

    def test_broken_link_rejected(self):
        with pytest.raises(ValueError):
            ClosedChainGatherer([(0, 0), (1, 0), (5, 5)])

    def test_rectangle_chain_closed(self):
        chain = rectangle_chain(6, 4)
        n = len(chain)
        assert n == 2 * 6 + 2 * 4 - 4
        for i in range(n):
            assert chebyshev(chain[i], chain[(i + 1) % n]) <= 1

    def test_rectangle_bad_args(self):
        with pytest.raises(ValueError):
            rectangle_chain(1, 4)


class TestGathering:
    def test_small_rectangle_gathers(self):
        r = gather_closed_chain(rectangle_chain(5, 5), seed=1)
        assert r.gathered
        assert r.robots_final >= 3  # the chain structure never drops below 3

    def test_bigger_rectangle_gathers(self):
        r = gather_closed_chain(rectangle_chain(12, 8), seed=2)
        assert r.gathered

    def test_links_never_break(self):
        g = ClosedChainGatherer(rectangle_chain(8, 6), seed=3)
        for _ in range(500):
            if g.is_gathered():
                break
            g.step()
            m = len(g.chain)
            for i in range(m):
                assert chebyshev(g.chain[i], g.chain[(i + 1) % m]) <= 1

    def test_chain_length_monotone(self):
        g = ClosedChainGatherer(rectangle_chain(10, 10), seed=4)
        lengths = [len(g.chain)]
        for _ in range(800):
            if g.is_gathered():
                break
            g.step()
            lengths.append(len(g.chain))
        assert all(a >= b for a, b in zip(lengths, lengths[1:]))
        assert g.is_gathered()

    def test_seed_determinism(self):
        a = gather_closed_chain(rectangle_chain(9, 7), seed=11)
        b = gather_closed_chain(rectangle_chain(9, 7), seed=11)
        assert a.rounds == b.rounds and a.robots_final == b.robots_final

    def test_roughly_linear_rounds(self):
        """[ACLF+16]'s O(n) regime, here in expectation (randomized
        symmetry breaking): quadrupling n must not blow up rounds
        super-linearly beyond noise."""
        small = gather_closed_chain(rectangle_chain(8, 8), seed=5)
        big = gather_closed_chain(rectangle_chain(16, 16), seed=5)
        assert small.gathered and big.gathered
        assert big.rounds <= 8 * max(small.rounds, 1)
