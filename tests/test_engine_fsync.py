"""Unit tests for the FSYNC engine."""

import pytest

from repro.engine.errors import ConnectivityViolation, NotGathered
from repro.engine.scheduler import FsyncEngine
from repro.grid.occupancy import SwarmState


class StaticController:
    """Does nothing; the swarm never changes."""

    def plan_round(self, state, round_index):
        return {}

    def notify_applied(self, state, round_index, moves, merged):
        pass


class ScriptedController:
    """Plays back a fixed list of per-round move dicts."""

    def __init__(self, script):
        self.script = script
        self.notifications = []

    def plan_round(self, state, round_index):
        if round_index < len(self.script):
            return self.script[round_index]
        return {}

    def notify_applied(self, state, round_index, moves, merged):
        self.notifications.append((round_index, dict(moves), merged))


class TestEngineSetup:
    def test_empty_swarm_rejected(self):
        with pytest.raises(ValueError):
            FsyncEngine(SwarmState([]), StaticController())

    def test_disconnected_swarm_rejected(self):
        with pytest.raises(ValueError):
            FsyncEngine(SwarmState([(0, 0), (5, 5)]), StaticController())

    def test_gathered_immediately(self):
        eng = FsyncEngine(SwarmState([(0, 0), (1, 0)]), StaticController())
        result = eng.run()
        assert result.gathered
        assert result.rounds == 0


class TestStep:
    def test_scripted_merge_counted(self):
        ctrl = ScriptedController([{(0, 0): (1, 0)}])
        eng = FsyncEngine(SwarmState([(0, 0), (1, 0), (2, 0)]), ctrl)
        merged = eng.step()
        assert merged == 1
        assert len(eng.state) == 2

    def test_notify_called_with_moves(self):
        ctrl = ScriptedController([{(0, 0): (1, 0)}])
        eng = FsyncEngine(SwarmState([(0, 0), (1, 0), (2, 0)]), ctrl)
        eng.step()
        assert ctrl.notifications == [(0, {(0, 0): (1, 0)}, 1)]

    def test_connectivity_violation_detected(self):
        # moving the middle robot away disconnects the line
        ctrl = ScriptedController([{(1, 0): (1, 1)}])
        eng = FsyncEngine(SwarmState([(0, 0), (1, 0), (2, 0)]), ctrl)
        with pytest.raises(ConnectivityViolation) as exc:
            eng.step()
        assert exc.value.round_index == 0
        assert exc.value.n_components >= 2

    def test_connectivity_check_can_be_disabled(self):
        ctrl = ScriptedController([{(1, 0): (1, 1)}])
        eng = FsyncEngine(
            SwarmState([(0, 0), (1, 0), (2, 0)]),
            ctrl,
            check_connectivity=False,
        )
        eng.step()  # no raise

    def test_metrics_recorded(self):
        ctrl = ScriptedController([{(0, 0): (1, 0)}])
        eng = FsyncEngine(SwarmState([(0, 0), (1, 0), (2, 0)]), ctrl)
        eng.step()
        assert len(eng.metrics) == 1
        row = eng.metrics[0]
        assert row.robots == 2
        assert row.merged == 1

    def test_track_boundary_records_area(self):
        ctrl = StaticController()
        eng = FsyncEngine(
            SwarmState([(0, 0), (1, 0), (2, 0)]),
            ctrl,
            track_boundary=True,
        )
        eng.step()
        assert eng.metrics[0].boundary_length == 8
        assert eng.metrics[0].enclosed_area == pytest.approx(3.0)

    def test_on_round_callback(self):
        seen = []
        eng = FsyncEngine(
            SwarmState([(0, 0), (1, 0), (2, 0)]),
            StaticController(),
            on_round=lambda i, s: seen.append((i, len(s))),
        )
        eng.step()
        eng.step()
        assert seen == [(0, 3), (1, 3)]


class TestRun:
    def test_budget_exhaustion(self):
        eng = FsyncEngine(SwarmState([(i, 0) for i in range(5)]), StaticController())
        result = eng.run(max_rounds=7)
        assert not result.gathered
        assert result.rounds == 7

    def test_budget_raise(self):
        eng = FsyncEngine(SwarmState([(i, 0) for i in range(5)]), StaticController())
        with pytest.raises(NotGathered):
            eng.run(max_rounds=3, raise_on_budget=True)

    def test_result_accounting(self):
        # after round 0 only 2 adjacent robots remain -> already gathered
        ctrl = ScriptedController([{(0, 0): (1, 0)}, {(1, 0): (2, 0)}])
        eng = FsyncEngine(SwarmState([(0, 0), (1, 0), (2, 0)]), ctrl)
        result = eng.run()
        assert result.gathered
        assert result.rounds == 1
        assert result.robots_initial == 3
        assert result.robots_final == 2
        assert result.merges_total == 1
        assert 0 < result.rounds_per_robot() <= 1
