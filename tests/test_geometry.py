"""Unit tests for repro.grid.geometry."""

import pytest

from repro.grid.geometry import (
    DIAGONALS,
    DIRECTIONS4,
    DIRECTIONS8,
    EAST,
    NORTH,
    SOUTH,
    WEST,
    add,
    bounding_box,
    chebyshev,
    l1_distance,
    neighbors4,
    neighbors8,
    perpendicular,
    rotate_ccw,
    rotate_cw,
    scale,
    sub,
)


class TestVectorOps:
    def test_add(self):
        assert add((1, 2), (3, -4)) == (4, -2)

    def test_sub(self):
        assert sub((1, 2), (3, -4)) == (-2, 6)

    def test_scale(self):
        assert scale((2, -3), 4) == (8, -12)

    def test_add_sub_inverse(self):
        a, b = (5, -7), (11, 13)
        assert sub(add(a, b), b) == a


class TestDistances:
    def test_l1(self):
        assert l1_distance((0, 0), (3, 4)) == 7

    def test_l1_symmetric(self):
        assert l1_distance((2, -1), (-3, 5)) == l1_distance((-3, 5), (2, -1))

    def test_chebyshev(self):
        assert chebyshev((0, 0), (3, 4)) == 4

    def test_chebyshev_diagonal_hop_is_one(self):
        # one 8-neighbor hop always covers Chebyshev distance 1
        for d in DIRECTIONS8:
            assert chebyshev((0, 0), d) == 1

    def test_l1_of_diagonal_is_two(self):
        for d in DIAGONALS:
            assert l1_distance((0, 0), d) == 2


class TestNeighborhoods:
    def test_neighbors4_count_and_distance(self):
        ns = neighbors4((3, 3))
        assert len(ns) == 4
        assert all(l1_distance((3, 3), n) == 1 for n in ns)

    def test_neighbors8_count_and_distance(self):
        ns = neighbors8((3, 3))
        assert len(set(ns)) == 8
        assert all(chebyshev((3, 3), n) == 1 for n in ns)

    def test_neighbors4_subset_of_neighbors8(self):
        assert set(neighbors4((0, 0))) <= set(neighbors8((0, 0)))


class TestRotations:
    def test_rotate_ccw_cycle(self):
        assert rotate_ccw(EAST) == NORTH
        assert rotate_ccw(NORTH) == WEST
        assert rotate_ccw(WEST) == SOUTH
        assert rotate_ccw(SOUTH) == EAST

    def test_rotate_cw_inverse_of_ccw(self):
        for d in DIRECTIONS8:
            assert rotate_cw(rotate_ccw(d)) == d

    def test_four_rotations_identity(self):
        v = (3, 5)
        for _ in range(4):
            v = rotate_ccw(v)
        assert v == (3, 5)

    def test_perpendicular(self):
        assert perpendicular(EAST, NORTH)
        assert not perpendicular(EAST, WEST) or EAST[0] * WEST[0] == 0
        assert not perpendicular((1, 0), (1, 0))
        assert perpendicular((2, 0), (0, -5))


class TestBoundingBox:
    def test_single(self):
        assert bounding_box([(2, 3)]) == (2, 3, 2, 3)

    def test_general(self):
        assert bounding_box([(0, 0), (-2, 5), (7, -1)]) == (-2, -1, 7, 5)

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            bounding_box([])
