"""Unit tests for the command-line interface."""

import json

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_gather_defaults(self):
        args = build_parser().parse_args(["gather"])
        assert args.family == "ring" and args.n == 100

    def test_unknown_family_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["gather", "--family", "nope"])

    def test_unknown_strategy_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["gather", "--strategy", "nope"])

    def test_strategy_defaults_to_grid(self):
        args = build_parser().parse_args(["gather"])
        assert args.strategy == "grid" and args.scheduler is None

    def test_serve_defaults(self):
        args = build_parser().parse_args(["serve", "/tmp/svc-data"])
        assert args.data_dir == "/tmp/svc-data"
        assert args.host == "127.0.0.1"
        assert args.port == 8765
        assert args.jobs is None
        assert args.checkpoint_every == 50

    def test_serve_overrides(self):
        args = build_parser().parse_args(
            ["serve", "d", "--port", "0", "-j", "2",
             "--checkpoint-every", "10"]
        )
        assert args.port == 0 and args.jobs == 2
        assert args.checkpoint_every == 10

    def test_serve_requires_data_dir(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["serve"])


class TestCommands:
    def test_gather_exit_code(self, capsys):
        rc = main(["gather", "--family", "line", "-n", "30"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "gathered=True" in out

    def test_gather_with_overrides(self, capsys):
        rc = main(
            ["gather", "--family", "ring", "-n", "40", "--radius", "14",
             "--interval", "11"]
        )
        assert rc == 0

    def test_scale_prints_table(self, capsys):
        rc = main(["scale", "--family", "line", "--sizes", "20", "40"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "rounds/n" in out and "exponent" in out

    def test_figures_single(self, capsys):
        rc = main(["figures", "fig16"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "stairway" in out

    def test_compare(self, capsys):
        rc = main(["compare", "--sizes", "12", "16"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "euclid" in out

    def test_watch_small(self, capsys):
        rc = main(["watch", "--family", "line", "-n", "6",
                   "--max-rounds", "50"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "gathered after" in out

    def test_gather_json(self, capsys):
        rc = main(["gather", "--family", "line", "-n", "20", "--json"])
        out = capsys.readouterr().out
        assert rc == 0
        payload = json.loads(out)
        assert payload["strategy"] == "grid"
        assert payload["gathered"] is True
        assert payload["family"] == "line"

    def test_gather_baseline_strategy(self, capsys):
        rc = main(["gather", "--family", "line", "-n", "16",
                   "--strategy", "global", "--json"])
        payload = json.loads(capsys.readouterr().out)
        assert rc == 0
        assert payload["strategy"] == "global"
        assert payload["extras"]["total_moves"] > 0

    def test_gather_seed_reproducible(self, capsys):
        argv = ["gather", "--family", "blob", "-n", "30", "--seed", "9",
                "--json"]
        main(argv)
        first = capsys.readouterr().out
        main(argv)
        assert capsys.readouterr().out == first

    def test_scale_json_and_strategy(self, capsys):
        rc = main(["scale", "--family", "line", "--sizes", "16", "32",
                   "--strategy", "global", "--json"])
        payload = json.loads(capsys.readouterr().out)
        assert rc == 0
        assert payload["strategy"] == "global"
        assert [p["n"] for p in payload["points"]] == [16, 32]

    def test_family_strategy_mismatch_clean_error(self, capsys):
        # parser accepts each flag alone; the combination fails cleanly
        rc = main(["gather", "--family", "circle"])
        err = capsys.readouterr().err
        assert rc == 2
        assert err.startswith("error:")

    def test_incompatible_scheduler_clean_error(self, capsys):
        rc = main(["gather", "--strategy", "grid", "--scheduler", "async"])
        err = capsys.readouterr().err
        assert rc == 2
        assert "supports schedulers" in err

    def test_watch_rejects_continuous_strategies(self, capsys):
        rc = main(["watch", "--family", "circle", "--strategy",
                   "euclidean", "-n", "8"])
        err = capsys.readouterr().err
        assert rc == 2
        assert "continuous" in err

    def test_compare_strategies_subset_json(self, capsys):
        rc = main(["compare", "--sizes", "12", "--strategies", "grid",
                   "chain", "--json"])
        payload = json.loads(capsys.readouterr().out)
        assert rc == 0
        assert payload["strategies"] == ["grid", "chain"]
        assert set(payload["rows"][0]) == {"n", "grid", "chain"}


class TestSsyncFlags:
    def test_gather_ssync(self, capsys):
        rc = main(["gather", "--family", "line", "-n", "16",
                   "--scheduler", "ssync", "--activation-p", "0.8",
                   "--seed", "1", "--json"])
        payload = json.loads(capsys.readouterr().out)
        assert rc == 0
        assert payload["scheduler"] == "ssync"
        assert payload["gathered"] is True
        assert payload["events"]["activation"] == payload["rounds"]

    def test_gather_ssync_faulty(self, capsys):
        rc = main(["gather", "--family", "line", "-n", "16",
                   "--scheduler", "ssync-faulty", "--fault-rate", "0.2",
                   "--seed", "1", "--json"])
        payload = json.loads(capsys.readouterr().out)
        assert rc == 0
        assert payload["events"].get("fault", 0) > 0

    def test_scale_ssync_sweep_axis(self, capsys):
        rc = main(["scale", "--family", "line", "--sizes", "12", "16",
                   "--scheduler", "ssync", "--activation-p", "0.9",
                   "--seed", "2", "--json"])
        payload = json.loads(capsys.readouterr().out)
        assert rc == 0
        assert payload["scheduler"] == "ssync"

    def test_ssync_flag_with_fsync_names_registry_keys(self, capsys):
        # The bugfix contract: an invalid --scheduler/flag combination
        # must name the valid registry keys, not fail generically.
        rc = main(["gather", "--scheduler", "fsync",
                   "--fault-rate", "0.1"])
        err = capsys.readouterr().err
        assert rc == 2
        assert err.startswith("error:")
        for key in ("'fsync'", "'ssync'", "'ssync-faulty'", "'async'"):
            assert key in err, f"{key} missing from: {err}"

    def test_byzantine_rate_with_fsync_is_a_usage_error(self, capsys):
        rc = main(["gather", "--scheduler", "fsync",
                   "--byzantine-rate", "0.1"])
        err = capsys.readouterr().err
        assert rc == 2
        assert err.startswith("error:")
        assert "byzantine_rate" in err

    def test_byzantine_rate_with_async_lcm_is_a_usage_error(self, capsys):
        # async-lcm strips byzantine_rate from its option_names (stale
        # perception is that model's native adversary) — the CLI must
        # surface the registry's rejection, not silently drop the flag.
        rc = main(["gather", "--scheduler", "async-lcm",
                   "--byzantine-rate", "0.1"])
        err = capsys.readouterr().err
        assert rc == 2
        assert err.startswith("error:")
        assert "byzantine_rate" in err

    def test_staleness_with_ssync_is_a_usage_error(self, capsys):
        rc = main(["gather", "--scheduler", "ssync",
                   "--staleness", "2"])
        err = capsys.readouterr().err
        assert rc == 2
        assert err.startswith("error:")
        assert "staleness" in err

    def test_gather_async_lcm_with_staleness(self, capsys):
        rc = main(["gather", "--family", "line", "-n", "16",
                   "--scheduler", "async-lcm", "--staleness", "2",
                   "--activation-p", "0.8", "--seed", "1", "--json"])
        payload = json.loads(capsys.readouterr().out)
        assert rc == 0
        assert payload["scheduler"] == "async-lcm"
        assert payload["gathered"] is True

    def test_gather_byzantine_counts_actions(self, capsys):
        rc = main(["gather", "--family", "line", "-n", "16",
                   "--scheduler", "ssync-faulty",
                   "--byzantine-rate", "0.2", "--seed", "1", "--json"])
        payload = json.loads(capsys.readouterr().out)
        assert rc in (0, 1)  # byzantine hops may legitimately stall it
        assert payload["byzantine_actions"] is not None

    def test_unknown_scheduler_choice_lists_keys(self, capsys):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["gather", "--scheduler", "nope"])
        err = capsys.readouterr().err
        assert "ssync" in err  # argparse choices name the registry

    def test_watch_reports_connectivity_loss_honestly(self, capsys):
        rc = main(["watch", "--family", "ring", "-n", "24",
                   "--scheduler", "ssync", "--activation-p", "0.3",
                   "--seed", "5", "--max-rounds", "40"])
        out = capsys.readouterr().out
        assert rc == 1
        assert "not gathered" in out and "connectivity lost" in out
