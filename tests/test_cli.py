"""Unit tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_gather_defaults(self):
        args = build_parser().parse_args(["gather"])
        assert args.family == "ring" and args.n == 100

    def test_unknown_family_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["gather", "--family", "nope"])


class TestCommands:
    def test_gather_exit_code(self, capsys):
        rc = main(["gather", "--family", "line", "-n", "30"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "gathered=True" in out

    def test_gather_with_overrides(self, capsys):
        rc = main(
            ["gather", "--family", "ring", "-n", "40", "--radius", "14",
             "--interval", "11"]
        )
        assert rc == 0

    def test_scale_prints_table(self, capsys):
        rc = main(["scale", "--family", "line", "--sizes", "20", "40"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "rounds/n" in out and "exponent" in out

    def test_figures_single(self, capsys):
        rc = main(["figures", "fig16"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "stairway" in out

    def test_compare(self, capsys):
        rc = main(["compare", "--sizes", "12", "16"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "euclid" in out

    def test_watch_small(self, capsys):
        rc = main(["watch", "--family", "line", "-n", "6",
                   "--max-rounds", "50"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "gathered after" in out
