"""Unit and integration tests for GatherOnGrid (paper Figure 11)."""

import pytest

from repro.core.algorithm import GatherOnGrid, gather
from repro.core.config import AlgorithmConfig
from repro.engine.scheduler import FsyncEngine
from repro.grid.connectivity import is_connected
from repro.grid.occupancy import SwarmState
from repro.swarms.generators import line, ring, solid_rectangle


class TestGatherEntry:
    def test_line_gathers(self):
        r = gather(line(12))
        assert r.gathered
        assert r.robots_final <= 4

    def test_rounds_counted(self):
        r = gather(line(12))
        assert r.rounds == len(r.metrics)

    def test_single_robot_trivial(self):
        r = gather([(0, 0)])
        assert r.gathered and r.rounds == 0

    def test_pair_trivial(self):
        r = gather([(0, 0), (0, 1)])
        assert r.gathered and r.rounds == 0

    def test_2x2_is_final(self):
        r = gather([(0, 0), (1, 0), (0, 1), (1, 1)])
        assert r.gathered and r.rounds == 0

    def test_disconnected_rejected(self):
        with pytest.raises(ValueError):
            gather([(0, 0), (5, 5)])

    def test_max_rounds_respected(self):
        r = gather(ring(30), max_rounds=3)
        assert not r.gathered
        assert r.rounds == 3


class TestDeterminism:
    def test_same_input_same_history(self):
        hist1, hist2 = [], []
        for hist in (hist1, hist2):
            engine = FsyncEngine(
                SwarmState(ring(14)),
                GatherOnGrid(),
                on_round=lambda i, s, h=hist: h.append(s.frozen()),
            )
            for _ in range(30):
                if engine.state.is_gathered():
                    break
                engine.step()
        assert hist1 == hist2

    def test_translation_invariance(self):
        # no compass / no origin: translated swarms behave identically
        base = ring(12)
        shifted = [(x + 137, y - 55) for x, y in base]
        r1 = gather(base)
        r2 = gather(shifted)
        assert r1.rounds == r2.rounds
        assert r1.robots_final == r2.robots_final


class TestConfigToggles:
    def test_runs_disabled_stalls_on_ring(self):
        cfg = AlgorithmConfig(enable_runs=False)
        r = gather(ring(14), cfg, max_rounds=300)
        assert not r.gathered  # mergeless swarm needs reshapement

    def test_runs_disabled_still_gathers_solid(self):
        cfg = AlgorithmConfig(enable_runs=False)
        r = gather(solid_rectangle(8, 8), cfg)
        assert r.gathered  # merges alone handle thick material

    def test_no_pipelining_is_slower_on_large_ring(self):
        fast = gather(ring(24)).rounds
        slow_r = gather(
            ring(24), AlgorithmConfig(pipelining=False), max_rounds=20000
        )
        assert (not slow_r.gathered) or slow_r.rounds >= fast

    def test_small_bump_length_still_gathers(self):
        cfg = AlgorithmConfig(max_bump_length=2)
        r = gather(ring(12), cfg)
        assert r.gathered

    def test_smaller_radius_still_gathers(self):
        cfg = AlgorithmConfig(viewing_radius=11, max_bump_length=4)
        r = gather(ring(12), cfg)
        assert r.gathered


class TestInvariantsDuringGathering:
    @pytest.mark.parametrize(
        "cells",
        [line(15), ring(12), solid_rectangle(6, 6)],
        ids=["line", "ring", "solid"],
    )
    def test_robot_count_never_increases(self, cells):
        counts = []
        engine = FsyncEngine(
            SwarmState(cells),
            GatherOnGrid(),
            on_round=lambda i, s: counts.append(len(s)),
        )
        engine.run(max_rounds=400)
        assert all(a >= b for a, b in zip(counts, counts[1:]))

    @pytest.mark.parametrize(
        "cells",
        [line(15), ring(12), solid_rectangle(6, 6)],
        ids=["line", "ring", "solid"],
    )
    def test_connectivity_every_round(self, cells):
        # the engine already raises on violation; assert it stayed silent
        r = gather(cells, check_connectivity=True)
        assert r.gathered

    def test_bounding_box_never_grows(self):
        boxes = []
        engine = FsyncEngine(
            SwarmState(ring(12)),
            GatherOnGrid(),
            on_round=lambda i, s: boxes.append(s.bounding_box()),
        )
        engine.run(max_rounds=400)
        for (ax0, ay0, ax1, ay1), (bx0, by0, bx1, by1) in zip(boxes, boxes[1:]):
            assert bx0 >= ax0 and by0 >= ay0
            assert bx1 <= ax1 and by1 <= ay1

    def test_events_cover_merges(self):
        r = gather(ring(10))
        removed = sum(e.data["removed"] for e in r.events.of_kind("merge"))
        assert removed == r.merges_total


class TestTheorem1LinearBound:
    """The headline: rounds <= C * n with a modest C on every family."""

    CASES = [
        ("line", line(60), 2.0),
        ("ring", ring(20), 6.0),
        ("solid", solid_rectangle(9, 9), 1.0),
    ]

    @pytest.mark.parametrize("name,cells,c", CASES, ids=[c[0] for c in CASES])
    def test_linear_budget(self, name, cells, c):
        n = len(cells)
        r = gather(cells, max_rounds=int(c * n) + 30)
        assert r.gathered, f"{name} exceeded {c}*n rounds"
